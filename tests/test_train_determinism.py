"""A/B regression for flow-level packet trains (REPRO_TRAINS).

With trains enabled (the default), every pipe charges one message's
back-to-back MTU packets in a single event; with ``REPRO_TRAINS=0`` the
per-packet oracle ticks every MTU boundary instead.  Everything a user
can measure — simulated end times, modeled metrics, trace span counts,
critical-path attribution — must come out bit-identical, for every
endpoint design on every topology preset.  Only the four interpreter
self-counters may differ (the oracle legitimately dispatches more
events — that surplus *is* the event reduction the train abstraction
buys, asserted at the bottom).

The shuffles here use 64 KiB messages on the RC designs so that real
multi-packet trains (16 MTU packets each) cross the fabric; the UD
designs are MTU-bound by the verbs layer, so their datagrams are
single-packet trains by construction and pin down the n==1 boundary.
"""

import json

import numpy as np
import pytest

from repro import (
    Cluster,
    ClusterConfig,
    EDR,
    EndpointConfig,
    TransmissionGroups,
)
from repro.core import ReceiveOperator, ShuffleOperator
from repro.core.shuffle import striped_partitioner
from repro.core.stage import ShuffleStage
from repro.engine import CollectSink, QueryFragment, run_fragments
from repro.engine.scan import ScanOperator
from repro.fabric import DUAL_RAIL, LEAF_SPINE, SINGLE_SWITCH
from tests.test_determinism import DESIGN_NAMES
from tests.test_fastpath_determinism import SIM_SELF_COUNTERS, _comparable

DTYPE = np.dtype([("a", np.int64), ("b", np.int64)])

#: UD transports cap messages at the MTU; RC designs get 64 KiB messages
#: (16-packet trains at the 4 KiB MTU).
UD_DESIGNS = {"MESQ/SR", "MESQ/SR+MC"}

TOPOLOGIES = [SINGLE_SWITCH, LEAF_SPINE(oversubscription=2), DUAL_RAIL]
TOPOLOGY_IDS = ["single-switch", "leaf-spine", "dual-rail"]


def run_shuffle(design, topology=SINGLE_SWITCH, nodes=2, threads=2,
                credit_frequency=None):
    """One small shuffle with train-sized messages; returns
    ``(metrics snapshot, span count, end time, report JSON,
    delivered_messages, delivered_packets)``."""
    cluster = Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                    threads_per_node=threads,
                                    topology=topology))
    tracer = cluster.enable_tracing()
    cluster.enable_reporting()
    groups = TransmissionGroups.repartition(nodes)
    message_size = 4096 if design in UD_DESIGNS else 65536
    kwargs = {}
    if credit_frequency is not None:
        kwargs["credit_frequency"] = credit_frequency
    cfg = EndpointConfig(message_size=message_size, **kwargs)
    stage = ShuffleStage(cluster.fabric, design, groups, config=cfg,
                         threads=threads, registry=cluster.registry)
    cluster.run_process(stage.setup())
    rows_per_node = 8192
    fragments, sinks = [], []
    for n in range(nodes):
        node = cluster.nodes[n]
        table = np.empty(rows_per_node, dtype=DTYPE)
        table["a"] = np.arange(rows_per_node)
        table["b"] = n
        # Large batches so per-destination slices exceed one MTU on the
        # RC designs — that is what makes the trains multi-packet.
        scan = ScanOperator(node, table, threads, batch_rows=4096)
        shuffle = ShuffleOperator(node, scan, stage.send_endpoints[n],
                                  groups, striped_partitioner(len(groups)),
                                  threads)
        fragments.append(QueryFragment(node, shuffle, threads))
        recv = ReceiveOperator(node, stage.recv_endpoints[n], threads)
        sink = CollectSink()
        sinks.append(sink)
        fragments.append(QueryFragment(node, recv, threads, sink=sink))
    cluster.run_process(run_fragments(cluster.sim, fragments))
    cluster.run()  # drain trailing completions
    got = sum(len(s.result()) for s in sinks if s.result() is not None)
    assert got == nodes * rows_per_node
    report_json = json.dumps(cluster.run_report(), sort_keys=True)
    return (cluster.metrics_snapshot(), len(tracer.events), cluster.sim.now,
            report_json, cluster.fabric.delivered_messages,
            cluster.fabric.delivered_packets)


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=TOPOLOGY_IDS)
@pytest.mark.parametrize("design", DESIGN_NAMES)
def test_trains_match_per_packet_oracle(design, topology, monkeypatch):
    monkeypatch.delenv("REPRO_TRAINS", raising=False)
    train = run_shuffle(design, topology)
    monkeypatch.setenv("REPRO_TRAINS", "0")
    oracle = run_shuffle(design, topology)
    assert train[2] == oracle[2], "simulated end times diverge"
    assert train[1] == oracle[1], "trace span counts diverge"
    assert _comparable(train[0]) == _comparable(oracle[0]), \
        "modeled metrics diverge"
    assert train[3] == oracle[3], "critical-path attribution diverges"
    assert train[4:] == oracle[4:], "delivery accounting diverges"
    if design not in UD_DESIGNS:
        # The RC shuffles must actually move multi-packet trains, and the
        # oracle must pay for them in dispatched events — the surplus the
        # train abstraction removes.
        assert train[5] > train[4], "no multi-packet trains were routed"
        events = "sim.events_dispatched"
        assert oracle[0]["fabric"][events] > train[0]["fabric"][events]


def test_exempt_counters_are_the_only_divergence(monkeypatch):
    """Sanity check on the exemption set: everything the oracle changes
    is one of the four interpreter self-counters."""
    monkeypatch.delenv("REPRO_TRAINS", raising=False)
    train = run_shuffle("MEMQ/SR")
    monkeypatch.setenv("REPRO_TRAINS", "0")
    oracle = run_shuffle("MEMQ/SR")
    diverged = {k for k in train[0]["fabric"]
                if train[0]["fabric"][k] != oracle[0]["fabric"].get(k)}
    assert diverged, "oracle should dispatch extra no-op events"
    assert diverged <= SIM_SELF_COUNTERS


def test_train_crossing_credit_grant(monkeypatch):
    """Boundary case: with a credit granted back after every message,
    multi-packet trains interleave with credit traffic at every pipe;
    the oracle must still be bit-identical."""
    monkeypatch.delenv("REPRO_TRAINS", raising=False)
    train = run_shuffle("MEMQ/SR", credit_frequency=1)
    monkeypatch.setenv("REPRO_TRAINS", "0")
    oracle = run_shuffle("MEMQ/SR", credit_frequency=1)
    assert train[2] == oracle[2], "simulated end times diverge"
    assert _comparable(train[0]) == _comparable(oracle[0])
    assert train[3] == oracle[3], "critical-path attribution diverges"
