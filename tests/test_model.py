"""Bounded model checking of the shuffle flow-control protocols.

Covers the checker itself (exploration, partial-order reduction,
property evaluation, counterexample rendering, CLI) and the protocol
facts it proves about the real designs:

* all five registered kinds verify clean at small bounds;
* the §4.4.1 starvation law: with fewer write-back opportunities than
  the window needs (``credit_frequency > messages`` remaining), SR/RC
  deadlocks — and SR/UD survives the same bound because its keepalive
  re-advertises credit;
* a lost final-credit datagram silently wedges SR/UD (caught by
  eventual-delivery, not deadlock-freedom: keepalive cycles keep the
  system live but never delivering);
* a QP error is terminal for SR/RC at this layer (no recovery path —
  the ROADMAP direction-5 gate).
"""

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.model import (
    ModelBound,
    NoProtocolModelError,
    check_kind,
    check_model,
    explore,
    extract_model,
    modeled_kinds,
    parse_bound,
    render_counterexample,
)
from repro.analysis.model.protocols import _merge_credit
from repro.core.designs import register_endpoint_kind
from repro.core.sr_rc import SRRCReceiveEndpoint, SRRCSendEndpoint
from repro.core.transport.modeling import RingModel

#: UD kinds explore ~100x more states than RC at the default bound
#: (loss interleavings); one peer keeps the suite fast without losing
#: any per-stream behaviour (streams only couple through the pool).
FAST = {"SR_UD": parse_bound("peers=1"), "SR_UD_MC": parse_bound("peers=1")}

#: §4.4.1 starvation instance: 4 messages, window 2, write-back only
#: every 4th Receive — the sender runs dry two messages short.
STARVE = parse_bound("peers=1,messages=4,window=2,credit_frequency=4,"
                     "data_loss=0,credit_loss=0")


class TestRealKindsVerify:
    @pytest.mark.parametrize("kind", modeled_kinds())
    def test_kind_passes_at_bound(self, kind):
        result = check_kind(kind, FAST.get(kind))
        assert result.explored.complete
        assert result.passed, [
            (p.name, p.status, p.detail) for p in result.properties]

    def test_ring_consistency_not_applicable_to_credit_family(self):
        result = check_kind("SR_RC")
        assert result.status_of("ring-consistency").status == "n/a"
        ring = check_kind("RD_RC")
        assert ring.status_of("ring-consistency").status == "pass"


class TestStarvationLaw:
    def test_sr_rc_deadlocks_when_frequency_exceeds_remaining(self):
        result = check_kind("SR_RC", STARVE)
        dead = result.status_of("deadlock-freedom")
        assert dead.status == "fail"
        # Shortest wedge: 2 sends + 2 deliveries + 2 releases (below the
        # write-back threshold) + 2 CQEs, then the same again minus the
        # sends that can no longer go -- 17 actions, found by BFS.
        assert len(dead.witness) == 17
        assert result.status_of("eventual-delivery").status == "fail"

    def test_sr_ud_keepalive_rescues_the_same_bound(self):
        result = check_kind("SR_UD", STARVE)
        assert result.explored.complete
        assert result.passed


class TestFaultBudgets:
    def test_sr_ud_lost_final_credit_wedges_silently(self):
        result = check_kind("SR_UD", parse_bound("peers=1,final_loss=1"))
        assert result.status_of("eventual-delivery").status == "fail"

    def test_sr_rc_qp_error_is_terminal(self):
        result = check_kind("SR_RC", parse_bound("peers=1,qp_errors=1"))
        assert not result.passed
        assert result.status_of("eventual-delivery").status == "fail"


class TestPartialOrderReduction:
    @pytest.mark.parametrize("kind", ["SR_RC", "WR_RC"])
    def test_reduction_preserves_verdicts(self, kind):
        full = check_model(extract_model(kind), por=False)
        reduced = check_model(extract_model(kind), por=True)
        assert [(p.name, p.status) for p in full.properties] == \
            [(p.name, p.status) for p in reduced.properties]
        assert reduced.explored.states <= full.explored.states

    def test_reduction_actually_reduces(self):
        full = explore(extract_model("SR_RC"), por=False)
        reduced = explore(extract_model("SR_RC"), por=True)
        assert reduced.states < full.states

    def test_failing_verdicts_come_from_the_full_graph(self):
        result = check_kind("SR_RC", STARVE, por=True)
        assert not result.passed
        assert not result.explored.por  # checker re-ran without POR


class TestBoundsAndExtraction:
    def test_parse_bound_overrides(self):
        bound = parse_bound("messages=4,window=3")
        assert (bound.messages, bound.window) == (4, 3)
        assert bound.peers == ModelBound().peers

    def test_parse_bound_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_bound("messages=4,wibble=1")

    def test_parse_bound_rejects_non_integer(self):
        with pytest.raises(ValueError):
            parse_bound("messages=two")

    def test_empty_spec_is_the_default_bound(self):
        assert parse_bound("") == ModelBound()

    def test_unmodeled_kind_raises(self):
        class NoModelSend(SRRCSendEndpoint):
            protocol_model = None

        register_endpoint_kind("SR_RC_NOMODEL_TEST", NoModelSend,
                               SRRCReceiveEndpoint,
                               description="scratch kind without a model")
        with pytest.raises(NoProtocolModelError, match="SR_RC_NOMODEL_TEST"):
            extract_model("SR_RC_NOMODEL_TEST")
        assert "SR_RC_NOMODEL_TEST" not in modeled_kinds(include_test=True)

    def test_ring_model_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            RingModel("freearr", 0)

    def test_credit_merge_is_max_merge(self):
        assert _merge_credit(5, 3) == 5  # stale arrival never regresses
        assert _merge_credit(3, 5) == 5


class TestCounterexampleTraces:
    def test_trace_is_chrome_trace_shaped(self):
        result = check_kind("SR_RC", STARVE)
        witness = result.status_of("deadlock-freedom").witness
        trace = render_counterexample(result.model, witness)
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i"}
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == len(witness)
        assert all("args" in e for e in spans)
        other = trace["otherData"]
        assert other["property"] == "deadlock-freedom"
        assert other["counterexample_steps"] == len(witness)


class TestCli:
    def test_single_kind_verifies(self):
        assert main(["model", "--kind", "SR_RC"]) == 0

    def test_unknown_kind_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["model", "--kind", "BOGUS"])

    def test_bad_bound_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["model", "--kind", "SR_RC", "--bound", "wibble=1"])

    def test_json_output_parses(self, capsys):
        assert main(["model", "--kind", "SR_RC", "--json"]) == 0
        verdicts = json.loads(capsys.readouterr().out)
        assert verdicts[0]["kind"] == "SR_RC"
        assert verdicts[0]["passed"] is True

    def test_failing_bound_writes_traces_and_fails(self, tmp_path, capsys):
        code = main(["model", "--kind", "SR_RC",
                     "--bound", "peers=1,messages=4,credit_frequency=4",
                     "--trace-dir", str(tmp_path)])
        assert code == 1
        written = list(tmp_path.glob("*.trace.json"))
        assert written
        for path in written:
            json.load(open(path))  # Perfetto-loadable JSON

    def test_list_kinds(self, capsys):
        assert main(["model", "--list-kinds"]) == 0
        out = capsys.readouterr().out
        for kind in modeled_kinds():
            assert kind in out
