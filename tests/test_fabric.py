"""Unit tests for the simulated fabric (NIC, links, routing)."""

import pytest

from repro.fabric import EDR, FDR, ClusterConfig, Fabric, Packet, QPContextCache
from repro.sim import Event, Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_fabric(sim, nodes=2, network=EDR, **net_overrides):
    cluster = ClusterConfig(network=network, num_nodes=nodes)
    if net_overrides:
        cluster = cluster.with_network(**net_overrides)
    return Fabric(sim, cluster)


class TestQPContextCache:
    def test_first_touch_misses_then_hits(self):
        cache = QPContextCache(4)
        assert cache.touch(1) is False
        assert cache.touch(1) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = QPContextCache(2)
        cache.touch(1)
        cache.touch(2)
        cache.touch(1)  # 1 most recent
        cache.touch(3)  # evicts 2
        assert cache.touch(1) is True
        assert cache.touch(2) is False

    def test_occupancy_bounded_by_capacity(self):
        cache = QPContextCache(3)
        for qpn in range(10):
            cache.touch(qpn)
        assert cache.occupancy == 3

    def test_evict(self):
        cache = QPContextCache(4)
        cache.touch(5)
        cache.evict(5)
        assert cache.touch(5) is False

    def test_miss_rate(self):
        cache = QPContextCache(8)
        cache.touch(1)
        cache.touch(1)
        assert cache.miss_rate == 0.5

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            QPContextCache(0)


class TestPacket:
    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Packet(0, 1, 1, 2, "SEND", -1, 10)

    def test_rejects_wire_smaller_than_payload(self):
        with pytest.raises(ValueError):
            Packet(0, 1, 1, 2, "SEND", 100, 50)


class TestWireBytes:
    def test_ud_adds_header(self):
        assert EDR.wire_bytes(4096, "UD") == 4096 + EDR.ud_header_bytes

    def test_rc_segments_by_mtu(self):
        # 64 KiB = 16 MTU packets, each with an RC header
        assert EDR.wire_bytes(65536, "RC") == 65536 + 16 * EDR.rc_header_bytes

    def test_rc_small_message_single_packet(self):
        assert EDR.wire_bytes(100, "RC") == 100 + EDR.rc_header_bytes


class TestRouting:
    def test_delivery_latency_includes_serialization_and_switch(self, sim):
        fabric = make_fabric(sim, network=EDR, ud_jitter_ns=0)
        pkt = Packet(0, 1, 1, 2, "SEND", 65536, 65536)

        def proc():
            arrived = yield fabric.route(pkt)
            return (sim.now, arrived)

        t, arrived = sim.run_process(proc())
        serialization = int(65536 / EDR.link_bytes_per_ns)
        # egress + switch + ingress (+ QP-cache miss on first ingress touch)
        expected = 2 * serialization + EDR.switch_latency_ns + EDR.qp_cache_miss_ns
        assert t == expected
        assert arrived is pkt and not pkt.dropped

    def test_egress_event_fires_before_arrival(self, sim):
        fabric = make_fabric(sim, ud_jitter_ns=0)
        pkt = Packet(0, 1, 1, 2, "SEND", 4096, 4096)
        times = {}

        def proc():
            egress = Event(sim)
            egress.add_callback(lambda e: times.setdefault("egress", sim.now))
            yield fabric.route(pkt, egress_event=egress)
            times["arrival"] = sim.now

        sim.run_process(proc())
        assert times["egress"] < times["arrival"]

    def test_sender_egress_serializes_concurrent_messages(self, sim):
        fabric = make_fabric(sim, ud_jitter_ns=0)
        done = []

        def send(dst):
            pkt = Packet(0, dst, 1, 2, "SEND", 65536, 65536)
            yield fabric.route(pkt)
            done.append(sim.now)

        # Two messages to different destinations share node 0's egress port.
        fabric2 = make_fabric(Simulator(), nodes=3)  # unused, shape check
        fabric = make_fabric(sim, nodes=3, ud_jitter_ns=0)
        sim.process(send(1))
        sim.process(send(2))
        sim.run()
        serialization = int(65536 / EDR.link_bytes_per_ns)
        # The second message could not start serializing until the first
        # finished: arrivals at least one serialization apart.
        assert done[1] - done[0] >= serialization

    def test_loopback_charges_hca_but_not_switch(self, sim):
        fabric = make_fabric(sim)
        pkt = Packet(0, 0, 1, 2, "SEND", 1 << 20, 1 << 20)

        def proc():
            yield fabric.route(pkt)
            return sim.now

        t = sim.run_process(proc())
        serialization = int((1 << 20) / EDR.link_bytes_per_ns)
        # DMA out and back in through the adapter, but no switch hop.
        assert t >= 2 * serialization
        assert t < 2 * serialization + EDR.qp_cache_miss_ns + 100
        assert t < 2 * serialization + EDR.switch_latency_ns + EDR.qp_cache_miss_ns

    def test_loss_injection_drops_packets(self, sim):
        fabric = make_fabric(sim, ud_loss_probability=1.0, ud_jitter_ns=0)
        pkt = Packet(0, 1, 1, 2, "SEND", 100, 160)

        def proc():
            arrived = yield fabric.route(pkt, lossy=True)
            return arrived

        arrived = sim.run_process(proc())
        assert arrived.dropped
        assert fabric.dropped_messages == 1

    def test_no_loss_when_not_lossy(self, sim):
        fabric = make_fabric(sim, ud_loss_probability=1.0, ud_jitter_ns=0)
        pkt = Packet(0, 1, 1, 2, "SEND", 100, 160)

        def proc():
            arrived = yield fabric.route(pkt, lossy=False)
            return arrived

        assert not sim.run_process(proc()).dropped

    def test_unordered_jitter_reorders_messages(self):
        # With jitter, some pair of back-to-back small messages must be
        # reordered across enough trials.
        sim = Simulator()
        fabric = make_fabric(sim, ud_jitter_ns=5000)
        arrivals = []

        def send(seq):
            pkt = Packet(0, 1, 1, 2, "SEND", 64, 124, meta={"seq": seq})
            arrived = yield fabric.route(pkt, unordered=True)
            arrivals.append(arrived.meta["seq"])

        for seq in range(50):
            sim.process(send(seq))
        sim.run()
        assert sorted(arrivals) == list(range(50))
        assert arrivals != list(range(50)), "jitter should reorder someone"

    def test_cluster_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(network=EDR, num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(network=EDR, num_nodes=2, threads_per_node=-1)

    def test_threads_default_to_cores(self):
        cluster = ClusterConfig(network=FDR, num_nodes=2)
        assert cluster.threads_per_node == FDR.cores_per_node


class TestCpuScaling:
    def test_fdr_cpu_slower_than_edr(self):
        assert FDR.cpu(1000) > EDR.cpu(1000)

    def test_node_cpu_delay(self, sim):
        fabric = make_fabric(sim, network=FDR)

        def proc():
            yield fabric.node(0).cpu_delay(1000)
            return sim.now

        assert sim.run_process(proc()) == FDR.cpu(1000)
