"""End-to-end shuffle correctness across all designs and baselines.

Every tuple shuffled must arrive exactly once (RC) — the multiset of
received tuples equals the multiset sent — for repartition, multicast and
broadcast patterns, in both endpoint configurations.
"""

import numpy as np
import pytest

from repro import (
    Cluster,
    ClusterConfig,
    EDR,
    EndpointConfig,
    TransmissionGroups,
)
from repro.core import ReceiveOperator, ShuffleOperator
from repro.core.shuffle import hash_partitioner, striped_partitioner
from repro.core.stage import ShuffleStage
from repro.engine import CollectSink, QueryFragment, run_fragments
from repro.engine.scan import ScanOperator

ALL_DESIGNS = ["MEMQ/RD", "SEMQ/RD", "MEMQ/SR", "SEMQ/SR", "MESQ/SR", "SESQ/SR"]
BASELINES = ["MPI", "IPoIB"]

DTYPE = np.dtype([("key", np.int64), ("val", np.int64)])


def make_table(rows, node, seed=11):
    rng = np.random.default_rng(seed + node)
    table = np.empty(rows, dtype=DTYPE)
    table["key"] = rng.integers(0, 1 << 40, rows)
    table["val"] = np.arange(rows, dtype=np.int64) + node * rows
    return table


def run_shuffle_query(design, nodes=2, threads=2, rows_per_node=4000,
                      groups=None, message_size=8192, partition=None,
                      config=None, net_overrides=None):
    """Run scan -> shuffle -> receive on every node; return results."""
    cc = ClusterConfig(network=EDR, num_nodes=nodes, threads_per_node=threads)
    if net_overrides:
        cc = cc.with_network(**net_overrides)
    cluster = Cluster(cc)
    if groups is None:
        groups = TransmissionGroups.repartition(nodes)
    cfg = config or EndpointConfig(message_size=message_size,
                                   buffers_per_connection=2)
    if design in BASELINES:
        from repro.baselines import baseline_stage
        stage = baseline_stage(cluster.fabric, design, groups,
                               config=cfg, threads=threads,
                               registry=cluster.registry)
    else:
        stage = ShuffleStage(cluster.fabric, design, groups, config=cfg,
                             threads=threads, registry=cluster.registry)
    cluster.run_process(stage.setup(), name="setup")

    fragments, sinks, sent = [], [], []
    for n in range(nodes):
        node = cluster.nodes[n]
        table = make_table(rows_per_node, n)
        sent.append(table)
        scan = ScanOperator(node, table, threads, batch_rows=512)
        part = partition or hash_partitioner(
            lambda b: b["key"], groups.num_groups)
        shuffle = ShuffleOperator(node, scan, stage.send_endpoints[n],
                                  groups, part, threads)
        fragments.append(QueryFragment(node, shuffle, threads))
        if n in stage.recv_endpoints:
            recv = ReceiveOperator(node, stage.recv_endpoints[n], threads)
            sink = CollectSink()
            sinks.append(sink)
            fragments.append(QueryFragment(node, recv, threads, sink=sink))
    elapsed = cluster.run_process(
        run_fragments(cluster.sim, fragments), name="query")
    return sent, sinks, elapsed, stage, cluster


def received_multiset(sinks):
    parts = [s.result() for s in sinks if s.result() is not None]
    if not parts:
        return np.array([], dtype=np.int64)
    return np.sort(np.concatenate([p["val"] for p in parts]))


@pytest.mark.parametrize("design", ALL_DESIGNS + BASELINES)
class TestExactlyOnceDelivery:
    def test_repartition_delivers_every_tuple_once(self, design):
        sent, sinks, _el, _st, _cl = run_shuffle_query(design)
        expected = np.sort(np.concatenate([t["val"] for t in sent]))
        got = received_multiset(sinks)
        np.testing.assert_array_equal(got, expected)

    def test_broadcast_delivers_n_minus_1_copies(self, design):
        nodes = 3

        def groups_for(_node):  # same for everyone here: all nodes
            return TransmissionGroups.broadcast(nodes)

        groups = TransmissionGroups.broadcast(nodes)
        sent, sinks, _el, _st, _cl = run_shuffle_query(
            design, nodes=nodes, rows_per_node=1500, groups=groups)
        all_vals = np.concatenate([t["val"] for t in sent])
        expected = np.sort(np.tile(all_vals, nodes))  # every node gets all
        got = received_multiset(sinks)
        np.testing.assert_array_equal(got, expected)


class TestPatterns:
    def test_multicast_reaches_group_members_only(self):
        nodes = 4
        # One group {1,2}, one group {3}: node 0..3 all shuffle.
        groups = TransmissionGroups.multicast([(1, 2), (3,)])
        sent, sinks, _el, stage, _cl = run_shuffle_query(
            "MEMQ/SR", nodes=nodes, rows_per_node=2000, groups=groups)
        # Receivers exist only on nodes 1, 2, 3.
        assert sorted(stage.recv_endpoints) == [1, 2, 3]
        total_sent = sum(len(t) for t in sent)
        got = received_multiset(sinks)
        # Group 0 tuples arrive twice (nodes 1 and 2), group 1 once.
        assert len(got) > total_sent  # multicast duplicates group-0 rows

    def test_hash_partitioning_is_deterministic_by_key(self):
        sent, sinks, _el, _st, _cl = run_shuffle_query(
            "SEMQ/SR", nodes=2, rows_per_node=3000)
        # Each distinct key must land on exactly one node.
        per_node_keys = []
        for sink in sinks:
            result = sink.result()
            per_node_keys.append(set() if result is None
                                 else set(result["key"].tolist()))
        assert not (per_node_keys[0] & per_node_keys[1])

    def test_striped_partitioner_balances(self):
        groups = TransmissionGroups.repartition(4)
        sent, sinks, _el, _st, _cl = run_shuffle_query(
            "MESQ/SR", nodes=4, rows_per_node=4000, groups=groups,
            partition=striped_partitioner(4))
        counts = [len(s.result()) for s in sinks]
        assert max(counts) - min(counts) < 0.15 * max(counts)


class TestEndpointConfigurations:
    def test_single_endpoint_shares_one_endpoint(self):
        _s, _k, _e, stage, _cl = run_shuffle_query("SEMQ/SR", threads=4)
        assert len(stage.send_endpoints[0]) == 1
        assert stage.config.threads_per_endpoint == 4

    def test_multi_endpoint_one_per_thread(self):
        _s, _k, _e, stage, _cl = run_shuffle_query("MEMQ/SR", threads=4)
        assert len(stage.send_endpoints[0]) == 4
        assert stage.config.threads_per_endpoint == 1

    def test_intermediate_endpoint_count(self):
        cc = ClusterConfig(network=EDR, num_nodes=2, threads_per_node=4)
        cluster = Cluster(cc)
        groups = TransmissionGroups.repartition(2)
        stage = ShuffleStage(cluster.fabric, "MEMQ/SR", groups,
                             num_endpoints=2, threads=4,
                             registry=cluster.registry)
        assert len(stage.send_endpoints[0]) == 2
        assert stage.config.threads_per_endpoint == 2

    def test_more_endpoints_than_threads_rejected(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=2))
        with pytest.raises(ValueError):
            ShuffleStage(cluster.fabric, "MEMQ/SR",
                         TransmissionGroups.repartition(2),
                         num_endpoints=4, threads=2,
                         registry=cluster.registry)

    def test_ud_message_size_clamped_to_mtu(self):
        _s, _k, _e, stage, _cl = run_shuffle_query(
            "MESQ/SR", message_size=65536)
        assert stage.config.message_size == EDR.mtu

    def test_rc_message_size_unclamped(self):
        _s, _k, _e, stage, _cl = run_shuffle_query(
            "MEMQ/SR", message_size=65536)
        assert stage.config.message_size == 65536


class TestTable1Measured:
    """The Table 1 QP counts, measured on live stages."""

    @pytest.mark.parametrize("design,expected_qps", [
        # n=4, t=2: send-side QPs per node per Table 1, doubled for the
        # receive operator's own endpoints.
        ("MEMQ/SR", 4 * 2 * 2),
        ("SEMQ/SR", 4 * 2),
        ("MEMQ/RD", 4 * 2 * 2),
        ("MESQ/SR", 2 * 2),
        ("SESQ/SR", 1 * 2),
    ])
    def test_qp_count(self, design, expected_qps):
        _s, _k, _e, stage, _cl = run_shuffle_query(
            design, nodes=4, threads=2, rows_per_node=500)
        assert stage.qps_created(0) == expected_qps


class TestRegisteredMemory:
    def test_ud_uses_far_less_memory_than_rc(self):
        _s, _k, _e, ud, _c1 = run_shuffle_query(
            "MESQ/SR", nodes=4, threads=4, rows_per_node=500,
            message_size=65536)
        _s, _k, _e, rc, _c2 = run_shuffle_query(
            "MEMQ/SR", nodes=4, threads=4, rows_per_node=500,
            message_size=65536)
        assert ud.registered_bytes(0) < rc.registered_bytes(0) / 3

    def test_memory_scales_with_message_size(self):
        sizes = {}
        for msg in (16384, 65536):
            _s, _k, _e, stage, _cl = run_shuffle_query(
                "SEMQ/SR", nodes=2, threads=2, rows_per_node=500,
                message_size=msg)
            sizes[msg] = stage.registered_bytes(0)
        assert sizes[65536] > 3 * sizes[16384]


class TestSetupTiming:
    def test_connection_time_scales_with_qps(self):
        def setup_ns(design, nodes):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                            threads_per_node=2))
            stage = ShuffleStage(cluster.fabric, design,
                                 TransmissionGroups.repartition(nodes),
                                 threads=2, registry=cluster.registry)
            cluster.run_process(stage.setup())
            return stage.max_setup_ns

        memq_4 = setup_ns("MEMQ/SR", 4)
        memq_8 = setup_ns("MEMQ/SR", 8)
        mesq_4 = setup_ns("MESQ/SR", 4)
        mesq_8 = setup_ns("MESQ/SR", 8)
        # MQ connection time grows with the cluster; SQ stays stable.
        assert memq_8 > 1.6 * memq_4
        assert mesq_8 < 1.3 * mesq_4
        assert mesq_8 < memq_8
