"""Tests for the shuffle-policy layer (repro.core.policy).

Covers the PR-10 guarantees: plans are deterministic functions of their
context, StaticPolicy is bit-identical to the legacy design-string path,
design/kind validation is eager with actionable errors, the adaptive
rule table and observed-telemetry overrides fire as documented, the
hierarchical plan/runner pair round-trips every byte, and the quota
clamp the service scheduler used to apply inline now lives behind
``ShufflePolicy.plan``.
"""

import dataclasses

import pytest

from repro import Cluster, ClusterConfig, EDR, FDR, LEAF_SPINE, \
    TransmissionGroups
from repro.bench.workloads import (
    run_broadcast,
    run_hierarchical,
    run_repartition,
)
from repro.core.designs import DESIGNS, UnknownDesignError
from repro.core.endpoint import EndpointConfig
from repro.core.policy import (
    AdaptivePolicy,
    HierarchicalPolicy,
    SHUFFLE_POLICIES,
    ShufflePolicy,
    StageContext,
    StagePlan,
    StaticPolicy,
    TelemetrySnapshot,
    parse_policy,
    plan_footprint,
)
from repro.core.stage import ShuffleStage
from repro.service import (
    QuotaManager,
    ServiceConfig,
    ShuffleService,
    TenantSpec,
)


def make_cluster(nodes=4, threads=2, network=EDR, topology=None,
                 qp_cache_entries=None):
    config = ClusterConfig(network=network, num_nodes=nodes,
                           threads_per_node=threads)
    if topology is not None:
        config = dataclasses.replace(config, topology=topology)
    if qp_cache_entries is not None:
        config = config.with_network(qp_cache_entries=qp_cache_entries)
    return Cluster(config)


def make_context(nodes=8, threads=8, message_size=64 * 1024,
                 qp_cache_entries=1024, **kwargs):
    """A StageContext without a live cluster (rule-table unit tests)."""
    return StageContext(num_nodes=nodes, threads=threads,
                        message_size=message_size,
                        qp_cache_entries=qp_cache_entries, **kwargs)


# ---------------------------------------------------------------------------
# parsing & eager validation
# ---------------------------------------------------------------------------


class TestParsePolicy:
    def test_registered_names(self):
        assert isinstance(parse_policy("adaptive"), AdaptivePolicy)
        assert isinstance(parse_policy("hierarchical"), HierarchicalPolicy)
        assert set(SHUFFLE_POLICIES) == {"adaptive", "hierarchical"}

    def test_static_prefix_and_bare_design(self):
        static = parse_policy("static:SEMQ/SR")
        assert isinstance(static, StaticPolicy)
        assert static.design.name == "SEMQ/SR"
        bare = parse_policy("MESQ/SR")
        assert isinstance(bare, StaticPolicy)
        assert bare.design.name == "MESQ/SR"

    def test_policy_object_passes_through(self):
        policy = AdaptivePolicy()
        assert parse_policy(policy) is policy

    def test_unknown_spec_lists_options(self):
        with pytest.raises(ValueError) as exc:
            parse_policy("bogus")
        message = str(exc.value)
        assert "adaptive" in message
        assert "static:<DESIGN>" in message
        assert "MESQ/SR" in message

    def test_non_string_is_a_type_error(self):
        with pytest.raises(TypeError):
            parse_policy(42)

    def test_cli_rejects_bad_policy_before_running(self):
        from repro.bench.cli import main
        with pytest.raises(SystemExit):
            main(["fig8", "--policy", "bogus"])


class TestEagerValidation:
    def test_shuffle_stage_rejects_unknown_design(self):
        cluster = make_cluster(nodes=2)
        groups = TransmissionGroups.repartition(2)
        with pytest.raises(UnknownDesignError) as exc:
            cluster.shuffle_stage("NOPE/XX", groups)
        message = str(exc.value)
        # The error must name every registered design and endpoint kind.
        for design in DESIGNS:
            assert design in message
        assert "registered endpoint kinds" in message
        assert "SR_UD" in message

    def test_stage_plan_rejects_unknown_design_at_construction(self):
        with pytest.raises(UnknownDesignError):
            StagePlan(design="NOPE/XX")

    def test_inter_plans_cannot_nest(self):
        inner = StagePlan(design="SEMQ/SR")
        mid = StagePlan(design="SEMQ/SR", inter=inner)
        with pytest.raises(ValueError, match="nest"):
            StagePlan(design="MESQ/SR", inter=mid)

    def test_shuffle_stage_rejects_hierarchical_plans(self):
        cluster = make_cluster(nodes=2)
        plan = StagePlan(design="MESQ/SR",
                         inter=StagePlan(design="SEMQ/SR"))
        with pytest.raises(ValueError, match="hierarchical"):
            cluster.shuffle_stage(
                plan, TransmissionGroups.repartition(2))


# ---------------------------------------------------------------------------
# determinism (same context + seed -> identical plans and run digests)
# ---------------------------------------------------------------------------


LEAF4X2 = LEAF_SPINE(oversubscription=2, nodes_per_leaf=2)


class TestPlanDeterminism:
    def context_pair(self, **kwargs):
        a = make_cluster(**kwargs)
        b = make_cluster(**kwargs)
        return (StageContext.from_cluster(a, allow_hierarchical=True),
                StageContext.from_cluster(b, allow_hierarchical=True))

    def test_contexts_from_identical_clusters_are_equal(self):
        ctx_a, ctx_b = self.context_pair(nodes=4, threads=2)
        assert ctx_a == ctx_b

    @pytest.mark.parametrize("policy_factory", [
        lambda: StaticPolicy("SEMQ/SR"),
        AdaptivePolicy,
        HierarchicalPolicy,
    ])
    def test_same_context_same_plan(self, policy_factory):
        ctx_a, ctx_b = self.context_pair(nodes=4, threads=2,
                                         topology=LEAF4X2)
        assert policy_factory().plan(ctx_a) == policy_factory().plan(ctx_b)

    def test_same_observations_same_plan(self):
        ctx, _ = self.context_pair(nodes=4, threads=2)
        snap = TelemetrySnapshot(qp_cache_miss_rate=0.5)
        plans = []
        for _ in range(2):
            policy = AdaptivePolicy()
            policy.observe(snap)
            plans.append(policy.plan(ctx))
        assert plans[0] == plans[1]

    @pytest.mark.parametrize("selector", [
        AdaptivePolicy,
        lambda: StaticPolicy("MESQ/SR"),
    ])
    def test_run_digests_are_bit_identical(self, selector):
        def digest():
            cluster = make_cluster(nodes=2, threads=2)
            result = run_repartition(cluster, selector(),
                                     bytes_per_node=1 << 20)
            return dataclasses.asdict(result)
        assert digest() == digest()

    def test_hierarchical_run_digest_is_bit_identical(self):
        def digest():
            cluster = make_cluster(nodes=4, threads=2, topology=LEAF4X2)
            result = run_repartition(cluster, HierarchicalPolicy(),
                                     bytes_per_node=2 << 20)
            return dataclasses.asdict(result)
        assert digest() == digest()


class TestStaticBitIdentity:
    """StaticPolicy (and an override-free StagePlan) must reproduce the
    legacy design-string path bit-for-bit."""

    @pytest.mark.parametrize("design", ["MESQ/SR", "SEMQ/SR"])
    @pytest.mark.parametrize("selector", [
        lambda d: StaticPolicy(d),
        lambda d: StagePlan(design=d),
    ])
    def test_selector_matches_design_string(self, design, selector):
        def run(chooser):
            cluster = make_cluster(nodes=2, threads=2)
            result = run_repartition(cluster, chooser,
                                     bytes_per_node=1 << 20)
            return dataclasses.asdict(result)
        assert run(design) == run(selector(design))

    def test_empty_plan_apply_is_identity(self):
        base = EndpointConfig(message_size=4096)
        assert StagePlan(design="SEMQ/SR").apply(base) is base


# ---------------------------------------------------------------------------
# the adaptive rule table and observed-telemetry overrides
# ---------------------------------------------------------------------------


class TestAdaptiveRules:
    def test_datagram_sized_messages_pick_ud(self):
        plan = AdaptivePolicy().plan(make_context(message_size=4096))
        assert plan.design == "MESQ/SR"
        assert "datagram" in plan.reason

    def test_starved_windows_pick_ud(self):
        # 2 MiB over 8x8 flows is ~32 KiB per flow: a 1 MiB RC message
        # never fills and the window drains as serialized EOS flushes.
        ctx = make_context(message_size=1 << 20, bytes_per_node=2 << 20)
        plan = AdaptivePolicy().plan(ctx)
        assert plan.design == "MESQ/SR"
        assert "never" in plan.reason

    def test_qp_cache_pressure_picks_ud(self):
        # FDR's 144-entry cache: 2*16*8 = 256 QPs >> the 25% budget.
        ctx = make_context(nodes=16, qp_cache_entries=144)
        plan = AdaptivePolicy().plan(ctx)
        assert plan.design == "MESQ/SR"
        assert "cache" in plan.reason

    def test_cache_resident_regime_picks_rc(self):
        # EDR n=8 t=8: 128 QPs < 25% of 1024 entries -> SEMQ/SR.
        plan = AdaptivePolicy().plan(make_context())
        assert plan.design == "SEMQ/SR"

    def test_observed_misses_force_ud(self):
        policy = AdaptivePolicy()
        policy.observe(TelemetrySnapshot(qp_cache_miss_rate=0.5))
        plan = policy.plan(make_context())
        assert plan.design == "MESQ/SR"
        assert "observed" in plan.reason

    def test_observed_stalls_deepen_the_window(self):
        policy = AdaptivePolicy()
        policy.observe(TelemetrySnapshot(credit_stall_share=0.5))
        plan = policy.plan(make_context())
        assert plan.design == "SEMQ/SR"
        assert plan.buffers_per_connection == AdaptivePolicy.deep_buffers

    def test_quiet_telemetry_changes_nothing(self):
        policy = AdaptivePolicy()
        baseline = policy.plan(make_context())
        policy.observe(TelemetrySnapshot(qp_cache_miss_rate=0.01,
                                         credit_stall_share=0.01))
        assert policy.plan(make_context()) == baseline

    def test_oversubscribed_leaf_spine_delegates_to_hierarchical(self):
        ctx = make_context(topology_kind="leaf-spine", oversubscription=4,
                           nodes_per_leaf=4, allow_hierarchical=True)
        plan = AdaptivePolicy().plan(ctx)
        assert plan.hierarchical
        # ...but only where the runner can execute a two-phase plan.
        flat = AdaptivePolicy().plan(
            dataclasses.replace(ctx, allow_hierarchical=False))
        assert not flat.hierarchical


class TestHierarchicalPolicy:
    def test_flat_fallback_off_leaf_spine(self):
        plan = HierarchicalPolicy().plan(
            make_context(allow_hierarchical=True))
        assert not plan.hierarchical
        assert plan.design == "MESQ/SR"
        assert "fallback" in plan.reason

    def test_flat_fallback_for_broadcast(self):
        ctx = make_context(topology_kind="leaf-spine", oversubscription=4,
                           nodes_per_leaf=4, allow_hierarchical=True,
                           pattern="broadcast")
        assert not HierarchicalPolicy().plan(ctx).hierarchical

    def test_two_phase_plan_shape(self):
        ctx = make_context(topology_kind="leaf-spine", oversubscription=4,
                           nodes_per_leaf=4, allow_hierarchical=True)
        plan = HierarchicalPolicy().plan(ctx)
        assert plan.design == "MESQ/SR"
        assert plan.inter is not None
        assert plan.inter.design == "SEMQ/SR"
        assert plan.inter.buffers_per_connection == 16
        # Inter-leaf streams run at the Fig 9 sweet spot or above.
        assert plan.inter.message_size >= 64 * 1024
        # 4 nodes/leaf at 4:1 -> the floor of two concurrent streams.
        assert plan.inter_concurrency == 2
        assert "hier" in plan.describe()

    def test_concurrency_matches_trunk_rate(self):
        ctx = make_context(nodes=16, topology_kind="leaf-spine",
                           oversubscription=2, nodes_per_leaf=8,
                           allow_hierarchical=True)
        assert HierarchicalPolicy().plan(ctx).inter_concurrency == 4


# ---------------------------------------------------------------------------
# quota clamp & footprint conformance (the logic deduped out of
# service/scheduler.py and service/quota.py)
# ---------------------------------------------------------------------------


class TestQuotaClamp:
    def natural_footprint(self, threads=2):
        return plan_footprint("MEMQ/SR", 3, threads)

    def test_uncapped_context_never_clamps(self):
        plan = StaticPolicy("MEMQ/SR").plan(make_context(nodes=3, threads=2))
        assert not plan.clamped
        assert plan.runnable
        assert plan.num_endpoints is None

    def test_tight_cap_walks_endpoints_down(self):
        single_qps, _ = plan_footprint("MEMQ/SR", 3, 2, num_endpoints=1)
        natural_qps, _ = self.natural_footprint()
        assert single_qps < natural_qps
        ctx = make_context(nodes=3, threads=2, max_qps=single_qps)
        plan = StaticPolicy("MEMQ/SR").plan(ctx)
        assert plan.clamped
        assert plan.runnable
        assert plan.num_endpoints == 1
        assert "clamped" in plan.reason

    def test_impossible_cap_marks_unrunnable(self):
        single_qps, _ = plan_footprint("MEMQ/SR", 3, 2, num_endpoints=1)
        ctx = make_context(nodes=3, threads=2, max_qps=single_qps - 1)
        plan = StaticPolicy("MEMQ/SR").plan(ctx)
        assert not plan.runnable
        assert "unrunnable" in plan.reason

    def test_plan_footprint_covers_stage_with_overrides(self):
        # The conformance guarantee must survive a plan's parameter
        # overrides (the adaptive deep-window path), not just defaults.
        nodes, threads = 3, 2
        cluster = make_cluster(nodes=nodes, threads=threads)
        quotas = QuotaManager()
        cluster.enable_quotas(quotas)
        plan = StagePlan(design="SEMQ/SR", buffers_per_connection=16)
        config = dataclasses.replace(plan.apply(EndpointConfig()),
                                     tenant="t")
        stage = cluster.shuffle_stage(
            plan, TransmissionGroups.repartition(nodes), config=config)
        cluster.run_process(stage.setup(), name="setup")
        qps, registered = plan_footprint(
            plan.design, nodes, threads, config=plan.apply(EndpointConfig()))
        usage = quotas.usage("t")
        assert usage.peak_qps <= qps
        assert usage.peak_registered_bytes <= registered
        stage.dispose()


# ---------------------------------------------------------------------------
# the two-phase (hierarchical) runner
# ---------------------------------------------------------------------------


class TestHierarchicalRunner:
    def test_every_byte_lands(self):
        cluster = make_cluster(nodes=4, threads=2, topology=LEAF4X2)
        volume = 2 << 20
        result = run_repartition(cluster, HierarchicalPolicy(),
                                 bytes_per_node=volume)
        assert "hier" in result.design
        assert result.elapsed_ns > 0
        # Per-thread volumes floor up to the template batch, so received
        # bytes can only exceed the nominal total.
        assert result.total_received_bytes >= 4 * volume
        assert result.total_received_rows > 0
        # Both stages' resources are accounted.
        assert result.qps_per_node > 0
        assert result.registered_bytes_per_node > 0

    def test_flat_plan_is_rejected(self):
        cluster = make_cluster(nodes=4, threads=2, topology=LEAF4X2)
        with pytest.raises(ValueError, match="inter-leaf"):
            run_hierarchical(cluster, StagePlan(design="MESQ/SR"))

    def test_single_leaf_falls_back_to_flat(self):
        # All four nodes share one leaf: no trunk, so a hierarchical
        # plan degrades to the intra design run flat.
        cluster = make_cluster(
            nodes=4, threads=2,
            topology=LEAF_SPINE(oversubscription=2, nodes_per_leaf=4))
        plan = StagePlan(design="MESQ/SR",
                         inter=StagePlan(design="SEMQ/SR"),
                         inter_concurrency=2)
        result = run_hierarchical(cluster, plan, bytes_per_node=1 << 20)
        assert result.design == "MESQ/SR"
        assert result.total_received_bytes >= 4 * (1 << 20)

    def test_broadcast_never_goes_hierarchical(self):
        cluster = make_cluster(nodes=4, threads=2, topology=LEAF4X2)
        result = run_broadcast(cluster, HierarchicalPolicy(),
                               bytes_per_node=1 << 20)
        assert result.design == "MESQ/SR"
        assert result.pattern == "broadcast"


# ---------------------------------------------------------------------------
# service integration: observe() -> mid-run re-plan
# ---------------------------------------------------------------------------


class TestServiceAdaptiveSwitch:
    def test_adaptive_tenant_switches_under_neighbour_thrash(self):
        """An adaptive tenant starts in the RC regime (its own working
        set fits the 64-entry cache), an MEMQ/SR aggressor drives the
        shared cache's measured miss rate over the threshold, and the
        victim's later jobs switch to the UD design — recorded per job
        in ``job.meta['design']``."""
        cluster = make_cluster(nodes=4, threads=1, qp_cache_entries=64)
        tenants = [
            TenantSpec("adapt", policy=AdaptivePolicy(),
                       bytes_per_job=256 << 10,
                       mean_interarrival_ns=1_000_000, jobs=4),
            TenantSpec("mq", design="MEMQ/SR", bytes_per_job=512 << 10,
                       mean_interarrival_ns=500_000, jobs=4),
        ]
        service = ShuffleService(cluster, tenants,
                                 config=ServiceConfig(max_concurrent=2))
        report = service.run()
        assert report["failed"] == []
        jobs = [j for j in service.completed if j.tenant.name == "adapt"]
        assert len(jobs) == 4
        designs = [j.meta["design"] for j in jobs]
        # Plan-time rules picked RC (2*4*1 = 8 QPs < 16-entry budget)...
        assert designs[0] == "SEMQ/SR"
        # ...and the observed shared-cache miss rate forced the switch.
        assert designs[-1] == "MESQ/SR"
        assert all(j.meta["policy"] == "adaptive" for j in jobs)

    def test_static_tenants_record_their_fixed_design(self):
        cluster = make_cluster(nodes=2, threads=2)
        tenants = [TenantSpec("t", design="SEMQ/SR",
                              bytes_per_job=256 << 10, jobs=2)]
        service = ShuffleService(cluster, tenants)
        service.run()
        assert [j.meta["design"] for j in service.completed] == \
            ["SEMQ/SR", "SEMQ/SR"]
        assert service.completed[0].meta["policy"] == "static:SEMQ/SR"


class TestPolicyProtocol:
    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ShufflePolicy().plan(make_context())

    def test_describe_round_trips(self):
        assert StaticPolicy("SEMQ/SR").describe() == "static:SEMQ/SR"
        assert AdaptivePolicy().describe() == "adaptive"
        assert HierarchicalPolicy().describe() == \
            "hierarchical:MESQ/SR+SEMQ/SR"
