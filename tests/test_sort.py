"""Tests for the TopN operator."""

import numpy as np
import pytest

from repro import Cluster, ClusterConfig, EDR
from repro.engine import CollectSink, QueryFragment, ScanOperator, run_fragments
from repro.engine.sort import TopNOperator

DTYPE = np.dtype([("k", np.int64), ("score", np.float64)])


@pytest.fixture
def cluster():
    return Cluster(ClusterConfig(network=EDR, num_nodes=1,
                                 threads_per_node=2))


def run_topn(cluster, table, limit, descending=True, threads=2):
    node = cluster.nodes[0]
    scan = ScanOperator(node, table, threads, batch_rows=64)
    top = TopNOperator(node, scan, "score", limit, threads,
                       descending=descending)
    sink = CollectSink()
    frag = QueryFragment(node, top, threads, sink=sink)
    cluster.run_process(run_fragments(cluster.sim, [frag]))
    return sink.result()


def make_table(rows, seed=0):
    rng = np.random.default_rng(seed)
    t = np.empty(rows, dtype=DTYPE)
    t["k"] = np.arange(rows)
    t["score"] = rng.permutation(rows).astype(np.float64)
    return t


class TestTopN:
    def test_returns_highest_scores_in_order(self, cluster):
        table = make_table(500)
        out = run_topn(cluster, table, limit=10)
        expected = np.sort(table["score"])[::-1][:10]
        np.testing.assert_array_equal(out["score"], expected)

    def test_ascending_order(self, cluster):
        table = make_table(200, seed=1)
        out = run_topn(cluster, table, limit=5, descending=False)
        expected = np.sort(table["score"])[:5]
        np.testing.assert_array_equal(out["score"], expected)

    def test_limit_larger_than_input(self, cluster):
        table = make_table(7)
        out = run_topn(cluster, table, limit=100)
        assert len(out) == 7
        assert list(out["score"]) == sorted(table["score"], reverse=True)

    def test_empty_input(self, cluster):
        out = run_topn(cluster, make_table(0), limit=3)
        assert out is None

    def test_rows_keep_all_columns(self, cluster):
        table = make_table(100, seed=3)
        out = run_topn(cluster, table, limit=1)
        best = table[np.argmax(table["score"])]
        assert out[0]["k"] == best["k"]

    def test_bad_limit_rejected(self, cluster):
        with pytest.raises(ValueError):
            TopNOperator(cluster.nodes[0], None, "score", 0, 2)
