"""Properties of the packet-train / per-packet-oracle equivalence.

The contract (see :mod:`repro.sim.trains`): how a message's wire bytes
are split into train boundaries is *unobservable* — delivery times,
pipe occupancy, per-port byte counts and drop decisions depend only on
the total, never on ``n_packets``.  These properties drive the pipe and
the fabric with arbitrary sizes and boundary counts to pin that down,
including the boundary cases called out in the design: one-packet
trains, trains interleaved with other traffic, and multicast trains
split between trunk and legs mid-path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import (
    DUAL_RAIL,
    EDR,
    LEAF_SPINE,
    SINGLE_SWITCH,
    ClusterConfig,
    Fabric,
)
from repro.fabric.packet import PacketTrain, make_train
from repro.sim import RatePipe, Simulator

TOPOLOGIES = [SINGLE_SWITCH, LEAF_SPINE(oversubscription=2), DUAL_RAIL]
TOPOLOGY_IDS = ["single-switch", "leaf-spine", "dual-rail"]


# -- pipe-level equivalence --------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 20),
                          st.integers(min_value=1, max_value=300),
                          st.integers(min_value=0, max_value=5000)),
                min_size=1, max_size=20),
       st.sampled_from([0.5, 1.0, 6.2, 12.4]))
@settings(deadline=None)
def test_oracle_pipe_completions_match_single_event(jobs, rate):
    """For any submission sequence, charging each train in one event and
    ticking it at every packet boundary complete at identical times,
    with identical occupancy counters."""
    sim_a, sim_b = Simulator(), Simulator()
    pipe_a = RatePipe(sim_a, rate)
    pipe_b = RatePipe(sim_b, rate)
    pipe_a.split_packets = False
    pipe_b.split_packets = True
    done_a, done_b = [], []
    for units, n_packets, extra in jobs:
        pipe_a.submit_train(units, n_packets,
                            lambda: done_a.append(sim_a.now), extra_ns=extra)
        pipe_b.submit_train(units, n_packets,
                            lambda: done_b.append(sim_b.now), extra_ns=extra)
    sim_a.run()
    sim_b.run()
    assert done_a == done_b
    assert sim_a.now == sim_b.now
    assert pipe_a.busy_until == pipe_b.busy_until
    assert pipe_a.busy_ns == pipe_b.busy_ns
    assert pipe_a.total_units == pipe_b.total_units


@given(st.integers(min_value=0, max_value=1 << 20),
       st.integers(min_value=2, max_value=300))
@settings(deadline=None)
def test_oracle_packet_boundaries_are_monotone_and_end_at_busy_until(
        units, n_packets):
    """The oracle's intermediate ticks are monotone non-decreasing and
    the final completion lands exactly at the pipe's ``busy_until``."""
    sim = Simulator()
    pipe = RatePipe(sim, 6.2)
    pipe.split_packets = True
    times = []
    # Intermediate no-op ticks are invisible; recover the boundaries by
    # reading the closed-form the oracle uses.
    ser = pipe._serialization_ns(units)
    boundaries = [(ser * i) // n_packets for i in range(1, n_packets)]
    pipe.submit_train(units, n_packets, lambda: times.append(sim.now))
    sim.run()
    assert boundaries == sorted(boundaries)
    assert all(0 <= b <= ser for b in boundaries)
    assert times == [pipe.busy_until]
    assert sim.now == pipe.busy_until


def test_one_packet_train_is_exactly_submit():
    """Boundary case: n == 1 schedules precisely one completion, even in
    oracle mode — a single-MTU message has no internal boundaries."""
    sim = Simulator()
    pipe = RatePipe(sim, 12.4)
    pipe.split_packets = True
    fired = []
    pipe.submit_train(4096, 1, lambda: fired.append(sim.now))
    sim.run()
    reference = Simulator()
    ref_pipe = RatePipe(reference, 12.4)
    ref_fired = []
    ref_pipe.submit(4096, lambda: ref_fired.append(reference.now))
    reference.run()
    assert fired == ref_fired
    assert sim.now == reference.now


# -- fabric-level equivalence ------------------------------------------------

def _route_train(topology, wire_bytes, n_packets, oracle, pairs):
    """Route one train per (src, dst) pair; returns (arrival times,
    per-port byte counts, NIC pipe byte counts)."""
    sim = Simulator()
    config = ClusterConfig(network=EDR, num_nodes=8, topology=topology)
    fabric = Fabric(sim, config)
    if oracle:
        fabric.use_packet_oracle()
    arrivals = []

    def wait(done):
        pkt = yield done
        arrivals.append((sim.now, pkt.dst_node))

    for src, dst in pairs:
        pkt = PacketTrain(src, dst, 11, 22, "SEND", 0, wire_bytes,
                          n_packets=n_packets)
        sim.process(wait(fabric.route(pkt)))
    sim.run()
    ports = {p.name: p.pipe.total_units for p in fabric.topology.ports()}
    nics = [(n.nic.egress.total_units, n.nic.ingress.total_units)
            for n in fabric.nodes]
    return arrivals, ports, nics


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=TOPOLOGY_IDS)
@given(wire_bytes=st.integers(min_value=1, max_value=1 << 20),
       n_packets=st.integers(min_value=1, max_value=256))
@settings(deadline=None, max_examples=20)
def test_train_boundaries_unobservable_end_to_end(topology, wire_bytes,
                                                  n_packets):
    """Splitting a message into arbitrary train boundaries changes
    neither delivery times nor per-port byte counts, on any preset —
    incast pairs included so trains queue behind each other."""
    pairs = [(0, 6), (1, 6), (5, 2), (6, 6)]  # cross-leaf, incast, loopback
    train = _route_train(topology, wire_bytes, 1, False, pairs)
    oracle = _route_train(topology, wire_bytes, n_packets, True, pairs)
    assert train == oracle


# -- multicast: trunk/leg split mid-train ------------------------------------

def _mcast_trains(topology, oracle):
    """Blast multicast trains with jitter and loss; returns every
    per-leg outcome in completion order (mirrors the fastpath A/B)."""
    sim = Simulator()
    config = ClusterConfig(network=EDR, num_nodes=8,
                           topology=topology).with_network(
        ud_jitter_ns=2600, ud_loss_probability=0.25)
    fabric = Fabric(sim, config)
    if oracle:
        fabric.use_packet_oracle()
    mgid = 7
    for node in range(1, 8):
        fabric.mcast_attach(mgid, node, 200 + node)
    outcomes = []

    def wait_leg(leg):
        copy = yield leg
        outcomes.append((sim.now, copy.dst_node, copy.dropped,
                         copy.n_packets))

    def collect(fanned_out):
        legs = yield fanned_out
        for leg in legs:
            sim.process(wait_leg(leg))

    for seq in range(16):
        pkt = PacketTrain(0, 0, 11, 0, "SEND", 12288, 12378,
                          meta={"seq": seq}, n_packets=3)
        sim.process(collect(fabric.route_mcast(pkt, mgid)))
    sim.run()
    return (tuple(outcomes), sim.now,
            fabric.delivered_messages, fabric.delivered_packets,
            fabric.dropped_messages)


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=TOPOLOGY_IDS)
def test_mcast_trunk_leg_split_mid_train(topology):
    """A replicated train is split between shared trunk and per-member
    legs; each leg must carry the full train shape, and the oracle must
    agree on arrival times, drop draws and packet accounting."""
    train = _mcast_trains(topology, False)
    oracle = _mcast_trains(topology, True)
    assert train == oracle
    outcomes, _now, delivered, packets, dropped = train
    assert delivered + dropped == len(outcomes) == 16 * 7
    assert all(n == 3 for (_t, _d, _drop, n) in outcomes), \
        "legs must preserve the train shape"
    assert packets == 3 * delivered
    assert dropped > 0 and delivered > 0


def test_make_train_segments_rc_by_mtu():
    net = EDR
    t = make_train(net, src_node=0, dst_node=1, src_qpn=1, dst_qpn=2,
                   kind="SEND", length=1 << 20, transport="RC")
    assert t.n_packets == (1 << 20) // net.mtu
    assert t.wire_bytes == net.wire_bytes(1 << 20, "RC")
    small = make_train(net, src_node=0, dst_node=1, src_qpn=1, dst_qpn=2,
                       kind="SEND", length=0, transport="RC")
    assert small.n_packets == 1
    ud = make_train(net, src_node=0, dst_node=1, src_qpn=1, dst_qpn=2,
                    kind="SEND", length=4096, transport="UD")
    assert ud.n_packets == 1
    ack = make_train(net, src_node=0, dst_node=1, src_qpn=1, dst_qpn=2,
                     kind="ACK", length=0, wire_bytes=net.rc_ack_bytes)
    assert ack.n_packets == 1
    with pytest.raises(ValueError):
        make_train(net, src_node=0, dst_node=1, src_qpn=1, dst_qpn=2,
                   kind="SEND", length=64)
    with pytest.raises(ValueError):
        PacketTrain(0, 1, 1, 2, "SEND", 0, 30, n_packets=0)
