"""Unit tests for the query-engine operators."""

import numpy as np
import pytest

from repro import Cluster, ClusterConfig, EDR
from repro.engine import (
    CollectSink,
    ComputeOperator,
    FilterOperator,
    HashAggregateOperator,
    HashJoinOperator,
    OpState,
    ProjectOperator,
    QueryFragment,
    ScanOperator,
    run_fragments,
)
from repro.engine.fragment import CountSink
from repro.engine.map import MapOperator
from repro.engine.operator import batch_nbytes, batch_rows, concat_batches
from repro.engine.scan import RepeatedSourceOperator

DTYPE = np.dtype([("k", np.int64), ("v", np.int64)])


@pytest.fixture
def cluster():
    return Cluster(ClusterConfig(network=EDR, num_nodes=1,
                                 threads_per_node=2))


def make_table(rows, seed=0):
    rng = np.random.default_rng(seed)
    t = np.empty(rows, dtype=DTYPE)
    t["k"] = rng.integers(0, 50, rows)
    t["v"] = np.arange(rows)
    return t


def drain(cluster, op, threads=2):
    """Run an operator tree to completion, returning collected rows."""
    sink = CollectSink()
    frag = QueryFragment(cluster.nodes[0], op, threads, sink=sink)
    cluster.run_process(run_fragments(cluster.sim, [frag]))
    return sink.result()


class TestBatchHelpers:
    def test_batch_rows_and_nbytes(self):
        t = make_table(10)
        assert batch_rows(t) == 10
        assert batch_nbytes(t) == 160
        assert batch_rows(None) == 0
        assert batch_nbytes(None) == 0

    def test_concat(self):
        t = make_table(4)
        assert concat_batches([]) is None
        assert concat_batches([t]) is t
        assert len(concat_batches([t, t])) == 8


class TestScan:
    def test_scan_returns_all_rows_across_threads(self, cluster):
        table = make_table(1000)
        out = drain(cluster, ScanOperator(cluster.nodes[0], table, 2,
                                          batch_rows=64))
        assert len(out) == 1000
        np.testing.assert_array_equal(np.sort(out["v"]), np.arange(1000))

    def test_scan_threads_get_disjoint_ranges(self, cluster):
        table = make_table(100)
        scan = ScanOperator(cluster.nodes[0], table, 2, batch_rows=1000)

        def collect(tid):
            state, batch = yield from scan.next(tid)
            return batch

        b0 = cluster.run_process(collect(0))
        b1 = cluster.run_process(collect(1))
        assert len(b0) + len(b1) == 100
        assert not set(b0["v"]) & set(b1["v"])

    def test_empty_table(self, cluster):
        out = drain(cluster, ScanOperator(cluster.nodes[0],
                                          make_table(0), 2))
        assert out is None

    def test_bad_batch_rows(self, cluster):
        with pytest.raises(ValueError):
            ScanOperator(cluster.nodes[0], make_table(1), 2, batch_rows=0)

    def test_scan_charges_time(self, cluster):
        table = make_table(100_000)
        drain(cluster, ScanOperator(cluster.nodes[0], table, 2))
        assert cluster.sim.now > 0

    def test_repeated_source_respects_byte_budget(self, cluster):
        template = make_table(64)  # 1 KiB
        src = RepeatedSourceOperator(cluster.nodes[0], template, 2,
                                     total_bytes_per_thread=4096)
        out = drain(cluster, src)
        assert out.nbytes == 2 * 4096

    def test_repeated_source_truncates_final_batch(self, cluster):
        template = make_table(64)  # 1024 B
        src = RepeatedSourceOperator(cluster.nodes[0], template, 2,
                                     total_bytes_per_thread=1536)
        out = drain(cluster, src)
        assert out.nbytes == 2 * 1536


class TestFilterProjectMap:
    def test_filter_keeps_matching_rows(self, cluster):
        table = make_table(500)
        op = FilterOperator(cluster.nodes[0],
                            ScanOperator(cluster.nodes[0], table, 2),
                            lambda b: b["k"] < 10)
        out = drain(cluster, op)
        expected = np.sort(table[table["k"] < 10]["v"])
        np.testing.assert_array_equal(np.sort(out["v"]), expected)

    def test_filter_rejecting_everything(self, cluster):
        table = make_table(100)
        op = FilterOperator(cluster.nodes[0],
                            ScanOperator(cluster.nodes[0], table, 2),
                            lambda b: b["k"] < 0)
        assert drain(cluster, op) is None

    def test_project_keeps_columns(self, cluster):
        table = make_table(50)
        op = ProjectOperator(cluster.nodes[0],
                             ScanOperator(cluster.nodes[0], table, 2), ["v"])
        out = drain(cluster, op)
        assert out.dtype.names == ("v",)
        assert out.dtype.itemsize == 8  # repacked, no padding

    def test_project_requires_columns(self, cluster):
        with pytest.raises(ValueError):
            ProjectOperator(cluster.nodes[0],
                            ScanOperator(cluster.nodes[0], make_table(1), 2),
                            [])

    def test_map_adds_derived_column(self, cluster):
        from numpy.lib import recfunctions as rfn
        table = make_table(50)

        def double(batch):
            return rfn.append_fields(batch, "d", batch["v"] * 2,
                                     usemask=False)

        op = MapOperator(cluster.nodes[0],
                         ScanOperator(cluster.nodes[0], table, 2), double)
        out = drain(cluster, op)
        np.testing.assert_array_equal(out["d"], out["v"] * 2)

    def test_compute_burns_time_per_batch(self, cluster):
        table = make_table(1000)
        scan = ScanOperator(cluster.nodes[0], table, 2, batch_rows=100)
        op = ComputeOperator(cluster.nodes[0], scan, ns_per_batch=10_000)
        drain(cluster, op)
        assert op.batches == 10
        assert cluster.sim.now >= 5 * 10_000  # 5 batches per thread

    def test_compute_rejects_negative_cost(self, cluster):
        with pytest.raises(ValueError):
            ComputeOperator(cluster.nodes[0], None, ns_per_batch=-1)


class TestHashJoin:
    def make_sides(self, cluster, build_rows, probe_rows):
        build_dtype = np.dtype([("bk", np.int64), ("bv", np.int64)])
        probe_dtype = np.dtype([("pk", np.int64), ("pv", np.int64)])
        build = np.empty(build_rows, dtype=build_dtype)
        build["bk"] = np.arange(build_rows)
        build["bv"] = np.arange(build_rows) * 10
        probe = np.empty(probe_rows, dtype=probe_dtype)
        probe["pk"] = np.arange(probe_rows) % max(1, build_rows * 2)
        probe["pv"] = np.arange(probe_rows)
        node = cluster.nodes[0]
        return (build, probe,
                ScanOperator(node, build, 2), ScanOperator(node, probe, 2))

    def test_inner_join_matches(self, cluster):
        build, probe, bscan, pscan = self.make_sides(cluster, 20, 200)
        join = HashJoinOperator(cluster.nodes[0], bscan, pscan,
                                build_key="bk", probe_key="pk",
                                num_threads=2)
        out = drain(cluster, join)
        expected = np.sum(np.isin(probe["pk"], build["bk"]))
        assert len(out) == expected
        np.testing.assert_array_equal(out["bv"], out["pk"] * 10)

    def test_semi_join_keeps_probe_rows_once(self, cluster):
        build, probe, bscan, pscan = self.make_sides(cluster, 20, 200)
        join = HashJoinOperator(cluster.nodes[0], bscan, pscan,
                                build_key="bk", probe_key="pk",
                                num_threads=2, semi=True)
        out = drain(cluster, join)
        expected = np.sum(np.isin(probe["pk"], build["bk"]))
        assert len(out) == expected
        assert out.dtype.names == ("pk", "pv")  # no build columns

    def test_duplicate_build_keys_multiply(self, cluster):
        build_dtype = np.dtype([("bk", np.int64)])
        build = np.zeros(3, dtype=build_dtype)  # key 0 three times
        probe_dtype = np.dtype([("pk", np.int64)])
        probe = np.zeros(2, dtype=probe_dtype)
        node = cluster.nodes[0]
        join = HashJoinOperator(node, ScanOperator(node, build, 2),
                                ScanOperator(node, probe, 2),
                                build_key="bk", probe_key="pk",
                                num_threads=2)
        out = drain(cluster, join)
        assert len(out) == 6

    def test_empty_build_side(self, cluster):
        build, probe, bscan, pscan = self.make_sides(cluster, 0, 50)
        join = HashJoinOperator(cluster.nodes[0], bscan, pscan,
                                build_key="bk", probe_key="pk",
                                num_threads=2)
        assert drain(cluster, join) is None


class TestHashAggregate:
    def test_count_and_sum(self, cluster):
        table = make_table(1000, seed=2)
        agg = HashAggregateOperator(
            cluster.nodes[0], ScanOperator(cluster.nodes[0], table, 2),
            ["k"], [("count", None, "cnt"), ("sum", "v", "total")], 2)
        out = drain(cluster, agg)
        assert out is not None
        for row in out:
            mask = table["k"] == row["k"]
            assert row["cnt"] == mask.sum()
            assert row["total"] == table["v"][mask].sum()

    def test_groups_complete(self, cluster):
        table = make_table(500, seed=3)
        agg = HashAggregateOperator(
            cluster.nodes[0], ScanOperator(cluster.nodes[0], table, 2),
            ["k"], [("count", None, "cnt")], 2)
        out = drain(cluster, agg)
        assert set(out["k"]) == set(table["k"])
        assert out["cnt"].sum() == len(table)

    def test_empty_input(self, cluster):
        agg = HashAggregateOperator(
            cluster.nodes[0], ScanOperator(cluster.nodes[0], make_table(0), 2),
            ["k"], [("count", None, "cnt")], 2)
        assert drain(cluster, agg) is None

    def test_unsupported_aggregate_rejected(self, cluster):
        with pytest.raises(ValueError):
            HashAggregateOperator(cluster.nodes[0], None, ["k"],
                                  [("avg", "v", "a")], 2)


class TestFragment:
    def test_count_sink(self, cluster):
        table = make_table(256)
        sink = CountSink()
        frag = QueryFragment(cluster.nodes[0],
                             ScanOperator(cluster.nodes[0], table, 2), 2,
                             sink=sink)
        cluster.run_process(run_fragments(cluster.sim, [frag]))
        assert sink.result() == (256, 256 * 16)

    def test_elapsed_requires_completion(self, cluster):
        frag = QueryFragment(cluster.nodes[0],
                             ScanOperator(cluster.nodes[0], make_table(1), 2),
                             2)
        with pytest.raises(RuntimeError):
            _ = frag.elapsed_ns

    def test_fragments_run_concurrently(self, cluster):
        table = make_table(100_000)
        node = cluster.nodes[0]
        f1 = QueryFragment(node, ScanOperator(node, table, 2), 2)
        f2 = QueryFragment(node, ScanOperator(node, table, 2), 2)
        total = cluster.run_process(run_fragments(cluster.sim, [f1, f2]))
        # Concurrent, not sequential: total well under the sum.
        assert total < f1.elapsed_ns + f2.elapsed_ns
