"""Tests for native InfiniBand multicast (§7 future work #3)."""

import numpy as np
import pytest

from repro import Cluster, ClusterConfig, EDR, TransmissionGroups
from repro.core import DESIGNS
from repro.verbs import QPType, RecvWR, SendWR, VerbsError
from repro.verbs.constants import Opcode, mcast_ah

from tests.test_shuffle_integration import (
    received_multiset,
    run_shuffle_query,
)


class TestVerbsMulticast:
    def make_ud(self, cluster, node):
        ctx = cluster.contexts[node]
        cq = ctx.create_cq()
        qp = ctx.create_qp(QPType.UD, cq, cq)
        qp.activate()
        return ctx, qp, cq

    def test_one_send_reaches_all_members(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4,
                                        threads_per_node=1))
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4,
                                        threads_per_node=1).with_network(
                                            ud_jitter_ns=0))
        sender_ctx, sender_qp, sender_cq = self.make_ud(cluster, 0)
        receivers = [self.make_ud(cluster, i) for i in (1, 2, 3)]
        mgid = 99
        for ctx, qp, _cq in receivers:
            ctx.mcast_attach(mgid, qp)
            qp.post_recv(RecvWR(wr_id="r", buffer=None, length=4096))
        sender_qp.post_send(SendWR(wr_id="s", opcode=Opcode.SEND,
                                   length=1000, dest=mcast_ah(mgid)))
        cluster.run()
        for _ctx, _qp, cq in receivers:
            wcs = cq.poll()
            assert len(wcs) == 1 and wcs[0].src_node == 0

    def test_sender_egress_charged_once(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4,
                                        threads_per_node=1).with_network(
                                            ud_jitter_ns=0))
        sender_ctx, sender_qp, _cq = self.make_ud(cluster, 0)
        receivers = [self.make_ud(cluster, i) for i in (1, 2, 3)]
        mgid = 7
        for ctx, qp, _c in receivers:
            ctx.mcast_attach(mgid, qp)
            qp.post_recv(RecvWR(wr_id="r", buffer=None, length=4096))
        sender_qp.post_send(SendWR(wr_id="s", opcode=Opcode.SEND,
                                   length=4000, dest=mcast_ah(mgid)))
        cluster.run()
        wire = EDR.wire_bytes(4000, "UD")
        assert cluster.nodes[0].nic.egress.total_units == wire
        for i in (1, 2, 3):
            assert cluster.nodes[i].nic.ingress.total_units == wire

    def test_attached_sender_does_not_hear_itself(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=1).with_network(
                                            ud_jitter_ns=0))
        ctx0, qp0, cq0 = self.make_ud(cluster, 0)
        ctx1, qp1, cq1 = self.make_ud(cluster, 1)
        mgid = 5
        ctx0.mcast_attach(mgid, qp0)
        ctx1.mcast_attach(mgid, qp1)
        qp0.post_recv(RecvWR(wr_id="r0", buffer=None, length=4096))
        qp1.post_recv(RecvWR(wr_id="r1", buffer=None, length=4096))
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=64,
                             dest=mcast_ah(mgid)))
        cluster.run()
        assert len(cq1.poll()) == 1
        # Sender got only its own send completion, no self-delivery.
        wcs = cq0.poll()
        assert all(wc.opcode is Opcode.SEND for wc in wcs)

    def test_rc_qp_cannot_join(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=1,
                                        threads_per_node=1))
        ctx = cluster.contexts[0]
        cq = ctx.create_cq()
        rc = ctx.create_qp(QPType.RC, cq, cq)
        with pytest.raises(VerbsError, match="UD"):
            ctx.mcast_attach(1, rc)


class TestMcastDesign:
    def test_registered(self):
        assert "MESQ/SR+MC" in DESIGNS
        assert DESIGNS["MESQ/SR+MC"].uses_ud

    def test_broadcast_delivery_identical_to_base(self):
        nodes = 3
        groups = TransmissionGroups.broadcast(nodes)
        sent, sinks, _e, _st, _cl = run_shuffle_query(
            "MESQ/SR+MC", nodes=nodes, rows_per_node=1500, groups=groups)
        all_vals = np.concatenate([t["val"] for t in sent])
        expected = np.sort(np.tile(all_vals, nodes))
        np.testing.assert_array_equal(received_multiset(sinks), expected)

    def test_repartition_uses_unicast_path(self):
        # Singleton groups never hit the multicast branch but must still
        # be correct end to end.
        sent, sinks, _e, _st, _cl = run_shuffle_query("MESQ/SR+MC")
        expected = np.sort(np.concatenate([t["val"] for t in sent]))
        np.testing.assert_array_equal(received_multiset(sinks), expected)

    def test_broadcast_cuts_sender_egress(self):
        nodes = 4
        groups = TransmissionGroups.broadcast(nodes)

        def egress(design):
            _s, _k, _e, _st, cluster = run_shuffle_query(
                design, nodes=nodes, rows_per_node=4000, groups=groups)
            return sum(n.nic.egress.total_units for n in cluster.nodes)

        base = egress("MESQ/SR")
        mc = egress("MESQ/SR+MC")
        # 4 unicast copies (3 remote + 1 self loopback) collapse into one
        # multicast send plus the explicit self copy: ~2/4 of the bytes.
        assert mc < 0.65 * base
