"""Unit tests for the verbs layer (QPs, CQs, MRs, transports)."""

import pytest

from repro.fabric import EDR, ClusterConfig, Fabric
from repro.memory import BufferPool
from repro.sim import Simulator
from repro.verbs import (
    AddressHandle,
    CompletionQueue,
    Opcode,
    QPType,
    RecvWR,
    SendWR,
    VerbsContext,
    VerbsError,
    WorkCompletion,
)


@pytest.fixture
def sim():
    return Simulator()


def make_cluster(sim, nodes=2, **net_overrides):
    cluster = ClusterConfig(network=EDR, num_nodes=nodes)
    cluster = cluster.with_network(ud_jitter_ns=0, **net_overrides)
    fabric = Fabric(sim, cluster)
    return fabric, [VerbsContext(sim, fabric, i) for i in range(nodes)]


def rc_pair(ctxs, a=0, b=1):
    """Create and connect an RC QP pair between two contexts."""
    cqs = []
    qps = []
    for ctx in (ctxs[a], ctxs[b]):
        cq = ctx.create_cq()
        qp = ctx.create_qp(QPType.RC, cq, cq)
        cqs.append(cq)
        qps.append(qp)
    qps[0].connect(AddressHandle(ctxs[b].node_id, qps[1].qpn))
    qps[1].connect(AddressHandle(ctxs[a].node_id, qps[0].qpn))
    return qps, cqs


class TestMemoryRegion:
    def test_register_and_account(self, sim):
        _, ctxs = make_cluster(sim)
        mr = ctxs[0].reg_mr(8192)
        assert ctxs[0].registered_bytes == 8192
        ctxs[0].dereg_mr(mr)
        assert ctxs[0].registered_bytes == 0
        assert ctxs[0].peak_registered_bytes == 8192

    def test_word_roundtrip(self, sim):
        _, ctxs = make_cluster(sim)
        mr = ctxs[0].reg_mr(64)
        mr.write_u64(mr.addr + 8, 12345)
        assert mr.read_u64(mr.addr + 8) == 12345
        assert mr.read_u64(mr.addr) == 0  # untouched words read zero

    def test_out_of_bounds_access_rejected(self, sim):
        _, ctxs = make_cluster(sim)
        mr = ctxs[0].reg_mr(64)
        with pytest.raises(VerbsError):
            mr.read_u64(mr.addr + 60)  # 8-byte read crossing the end
        with pytest.raises(VerbsError):
            mr.write_u64(mr.addr - 8, 1)

    def test_deregistered_access_rejected(self, sim):
        _, ctxs = make_cluster(sim)
        mr = ctxs[0].reg_mr(64)
        ctxs[0].dereg_mr(mr)
        with pytest.raises(VerbsError):
            mr.write_u64(mr.addr, 1)

    def test_resolve_finds_owning_region(self, sim):
        _, ctxs = make_cluster(sim)
        mr1 = ctxs[0].reg_mr(100)
        mr2 = ctxs[0].reg_mr(100)
        assert ctxs[0].memory.resolve(mr2.addr + 50) is mr2
        assert ctxs[0].memory.resolve(mr1.addr) is mr1

    def test_resolve_unregistered_raises(self, sim):
        _, ctxs = make_cluster(sim)
        with pytest.raises(VerbsError):
            ctxs[0].memory.resolve(0xDEAD)

    def test_timed_registration_charges_time(self, sim):
        _, ctxs = make_cluster(sim)

        def proc():
            yield from ctxs[0].reg_mr_timed(1 << 20)  # 256 pages
            return sim.now

        t = sim.run_process(proc())
        assert t == EDR.mr_register_base_ns + 256 * EDR.mr_register_ns_per_page


class TestBufferPool:
    def test_pool_carves_distinct_buffers(self, sim):
        _, ctxs = make_cluster(sim)
        pool = BufferPool(ctxs[0], count=4, size=4096)
        addrs = {buf.addr for buf in pool.buffers}
        assert len(addrs) == 4
        assert ctxs[0].registered_bytes == 4 * 4096

    def test_at_resolves_by_address(self, sim):
        _, ctxs = make_cluster(sim)
        pool = BufferPool(ctxs[0], count=2, size=64)
        assert pool.at(pool.buffers[1].addr) is pool.buffers[1]
        with pytest.raises(ValueError):
            pool.at(12345)

    def test_fill_publishes_for_rdma_read(self, sim):
        _, ctxs = make_cluster(sim)
        pool = BufferPool(ctxs[0], count=1, size=64)
        buf = pool.buffers[0]
        buf.fill("payload", 10)
        assert pool.mr.get_object(buf.addr) == "payload"
        buf.reset()
        assert pool.mr.get_object(buf.addr) is None

    def test_fill_overflow_rejected(self, sim):
        _, ctxs = make_cluster(sim)
        pool = BufferPool(ctxs[0], count=1, size=64)
        with pytest.raises(ValueError):
            pool.buffers[0].fill("x", 65)


class TestCompletionQueue:
    def test_poll_drains_in_order(self, sim):
        cq = CompletionQueue(sim)
        for i in range(3):
            cq.push(WorkCompletion(wr_id=i, opcode=Opcode.SEND))
        assert [wc.wr_id for wc in cq.poll()] == [0, 1, 2]
        assert cq.poll() == []

    def test_poll_respects_max_entries(self, sim):
        cq = CompletionQueue(sim)
        for i in range(5):
            cq.push(WorkCompletion(wr_id=i, opcode=Opcode.SEND))
        assert len(cq.poll(max_entries=2)) == 2
        assert len(cq) == 3

    def test_overrun_raises(self, sim):
        cq = CompletionQueue(sim, depth=1)
        cq.push(WorkCompletion(wr_id=0, opcode=Opcode.SEND))
        with pytest.raises(VerbsError):
            cq.push(WorkCompletion(wr_id=1, opcode=Opcode.SEND))

    def test_blocking_wait(self, sim):
        cq = CompletionQueue(sim)

        def proc():
            wc = yield cq.wait()
            return (sim.now, wc.wr_id)

        late = WorkCompletion(wr_id="late", opcode=Opcode.SEND)
        sim.call_at(100, lambda: cq.push(late))
        assert sim.run_process(proc()) == (100, "late")


class TestRCSendRecv:
    def test_roundtrip_delivers_payload(self, sim):
        _, ctxs = make_cluster(sim)
        (qp0, qp1), (cq0, cq1) = rc_pair(ctxs)
        spool = BufferPool(ctxs[0], 1, 65536)
        rpool = BufferPool(ctxs[1], 1, 65536)
        sbuf, rbuf = spool.buffers[0], rpool.buffers[0]
        sbuf.fill(["tuple1", "tuple2"], 4096)
        qp1.post_recv(RecvWR(wr_id="r", buffer=rbuf, length=65536))
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, buffer=sbuf, length=4096))

        def proc():
            recv_wc = yield cq1.wait()
            send_wc = yield cq0.wait()
            return recv_wc, send_wc

        recv_wc, send_wc = sim.run_process(proc())
        assert recv_wc.opcode is Opcode.RECV and recv_wc.byte_len == 4096
        assert rbuf.payload == ["tuple1", "tuple2"]
        assert send_wc.opcode is Opcode.SEND and send_wc.wr_id == "s"

    def test_send_blocks_until_recv_posted(self, sim):
        _, ctxs = make_cluster(sim)
        (qp0, qp1), (cq0, cq1) = rc_pair(ctxs)
        spool = BufferPool(ctxs[0], 1, 4096)
        rpool = BufferPool(ctxs[1], 1, 4096)
        spool.buffers[0].fill("x", 100)
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND,
                             buffer=spool.buffers[0], length=100))

        def late_recv():
            yield sim.timeout(50_000)
            qp1.post_recv(RecvWR(wr_id="r", buffer=rpool.buffers[0], length=4096))

        sim.process(late_recv())

        def proc():
            wc = yield cq1.wait()
            return (sim.now, wc)

        t, wc = sim.run_process(proc())
        assert t >= 50_000
        assert wc.ok

    def test_in_order_delivery(self, sim):
        _, ctxs = make_cluster(sim)
        (qp0, qp1), (cq0, cq1) = rc_pair(ctxs)
        spool = BufferPool(ctxs[0], 8, 4096)
        rpool = BufferPool(ctxs[1], 8, 4096)
        for i, rbuf in enumerate(rpool.buffers):
            qp1.post_recv(RecvWR(wr_id=i, buffer=rbuf, length=4096))
        for i, sbuf in enumerate(spool.buffers):
            sbuf.fill(f"msg{i}", 4096)
            qp0.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, buffer=sbuf, length=4096))

        def proc():
            order = []
            for _ in range(8):
                wc = yield cq1.wait()
                order.append(wc.wr_id)
            return order

        assert sim.run_process(proc()) == list(range(8))

    def test_imm_data_delivered(self, sim):
        _, ctxs = make_cluster(sim)
        (qp0, qp1), (cq0, cq1) = rc_pair(ctxs)
        rpool = BufferPool(ctxs[1], 1, 4096)
        qp1.post_recv(RecvWR(wr_id="r", buffer=rpool.buffers[0], length=4096))
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=0, imm=77))

        def proc():
            wc = yield cq1.wait()
            return wc.imm

        assert sim.run_process(proc()) == 77

    def test_send_on_unconnected_qp_rejected(self, sim):
        _, ctxs = make_cluster(sim)
        cq = ctxs[0].create_cq()
        qp = ctxs[0].create_qp(QPType.RC, cq, cq)
        with pytest.raises(VerbsError, match="post send"):
            qp.post_send(SendWR(wr_id=0, opcode=Opcode.SEND, length=0))

    def test_oversized_rc_message_rejected(self, sim):
        _, ctxs = make_cluster(sim)
        (qp0, _), _ = rc_pair(ctxs)
        with pytest.raises(VerbsError, match="1 GiB"):
            qp0.post_send(SendWR(wr_id=0, opcode=Opcode.SEND, length=(1 << 30) + 1))


class TestRdmaWrite:
    def test_write_word_to_remote_memory(self, sim):
        _, ctxs = make_cluster(sim)
        (qp0, qp1), (cq0, _) = rc_pair(ctxs)
        target = ctxs[1].reg_mr(64)
        qp0.post_send(SendWR(wr_id="w", opcode=Opcode.WRITE,
                             remote_addr=target.addr + 16, value=99, inline=True))

        def proc():
            wc = yield cq0.wait()
            return wc

        wc = sim.run_process(proc())
        assert wc.opcode is Opcode.WRITE and wc.ok
        assert target.read_u64(target.addr + 16) == 99

    def test_write_to_unregistered_memory_fails(self, sim):
        _, ctxs = make_cluster(sim)
        (qp0, _), _ = rc_pair(ctxs)
        qp0.post_send(SendWR(wr_id="w", opcode=Opcode.WRITE,
                             remote_addr=0xBAD, value=1))
        with pytest.raises(VerbsError):
            sim.run()

    def test_write_requires_value_or_buffer(self, sim):
        with pytest.raises(VerbsError):
            SendWR(wr_id=0, opcode=Opcode.WRITE, remote_addr=100)


class TestRdmaRead:
    def test_read_pulls_remote_buffer(self, sim):
        _, ctxs = make_cluster(sim)
        (qp0, qp1), (cq0, _) = rc_pair(ctxs)
        rpool = BufferPool(ctxs[1], 1, 65536)  # remote (passive) side
        lpool = BufferPool(ctxs[0], 1, 65536)  # local destination
        rpool.buffers[0].fill({"rows": [1, 2, 3]}, 65536)
        qp0.post_send(SendWR(wr_id="rd", opcode=Opcode.READ,
                             buffer=lpool.buffers[0], length=65536,
                             remote_addr=rpool.buffers[0].addr))

        def proc():
            wc = yield cq0.wait()
            return wc

        wc = sim.run_process(proc())
        assert wc.opcode is Opcode.READ and wc.ok
        assert lpool.buffers[0].payload == {"rows": [1, 2, 3]}

    def test_read_needs_local_buffer(self):
        with pytest.raises(VerbsError):
            SendWR(wr_id=0, opcode=Opcode.READ, length=10, remote_addr=100)


class TestUD:
    def make_ud_pair(self, sim, **net_overrides):
        _, ctxs = make_cluster(sim, **net_overrides)
        cqs, qps = [], []
        for ctx in ctxs:
            cq = ctx.create_cq()
            qp = ctx.create_qp(QPType.UD, cq, cq)
            qp.activate()
            cqs.append(cq)
            qps.append(qp)
        return ctxs, qps, cqs

    def test_roundtrip(self, sim):
        ctxs, (qp0, qp1), (cq0, cq1) = self.make_ud_pair(sim)
        spool = BufferPool(ctxs[0], 1, 4096)
        rpool = BufferPool(ctxs[1], 1, 4096)
        spool.buffers[0].fill("datagram", 4096)
        qp1.post_recv(RecvWR(wr_id="r", buffer=rpool.buffers[0], length=4096))
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND,
                             buffer=spool.buffers[0], length=4096,
                             dest=AddressHandle(1, qp1.qpn)))

        def proc():
            wc = yield cq1.wait()
            return wc

        wc = sim.run_process(proc())
        assert wc.src_node == 0 and wc.src_qpn == qp0.qpn
        assert rpool.buffers[0].payload == "datagram"

    def test_send_completion_precedes_delivery(self, sim):
        ctxs, (qp0, qp1), (cq0, cq1) = self.make_ud_pair(sim)
        qp1.post_recv(RecvWR(wr_id="r", buffer=None, length=4096))
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=4096,
                             dest=AddressHandle(1, qp1.qpn)))

        def proc():
            swc = yield cq0.wait()
            t_send = sim.now
            rwc = yield cq1.wait()
            return t_send, sim.now

        t_send, t_recv = sim.run_process(proc())
        assert t_send < t_recv  # no ack round trip in UD

    def test_message_larger_than_mtu_rejected(self, sim):
        ctxs, (qp0, qp1), _ = self.make_ud_pair(sim)
        with pytest.raises(VerbsError, match="MTU"):
            qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=4097,
                                 dest=AddressHandle(1, qp1.qpn)))

    def test_rdma_read_unsupported_on_ud(self, sim):
        ctxs, (qp0, qp1), _ = self.make_ud_pair(sim)
        pool = BufferPool(ctxs[0], 1, 4096)
        with pytest.raises(VerbsError, match="Send/Receive"):
            qp0.post_send(SendWR(wr_id=0, opcode=Opcode.READ,
                                 buffer=pool.buffers[0], length=64,
                                 remote_addr=100,
                                 dest=AddressHandle(1, qp1.qpn)))

    def test_unmatched_send_silently_dropped(self, sim):
        ctxs, (qp0, qp1), (cq0, cq1) = self.make_ud_pair(sim)
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=100,
                             dest=AddressHandle(1, qp1.qpn)))
        sim.run()
        assert qp1.ud_drops == 1
        assert len(cq1) == 0
        assert len(cq0) == 1  # sender still completes

    def test_loss_injection_loses_datagram(self, sim):
        ctxs, (qp0, qp1), (cq0, cq1) = self.make_ud_pair(
            sim, ud_loss_probability=1.0)
        qp1.post_recv(RecvWR(wr_id="r", buffer=None, length=4096))
        qp0.post_send(SendWR(wr_id="s", opcode=Opcode.SEND, length=100,
                             dest=AddressHandle(1, qp1.qpn)))
        sim.run()
        assert len(cq1) == 0  # never delivered
        assert len(cq0) == 1  # sender unaware

    def test_one_ud_qp_talks_to_many_peers(self, sim):
        cluster = ClusterConfig(network=EDR, num_nodes=4)
        cluster = cluster.with_network(ud_jitter_ns=0)
        fabric = Fabric(sim, cluster)
        ctxs = [VerbsContext(sim, fabric, i) for i in range(4)]
        cqs, qps = [], []
        for ctx in ctxs:
            cq = ctx.create_cq()
            qp = ctx.create_qp(QPType.UD, cq, cq)
            qp.activate()
            cqs.append(cq)
            qps.append(qp)
        for i in range(1, 4):
            qps[i].post_recv(RecvWR(wr_id=i, buffer=None, length=4096))
            qps[0].post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=64,
                                    dest=AddressHandle(i, qps[i].qpn)))
        sim.run()
        for i in range(1, 4):
            assert len(cqs[i]) == 1


class TestQPLimits:
    def test_send_queue_depth_enforced(self, sim):
        _, ctxs = make_cluster(sim)
        cq = ctxs[0].create_cq()
        qp = ctxs[0].create_qp(QPType.UD, cq, cq, max_send_wr=2)
        qp.activate()
        for i in range(2):
            qp.post_send(SendWR(wr_id=i, opcode=Opcode.SEND, length=10,
                                dest=AddressHandle(1, 999)))
        with pytest.raises(VerbsError, match="send queue full"):
            qp.post_send(SendWR(wr_id=9, opcode=Opcode.SEND, length=10,
                                dest=AddressHandle(1, 999)))

    def test_recv_queue_depth_enforced(self, sim):
        _, ctxs = make_cluster(sim)
        cq = ctxs[0].create_cq()
        qp = ctxs[0].create_qp(QPType.UD, cq, cq, max_recv_wr=1)
        qp.post_recv(RecvWR(wr_id=0, buffer=None, length=64))
        with pytest.raises(VerbsError, match="receive queue full"):
            qp.post_recv(RecvWR(wr_id=1, buffer=None, length=64))

    def test_depth_beyond_hardware_limit_rejected(self, sim):
        _, ctxs = make_cluster(sim)
        cq = ctxs[0].create_cq()
        with pytest.raises(VerbsError, match="hardware limit"):
            ctxs[0].create_qp(QPType.RC, cq, cq, max_send_wr=1 << 20)

    def test_connect_wrong_transport_rejected(self, sim):
        _, ctxs = make_cluster(sim)
        cq = ctxs[0].create_cq()
        ud = ctxs[0].create_qp(QPType.UD, cq, cq)
        rc = ctxs[0].create_qp(QPType.RC, cq, cq)
        with pytest.raises(VerbsError):
            ud.connect(AddressHandle(1, 5))
        with pytest.raises(VerbsError):
            rc.activate()
