"""Endpoint behaviour: flow control, unreliable delivery, one-sided queues.

These tests target the transport-level mechanisms of §4.4 directly:
credit stalling and write-back amortization, UD message counting with
out-of-order and lossy delivery, the drain timeout, and the RDMA Read
endpoint's FreeArr/ValidArr buffer-recycling protocol.
"""

import numpy as np
import pytest

from repro import (
    Cluster,
    ClusterConfig,
    EDR,
    EndpointConfig,
    ShuffleNetworkError,
    TransmissionGroups,
)
from repro.core import ReceiveOperator, ShuffleOperator
from repro.core.shuffle import striped_partitioner
from repro.core.stage import ShuffleStage
from repro.engine import CollectSink, QueryFragment, run_fragments
from repro.engine.scan import ScanOperator

DTYPE = np.dtype([("a", np.int64), ("b", np.int64)])


def make_cluster(nodes=2, threads=2, **net_overrides):
    cc = ClusterConfig(network=EDR, num_nodes=nodes, threads_per_node=threads)
    if net_overrides:
        cc = cc.with_network(**net_overrides)
    return Cluster(cc)


def run_stage_query(cluster, design, rows_per_node=3000, config=None,
                    groups=None, expect_error=False):
    nodes = cluster.num_nodes
    threads = cluster.threads_per_node
    groups = groups or TransmissionGroups.repartition(nodes)
    cfg = config or EndpointConfig(message_size=4096)
    stage = ShuffleStage(cluster.fabric, design, groups, config=cfg,
                         threads=threads, registry=cluster.registry)
    cluster.run_process(stage.setup())
    fragments, sinks = [], []
    for n in range(nodes):
        node = cluster.nodes[n]
        table = np.empty(rows_per_node, dtype=DTYPE)
        table["a"] = np.arange(rows_per_node)
        table["b"] = n
        scan = ScanOperator(node, table, threads, batch_rows=256)
        shuffle = ShuffleOperator(node, scan, stage.send_endpoints[n],
                                  groups, striped_partitioner(len(groups)),
                                  threads)
        fragments.append(QueryFragment(node, shuffle, threads))
        recv = ReceiveOperator(node, stage.recv_endpoints[n], threads)
        sink = CollectSink()
        sinks.append(sink)
        fragments.append(QueryFragment(node, recv, threads, sink=sink))
    if expect_error:
        with pytest.raises(ShuffleNetworkError):
            cluster.run_process(run_fragments(cluster.sim, fragments))
        return stage, sinks, None
    elapsed = cluster.run_process(run_fragments(cluster.sim, fragments))
    return stage, sinks, elapsed


class TestCreditProtocol:
    def test_sender_never_exceeds_issued_credit(self):
        """The flow-control invariant: sent <= credit, always."""
        cluster = make_cluster()
        stage, _, _ = run_stage_query(cluster, "MEMQ/SR")
        for eps in stage.send_endpoints.values():
            for ep in eps:
                for conn in ep.conns.values():
                    assert conn.sent <= conn.credit

    def test_credit_write_back_amortization(self):
        """Higher write-back frequency means fewer credit RDMA Writes."""
        def credit_writes(freq):
            cluster = make_cluster()
            cfg = EndpointConfig(message_size=4096, buffers_per_connection=16,
                                 credit_frequency=freq)
            stage, _, _ = run_stage_query(cluster, "MEMQ/SR", config=cfg)
            writes = 0
            for eps in stage.recv_endpoints.values():
                for ep in eps:
                    for conn in ep.conns.values():
                        writes += conn.qp.sends_posted
            return writes

        assert credit_writes(1) > 1.7 * credit_writes(8)

    def test_small_credit_window_stalls_sender(self):
        cluster = make_cluster()
        cfg = EndpointConfig(message_size=4096, buffers_per_connection=1,
                             credit_frequency=1)
        stage, _, _ = run_stage_query(cluster, "MEMQ/SR", config=cfg,
                                   rows_per_node=20000)
        stalls = sum(ep.credit_wait_ns
                     for eps in stage.send_endpoints.values() for ep in eps)
        assert stalls > 0

    def test_credit_frequency_above_buffers_rejected(self):
        with pytest.raises(ValueError, match="credit_frequency"):
            EndpointConfig(buffers_per_connection=2, credit_frequency=3,
                           threads_per_endpoint=1)


class TestUnreliableDatagram:
    def test_out_of_order_delivery_reconciles_totals(self):
        """Heavy jitter reorders datagrams; message counting still
        terminates cleanly with every tuple delivered (§4.4.2)."""
        cluster = make_cluster(ud_jitter_ns=20_000)
        stage, sinks, _ = run_stage_query(cluster, "MESQ/SR",
                                       rows_per_node=5000)
        got = sum(len(s.result()) for s in sinks if s.result() is not None)
        assert got == 2 * 5000

    def test_loss_triggers_drain_timeout_error(self):
        """Lost datagrams leave received < expected; after the drain
        timeout the endpoint reports a network error (query restart)."""
        cluster = make_cluster(ud_loss_probability=0.05, ud_jitter_ns=0)
        cfg = EndpointConfig(message_size=4096, drain_timeout_ns=2_000_000)
        run_stage_query(cluster, "MESQ/SR", rows_per_node=30000,
                        config=cfg, expect_error=True)

    def test_zero_loss_zero_drops(self):
        cluster = make_cluster()
        stage, _, _ = run_stage_query(cluster, "MESQ/SR")
        assert cluster.fabric.dropped_messages == 0

    def test_message_counts_match_on_clean_run(self):
        cluster = make_cluster()
        stage, _, _ = run_stage_query(cluster, "MESQ/SR")
        for eps in stage.recv_endpoints.values():
            for ep in eps:
                for conn in ep.conns.values():
                    assert conn.expected is not None
                    assert conn.received == conn.expected

    def test_ud_uses_single_qp_per_endpoint(self):
        cluster = make_cluster(nodes=4)
        stage, _, _ = run_stage_query(cluster, "MESQ/SR", rows_per_node=500)
        for eps in stage.send_endpoints.values():
            for ep in eps:
                assert ep.qp is not None  # exactly one QP, many peers
                assert len(ep.conns) == 4


class TestRdmaReadEndpoint:
    def test_buffers_recycle_through_freearr(self):
        """Every transmitted buffer must come back through FreeArr: at
        end of stream no sender buffer is waiting on notifications."""
        cluster = make_cluster()
        stage, _, _ = run_stage_query(cluster, "MEMQ/RD")
        cluster.run()  # drain in-flight FreeArr RDMA Writes
        for eps in stage.send_endpoints.values():
            for ep in eps:
                pending = {addr: cnt for addr, cnt in ep._pending.items()
                           if addr not in ep._final_addrs}
                assert not pending

    def test_sender_remains_passive(self):
        """The RD sender posts only RDMA Writes (ValidArr notifications);
        receivers do all the data movement via RDMA Read."""
        cluster = make_cluster()
        stage, _, _ = run_stage_query(cluster, "MEMQ/RD")
        # All data bytes travel as READ_RESP packets, none as SEND.
        # (Check via endpoint counters: received == sent logical msgs.)
        sent = sum(ep.messages_sent
                   for eps in stage.send_endpoints.values() for ep in eps)
        received = sum(ep.messages_received
                       for eps in stage.recv_endpoints.values() for ep in eps)
        assert sent == received > 0

    def test_broadcast_waits_for_all_readers(self):
        """A multicast buffer is freed only after every group member
        returned it (the §5.1.3 broadcast-starvation mechanism)."""
        cluster = make_cluster(nodes=3)
        groups = TransmissionGroups.broadcast(3)
        stage, sinks, _ = run_stage_query(cluster, "MEMQ/RD",
                                       rows_per_node=2000, groups=groups)
        got = sum(len(s.result()) for s in sinks if s.result() is not None)
        assert got == 3 * 3 * 2000  # every node sees every tuple

    def test_local_arr_restored_at_end(self):
        cluster = make_cluster()
        cfg = EndpointConfig(message_size=4096)
        stage, _, _ = run_stage_query(cluster, "MEMQ/RD", config=cfg)
        cluster.run()  # drain in-flight completions
        for eps in stage.recv_endpoints.values():
            for ep in eps:
                for conn in ep.conns.values():
                    assert len(conn.local_arr) == ep.config.buffers_per_link
                    assert not conn.pending_remote


class TestSharedEndpointContention:
    def test_se_configuration_is_slower_than_me_on_ud(self):
        """SESQ/SR serializes all threads on one endpoint lock; MESQ/SR
        does not (Table 1's thread-contention column, §5.1.3).  Buffer
        windows are deepened so neither run is flow-control bound and the
        comparison isolates the lock."""
        def run(design):
            cluster = make_cluster(threads=4)
            cfg = EndpointConfig(message_size=4096,
                                 buffers_per_connection=8)
            _stage, _sinks, elapsed = run_stage_query(
                cluster, design, rows_per_node=120000, config=cfg)
            return elapsed

        assert run("SESQ/SR") > run("MESQ/SR")


# ---------------------------------------------------------------------------
# Conformance suite: every endpoint kind in the transport registry must
# honour the §4.2 interface contract.  New backends registered via
# ``register_endpoint_kind`` are picked up automatically, as long as some
# design in DESIGNS exposes them.
# ---------------------------------------------------------------------------

from repro.core.designs import DESIGNS  # noqa: E402
from repro.core.transport.registry import registered_kinds  # noqa: E402


def _design_for_kind(kind):
    """A representative design for an endpoint kind (prefer multi-endpoint)."""
    candidates = [d for d in DESIGNS.values() if d.endpoint_kind == kind]
    for d in candidates:
        if d.multi_endpoint:
            return d
    return candidates[0] if candidates else None


CONFORMANCE_KINDS = [k for k in registered_kinds()
                     if _design_for_kind(k) is not None]


@pytest.mark.parametrize("kind", CONFORMANCE_KINDS)
class TestEndpointConformance:
    def test_delivers_every_tuple_and_depletes(self, kind):
        """Exactly-once delivery plus DEPLETED sentinel propagation: every
        receive endpoint must drain all its sources and terminate."""
        design = _design_for_kind(kind)
        cluster = make_cluster()
        stage, sinks, _ = run_stage_query(cluster, design, rows_per_node=2000)
        got = sum(len(s.result()) for s in sinks if s.result() is not None)
        assert got == cluster.num_nodes * 2000
        for eps in stage.recv_endpoints.values():
            for ep in eps:
                # The final/DEPLETED marker arrived from every source.
                assert ep._active_sources == set()

    def test_getfree_blocks_until_release_recycles(self, kind):
        """With a single buffer per connection, forward progress is only
        possible if GETFREE blocks and RELEASE recycles buffers: the run
        must still complete, reusing each buffer many times."""
        design = _design_for_kind(kind)
        cluster = make_cluster()
        cfg = EndpointConfig(message_size=4096, buffers_per_connection=1,
                             credit_frequency=1)
        stage, sinks, _ = run_stage_query(cluster, design,
                                          rows_per_node=12000, config=cfg)
        got = sum(len(s.result()) for s in sinks if s.result() is not None)
        assert got == cluster.num_nodes * 12000
        for eps in stage.send_endpoints.values():
            for ep in eps:
                # More messages than pool buffers proves buffer reuse.
                assert ep.messages_sent > ep.send_pool_buffers

    def test_network_error_surfaces_as_shuffle_error(self, kind):
        """Unreliable transports must convert missing datagrams into a
        ShuffleNetworkError after the drain timeout (§4.4.2); reliable
        transports handle loss in hardware and never see it."""
        design = _design_for_kind(kind)
        if not design.uses_ud:
            pytest.skip("reliable transport: retransmission is in hardware")
        cluster = make_cluster(ud_loss_probability=0.05, ud_jitter_ns=0)
        cfg = EndpointConfig(message_size=4096, drain_timeout_ns=2_000_000)
        run_stage_query(cluster, design, rows_per_node=30000,
                        config=cfg, expect_error=True)
