"""Unit tests for the design registry (Table 1)."""

import pytest

from repro.core import DESIGNS, design_properties
from repro.core.read_rc import ReadRCSendEndpoint
from repro.core.sr_rc import SRRCSendEndpoint
from repro.core.sr_ud import SRUDSendEndpoint


class TestRegistry:
    def test_six_designs_present(self):
        assert set(DESIGNS) >= {
            "MEMQ/RD", "SEMQ/RD", "MEMQ/SR", "SEMQ/SR", "MESQ/SR", "SESQ/SR",
        }

    def test_endpoint_classes(self):
        assert DESIGNS["MESQ/SR"].send_cls is SRUDSendEndpoint
        assert DESIGNS["MEMQ/SR"].send_cls is SRRCSendEndpoint
        assert DESIGNS["MEMQ/RD"].send_cls is ReadRCSendEndpoint

    def test_endpoint_counts(self):
        assert DESIGNS["MESQ/SR"].num_endpoints(threads=8) == 8
        assert DESIGNS["SESQ/SR"].num_endpoints(threads=8) == 1


class TestTable1:
    """The QPs-per-node column of Table 1 for n nodes, t threads."""

    @pytest.mark.parametrize("name,expected", [
        ("MEMQ/RD", 16 * 8),   # n*t
        ("MEMQ/SR", 16 * 8),   # n*t
        ("SEMQ/RD", 16),       # n
        ("SEMQ/SR", 16),       # n
        ("MESQ/SR", 8),        # t
        ("SESQ/SR", 1),        # 1
    ])
    def test_qps_per_operator(self, name, expected):
        assert DESIGNS[name].qps_per_operator(num_nodes=16, threads=8) == expected

    def test_connection_labels(self):
        labels = {name: d.connections_label for name, d in DESIGNS.items()
                  if name in ("MEMQ/SR", "SEMQ/SR", "MESQ/SR", "SESQ/SR")}
        assert labels == {
            "MEMQ/SR": "n*t", "SEMQ/SR": "n", "MESQ/SR": "t", "SESQ/SR": "1",
        }

    def test_contention_column(self):
        assert DESIGNS["SESQ/SR"].thread_contention == "Excessive"
        assert DESIGNS["SEMQ/SR"].thread_contention == "Moderate"
        assert DESIGNS["MESQ/SR"].thread_contention == "None"
        assert DESIGNS["MEMQ/RD"].thread_contention == "None"

    def test_messaging_and_transport(self):
        assert "4 KiB" in DESIGNS["MESQ/SR"].messaging
        assert "1 GiB" in DESIGNS["MEMQ/SR"].messaging
        assert "software" in DESIGNS["SESQ/SR"].transport
        assert "hardware" in DESIGNS["SEMQ/RD"].transport

    def test_flow_control_column(self):
        assert DESIGNS["MEMQ/RD"].flow_control.startswith("One-sided")
        assert DESIGNS["MEMQ/SR"].flow_control.startswith("Two-sided")

    def test_design_properties_rows(self):
        rows = design_properties(num_nodes=16, threads=8)
        assert len(rows) == 6
        by_name = {row["design"]: row for row in rows}
        assert by_name["MESQ/SR"]["qps_per_operator"] == 8
        assert by_name["MEMQ/SR"]["resource_consumption"] == "Excessive"
        assert by_name["SESQ/SR"]["resource_consumption"] == "Minimal"
