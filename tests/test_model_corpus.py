"""Planted-deadlock corpus: broken protocols the checker must catch.

Three intentionally broken endpoint kinds, registered only here (the
``_TEST`` suffix keeps them out of ``--all-kinds`` / ``--repro-model``
sweeps).  Each carries the *same* bug twice — once in its protocol
model, once in its runtime endpoint code — and each test asserts both
detectors agree:

* ``SR_RC_LEAK_TEST`` — the receiver never writes credit back: the
  model checker proves a deadlock, the simulator wedges (empty event
  queue) with the senders stalled on credit.
* ``RD_RC_TIGHTRING_TEST`` — the sender publishes a one-slot FreeArr:
  the model checker proves a ring overrun, the runtime sanitizer flags
  ``ring-overrun`` on the same board.
* ``SR_RC_OVERGRANT_TEST`` — the receiver advertises two more credits
  than it has Receives posted: the model checker proves a credit-
  conservation violation, the runtime sanitizer flags
  ``credit-overgrant``.

Counterexamples are minimal (BFS over the unreduced graph) and export
as Perfetto-loadable Chrome trace JSON.
"""

import json

import numpy as np
import pytest

from repro import EndpointConfig, TransmissionGroups
from repro.analysis.model import check_kind, parse_bound
from repro.analysis.model.protocols import CreditProtocolModel
from repro.analysis.model.trace import write_counterexample
from repro.core import ReceiveOperator, ShuffleOperator
from repro.core.designs import Design, register_endpoint_kind
from repro.core.read_rc import ReadRCReceiveEndpoint, ReadRCSendEndpoint
from repro.core.shuffle import striped_partitioner
from repro.core.sr_rc import SRRCReceiveEndpoint, SRRCSendEndpoint
from repro.core.stage import ShuffleStage
from repro.core.transport.credit import CreditWordBoard, RingBoard
from repro.core.transport.credit import post_credit_word
from repro.engine import CollectSink, QueryFragment, run_fragments
from repro.engine.scan import ScanOperator
from repro.sim import SimError
from repro.verbs.constants import QPType
from repro.verbs.qp import fault_actions

from tests.test_endpoints import DTYPE, make_cluster, run_stage_query


# -- the planted kinds ------------------------------------------------------

class _LeakyCreditModel(CreditProtocolModel):
    """Model of a receiver that never writes credit back."""

    def _release_credit_values(self, posted):
        return ()


class LeakySRRCSendEndpoint(SRRCSendEndpoint):
    @classmethod
    def protocol_model(cls, bound):
        return _LeakyCreditModel(
            "SR_RC_LEAK_TEST", bound, credit=CreditWordBoard.model(),
            faults=fault_actions(QPType.RC))


class LeakySRRCReceiveEndpoint(SRRCReceiveEndpoint):
    def _return_credit(self, conn):
        pass  # the planted bug: releases never reach the sender


class _OvergrantCreditModel(CreditProtocolModel):
    """Model of a receiver advertising credit beyond its Receives."""

    def _release_credit_values(self, posted):
        return (posted + 2,)


class OvergrantSRRCSendEndpoint(SRRCSendEndpoint):
    @classmethod
    def protocol_model(cls, bound):
        return _OvergrantCreditModel(
            "SR_RC_OVERGRANT_TEST", bound, credit=CreditWordBoard.model(),
            faults=fault_actions(QPType.RC))


class OvergrantSRRCReceiveEndpoint(SRRCReceiveEndpoint):
    def _return_credit(self, conn):
        post_credit_word(conn, conn.posted + 2)  # the planted bug


class TightRingRDSendEndpoint(ReadRCSendEndpoint):
    @classmethod
    def protocol_model(cls, bound):
        from repro.analysis.model.protocols import RingProtocolModel
        return RingProtocolModel(
            "RD_RC_TIGHTRING_TEST", bound, role="read",
            valid=RingBoard.model("validarr", bound.sender_buffers + 2),
            free=RingBoard.model("freearr", 1),  # the planted bug
            faults=fault_actions(QPType.RC))

    @property
    def _free_cap(self):
        return 1  # the planted bug: one FreeArr slot for a whole pool


register_endpoint_kind(
    "SR_RC_LEAK_TEST", LeakySRRCSendEndpoint, LeakySRRCReceiveEndpoint,
    description="fault injection: SR/RC receiver that leaks credit")
register_endpoint_kind(
    "SR_RC_OVERGRANT_TEST", OvergrantSRRCSendEndpoint,
    OvergrantSRRCReceiveEndpoint,
    description="fault injection: SR/RC receiver that overgrants credit")
register_endpoint_kind(
    "RD_RC_TIGHTRING_TEST", TightRingRDSendEndpoint, ReadRCReceiveEndpoint,
    one_sided=True,
    description="fault injection: RD/RC sender with a one-slot FreeArr")

LEAK_DESIGN = Design("LEAK/SR", "SR_RC_LEAK_TEST", multi_endpoint=True)
OVERGRANT_DESIGN = Design("OVERGRANT/SR", "SR_RC_OVERGRANT_TEST",
                          multi_endpoint=True)
TIGHTRING_DESIGN = Design("TIGHT/RD", "RD_RC_TIGHTRING_TEST",
                          multi_endpoint=True)

#: a small instance keeps counterexamples short and exploration instant.
CORPUS_BOUND = parse_bound("peers=1")


def rules_of(san):
    return sorted({v.rule for v in san.violations})


def build_stage_query(cluster, design, rows_per_node=600, config=None):
    """Like run_stage_query, but hands back the stage and fragments so a
    wedged run can still be inspected afterwards."""
    nodes = cluster.num_nodes
    threads = cluster.threads_per_node
    groups = TransmissionGroups.repartition(nodes)
    cfg = config or EndpointConfig(message_size=1024,
                                   buffers_per_connection=4)
    stage = ShuffleStage(cluster.fabric, design, groups, config=cfg,
                         threads=threads, registry=cluster.registry)
    cluster.run_process(stage.setup())
    fragments, sinks = [], []
    for n in range(nodes):
        node = cluster.nodes[n]
        table = np.empty(rows_per_node, dtype=DTYPE)
        table["a"] = np.arange(rows_per_node)
        table["b"] = n
        scan = ScanOperator(node, table, threads, batch_rows=256)
        shuffle = ShuffleOperator(node, scan, stage.send_endpoints[n],
                                  groups, striped_partitioner(len(groups)),
                                  threads)
        fragments.append(QueryFragment(node, shuffle, threads))
        recv = ReceiveOperator(node, stage.recv_endpoints[n], threads)
        sink = CollectSink()
        sinks.append(sink)
        fragments.append(QueryFragment(node, recv, threads, sink=sink))
    return stage, fragments, sinks


class TestCreditLeak:
    def test_model_finds_deadlock(self, tmp_path):
        result = check_kind("SR_RC_LEAK_TEST", CORPUS_BOUND)
        assert not result.passed
        dead = result.status_of("deadlock-freedom")
        assert dead.status == "fail"
        assert not result.explored.por  # confirmed on the full graph
        witness = dead.witness
        # Minimal wedge: 2 sends, 2 deliveries, 2 releases (no credit
        # written back), 2 completions polled -- 8 steps, nothing less.
        assert len(witness) == 8
        names = [a.name for a, _s in witness.steps[1:]]
        assert names.count("send_data") == 2
        assert names.count("release") == 2
        assert "credit_arrive" not in names  # the leak itself
        path = write_counterexample(result.model, witness, str(tmp_path))
        trace = json.load(open(path))
        assert trace["otherData"]["property"] == "deadlock-freedom"

    def test_runtime_wedges_on_credit(self):
        cluster = make_cluster()
        cfg = EndpointConfig(message_size=1024, buffers_per_connection=2,
                             credit_frequency=1)
        stage, fragments, _ = build_stage_query(cluster, LEAK_DESIGN,
                                                rows_per_node=6000,
                                                config=cfg)
        with pytest.raises(SimError, match="deadlock"):
            cluster.run_process(run_fragments(cluster.sim, fragments))
        # Wedged exactly where the model says: every sender burned its
        # initial credit and never saw another grant.
        wedged = [conn
                  for eps in stage.send_endpoints.values() for ep in eps
                  for conn in ep.conns.values()
                  if conn.credit > 0 and conn.sent >= conn.credit]
        assert wedged


class TestCreditOvergrant:
    def test_model_finds_conservation_violation(self, tmp_path):
        result = check_kind("SR_RC_OVERGRANT_TEST", CORPUS_BOUND)
        assert not result.passed
        cons = result.status_of("credit-conservation")
        assert cons.status == "fail"
        assert "overgrant" in cons.witness.message or \
            "posted" in cons.witness.message
        # Minimal: send, deliver, release -- the very first write-back
        # already advertises more than the receiver posted.
        assert len(cons.witness) == 3
        path = write_counterexample(result.model, cons.witness,
                                    str(tmp_path))
        json.load(open(path))

    def test_runtime_sanitizer_flags_overgrant(self):
        cluster = make_cluster()
        san = cluster.enable_sanitizer()
        cfg = EndpointConfig(message_size=1024, buffers_per_connection=4)
        _, sinks, _ = run_stage_query(cluster, OVERGRANT_DESIGN,
                                      rows_per_node=600, config=cfg)
        assert sum(len(s.result()) for s in sinks) == 2 * 600
        assert "credit-overgrant" in rules_of(san)
        first = next(v for v in san.violations
                     if v.rule == "credit-overgrant")
        assert first.details["value"] > first.details["posted"]


class TestTightRing:
    def test_model_finds_ring_overrun(self, tmp_path):
        result = check_kind("RD_RC_TIGHTRING_TEST", CORPUS_BOUND)
        assert not result.passed
        ring = result.status_of("ring-consistency")
        assert ring.status == "fail"
        assert "freearr" in ring.witness.message
        path = write_counterexample(result.model, ring.witness,
                                    str(tmp_path))
        trace = json.load(open(path))
        assert trace["otherData"]["model"] == "RD_RC_TIGHTRING_TEST"

    def test_runtime_sanitizer_flags_ring_overrun(self):
        cluster = make_cluster()
        san = cluster.enable_sanitizer()
        cfg = EndpointConfig(message_size=1024, buffers_per_connection=4)
        run_stage_query(cluster, TIGHTRING_DESIGN, rows_per_node=600,
                        config=cfg)
        assert "ring-overrun" in rules_of(san)
        first = next(v for v in san.violations if v.rule == "ring-overrun")
        assert first.details["outstanding"] > 1


def test_corpus_kinds_stay_out_of_default_sweeps():
    from repro.analysis.model import modeled_kinds
    default = modeled_kinds()
    assert not any(k.endswith("_TEST") for k in default)
    everything = modeled_kinds(include_test=True)
    for kind in ("SR_RC_LEAK_TEST", "SR_RC_OVERGRANT_TEST",
                 "RD_RC_TIGHTRING_TEST"):
        assert kind in everything
