"""Fault injection: one planted bug per runtime sanitizer rule.

Every rule in ``repro.analysis.sanitizer.RUNTIME_RULES`` gets a negative
test that deliberately breaks the corresponding protocol invariant and
asserts the sanitizer reports *exactly that rule* — the companion to the
clean-tree conformance tests in test_sanitizer.py.
"""

from types import SimpleNamespace

import pytest

from repro import ClusterConfig, EDR, EndpointConfig
from repro.analysis import RUNTIME_RULES, Sanitizer, attach_sanitizer
from repro.core.designs import Design, register_endpoint_kind
from repro.core.sr_rc import SRRCReceiveEndpoint, SRRCSendEndpoint
from repro.core.transport.connections import PeerConnection
from repro.core.transport.credit import RingBoard, post_credit_word
from repro.core.transport.rings import RingCursor, post_ring_write
from repro.fabric import ClusterConfig as FabricClusterConfig
from repro.fabric import Fabric
from repro.memory import BufferPool
from repro.sim import Simulator
from repro.verbs import (
    AddressHandle,
    Opcode,
    QPType,
    RecvWR,
    SendWR,
    VerbsContext,
    VerbsError,
    WorkCompletion,
)
from repro.verbs.constants import QPState

from tests.test_endpoints import make_cluster, run_stage_query


@pytest.fixture
def sim():
    return Simulator()


def sanitized_cluster(sim, nodes=2):
    """A bare fabric + contexts with an attached (non-strict) sanitizer."""
    cluster = FabricClusterConfig(network=EDR, num_nodes=nodes)
    cluster = cluster.with_network(ud_jitter_ns=0)
    fabric = Fabric(sim, cluster)
    ctxs = [VerbsContext(sim, fabric, i) for i in range(nodes)]
    san = attach_sanitizer(fabric, Sanitizer(sim))
    return fabric, ctxs, san


def rc_pair(ctxs, a=0, b=1):
    cqs, qps = [], []
    for ctx in (ctxs[a], ctxs[b]):
        cq = ctx.create_cq()
        qp = ctx.create_qp(QPType.RC, cq, cq)
        cqs.append(cq)
        qps.append(qp)
    qps[0].connect(AddressHandle(ctxs[b].node_id, qps[1].qpn))
    qps[1].connect(AddressHandle(ctxs[a].node_id, qps[0].qpn))
    return qps, cqs


def rules_of(san):
    return [v.rule for v in san.violations]


class TestQPStateRule:
    def test_post_send_before_connect(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        cq = ctxs[0].create_cq()
        qp = ctxs[0].create_qp(QPType.RC, cq, cq)
        pool = BufferPool(ctxs[0], 1, 64)
        with pytest.raises(VerbsError):
            qp.post_send(SendWR(wr_id="x", opcode=Opcode.SEND,
                                buffer=pool.buffers[0], length=64))
        assert rules_of(san) == ["qp-state"]
        assert san.violations[0].details["state"] == "INIT"

    def test_post_send_on_unconnected_rts_qp(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        cq = ctxs[0].create_cq()
        qp = ctxs[0].create_qp(QPType.RC, cq, cq)
        qp.state = QPState.RTS  # forged transition: RTS with no peer
        with pytest.raises(VerbsError):
            qp.post_send(SendWR(wr_id="x", opcode=Opcode.SEND, length=16))
        assert rules_of(san) == ["qp-state"]
        assert "unconnected" in san.violations[0].message

    def test_post_recv_in_error_state(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        cq = ctxs[0].create_cq()
        qp = ctxs[0].create_qp(QPType.RC, cq, cq)
        pool = BufferPool(ctxs[0], 1, 64)
        qp.state = QPState.ERROR
        with pytest.raises(VerbsError):
            qp.post_recv(RecvWR(wr_id="r", buffer=pool.buffers[0], length=64))
        assert rules_of(san) == ["qp-state"]


class TestMRLifetimeRule:
    def test_use_after_deregister(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        mr = ctxs[0].reg_mr(64)
        ctxs[0].dereg_mr(mr)
        with pytest.raises(VerbsError):
            mr.read_u64(mr.addr)
        assert rules_of(san) == ["mr-lifetime"]
        assert san.violations[0].details["kind"] == "deregistered"

    def test_out_of_bounds_write(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        mr = ctxs[0].reg_mr(64)
        with pytest.raises(VerbsError):
            mr.write_u64(mr.addr + 64, 1)  # first byte past the end
        assert rules_of(san) == ["mr-lifetime"]
        assert san.violations[0].details["kind"] == "out-of-bounds"

    def test_double_deregister(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        mr = ctxs[0].reg_mr(64)
        ctxs[0].dereg_mr(mr)
        san.violations.clear()
        with pytest.raises(VerbsError):
            ctxs[0].dereg_mr(mr)
        assert rules_of(san) == ["mr-lifetime"]
        assert san.violations[0].details["kind"] == "double-deregister"


class TestBufferReuseRule:
    def test_fill_while_send_in_flight(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        qps, cqs = rc_pair(ctxs)
        spool = BufferPool(ctxs[0], 1, 256)
        rpool = BufferPool(ctxs[1], 1, 256)
        buf, rbuf = spool.buffers[0], rpool.buffers[0]

        qps[1].post_recv(RecvWR(wr_id=rbuf, buffer=rbuf, length=256))
        buf.fill("payload", 128)  # legal: nothing in flight yet
        qps[0].post_send(SendWR(wr_id=buf, opcode=Opcode.SEND,
                                buffer=buf, length=128))
        buf.fill("overwrite", 128)  # the race: completion not yet polled
        assert rules_of(san) == ["buffer-reuse"]
        assert san.violations[0].details["outstanding"] == 1

        # After the signaled completion is polled the buffer is free again.
        sim.run()
        assert cqs[0].poll()
        buf.fill("now legal", 128)
        assert rules_of(san) == ["buffer-reuse"]


class TestCQRules:
    def test_cq_overflow(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        cq = ctxs[0].create_cq(depth=1)
        cq.push(WorkCompletion(wr_id="a", opcode=Opcode.SEND))
        with pytest.raises(VerbsError):
            cq.push(WorkCompletion(wr_id="b", opcode=Opcode.SEND))
        assert rules_of(san) == ["cq-overflow"]

    def test_double_completion(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        qps, cqs = rc_pair(ctxs)
        spool = BufferPool(ctxs[0], 1, 256)
        rpool = BufferPool(ctxs[1], 1, 256)
        buf, rbuf = spool.buffers[0], rpool.buffers[0]

        def proc():
            qps[1].post_recv(RecvWR(wr_id=rbuf, buffer=rbuf, length=256))
            buf.fill("payload", 128)
            qps[0].post_send(SendWR(wr_id=buf, opcode=Opcode.SEND,
                                    buffer=buf, length=128))
            wc = yield cqs[0].wait()  # consume the genuine completion
            return wc

        assert sim.run_process(proc()).wr_id is buf
        assert rules_of(san) == []
        # Forge a second completion for the same, now-idle buffer.
        cqs[0].push(WorkCompletion(wr_id=buf, opcode=Opcode.SEND))
        assert rules_of(san) == ["cq-double-completion"]
        assert san.violations[0].details["addr"] == buf.addr


# A send endpoint that skips the credit gate: the planted bug for the
# credit-underflow rule.  Registered once at import under a scratch kind.
class GreedySRRCSendEndpoint(SRRCSendEndpoint):
    def _wait_credit(self, conn):
        return
        yield  # pragma: no cover  (keeps this a process fragment)


register_endpoint_kind(
    "SR_RC_GREEDY_TEST", GreedySRRCSendEndpoint, SRRCReceiveEndpoint,
    description="fault injection: SR/RC sender that ignores credit")
GREEDY_DESIGN = Design("GREEDY/SR", "SR_RC_GREEDY_TEST", multi_endpoint=True)


class TestCreditUnderflowRule:
    def test_greedy_sender_flagged(self):
        cluster = make_cluster()
        san = cluster.enable_sanitizer()
        cfg = EndpointConfig(message_size=1024, buffers_per_connection=4)
        _, sinks, _ = run_stage_query(cluster, GREEDY_DESIGN,
                                      rows_per_node=2000, config=cfg)
        assert sum(len(s.result()) for s in sinks) == 2 * 2000
        assert "credit-underflow" in rules_of(san)
        first = next(v for v in san.violations
                     if v.rule == "credit-underflow")
        assert first.details["sent"] > first.details["credit"]

    def test_honest_sender_clean(self):
        cluster = make_cluster()
        san = cluster.enable_sanitizer()
        cfg = EndpointConfig(message_size=1024, buffers_per_connection=4)
        run_stage_query(cluster, "MEMQ/SR", rows_per_node=2000, config=cfg)
        assert rules_of(san) == []


class TestCreditOvergrantRule:
    def test_overgrant_flagged(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        qps, _ = rc_pair(ctxs)
        word = ctxs[0].reg_mr(8)  # the credit word lives at the sender
        conn = PeerConnection(0, endpoint=7)
        conn.qp = qps[1]
        conn.credit_addr = word.addr
        conn.posted = 1
        post_credit_word(conn)  # advertises exactly `posted`: clean
        assert rules_of(san) == []
        # A receiver advertising credit it has no Receives behind would
        # let the sender overrun the receive queue (§4.4 invariant).
        post_credit_word(conn, conn.posted + 2)
        assert rules_of(san) == ["credit-overgrant"]
        violation = san.violations[0]
        assert violation.details["value"] == 3
        assert violation.details["posted"] == 1
        assert violation.details["endpoint"] == 7


class TestRingRules:
    def test_ring_overrun(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        qps, _ = rc_pair(ctxs)
        target = ctxs[1].reg_mr(8 * 2)
        cursor = RingCursor(target.addr, cap=2)
        post_ring_write(qps[0], cursor, value=0x10, wr_id=None)
        post_ring_write(qps[0], cursor, value=0x20, wr_id=None)
        assert rules_of(san) == []  # exactly at capacity
        post_ring_write(qps[0], cursor, value=0x30, wr_id=None)
        assert rules_of(san) == ["ring-overrun"]
        assert san.violations[0].details["outstanding"] == 3

    def test_unsolicited_ring_value(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        ep = SimpleNamespace(ctx=ctxs[1], aux_mrs=[])
        seen = []

        def proc():
            board = yield from RingBoard.install(
                ep, keys=[0], cap=4,
                on_value=lambda k, v: seen.append((k, v)), name="validarr")
            return board

        board = sim.run_process(proc())
        # A value lands that no producer cursor ever posted.
        board.mr.write_u64(board.base_by_key[0], 0x1234)
        assert rules_of(san) == ["ring-board-inconsistency"]
        assert "no producer posted" in san.violations[0].message
        assert seen == [(0, 0x1234)]  # delivery itself is not suppressed

    def test_validator_rejects_foreign_address(self, sim):
        _, ctxs, san = sanitized_cluster(sim)
        qps, _ = rc_pair(ctxs)
        ep = SimpleNamespace(ctx=ctxs[1], aux_mrs=[])

        def proc():
            board = yield from RingBoard.install(
                ep, keys=[0], cap=4, on_value=lambda k, v: None,
                name="freearr",
                validator=lambda key, value: False)  # exposes nothing
            return board

        board = sim.run_process(proc())
        cursor = RingCursor(board.base_by_key[0], cap=4)
        post_ring_write(qps[0], cursor, value=0x40, wr_id=None)
        sim.run()
        assert rules_of(san) == ["ring-board-inconsistency"]
        assert "never exposed" in san.violations[0].message


def test_every_runtime_rule_has_a_fault_test():
    """Keep this file honest: one planted bug per catalogue entry."""
    import pathlib
    source = pathlib.Path(__file__).read_text()
    for rule in RUNTIME_RULES:
        assert f'"{rule}"' in source, f"no fault test mentions {rule!r}"
