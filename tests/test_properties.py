"""Property-based tests (hypothesis) for core data structures & invariants."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.groups import TransmissionGroups
from repro.core.shuffle import (
    _GroupAccumulator,
    hash_partitioner,
    striped_partitioner,
)
from repro.fabric import EDR, FDR, QPContextCache
from repro.sim import Barrier, RatePipe, Simulator
from repro.verbs.memory import AddressSpace


class TestSimulatorProperties:
    @given(delays=st.lists(st.integers(0, 10_000), min_size=1, max_size=40))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.timeout(d).add_callback(lambda _e, d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=st.lists(st.integers(0, 5_000), min_size=1, max_size=20))
    def test_all_of_completes_at_max_delay(self, delays):
        sim = Simulator()

        def proc():
            yield sim.all_of([sim.timeout(d) for d in delays])
            return sim.now

        assert sim.run_process(proc()) == max(delays)

    @given(delays=st.lists(st.integers(0, 5_000), min_size=1, max_size=20))
    def test_any_of_completes_at_min_delay(self, delays):
        sim = Simulator()

        def proc():
            yield sim.any_of([sim.timeout(d) for d in delays])
            return sim.now

        assert sim.run_process(proc()) == min(delays)

    @given(parties=st.integers(1, 12))
    def test_barrier_releases_everyone_together(self, parties):
        sim = Simulator()
        barrier = Barrier(sim, parties)
        times = []

        def waiter(i):
            yield sim.timeout(i * 10)
            yield barrier.arrive()
            times.append(sim.now)

        for i in range(parties):
            sim.process(waiter(i))
        sim.run()
        assert len(set(times)) == 1
        assert times[0] == (parties - 1) * 10


class TestRatePipeProperties:
    @given(sizes=st.lists(st.integers(1, 1_000_000), min_size=1,
                          max_size=30),
           rate=st.floats(0.5, 20.0))
    def test_fifo_serialization_conserves_work(self, sizes, rate):
        sim = Simulator()
        pipe = RatePipe(sim, rate)
        completions = []
        for size in sizes:
            pipe.transmit(size).add_callback(
                lambda _e: completions.append(sim.now))
        sim.run()
        # FIFO: completion times nondecreasing.
        assert completions == sorted(completions)
        # Total busy time is at least the work divided by the rate.
        assert completions[-1] >= int(sum(s / rate for s in sizes)) - len(sizes)
        assert pipe.total_units == sum(sizes)


class TestQPCacheProperties:
    @given(capacity=st.integers(1, 32),
           accesses=st.lists(st.integers(0, 64), min_size=1, max_size=300))
    def test_occupancy_bounded_and_counts_consistent(self, capacity,
                                                     accesses):
        cache = QPContextCache(capacity)
        for qpn in accesses:
            cache.touch(qpn)
        assert cache.occupancy <= capacity
        assert cache.hits + cache.misses == len(accesses)
        assert cache.misses >= len(set(accesses[:capacity]) | set())
        # Working set within capacity => only compulsory misses.
        if len(set(accesses)) <= capacity:
            assert cache.misses == len(set(accesses))


class TestPartitionerProperties:
    @given(keys=st.lists(st.integers(0, 1 << 60), min_size=1, max_size=500),
           groups=st.integers(1, 16))
    def test_hash_partitioner_range_and_determinism(self, keys, groups):
        batch = np.array(keys, dtype=np.int64)
        part = hash_partitioner(lambda b: b, groups)
        a = part(batch)
        b = part(batch)
        np.testing.assert_array_equal(a, b)
        assert ((a >= 0) & (a < groups)).all()

    @given(rows=st.integers(1, 2000), groups=st.integers(1, 16),
           calls=st.integers(1, 5))
    def test_striped_partitioner_is_exact_partition(self, rows, groups,
                                                    calls):
        batch = np.arange(rows, dtype=np.int64)
        part = striped_partitioner(groups)
        for _ in range(calls):
            pieces = list(part.split(batch))
            covered = np.concatenate([p for _g, p in pieces])
            np.testing.assert_array_equal(np.sort(covered), batch)
            sizes = [len(p) for _g, p in pieces]
            assert max(sizes) - min(sizes) <= 1
            assert len({g for g, _p in pieces}) == len(pieces)

    @given(appends=st.lists(st.integers(1, 100), min_size=1, max_size=30),
           chunk=st.integers(1, 64))
    def test_group_accumulator_take_preserves_order(self, appends, chunk):
        acc = _GroupAccumulator()
        expected = []
        counter = 0
        for n in appends:
            arr = np.arange(counter, counter + n, dtype=np.int64)
            counter += n
            acc.append(arr)
            expected.extend(arr.tolist())
        taken = []
        while acc.rows >= chunk:
            part = acc.take(chunk)
            assert len(part) == chunk
            taken.extend(part.tolist())
        if acc.rows:
            taken.extend(acc.take(acc.rows).tolist())
        assert taken == expected
        assert acc.rows == 0


class TestGroupProperties:
    @given(n=st.integers(1, 32))
    def test_repartition_covers_every_node_once(self, n):
        g = TransmissionGroups.repartition(n)
        assert g.all_destinations == tuple(range(n))
        assert g.num_groups == n
        assert g.fanout == 1

    @given(n=st.integers(2, 32), exclude=st.integers(0, 31))
    def test_broadcast_excludes_exactly_one(self, n, exclude):
        exclude = exclude % n
        g = TransmissionGroups.broadcast(n, exclude=exclude)
        assert exclude not in g.all_destinations
        assert len(g.all_destinations) == n - 1


class TestMemoryProperties:
    @given(values=st.lists(
        st.tuples(st.integers(0, 120), st.integers(0, 1 << 62)),
        min_size=1, max_size=50))
    def test_word_store_last_write_wins(self, values):
        space = AddressSpace(0)
        mr = space.register(1024)
        expected = {}
        for offset, value in values:
            addr = mr.addr + offset * 8
            mr.write_u64(addr, value)
            expected[addr] = value
        for addr, value in expected.items():
            assert mr.read_u64(addr) == value

    @given(lengths=st.lists(st.integers(1, 10_000), min_size=1,
                            max_size=30))
    def test_registration_accounting_balances(self, lengths):
        space = AddressSpace(0)
        mrs = [space.register(length) for length in lengths]
        assert space.registered_bytes == sum(lengths)
        assert space.peak_registered_bytes == sum(lengths)
        for mr in mrs:
            space.deregister(mr)
        assert space.registered_bytes == 0
        assert space.peak_registered_bytes == sum(lengths)

    @given(lengths=st.lists(st.integers(1, 1000), min_size=2, max_size=20))
    def test_regions_never_overlap(self, lengths):
        space = AddressSpace(0)
        mrs = [space.register(length) for length in lengths]
        spans = sorted((mr.addr, mr.addr + mr.length) for mr in mrs)
        for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
            assert hi1 <= lo2


class TestWireBytesProperties:
    @given(payload=st.integers(0, 1 << 26))
    def test_wire_bytes_monotone_and_bounded(self, payload):
        for net in (EDR, FDR):
            rc = net.wire_bytes(payload, "RC")
            assert rc >= payload
            assert rc <= payload + (payload // net.mtu + 1) * net.rc_header_bytes
            if payload <= net.mtu:
                ud = net.wire_bytes(payload, "UD")
                assert ud == payload + net.ud_header_bytes
