"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_succeed_fires_callbacks_with_value(self, sim):
        seen = []
        ev = sim.event()
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed(42)
        sim.run()
        assert seen == [42]

    def test_succeed_twice_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimError):
            ev.succeed()

    def test_callback_on_processed_event_still_runs(self, sim):
        ev = sim.event()
        ev.succeed("late")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["late"]

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimError):
            ev.fail("not an exception")

    def test_delayed_succeed(self, sim):
        ev = sim.event()
        times = []
        ev.add_callback(lambda e: times.append(sim.now))
        ev.succeed(delay=500)
        sim.run()
        assert times == [500]


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(100)
            yield sim.timeout(250)
            return sim.now

        assert sim.run_process(proc()) == 350

    def test_zero_timeout_allowed(self, sim):
        def proc():
            yield sim.timeout(0)
            return sim.now

        assert sim.run_process(proc()) == 0

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimError):
            sim.timeout(-1)

    def test_timeout_carries_value(self, sim):
        def proc():
            got = yield sim.timeout(10, value="payload")
            return got

        assert sim.run_process(proc()) == "payload"


class TestProcess:
    def test_return_value_propagates(self, sim):
        def proc():
            yield sim.timeout(1)
            return "done"

        assert sim.run_process(proc()) == "done"

    def test_exception_propagates(self, sim):
        def proc():
            yield sim.timeout(1)
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            sim.run_process(proc())

    def test_failed_event_thrown_into_process(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        ev.fail(RuntimeError("net error"))
        assert sim.run_process(proc()) == "caught net error"

    def test_process_is_waitable_event(self, sim):
        def child():
            yield sim.timeout(100)
            return "child result"

        def parent():
            result = yield sim.process(child())
            return (sim.now, result)

        assert sim.run_process(parent()) == (100, "child result")

    def test_yielding_non_event_is_error(self, sim):
        def proc():
            yield 42

        with pytest.raises(SimError, match="must.*yield Event"):
            sim.run_process(proc())

    def test_unobserved_process_failure_raises_from_run(self, sim):
        def proc():
            yield sim.timeout(5)
            raise KeyError("lost")

        sim.process(proc())
        with pytest.raises(KeyError):
            sim.run()

    def test_interleaving_is_deterministic(self, sim):
        order = []

        def proc(name, delays):
            for d in delays:
                yield sim.timeout(d)
                order.append((sim.now, name))

        sim.process(proc("a", [10, 10]))
        sim.process(proc("b", [5, 10]))
        sim.run()
        assert order == [(5, "b"), (10, "a"), (15, "b"), (20, "a")]

    def test_same_time_events_fire_in_schedule_order(self, sim):
        order = []

        def proc(name):
            yield sim.timeout(10)
            order.append(name)

        sim.process(proc("first"))
        sim.process(proc("second"))
        sim.run()
        assert order == ["first", "second"]


class TestInterrupt:
    def test_interrupt_wakes_waiting_process(self, sim):
        forever = sim.event()

        def proc():
            try:
                yield forever
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        p = sim.process(proc())
        sim.call_at(77, lambda: p.interrupt("deadline"))
        assert sim.run_process(p_wait(sim, p)) == ("interrupted", "deadline", 77)

    def test_interrupting_finished_process_raises(self, sim):
        def proc():
            yield sim.timeout(1)

        p = sim.process(proc())
        sim.run()
        with pytest.raises(SimError):
            p.interrupt()

    def test_stale_event_after_interrupt_is_ignored(self, sim):
        slow = sim.timeout(1000)

        def proc():
            try:
                yield slow
                return "slow won"
            except Interrupt:
                yield sim.timeout(2000)
                return "resumed after interrupt"

        p = sim.process(proc())
        sim.call_at(10, lambda: p.interrupt())
        sim.run()
        assert p.value == "resumed after interrupt"


def p_wait(sim, proc):
    """Helper process: wait for proc and return its value."""
    result = yield proc
    return result


class TestConditions:
    def test_any_of_returns_first(self, sim):
        def proc():
            fast = sim.timeout(10, value="fast")
            slow = sim.timeout(100, value="slow")
            event, value = yield AnyOf(sim, [fast, slow])
            return (sim.now, value)

        assert sim.run_process(proc()) == (10, "fast")

    def test_all_of_waits_for_all(self, sim):
        def proc():
            values = yield AllOf(
                sim, [sim.timeout(10, "a"), sim.timeout(30, "b"), sim.timeout(20, "c")]
            )
            return (sim.now, values)

        assert sim.run_process(proc()) == (30, ["a", "b", "c"])

    def test_empty_all_of_fires_immediately(self, sim):
        def proc():
            values = yield AllOf(sim, [])
            return values

        assert sim.run_process(proc()) == []

    def test_any_of_failure_propagates(self, sim):
        bad = sim.event()

        def proc():
            yield AnyOf(sim, [sim.timeout(100), bad])

        bad.fail(OSError("link down"))
        with pytest.raises(OSError):
            sim.run_process(proc())


class TestRunUntil:
    def test_run_until_stops_clock(self, sim):
        ticks = []

        def proc():
            while True:
                yield sim.timeout(10)
                ticks.append(sim.now)

        sim.process(proc())
        assert sim.run(until=35) == 35
        assert ticks == [10, 20, 30]

    def test_run_returns_final_time(self, sim):
        def proc():
            yield sim.timeout(123)

        sim.process(proc())
        assert sim.run() == 123

    def test_run_process_detects_deadlock(self, sim):
        def proc():
            yield sim.event()  # nobody ever triggers this

        with pytest.raises(SimError, match="deadlock"):
            sim.run_process(proc())

    def test_call_at(self, sim):
        fired = []
        sim.call_at(42, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [42]
