"""Unit tests for the explicit switch/route layer (fabric.topology)."""

import pytest

from repro.cluster import Cluster
from repro.bench.workloads import run_repartition
from repro.fabric import (
    DUAL_RAIL,
    EDR,
    LEAF_SPINE,
    SINGLE_SWITCH,
    ClusterConfig,
    Fabric,
    Packet,
    TopologySpec,
    parse_topology,
)
from repro.fabric.config import default_topology, set_default_topology
from repro.fabric.topology import Hop, Topology
from repro.sim import Simulator

MIB = 1 << 20


def make_topology(spec, nodes=8, network=EDR):
    return Topology(Simulator(), spec, network, nodes)


class TestTopologySpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TopologySpec("fat-tree")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TopologySpec("leaf-spine", oversubscription=0)
        with pytest.raises(ValueError):
            TopologySpec("leaf-spine", nodes_per_leaf=0)
        with pytest.raises(ValueError):
            TopologySpec("dual-rail", rails=0)

    def test_describe(self):
        assert "full bisection" in SINGLE_SWITCH.describe()
        assert "4:1" in LEAF_SPINE(oversubscription=4).describe()
        assert "2 planes" in DUAL_RAIL.describe()

    def test_parse_topology_forms(self):
        assert parse_topology("single-switch") == SINGLE_SWITCH
        assert parse_topology("dual-rail") == DUAL_RAIL
        assert parse_topology("leaf-spine") == LEAF_SPINE()
        assert parse_topology("leaf-spine:4") == LEAF_SPINE(oversubscription=4)
        assert parse_topology("leaf-spine:2:8") == LEAF_SPINE(
            oversubscription=2, nodes_per_leaf=8)

    def test_parse_topology_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_topology("clos")
        with pytest.raises(ValueError):
            parse_topology("single-switch:2")
        with pytest.raises(ValueError):
            parse_topology("dual-rail:3")

    def test_default_topology_is_single_switch(self):
        assert default_topology() == SINGLE_SWITCH
        assert ClusterConfig(network=EDR, num_nodes=2).topology == \
            SINGLE_SWITCH

    def test_set_default_topology_retargets_new_configs(self):
        previous = set_default_topology(DUAL_RAIL)
        try:
            assert ClusterConfig(network=EDR, num_nodes=2).topology == \
                DUAL_RAIL
        finally:
            set_default_topology(previous)
        assert ClusterConfig(network=EDR, num_nodes=2).topology == \
            SINGLE_SWITCH

    def test_with_topology(self):
        config = ClusterConfig(network=EDR, num_nodes=4)
        derived = config.with_topology(DUAL_RAIL)
        assert derived.topology == DUAL_RAIL
        assert config.topology == SINGLE_SWITCH


class TestHop:
    def test_rejects_float_latency(self):
        # The Hop constructor is the single int-ns rounding boundary.
        with pytest.raises(TypeError):
            Hop(None, 1000.0)

    def test_rejects_bool_and_negative(self):
        with pytest.raises(TypeError):
            Hop(None, True)
        with pytest.raises(ValueError):
            Hop(None, -1)


class TestSingleSwitch:
    def test_loopback_route_is_empty(self):
        topo = make_topology(SINGLE_SWITCH)
        assert topo.route(3, 3).hops == ()

    def test_unicast_is_one_portless_hop(self):
        topo = make_topology(SINGLE_SWITCH)
        (hop,) = topo.route(0, 5).hops
        assert hop.port is None
        assert hop.latency_ns == EDR.switch_latency_ns

    def test_all_pairs_share_one_hop_object(self):
        # Hop identity is what multicast uses to find the replication
        # point — the degenerate fabric must present a single switch.
        topo = make_topology(SINGLE_SWITCH)
        hops = {topo.route(s, d).hops[0]
                for s in range(4) for d in range(4) if s != d}
        assert len(hops) == 1

    def test_no_trunk_ports(self):
        topo = make_topology(SINGLE_SWITCH)
        assert topo.ports() == []
        assert len(topo.switches) == 1


class TestLeafSpine:
    def test_same_leaf_matches_single_switch_shape(self):
        topo = make_topology(LEAF_SPINE(oversubscription=4))
        (hop,) = topo.route(0, 3).hops  # both on leaf0
        assert hop.port is None
        assert hop.latency_ns == EDR.switch_latency_ns

    def test_cross_leaf_pays_three_switches_and_two_trunks(self):
        topo = make_topology(LEAF_SPINE(oversubscription=2))
        up, spine, down = topo.route(0, 6).hops  # leaf0 -> leaf1
        assert up.port.name == "leaf0.up"
        assert spine.port is None
        assert down.port.name == "spine0.down1"

    def test_trunk_rate_scales_with_oversubscription(self):
        for k in (1, 2, 4):
            topo = make_topology(LEAF_SPINE(oversubscription=k))
            up = topo.route(0, 6).hops[0]
            assert up.port.pipe.rate == pytest.approx(
                4 * EDR.link_bytes_per_ns / k)

    def test_cross_leaf_pairs_share_trunk_ports(self):
        topo = make_topology(LEAF_SPINE())
        a = topo.route(0, 4).hops
        b = topo.route(1, 7).hops
        assert a[0].port is b[0].port  # leaf0.up
        assert a[2].port is b[2].port  # spine0.down1

    def test_single_leaf_cluster_has_no_spine(self):
        topo = make_topology(LEAF_SPINE(nodes_per_leaf=8), nodes=8)
        assert [s.name for s in topo.switches] == ["leaf0"]
        assert topo.ports() == []
        (hop,) = topo.route(0, 7).hops
        assert hop.port is None


class TestDualRail:
    def test_rail_striping_by_parity(self):
        topo = make_topology(DUAL_RAIL)
        (even,) = topo.route(0, 2).hops
        (odd,) = topo.route(0, 3).hops
        assert even.port.name == "rail0.out2"
        assert odd.port.name == "rail1.out3"

    def test_loopback_route_is_empty(self):
        topo = make_topology(DUAL_RAIL)
        assert topo.route(2, 2).hops == ()

    def test_incast_converges_on_one_output_port(self):
        # Two senders hitting one destination over the same rail
        # serialize at its output port before reaching the NIC.
        topo = make_topology(DUAL_RAIL)
        (a,) = topo.route(0, 2).hops
        (b,) = topo.route(4, 2).hops
        assert a.port is b.port


class TestMulticastRoute:
    def test_single_switch_replicates_at_the_switch(self):
        topo = make_topology(SINGLE_SWITCH)
        trunk, legs = topo.mcast_route(0, (1, 2, 3))
        assert trunk == ()
        assert all(len(hops) == 1 for hops in legs.values())

    def test_leaf_spine_shares_the_trunk_to_a_remote_leaf(self):
        topo = make_topology(LEAF_SPINE())
        trunk, legs = topo.mcast_route(0, (4, 5, 6))
        # All members behind leaf1: the uplink and the spine traversal
        # are walked once; each replica pays the spine0.down1 hop.
        assert len(trunk) == 2
        assert trunk[0].port.name == "leaf0.up"
        assert all(hops == (topo.route(0, 4).hops[2],)
                   for hops in legs.values())

    def test_mixed_membership_replicates_at_the_source_leaf(self):
        topo = make_topology(LEAF_SPINE())
        trunk, legs = topo.mcast_route(0, (1, 4))
        # Member 1 is same-leaf, member 4 is cross-leaf: nothing beyond
        # the sender's leaf is common, so legs carry the full paths.
        assert trunk == ()
        assert len(legs[1]) == 1
        assert len(legs[4]) == 3

    def test_empty_membership(self):
        topo = make_topology(SINGLE_SWITCH)
        assert topo.mcast_route(0, ()) == ((), {})


class TestEndToEnd:
    def test_repartition_completes_on_leaf_spine(self):
        cluster = Cluster(ClusterConfig(
            network=EDR, num_nodes=8,
            topology=LEAF_SPINE(oversubscription=4)))
        result = run_repartition(cluster, "MESQ/SR",
                                 bytes_per_node=2 * MIB)
        assert result.receive_throughput_gib_per_node() > 0
        assert cluster.fabric.delivered_messages > 0
        # The trunks carried the cross-leaf share of the shuffle.
        assert all(p.pipe.total_units > 0
                   for p in cluster.fabric.topology.ports())

    def test_repartition_completes_on_dual_rail(self):
        cluster = Cluster(ClusterConfig(
            network=EDR, num_nodes=4, topology=DUAL_RAIL))
        result = run_repartition(cluster, "MEMQ/SR",
                                 bytes_per_node=2 * MIB)
        assert result.receive_throughput_gib_per_node() > 0
        carried = [p for p in cluster.fabric.topology.ports()
                   if p.pipe.total_units > 0]
        assert carried  # striped traffic reached the rail output ports

    def test_oversubscription_slows_cross_leaf_traffic(self):
        def elapsed(k):
            sim = Simulator()
            fabric = Fabric(sim, ClusterConfig(
                network=EDR, num_nodes=8,
                topology=LEAF_SPINE(oversubscription=k)))

            def proc():
                # Cross-leaf transfer: must squeeze through leaf0.up.
                pkt = Packet(0, 4, 1, 2, "SEND", 4 * MIB, 4 * MIB)
                yield fabric.route(pkt)
                return sim.now

            return sim.run_process(proc())

        assert elapsed(4) > elapsed(1)

    def test_snapshot_reports_topology_ports(self):
        cluster = Cluster(ClusterConfig(
            network=EDR, num_nodes=8,
            topology=LEAF_SPINE(oversubscription=2)))
        run_repartition(cluster, "MESQ/SR", bytes_per_node=2 * MIB)
        fabric = cluster.metrics_snapshot()["fabric"]
        assert fabric["topology.kind"] == "leaf-spine"
        ports = fabric["topology.ports"]
        assert set(ports) == {"leaf0.up", "leaf1.up",
                              "spine0.down0", "spine0.down1"}
        for stats in ports.values():
            assert stats["bytes"] > 0
            assert 0.0 <= stats["utilization"] <= 1.0

    def test_single_switch_snapshot_has_no_ports_key(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
        run_repartition(cluster, "MESQ/SR", bytes_per_node=2 * MIB)
        fabric = cluster.metrics_snapshot()["fabric"]
        assert fabric["topology.kind"] == "single-switch"
        assert "topology.ports" not in fabric

    def test_trace_names_switches_as_pseudo_processes(self):
        cluster = Cluster(ClusterConfig(
            network=EDR, num_nodes=8,
            topology=LEAF_SPINE(oversubscription=2)))
        tracer = cluster.enable_tracing()
        run_repartition(cluster, "MESQ/SR", bytes_per_node=2 * MIB)
        meta = {e["args"]["name"]: e["pid"]
                for e in tracer.to_dict()["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        # Switches trace under their graph names, after the real nodes.
        assert meta["leaf0"] == 8 and meta["spine0"] == 10
        spans = [e for e in tracer.to_dict()["traceEvents"]
                 if e.get("pid") in (8, 9, 10) and e["ph"] == "B"]
        assert spans  # trunk forwarding was recorded
