"""Runtime sanitizer: clean-tree conformance and zero-overhead contract.

Three guarantees, per design:

* every built-in endpoint design runs sanitizer-clean (the protocol
  invariants of §4.2/§4.4 actually hold);
* the sanitizer never perturbs the simulation — simulated end time and
  metrics snapshots are bit-identical with it on or off;
* violations flow into the telemetry session (``repro-bench --sanitize``)
  and, when tracing, onto a per-node trace track.
"""

import pytest

from repro import Cluster, ClusterConfig, EDR
from repro.analysis import ProtocolViolationError
from repro.bench import cli as bench_cli
from repro.telemetry.session import session
from repro.verbs import VerbsError

from tests.test_determinism import DESIGN_NAMES
from tests.test_endpoints import make_cluster, run_stage_query


def run_once(design, sanitize, rows_per_node=1500):
    cluster = make_cluster()
    san = cluster.enable_sanitizer() if sanitize else None
    _, sinks, _ = run_stage_query(cluster, design,
                                  rows_per_node=rows_per_node)
    cluster.run()  # drain trailing completions
    got = sum(len(s.result()) for s in sinks if s.result() is not None)
    assert got == cluster.num_nodes * rows_per_node
    return cluster.metrics_snapshot(), cluster.sim.now, san


def first_context(cluster):
    return next(iter(cluster.fabric.verbs_contexts.values()))


@pytest.mark.parametrize("design", DESIGN_NAMES)
def test_designs_are_clean_and_sanitizer_is_invisible(design):
    """Conformance + invariance in one pass: the design runs clean, and
    the sanitized run is bit-identical to the unsanitized one."""
    plain_snapshot, plain_now, _ = run_once(design, sanitize=False)
    snapshot, now, san = run_once(design, sanitize=True)
    assert san.violations == []
    san.assert_clean()  # must not raise
    assert san.report() == "sanitizer: clean (0 violations)"
    assert now == plain_now, "sanitizer perturbed simulated time"
    assert snapshot == plain_snapshot, "sanitizer perturbed metrics"


class TestWiring:
    def test_off_by_default(self):
        cluster = make_cluster()
        assert cluster.sanitizer is None
        assert cluster.fabric.sanitizer is None
        ctx = first_context(cluster)
        assert ctx.sanitizer is None
        assert ctx.memory.sanitizer is None

    def test_enable_is_idempotent_and_reaches_existing_objects(self):
        cluster = make_cluster()
        ctx = first_context(cluster)
        cq = ctx.create_cq()
        mr = ctx.reg_mr(64)  # created before enable_sanitizer()
        san = cluster.enable_sanitizer()
        assert cluster.enable_sanitizer() is san
        assert ctx.sanitizer is san
        assert cq.sanitizer is san
        assert mr.sanitizer is san
        # ... and objects created afterwards inherit it too.
        assert ctx.create_cq().sanitizer is san
        assert ctx.reg_mr(64).sanitizer is san

    def test_strict_mode_raises_at_first_violation(self):
        cluster = make_cluster()
        cluster.enable_sanitizer(strict=True)
        ctx = first_context(cluster)
        mr = ctx.reg_mr(64)
        ctx.dereg_mr(mr)
        with pytest.raises(ProtocolViolationError, match="mr-lifetime"):
            mr.read_u64(mr.addr)

    def test_violations_mirror_onto_trace(self):
        cluster = make_cluster()
        tracer = cluster.enable_tracing()
        cluster.enable_sanitizer()
        ctx = first_context(cluster)
        mr = ctx.reg_mr(64)
        ctx.dereg_mr(mr)
        with pytest.raises(VerbsError):
            mr.read_u64(mr.addr)
        instants = [e for e in tracer.events
                    if e.get("cat") == "sanitizer"]
        assert len(instants) == 1
        assert instants[0]["name"] == "mr-lifetime"

    def test_violation_str_carries_simulated_timestamp(self):
        cluster = make_cluster()
        san = cluster.enable_sanitizer()
        san.record("qp-state", "planted", node_id=1)
        text = str(san.violations[0])
        assert text.startswith("[qp-state] t=0ns node=1: planted")


class TestSessionIntegration:
    def test_session_auto_enables_and_drains_violations(self):
        with session(sanitize=True) as sess:
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
            assert cluster.sanitizer is not None
            ctx = first_context(cluster)
            mr = ctx.reg_mr(64)
            ctx.dereg_mr(mr)
            with pytest.raises(VerbsError):
                mr.read_u64(mr.addr)
            assert sess.violation_count == 1
            sess.checkpoint("phase-one")
            # The run is sealed: its sanitizer is drained into the log
            # (no double counting), while the cluster keeps its own copy.
            assert cluster.sanitizer not in sess.sanitizers
            assert sess.violation_count == 1
            assert len(cluster.sanitizer.violations) == 1
            report = sess.sanitizer_report()
            assert "mr-lifetime" in report
            # A second cluster in the same session is sanitized too.
            second = Cluster(ClusterConfig(network=EDR, num_nodes=2))
            assert second.sanitizer is not None
            assert second.sanitizer is not cluster.sanitizer

    def test_session_without_sanitize_stays_off(self):
        with session() as _:
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
            assert cluster.sanitizer is None


class TestBenchCLI:
    def test_sanitize_flag_reaches_the_cluster_and_reports(self, monkeypatch,
                                                           capsys):
        seen = {}

        def tiny(scale=1.0, nodes=None):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
            seen["sanitizer"] = cluster.sanitizer
            return []

        monkeypatch.setattr(bench_cli, "ALL_EXPERIMENTS", {"tiny": tiny})
        assert bench_cli.main(["tiny", "--sanitize"]) == 0
        assert seen["sanitizer"] is not None
        assert "sanitizer" in capsys.readouterr().err

    def test_violation_forces_nonzero_exit(self, monkeypatch, capsys):
        def bad(scale=1.0, nodes=None):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
            cluster.sanitizer.record("qp-state", "planted", node_id=0)
            return []

        monkeypatch.setattr(bench_cli, "ALL_EXPERIMENTS", {"bad": bad})
        assert bench_cli.main(["bad", "--sanitize"]) == 1
        assert "qp-state" in capsys.readouterr().err

    def test_without_flag_cluster_is_unsanitized(self, monkeypatch):
        seen = {}

        def tiny(scale=1.0, nodes=None):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
            seen["sanitizer"] = cluster.sanitizer
            return []

        monkeypatch.setattr(bench_cli, "ALL_EXPERIMENTS", {"tiny": tiny})
        assert bench_cli.main(["tiny"]) == 0
        assert seen["sanitizer"] is None
