"""Tests for the stage wiring and the connection-manager layer."""

import pytest

from repro import Cluster, ClusterConfig, EDR, EndpointConfig, TransmissionGroups
from repro.core.stage import ShuffleStage, get_context
from repro.verbs.cm import EndpointRegistry
from repro.verbs import VerbsError


def make_cluster(nodes=3, threads=2):
    return Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                 threads_per_node=threads))


class TestEndpointRegistry:
    def test_publish_lookup_roundtrip(self):
        reg = EndpointRegistry()
        reg.publish(("ep", 1), {"qpn": 42})
        assert reg.lookup(("ep", 1)) == {"qpn": 42}
        assert ("ep", 1) in reg

    def test_double_publish_rejected(self):
        reg = EndpointRegistry()
        reg.publish("x", 1)
        with pytest.raises(VerbsError, match="already published"):
            reg.publish("x", 2)

    def test_missing_lookup_raises(self):
        reg = EndpointRegistry()
        with pytest.raises(VerbsError, match="not been published"):
            reg.lookup("ghost")


class TestStageWiring:
    def test_send_endpoints_pair_with_same_index_receivers(self):
        cluster = make_cluster()
        groups = TransmissionGroups.repartition(3)
        stage = ShuffleStage(cluster.fabric, "MEMQ/SR", groups,
                             threads=2, registry=cluster.registry)
        # ME with t=2: send ep j on node s peers with recv ep j on dest d.
        for s in range(3):
            for j, ep in enumerate(stage.send_endpoints[s]):
                for d in range(3):
                    expected = stage.recv_endpoints[d][j].endpoint_id
                    assert ep.peers[d] == expected

    def test_receive_sources_are_complete(self):
        cluster = make_cluster()
        groups = TransmissionGroups.repartition(3)
        stage = ShuffleStage(cluster.fabric, "SEMQ/SR", groups,
                             threads=2, registry=cluster.registry)
        for d in range(3):
            recv = stage.recv_endpoints[d][0]
            source_nodes = sorted(node for node, _ep in recv.sources)
            assert source_nodes == [0, 1, 2]

    def test_gather_stage_receivers_only_on_targets(self):
        cluster = make_cluster()
        stage = ShuffleStage(cluster.fabric, "SEMQ/SR",
                             TransmissionGroups([(0,)]),
                             threads=2, registry=cluster.registry)
        assert list(stage.recv_endpoints) == [0]
        assert sorted(stage.send_endpoints) == [0, 1, 2]

    def test_per_node_transmission_groups(self):
        cluster = make_cluster()

        def groups_for(node):
            return TransmissionGroups.broadcast(3, exclude=node)

        stage = ShuffleStage(cluster.fabric, "SEMQ/SR", groups_for,
                             threads=2, registry=cluster.registry)
        assert stage.groups_for[0].all_destinations == (1, 2)
        assert stage.groups_for[1].all_destinations == (0, 2)
        # everyone still receives (union of all destinations).
        assert sorted(stage.recv_endpoints) == [0, 1, 2]

    def test_two_stages_share_registry_without_collision(self):
        cluster = make_cluster()
        groups = TransmissionGroups.repartition(3)
        s1 = ShuffleStage(cluster.fabric, "SEMQ/SR", groups, threads=2,
                          registry=cluster.registry)
        s2 = ShuffleStage(cluster.fabric, "MESQ/SR", groups, threads=2,
                          registry=cluster.registry)
        cluster.run_process(s1.setup())
        cluster.run_process(s2.setup())
        ids1 = {ep.endpoint_id for eps in s1.send_endpoints.values()
                for ep in eps}
        ids2 = {ep.endpoint_id for eps in s2.send_endpoints.values()
                for ep in eps}
        assert not ids1 & ids2

    def test_setup_records_per_node_time(self):
        cluster = make_cluster()
        stage = ShuffleStage(cluster.fabric, "MEMQ/SR",
                             TransmissionGroups.repartition(3),
                             threads=2, registry=cluster.registry)
        cluster.run_process(stage.setup())
        assert sorted(stage.setup_ns) == [0, 1, 2]
        assert all(ns > 0 for ns in stage.setup_ns.values())
        assert stage.max_setup_ns == max(stage.setup_ns.values())

    def test_config_resolution_for_ud(self):
        cluster = make_cluster()
        cfg = EndpointConfig(message_size=64 * 1024,
                             buffers_per_connection=2, ud_window_factor=4)
        stage = ShuffleStage(cluster.fabric, "MESQ/SR",
                             TransmissionGroups.repartition(3),
                             config=cfg, threads=2,
                             registry=cluster.registry)
        assert stage.config.message_size == EDR.mtu
        assert stage.config.buffers_per_connection == 8

    def test_get_context_is_idempotent(self):
        cluster = make_cluster()
        a = get_context(cluster.fabric, 0)
        b = get_context(cluster.fabric, 0)
        assert a is b
        assert a is cluster.contexts[0]

    def test_unknown_design_rejected(self):
        cluster = make_cluster()
        with pytest.raises(KeyError):
            ShuffleStage(cluster.fabric, "NOPE/XX",
                         TransmissionGroups.repartition(3),
                         registry=cluster.registry)
