"""Tests for the multi-tenant shuffle service: quotas, admission
policies, clamping, telemetry, and scheduler determinism."""

import json

import pytest

from repro import Cluster, ClusterConfig, FDR, TransmissionGroups
from repro.core.designs import DESIGNS
from repro.core.endpoint import EndpointConfig
from repro.service import (
    FairSharePolicy,
    FifoPolicy,
    POLICIES,
    QuotaExceededError,
    QuotaManager,
    ServiceConfig,
    ShuffleService,
    TenantSpec,
    estimate_footprint,
)
from repro.verbs import QPType


def make_cluster(nodes=4, threads=2, qp_cache_entries=None, network=FDR):
    config = ClusterConfig(network=network, num_nodes=nodes,
                           threads_per_node=threads)
    if qp_cache_entries is not None:
        config = config.with_network(qp_cache_entries=qp_cache_entries)
    return Cluster(config)


def run_service(cluster, tenants, policy=None, quotas=None, **cfg):
    service = ShuffleService(
        cluster, tenants, policy=policy, quotas=quotas,
        config=ServiceConfig(**cfg) if cfg else None)
    report = service.run()
    return service, report


FAST = dict(bytes_per_job=256 << 10, mean_interarrival_ns=1_000_000, jobs=2)


class TestQuotaHooks:
    """The verbs-layer backstop: hard caps raise at creation time."""

    def test_qp_cap_enforced_at_verbs_layer(self):
        cluster = make_cluster(nodes=2)
        quotas = QuotaManager()
        quotas.set_quota("t", max_qps=1)
        cluster.enable_quotas(quotas)
        ctx = cluster.contexts[0]
        cq = ctx.create_cq()
        ctx.create_qp(QPType.RC, cq, cq, tenant="t")
        with pytest.raises(QuotaExceededError, match="QP cap"):
            ctx.create_qp(QPType.RC, cq, cq, tenant="t")
        usage = quotas.usage("t")
        assert usage.qps == 1
        assert usage.qp_denials == 1
        # The refused QP must not leak into the context.
        assert len(ctx._qps) == 1

    def test_mr_cap_enforced_at_verbs_layer(self):
        cluster = make_cluster(nodes=2)
        quotas = QuotaManager()
        quotas.set_quota("t", max_registered_bytes=4096)
        cluster.enable_quotas(quotas)
        ctx = cluster.contexts[0]
        ctx.reg_mr(4096, tenant="t")
        with pytest.raises(QuotaExceededError, match="registered-memory"):
            ctx.reg_mr(1, tenant="t")
        usage = quotas.usage("t")
        assert usage.registered_bytes == 4096
        assert usage.mr_denials == 1

    def test_untagged_resources_are_never_charged(self):
        cluster = make_cluster(nodes=2)
        quotas = QuotaManager()
        quotas.set_quota("t", max_qps=0, max_registered_bytes=0)
        cluster.enable_quotas(quotas)
        ctx = cluster.contexts[0]
        cq = ctx.create_cq()
        ctx.create_qp(QPType.RC, cq, cq)
        ctx.reg_mr(1 << 20)
        assert quotas.usage("t").qps == 0
        assert quotas.usage("t").registered_bytes == 0

    def test_destroy_and_dereg_release_usage(self):
        cluster = make_cluster(nodes=2)
        quotas = QuotaManager()
        cluster.enable_quotas(quotas)
        ctx = cluster.contexts[0]
        cq = ctx.create_cq()
        qp = ctx.create_qp(QPType.RC, cq, cq, tenant="t")
        mr = ctx.reg_mr(4096, tenant="t")
        assert quotas.usage("t").qps == 1
        assert quotas.usage("t").registered_bytes == 4096
        ctx.destroy_qp(qp)
        ctx.dereg_mr(mr)
        assert quotas.usage("t").qps == 0
        assert quotas.usage("t").registered_bytes == 0
        assert quotas.usage("t").peak_qps == 1


class TestFootprintConformance:
    """estimate_footprint must over-approximate every design's real
    usage, or admission could admit a job the hard cap then kills."""

    @pytest.mark.parametrize("design", sorted(DESIGNS))
    def test_estimate_covers_actual_peak(self, design):
        nodes, threads = 3, 2
        cluster = make_cluster(nodes=nodes, threads=threads)
        quotas = QuotaManager()
        cluster.enable_quotas(quotas)
        config = EndpointConfig(tenant="t")
        stage = cluster.shuffle_stage(
            design, TransmissionGroups.repartition(nodes), config=config)
        cluster.run_process(stage.setup(), name="setup")
        usage = quotas.usage("t")
        estimate = estimate_footprint(design, nodes, threads)
        assert usage.peak_qps <= estimate.qps, design
        assert usage.peak_registered_bytes <= estimate.registered_bytes, \
            design
        # Teardown returns the tenant's account to exactly zero.
        stage.dispose()
        assert usage.qps == 0
        assert usage.registered_bytes == 0


class TestServiceRuns:
    def test_two_tenant_run_completes_all_jobs(self):
        cluster = make_cluster()
        tenants = [TenantSpec(name="a", design="MESQ/SR", **FAST),
                   TenantSpec(name="b", design="MEMQ/SR", **FAST)]
        service, report = run_service(cluster, tenants,
                                      policy=FairSharePolicy())
        assert report["policy"] == "fair"
        assert report["failed"] == []
        assert len(report["completion_order"]) == 4
        for name in ("a", "b"):
            rollup = report["tenants"][name]
            assert rollup["jobs_completed"] == 2
            assert rollup["bytes_received"] > 0
            assert rollup["latency_ns"]["count"] == 2
            assert rollup["latency_ns"]["p99"] >= rollup["latency_ns"]["p50"]

    def test_quota_clamps_mq_tenant_to_single_endpoint(self):
        nodes, threads = 4, 2
        cluster = make_cluster(nodes=nodes, threads=threads)
        quotas = QuotaManager()
        cap = estimate_footprint("MEMQ/SR", nodes, threads,
                                 num_endpoints=1).qps
        quotas.set_quota("mq", max_qps=cap)
        tenants = [TenantSpec(name="mq", design="MEMQ/SR", **FAST)]
        service, report = run_service(cluster, tenants, quotas=quotas)
        assert report["failed"] == []
        assert report["tenants"]["mq"]["jobs_completed"] == 2
        for job in service.completed:
            assert job.meta.get("clamped_endpoints") == 1
        assert quotas.usage("mq").peak_qps <= cap

    def test_unrunnable_tenant_fails_loudly_instead_of_hanging(self):
        cluster = make_cluster()
        quotas = QuotaManager()
        quotas.set_quota("starved", max_qps=1)
        tenants = [TenantSpec(name="starved", design="MESQ/SR", **FAST)]
        service, report = run_service(cluster, tenants, quotas=quotas)
        assert report["tenants"]["starved"]["jobs_completed"] == 0
        assert report["tenants"]["starved"]["jobs_failed"] == 2
        assert sorted(report["failed"]) == ["starved/0", "starved/1"]

    def test_duplicate_tenant_names_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError, match="duplicate tenant"):
            ShuffleService(cluster, [TenantSpec(name="a"),
                                     TenantSpec(name="a")])

    def test_tenant_metrics_in_telemetry_snapshot(self):
        cluster = make_cluster()
        quotas = QuotaManager()
        tenants = [TenantSpec(name="a", **FAST)]
        service, report = run_service(cluster, tenants, quotas=quotas)
        snapshot = cluster.telemetry.snapshot()
        svc = snapshot["fabric"]["service_tenants"]
        assert svc["completed"] == {"a": 2}
        assert svc["pending"] == {}
        assert svc["running"] == 0
        assert svc["usage"]["a"]["qps"] == 0
        assert svc["usage"]["a"]["peak_qps"] > 0


class TestPolicies:
    """FIFO serves in arrival order; fair-share serves the least-served
    tenant first even while another tenant floods the queue."""

    def _flood_and_latecomer(self, policy):
        cluster = make_cluster()
        tenants = [
            TenantSpec(name="flood", design="MESQ/SR",
                       bytes_per_job=256 << 10,
                       mean_interarrival_ns=1_000, jobs=6),
            TenantSpec(name="late", design="MESQ/SR",
                       bytes_per_job=256 << 10,
                       mean_interarrival_ns=8_000_000, jobs=2),
        ]
        service, report = run_service(cluster, tenants, policy=policy,
                                      max_concurrent=1, seed=1)
        assert report["failed"] == []
        return report["completion_order"]

    def test_fair_share_serves_latecomer_before_flood_drains(self):
        fifo = self._flood_and_latecomer(FifoPolicy())
        fair = self._flood_and_latecomer(FairSharePolicy())
        assert fifo != fair
        assert fair.index("late/0") < fifo.index("late/0")

    def test_fifo_respects_arrival_order(self):
        order = self._flood_and_latecomer(FifoPolicy())
        flood = [name for name in order if name.startswith("flood")]
        assert flood == [f"flood/{i}" for i in range(6)]

    def test_policy_registry(self):
        assert POLICIES["fifo"] is FifoPolicy
        assert POLICIES["fair"] is FairSharePolicy


class TestDeterminism:
    """Identical seeds must reproduce identical completion order and
    per-tenant metrics, for every admission policy."""

    def _run_once(self, policy_name):
        cluster = make_cluster(qp_cache_entries=64)
        quotas = QuotaManager()
        cap = estimate_footprint("MEMQ/SR", 4, 2, num_endpoints=1).qps
        quotas.set_quota("b", max_qps=cap)
        tenants = [TenantSpec(name="a", design="MESQ/SR", **FAST),
                   TenantSpec(name="b", design="MEMQ/SR", **FAST)]
        service, report = run_service(
            cluster, tenants, policy=POLICIES[policy_name](),
            quotas=quotas, max_concurrent=2, seed=7)
        return report

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_repeated_runs_are_identical(self, policy_name):
        first = self._run_once(policy_name)
        second = self._run_once(policy_name)
        assert first["completion_order"] == second["completion_order"]
        assert json.dumps(first["tenants"], sort_keys=True) == \
            json.dumps(second["tenants"], sort_keys=True)
