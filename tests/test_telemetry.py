"""Tests for repro.telemetry: instruments, tracer, harvesting, sessions."""

import json

import pytest

from repro import Cluster, ClusterConfig, EDR
from repro.bench.workloads import run_repartition
from repro.telemetry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TraceBudget,
    Tracer,
    current_session,
    digest_snapshots,
    format_digest,
    nic_cache_stats,
    session,
    set_enabled,
)
from repro.sim import Simulator

MIB = 1 << 20


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge(self):
        g = Gauge("x")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.value == 12

    def test_histogram_buckets(self):
        h = Histogram("x", buckets=(10, 100))
        for v in (5, 50, 500, 7):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["sum"] == 562
        assert d["min"] == 5 and d["max"] == 500
        assert d["buckets"] == {"10": 2, "100": 1, "+Inf": 1}
        assert h.mean == pytest.approx(562 / 4)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(100, 10))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry("n")
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry("n")
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        with pytest.raises(ValueError):
            reg.register_callback("a", lambda: 1)

    def test_snapshot_and_callbacks(self):
        reg = MetricsRegistry("n")
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1,)).observe(0)
        reg.register_callback("cb", lambda: 42)
        snap = reg.snapshot()
        assert snap["c"] == 2 and snap["g"] == 7 and snap["cb"] == 42
        assert snap["h"]["count"] == 1
        json.dumps(snap)  # must be JSON-serializable

    def test_reset(self):
        reg = MetricsRegistry("n")
        reg.counter("c").inc(9)
        reg.histogram("h").observe(5)
        reg.reset()
        snap = reg.snapshot()
        assert snap["c"] == 0
        assert snap["h"]["count"] == 0

    def test_null_registry_discards(self):
        NULL_REGISTRY.counter("x").inc(100)
        NULL_REGISTRY.gauge("y").set(1)
        NULL_REGISTRY.histogram("z").observe(1)
        NULL_REGISTRY.register_callback("w", lambda: 1)
        assert NULL_REGISTRY.snapshot() == {}


class TestTracer:
    def test_events_and_export_structure(self, tmp_path):
        sim = Simulator()
        tracer = Tracer(sim)
        tracer.complete(0, "qp1", "send", 100, 50, "verbs",
                        args={"bytes": 10})
        tracer.span(1, "egress", "tx", 10, 20, "fabric")
        tracer.instant(0, "qp1", "drop")
        doc = tracer.to_dict()
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        assert "M" in phases and "X" in phases
        assert "B" in phases and "E" in phases
        names = {e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "process_name"}
        assert names == {"node0", "node1"}
        path = tmp_path / "t.json"
        tracer.export(str(path))
        assert json.loads(path.read_text()) == doc

    def test_budget_caps_events_and_keeps_pairs_atomic(self):
        sim = Simulator()
        tracer = Tracer(sim, budget=TraceBudget(3))
        tracer.span(0, "a", "s", 0, 1)   # takes 2
        tracer.span(0, "a", "s", 1, 2)   # needs 2, only 1 left -> dropped
        tracer.complete(0, "a", "x", 2, 1)  # takes the last slot
        tracer.complete(0, "a", "x", 3, 1)  # dropped
        assert len(tracer.events) == 3
        assert tracer.budget.dropped == 3
        begins = sum(1 for e in tracer.events if e["ph"] == "B")
        ends = sum(1 for e in tracer.events if e["ph"] == "E")
        assert begins == ends == 1

    def test_pid_base_offsets_processes(self):
        sim = Simulator()
        tracer = Tracer(sim, pid_base=3000, label="run3")
        tracer.complete(2, "t", "n", 0, 1)
        event = tracer.events[0]
        assert event["pid"] == 3002
        meta = tracer._metadata_events()
        assert meta[0]["args"]["name"] == "run3/node2"


def _small_shuffle(qp_cache_entries=None, trace=False):
    config = ClusterConfig(network=EDR, num_nodes=3)
    if qp_cache_entries is not None:
        config = config.with_network(qp_cache_entries=qp_cache_entries)
    cluster = Cluster(config)
    if trace:
        cluster.enable_tracing()
    result = run_repartition(cluster, "MEMQ/SR", bytes_per_node=2 * MIB)
    return cluster, result


class TestIntegration:
    def test_shuffle_trace_is_structurally_valid(self):
        # One cache entry forces misses on every QP switch, so the NIC
        # counters must light up.
        cluster, _ = _small_shuffle(qp_cache_entries=1, trace=True)
        doc = cluster.telemetry.tracer.to_dict()
        data = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert data
        # Timestamps non-decreasing after export sorting.
        ts = [e["ts"] for e in data]
        assert ts == sorted(ts)
        # B/E pairs balance per (pid, tid) and never go negative.
        depth = {}
        for e in data:
            key = (e["pid"], e["tid"])
            if e["ph"] == "B":
                depth[key] = depth.get(key, 0) + 1
            elif e["ph"] == "E":
                depth[key] = depth.get(key, 0) - 1
                assert depth[key] >= 0
        assert all(v == 0 for v in depth.values())
        # pids map onto simulated nodes.
        assert {e["pid"] for e in data} <= set(range(cluster.num_nodes))
        # Spans from at least three layers of the stack.
        cats = {e.get("cat") for e in data}
        assert {"fabric", "verbs", "endpoint"} <= cats

    def test_cold_cache_counters_nonzero(self):
        cluster, _ = _small_shuffle(qp_cache_entries=1)
        snap = cluster.metrics_snapshot()
        for node in snap["nodes"].values():
            assert node["nic.qp_cache.misses"] > 0
        stats = nic_cache_stats(cluster)
        assert stats["misses"] > 0
        assert stats["pcie_stall_ns"] > 0
        assert 0.0 < stats["miss_rate"] <= 1.0

    def test_snapshot_covers_every_layer(self):
        cluster, _ = _small_shuffle()
        snap = cluster.metrics_snapshot()
        assert snap["fabric"]["sim.events_dispatched"] > 0
        assert snap["fabric"]["sim.process_wakeups"] > 0
        assert snap["fabric"]["fabric.delivered_messages"] > 0
        assert snap["fabric"]["fabric.link_bytes"]
        node = snap["nodes"]["0"]
        assert node["nic.tx_messages"] > 0
        assert node["verbs.sends_posted"] > 0
        assert node["verbs.cqes_pushed"] > 0
        assert node["ep.messages_sent"] > 0
        assert node["ep.bytes_by_dest"]
        assert node["ep.dest_skew"] >= 1.0
        json.dumps(snap)

    def test_telemetry_does_not_perturb_simulation(self):
        _, base = _small_shuffle()
        _, traced = _small_shuffle(trace=True)
        try:
            set_enabled(False)
            _, disabled = _small_shuffle()
        finally:
            set_enabled(True)
        assert base.elapsed_ns == traced.elapsed_ns == disabled.elapsed_ns


class TestSession:
    def test_clusters_attach_and_checkpoint(self):
        assert current_session() is None
        with session(trace=True) as sess:
            assert current_session() is sess
            _small_shuffle()
            _small_shuffle()
            digest = sess.checkpoint("expA")
            assert digest["runs"] == 2
            assert digest["delivered_messages"] > 0
            assert "qp-cache miss" in format_digest(digest)
        assert current_session() is None
        doc = sess.metrics_document()
        assert doc["schema"]["name"] == "repro-telemetry-metrics"
        assert [e["experiment"] for e in doc["experiments"]] == ["expA"]
        trace_doc = sess.trace_document()
        data = [e for e in trace_doc["traceEvents"] if e["ph"] != "M"]
        # The two runs occupy disjoint pid namespaces.
        pids = {e["pid"] for e in data}
        assert any(p < 1000 for p in pids) and any(p >= 1000 for p in pids)

    def test_digest_of_nothing(self):
        digest = digest_snapshots([])
        assert digest["runs"] == 0
        assert digest["qp_cache_miss_rate"] == 0.0
