"""Tests for the benchmark harness: workloads, report, experiments, CLI."""

import json

import pytest

from repro import Cluster, ClusterConfig, EDR
from repro.bench.report import ExperimentResult, Series, render
from repro.bench.workloads import (
    ShuffleRunResult,
    make_template_batch,
    run_broadcast,
    run_repartition,
)
from repro.bench.experiments import table1
from repro.bench.cli import main as cli_main

MIB = 1 << 20


def small_cluster(nodes=2, threads=2):
    return Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                 threads_per_node=threads))


class TestWorkloads:
    def test_template_batch_shape(self):
        batch = make_template_batch(rows=128)
        assert len(batch) == 128
        assert batch.dtype.itemsize == 16  # two long integers (§5.1)

    def test_repartition_moves_all_bytes(self):
        cluster = small_cluster()
        result = run_repartition(cluster, "SEMQ/SR", bytes_per_node=2 * MIB)
        assert result.total_received_bytes == 2 * 2 * MIB
        assert result.pattern == "repartition"
        assert result.receive_throughput_gib_per_node() > 0

    def test_broadcast_multiplies_bytes(self):
        cluster = small_cluster(nodes=3)
        result = run_broadcast(cluster, "SEMQ/SR", bytes_per_node=1 * MIB)
        # each node's data reaches the other two nodes.
        assert result.total_received_bytes == 3 * 2 * 1 * MIB
        assert result.pattern == "broadcast"

    def test_result_metrics(self):
        result = ShuffleRunResult(
            design="X", pattern="repartition", network="EDR", num_nodes=2,
            threads=2, bytes_per_node=1, elapsed_ns=1_000_000_000,
            setup_ns=0, total_received_bytes=2 << 30,
            total_received_rows=10, registered_bytes_per_node=0,
            qps_per_node=0, messages_sent=0, recv_data_wait_ns=0,
            send_credit_wait_ns=0,
        )
        assert result.receive_throughput_gib_per_node() == 1.0
        assert result.response_time_ms() == 1000.0
        assert result.receiver_busy_fraction() == 1.0

    def test_busy_fraction_counts_waits(self):
        result = ShuffleRunResult(
            design="X", pattern="repartition", network="EDR", num_nodes=1,
            threads=2, bytes_per_node=1, elapsed_ns=100,
            setup_ns=0, total_received_bytes=0, total_received_rows=0,
            registered_bytes_per_node=0, qps_per_node=0, messages_sent=0,
            recv_data_wait_ns=100, send_credit_wait_ns=0,
        )
        assert result.receiver_busy_fraction() == 0.5

    def test_compute_lowers_throughput(self):
        cluster = small_cluster()
        fast = run_repartition(cluster, "SEMQ/SR", bytes_per_node=2 * MIB)
        cluster = small_cluster()
        slow = run_repartition(cluster, "SEMQ/SR", bytes_per_node=2 * MIB,
                               compute_ns_per_batch=50_000)
        assert (slow.receive_throughput_gib_per_node() <
                fast.receive_throughput_gib_per_node())


class TestReport:
    def make_result(self):
        return ExperimentResult(
            experiment="figX", title="Demo", x_label="n", x=[1, 2],
            y_label="GiB/s",
            series=[Series("a", [1.5, 2.5]), Series("b", [3.0, 4.0])],
            notes="hello",
        )

    def test_render_contains_everything(self):
        text = render(self.make_result())
        assert "figX" in text and "Demo" in text
        assert "1.50" in text and "4.00" in text
        assert "note: hello" in text

    def test_series_lookup(self):
        result = self.make_result()
        assert result.series_by_label("a").y == [1.5, 2.5]
        assert result.value("b", 2) == 4.0
        with pytest.raises(KeyError):
            result.series_by_label("nope")

    def test_render_tolerates_missing_points(self):
        result = ExperimentResult(
            experiment="f", title="t", x_label="x", x=[1, 2],
            y_label="y", series=[Series("s", [1.0])])
        assert "-" in render(result)


class TestExperiments:
    def test_table1_values(self):
        result = table1(nodes=16, threads=8)
        assert result.value("QPs/op", "MEMQ/SR") == 128
        assert result.value("QPs/op", "SESQ/SR") == 1

    def test_cli_runs_table1(self, capsys, tmp_path):
        out = tmp_path / "r.json"
        rc = cli_main(["table1", "--json", str(out)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Design alternatives" in captured.out
        data = json.loads(out.read_text())
        assert data["schema"]["name"] == "repro-bench-results"
        assert data["schema"]["version"] >= 2
        assert data["scale"] == 1.0
        exp = data["experiments"][0]
        assert exp["name"] == "table1"
        assert exp["wall_clock_s"] >= 0
        assert exp["results"][0]["experiment"] == "table1"
        # table1 builds no cluster, so there is nothing to digest.
        assert exp["metrics_digest"] is None

    def test_cli_metrics_and_trace(self, tmp_path):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        rc = cli_main(["fig12", "--metrics", str(metrics),
                       "--trace", str(trace)])
        assert rc == 0
        mdoc = json.loads(metrics.read_text())
        assert mdoc["schema"]["name"] == "repro-telemetry-metrics"
        runs = mdoc["experiments"][0]["runs"]
        assert runs and all("nic.qp_cache.hits" in node
                            for snap in runs
                            for node in snap["nodes"].values())
        tdoc = json.loads(trace.read_text())
        assert "traceEvents" in tdoc

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["figZZ"])

    def test_cli_no_args_shows_help(self, capsys):
        assert cli_main([]) == 2
