"""Tests for the benchmark harness: workloads, report, experiments, CLI."""

import json

import pytest

from repro import Cluster, ClusterConfig, EDR
from repro.bench.report import ExperimentResult, Series, render
from repro.bench.workloads import (
    ShuffleRunResult,
    make_template_batch,
    run_broadcast,
    run_repartition,
)
from repro.bench.compare import breached, compare
from repro.bench.compare import main as compare_main
from repro.bench.experiments import (
    _scaleout_counts,
    _scaleout_volume,
    table1,
)
from repro.bench.cli import main as cli_main

MIB = 1 << 20


def small_cluster(nodes=2, threads=2):
    return Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                 threads_per_node=threads))


class TestWorkloads:
    def test_template_batch_shape(self):
        batch = make_template_batch(rows=128)
        assert len(batch) == 128
        assert batch.dtype.itemsize == 16  # two long integers (§5.1)

    def test_repartition_moves_all_bytes(self):
        cluster = small_cluster()
        result = run_repartition(cluster, "SEMQ/SR", bytes_per_node=2 * MIB)
        assert result.total_received_bytes == 2 * 2 * MIB
        assert result.pattern == "repartition"
        assert result.receive_throughput_gib_per_node() > 0

    def test_broadcast_multiplies_bytes(self):
        cluster = small_cluster(nodes=3)
        result = run_broadcast(cluster, "SEMQ/SR", bytes_per_node=1 * MIB)
        # each node's data reaches the other two nodes.
        assert result.total_received_bytes == 3 * 2 * 1 * MIB
        assert result.pattern == "broadcast"

    def test_result_metrics(self):
        result = ShuffleRunResult(
            design="X", pattern="repartition", network="EDR", num_nodes=2,
            threads=2, bytes_per_node=1, elapsed_ns=1_000_000_000,
            setup_ns=0, total_received_bytes=2 << 30,
            total_received_rows=10, registered_bytes_per_node=0,
            qps_per_node=0, messages_sent=0, recv_data_wait_ns=0,
            send_credit_wait_ns=0,
        )
        assert result.receive_throughput_gib_per_node() == 1.0
        assert result.response_time_ms() == 1000.0
        assert result.receiver_busy_fraction() == 1.0

    def test_busy_fraction_counts_waits(self):
        result = ShuffleRunResult(
            design="X", pattern="repartition", network="EDR", num_nodes=1,
            threads=2, bytes_per_node=1, elapsed_ns=100,
            setup_ns=0, total_received_bytes=0, total_received_rows=0,
            registered_bytes_per_node=0, qps_per_node=0, messages_sent=0,
            recv_data_wait_ns=100, send_credit_wait_ns=0,
        )
        assert result.receiver_busy_fraction() == 0.5

    def test_compute_lowers_throughput(self):
        cluster = small_cluster()
        fast = run_repartition(cluster, "SEMQ/SR", bytes_per_node=2 * MIB)
        cluster = small_cluster()
        slow = run_repartition(cluster, "SEMQ/SR", bytes_per_node=2 * MIB,
                               compute_ns_per_batch=50_000)
        assert (slow.receive_throughput_gib_per_node() <
                fast.receive_throughput_gib_per_node())


class TestReport:
    def make_result(self):
        return ExperimentResult(
            experiment="figX", title="Demo", x_label="n", x=[1, 2],
            y_label="GiB/s",
            series=[Series("a", [1.5, 2.5]), Series("b", [3.0, 4.0])],
            notes="hello",
        )

    def test_render_contains_everything(self):
        text = render(self.make_result())
        assert "figX" in text and "Demo" in text
        assert "1.50" in text and "4.00" in text
        assert "note: hello" in text

    def test_series_lookup(self):
        result = self.make_result()
        assert result.series_by_label("a").y == [1.5, 2.5]
        assert result.value("b", 2) == 4.0
        with pytest.raises(KeyError):
            result.series_by_label("nope")

    def test_render_tolerates_missing_points(self):
        result = ExperimentResult(
            experiment="f", title="t", x_label="x", x=[1, 2],
            y_label="y", series=[Series("s", [1.0])])
        assert "-" in render(result)


class TestExperiments:
    def test_table1_values(self):
        result = table1(nodes=16, threads=8)
        assert result.value("QPs/op", "MEMQ/SR") == 128
        assert result.value("QPs/op", "SESQ/SR") == 1

    def test_cli_runs_table1(self, capsys, tmp_path):
        out = tmp_path / "r.json"
        rc = cli_main(["table1", "--json", str(out)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "Design alternatives" in captured.out
        data = json.loads(out.read_text())
        assert data["schema"]["name"] == "repro-bench-results"
        assert data["schema"]["version"] >= 2
        assert data["scale"] == 1.0
        exp = data["experiments"][0]
        assert exp["name"] == "table1"
        assert exp["wall_clock_s"] >= 0
        assert exp["results"][0]["experiment"] == "table1"
        # table1 builds no cluster, so there is nothing to digest.
        assert exp["metrics_digest"] is None

    def test_cli_metrics_and_trace(self, tmp_path):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        rc = cli_main(["fig12", "--metrics", str(metrics),
                       "--trace", str(trace)])
        assert rc == 0
        mdoc = json.loads(metrics.read_text())
        assert mdoc["schema"]["name"] == "repro-telemetry-metrics"
        runs = mdoc["experiments"][0]["runs"]
        assert runs and all("nic.qp_cache.hits" in node
                            for snap in runs
                            for node in snap["nodes"].values())
        tdoc = json.loads(trace.read_text())
        assert "traceEvents" in tdoc

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            cli_main(["figZZ"])

    def test_cli_no_args_shows_help(self, capsys):
        assert cli_main([]) == 2

    def test_cli_nodes_override(self, capsys, tmp_path):
        out = tmp_path / "r.json"
        rc = cli_main(["fig12", "--nodes", "4", "--json", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["schema"]["version"] >= 4
        assert data["nodes"] == 4
        # The node-count sweep collapses to the one requested size.
        assert data["experiments"][0]["results"][0]["x"] == [4]

    def test_cli_nodes_rejects_degenerate_cluster(self):
        with pytest.raises(SystemExit):
            cli_main(["fig12", "--nodes", "1"])

    def test_scaleout_counts_truncate_at_nodes(self):
        assert _scaleout_counts(None) == (64, 128, 256, 512, 1024)
        assert _scaleout_counts(128) == (64, 128)
        assert _scaleout_counts(1024) == (64, 128, 256, 512, 1024)
        # Off-grid sizes run alone rather than silently rounding.
        assert _scaleout_counts(100) == (100,)

    def test_scaleout_volume_decays_but_floors(self):
        assert _scaleout_volume(64, 1.0) == 32 * MIB
        assert _scaleout_volume(256, 1.0) == 2 * MIB
        assert _scaleout_volume(1024, 1.0) == 256 << 10  # the floor
        assert _scaleout_volume(64, 0.25) == 8 * MIB
        assert _scaleout_volume(128, 1.0) == 8 * MIB


def _bench_doc(**values):
    return {"benchmarks": {
        name: {"value": value,
               "higher_is_better": name != "wall_clock_s",
               "unit": "x/s"}
        for name, value in values.items()
    }}


class TestCompare:
    def test_within_threshold_passes(self):
        base = _bench_doc(kernel_events_per_sec=100.0)
        fresh = _bench_doc(kernel_events_per_sec=90.0)
        assert compare(base, fresh, threshold=0.25) == []

    def test_regression_is_direction_aware(self):
        base = _bench_doc(kernel_events_per_sec=100.0, wall_clock_s=10.0)
        fresh = _bench_doc(kernel_events_per_sec=50.0, wall_clock_s=20.0)
        failures = compare(base, fresh, threshold=0.25)
        assert breached(failures) == ["kernel_events_per_sec",
                                      "wall_clock_s"]
        assert "dropped" in failures[0] and "rose" in failures[1]

    def test_breached_names_missing_benchmark(self):
        base = _bench_doc(fabric_train_events_per_sec=100.0)
        failures = compare(base, _bench_doc())
        assert breached(failures) == ["fabric_train_events_per_sec"]

    def test_main_names_breaching_benchmarks(self, capsys, tmp_path):
        base_path = tmp_path / "base.json"
        fresh_path = tmp_path / "fresh.json"
        base_path.write_text(json.dumps(
            _bench_doc(kernel_events_per_sec=100.0, steady_metric=50.0)))
        fresh_path.write_text(json.dumps(
            _bench_doc(kernel_events_per_sec=10.0, steady_metric=50.0,
                       brand_new_metric=1.0)))
        rc = compare_main([str(base_path), str(fresh_path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "breached by kernel_events_per_sec" in captured.err
        assert "steady_metric" not in captured.err.split("breached by")[1]
        # Fresh-only benchmarks are reported, not gated.
        assert "n/a (new)" in captured.out

    def test_main_passes_clean_run(self, capsys, tmp_path):
        base_path = tmp_path / "base.json"
        fresh_path = tmp_path / "fresh.json"
        base_path.write_text(json.dumps(_bench_doc(m=100.0)))
        fresh_path.write_text(json.dumps(_bench_doc(m=101.0)))
        assert compare_main([str(base_path), str(fresh_path)]) == 0
        assert "perf gate passed" in capsys.readouterr().out
