"""Static protocol lint (repro.analysis): rules, CLI, pytest hook.

Two halves per rule: the clean-tree pass (the shipped ``src/repro`` has
zero violations) and a planted-bug negative test proving the rule fires
on exactly the pattern it documents.
"""

import json

import pytest

from repro.analysis import (
    STATIC_RULES,
    LintViolation,
    lint_paths,
    lint_source,
    package_root,
    parse_select,
)
from repro.analysis.__main__ import main as analysis_main


def rules_of(violations):
    return [v.rule for v in violations]


class TestCleanTree:
    def test_shipped_package_is_clean(self):
        assert lint_paths([package_root()]) == []

    def test_rule_catalogue_is_documented(self):
        for rule_id, description in STATIC_RULES.items():
            assert rule_id.startswith("VS")
            assert len(description) > 10


class TestVS101FabricBypass:
    """Core endpoint code must reach the network through verbs only."""

    def test_fabric_import_flagged(self):
        violations = lint_source("core/evil.py", "from repro.fabric import Fabric\n")
        assert rules_of(violations) == ["VS101"]

    def test_nic_attribute_access_flagged(self):
        source = (
            "def run(ctx):\n"
            "    ctx.fabric.deliver()\n"
            "    ctx.nic.egress()\n"
        )
        violations = lint_source("core/evil.py", source)
        assert rules_of(violations) == ["VS101", "VS101"]

    def test_stage_is_exempt(self):
        # stage.py owns setup wiring and legitimately touches the fabric.
        source = "from repro.fabric import Fabric\n"
        assert lint_source("core/stage.py", source) == []

    def test_outside_core_is_exempt(self):
        source = "from repro.fabric import Fabric\n"
        assert lint_source("bench/experiments.py", source) == []


class TestVS102ReceiveBeforeSend:
    """Within one function, the first post_send must not precede the
    first receive provisioning call (§4.2 discipline)."""

    BAD = (
        "def setup(self):\n"
        "    self.qp.post_send(wr)\n"
        "    self.qp.post_recv(rwr)\n"
    )
    GOOD = (
        "def setup(self):\n"
        "    self.qp.post_recv(rwr)\n"
        "    self.qp.post_send(wr)\n"
    )

    def test_send_first_flagged(self):
        violations = lint_source("core/evil.py", self.BAD)
        assert rules_of(violations) == ["VS102"]

    def test_recv_first_clean(self):
        assert lint_source("core/evil.py", self.GOOD) == []

    def test_send_only_function_clean(self):
        source = "def push(self):\n    self.qp.post_send(wr)\n"
        assert lint_source("core/evil.py", source) == []


class TestVS103RawBufferWrite:
    """Payload/length stores outside the buffer layer bypass the
    MemoryRegion bookkeeping (and the runtime buffer-reuse check)."""

    def test_raw_payload_store_flagged(self):
        source = (
            "def unwrap(buf, frame):\n"
            "    buf.payload = frame.payload\n"
            "    buf.length = frame.length\n"
        )
        violations = lint_source("core/evil.py", source)
        assert rules_of(violations) == ["VS103", "VS103"]

    def test_self_attribute_stores_clean(self):
        # An object may manage its *own* payload fields (Frame, Packet...).
        source = (
            "def __init__(self, payload, length):\n"
            "    self.payload = payload\n"
            "    self.length = length\n"
        )
        assert lint_source("core/evil.py", source) == []

    def test_buffer_layer_is_exempt(self):
        source = "def fill(buf, p):\n    buf.payload = p\n"
        assert lint_source("memory/buffer.py", source) == []
        assert lint_source("verbs/qp.py", source) == []


class TestVS104WallClockNondeterminism:
    def test_time_and_uuid_imports_flagged(self):
        source = "import time\nimport uuid\nfrom random import randint\n"
        violations = lint_source("sim/evil.py", source)
        assert rules_of(violations) == ["VS104", "VS104", "VS104"]

    def test_bare_random_calls_flagged(self):
        source = (
            "import random\n"
            "x = random.random()\n"
        )
        violations = lint_source("fabric/evil.py", source)
        assert rules_of(violations) == ["VS104"]

    def test_seeded_rng_is_clean(self):
        # The fabric's loss/jitter model uses a cluster-seeded Random.
        source = (
            "import random\n"
            "rng = random.Random(seed)\n"
        )
        assert lint_source("fabric/network.py", source) == []

    def test_bench_wall_clock_is_exempt(self):
        # Wall-clock timing of the *host* is fine outside the simulation.
        source = "import time\nstart = time.time()\n"
        assert lint_source("bench/cli.py", source) == []


class TestVS105SetIterationOrder:
    def test_set_literal_iteration_flagged(self):
        source = (
            "def scan(items):\n"
            "    for x in {1, 2, 3}:\n"
            "        pass\n"
            "    return [y for y in set(items)]\n"
        )
        violations = lint_source("core/evil.py", source)
        assert rules_of(violations) == ["VS105", "VS105"]

    def test_sorted_set_is_clean(self):
        source = (
            "def scan(items):\n"
            "    for x in sorted(set(items)):\n"
            "        pass\n"
        )
        assert lint_source("core/evil.py", source) == []


class TestVS106TopologyBypass:
    BAD = (
        "def blast(self, pkt):\n"
        "    self.fabric.route(pkt)\n"
        "    fabric.route_mcast(pkt, 7)\n"
    )

    def test_direct_route_calls_flagged(self):
        violations = lint_source("bench/evil.py", self.BAD)
        assert rules_of(violations) == ["VS106", "VS106"]
        assert "topology bypass" in violations[0].message

    def test_fabric_and_verbs_layers_are_exempt(self):
        assert lint_source("fabric/network.py", self.BAD) == []
        assert lint_source("verbs/qp.py", self.BAD) == []

    def test_baselines_and_kernel_bench_are_exempt(self):
        # The kernel-bypass baselines and the routing microbenchmark
        # legitimately drive the fabric without Queue Pairs.
        assert lint_source("baselines/ipoib.py", self.BAD) == []
        assert lint_source("bench/kernel.py", self.BAD) == []

    def test_unrelated_route_methods_are_clean(self):
        source = "app.route('/healthz')\nrouter.route(msg)\n"
        assert lint_source("bench/evil.py", source) == []


class TestVS107TimestamplessTracerEvents:
    """Instrumentation sites must pass explicit simulated-ns timestamps;
    the ts_ns default stamps the event at emission time, which skews the
    causal record the critical-path analyzer consumes."""

    BAD = (
        "def poll(self):\n"
        "    self.ctx.tracer.instant(0, 'qp', 'wakeup')\n"
        "    tracer.begin(0, 'qp', 'drain', cat='cq')\n"
    )

    def test_timestampless_events_flagged(self):
        violations = lint_source("verbs/evil.py", self.BAD)
        assert rules_of(violations) == ["VS107", "VS107"]
        assert "ts_ns" in violations[0].message

    def test_explicit_timestamp_is_clean(self):
        source = (
            "def poll(self, t0):\n"
            "    self.ctx.tracer.instant(0, 'qp', 'wakeup', t0)\n"
            "    tracer.end(0, 'qp', 'drain', ts_ns=t0)\n"
        )
        assert lint_source("verbs/evil.py", source) == []

    def test_complete_and_span_are_clean(self):
        # complete()/span() carry explicit start times by construction.
        source = (
            "def poll(self, t0):\n"
            "    self.ctx.tracer.complete(0, 'qp', 'stall', t0, 10)\n"
            "    tracer.span(0, 'qp', 'stall', t0, t0 + 10)\n"
        )
        assert lint_source("verbs/evil.py", source) == []

    def test_metrics_counter_instrument_is_clean(self):
        # registry.counter(name) is a metrics instrument, not an event.
        source = "def wire(registry):\n    registry.counter('nic.tx')\n"
        assert lint_source("fabric/evil.py", source) == []

    def test_outside_sim_ordered_code_is_exempt(self):
        assert lint_source("analysis/sanitizer.py", self.BAD) == []
        assert lint_source("bench/evil.py", self.BAD) == []


class TestVS108DirectPacketConstruction:
    """Only fabric/ may build Packets; everything above must go through
    make_train so RC messages are segmented into MTU trains."""

    BAD = (
        "def send(self, config):\n"
        "    pkt = Packet(0, 1, 11, 22, 'SEND', 4096, 4222)\n"
        "    train = packet.PacketTrain(0, 1, 11, 22, 'SEND', 0, 64,\n"
        "                               n_packets=2)\n"
    )

    def test_direct_construction_flagged(self):
        violations = lint_source("core/evil.py", self.BAD)
        assert rules_of(violations) == ["VS108", "VS108"]
        assert "make_train" in violations[0].message

    def test_planted_bug_in_verbs_layer_is_caught(self):
        # The realistic regression: a verbs-layer send path hand-rolls a
        # Packet and ships a multi-MTU RC message as a one-packet train.
        source = (
            "def _rc_send(self, wr):\n"
            "    pkt = Packet(self.node, peer, self.qpn, dqpn, 'SEND',\n"
            "                 wr.length, wire(wr.length))\n"
            "    self.ctx.fabric_route(pkt)\n"
        )
        violations = lint_source("verbs/qp.py", source)
        assert rules_of(violations) == ["VS108"]

    def test_fabric_layer_is_exempt(self):
        assert lint_source("fabric/packet.py", self.BAD) == []
        assert lint_source("fabric/network.py", self.BAD) == []

    def test_make_train_call_is_clean(self):
        source = (
            "def send(self, config):\n"
            "    pkt = make_train(config, src_node=0, dst_node=1,\n"
            "                     src_qpn=11, dst_qpn=22, kind='SEND',\n"
            "                     length=4096, transport='RC')\n"
        )
        assert lint_source("core/evil.py", source) == []


class TestVS109SelfReferentialClosures:
    """The _HopWalk leak class: a callback that keeps itself (and its
    whole capture set) alive through a reference cycle."""

    def test_recursive_nested_function_flagged(self):
        # The original bug: a per-hop walker rescheduling itself by name.
        source = (
            "def start(self, sim):\n"
            "    def advance():\n"
            "        sim.call_at(sim.now + 1, advance)\n"
            "    advance()\n"
        )
        violations = lint_source("fabric/evil.py", source)
        assert rules_of(violations) == ["VS109"]
        assert "references itself" in violations[0].message

    def test_self_closure_assigned_onto_self_flagged(self):
        source = (
            "def start(self):\n"
            "    def on_cqe():\n"
            "        self.poll()\n"
            "    self._cb = on_cqe\n"
        )
        violations = lint_source("core/evil.py", source)
        assert rules_of(violations) == ["VS109"]
        assert "stored back onto self" in violations[0].message

    def test_self_closure_subscript_store_flagged(self):
        source = (
            "def start(self, key):\n"
            "    def on_cqe():\n"
            "        self.poll()\n"
            "    self._cbs[key] = on_cqe\n"
        )
        assert rules_of(lint_source("sim/evil.py", source)) == ["VS109"]

    def test_self_closure_appended_to_self_container_flagged(self):
        source = (
            "def start(self):\n"
            "    def on_cqe():\n"
            "        self.poll()\n"
            "    self.handlers.append(on_cqe)\n"
        )
        assert rules_of(lint_source("core/evil.py", source)) == ["VS109"]

    def test_local_capture_stored_onto_self_is_clean(self):
        # Capturing exactly what the callback needs is the fix.
        source = (
            "def start(self, qp):\n"
            "    def on_cqe():\n"
            "        qp.poll()\n"
            "    self._cb = on_cqe\n"
        )
        assert lint_source("core/evil.py", source) == []

    def test_self_capture_passed_elsewhere_is_clean(self):
        # self in the closure is fine if the closure is not stored back
        # onto self: the cycle needs both legs.
        source = (
            "def start(self, sim):\n"
            "    def on_cqe():\n"
            "        self.poll()\n"
            "    sim.call_soon(on_cqe)\n"
        )
        assert lint_source("core/evil.py", source) == []

    def test_outside_simulation_code_is_exempt(self):
        source = (
            "def start(self):\n"
            "    def render():\n"
            "        self.draw(render)\n"
            "    self._cb = render\n"
        )
        assert lint_source("telemetry/evil.py", source) == []


class TestVS110RawDesignDispatch:
    """PR 10 moved design selection behind the policy layer; raw
    DESIGNS[...] dispatch anywhere else reintroduces the hard-wired
    string paths the refactor removed."""

    def test_subscript_dispatch_flagged(self):
        source = "def pick(name):\n    return DESIGNS[name]\n"
        violations = lint_source("service/evil.py", source)
        assert rules_of(violations) == ["VS110"]
        assert "resolve_design" in violations[0].message

    def test_get_dispatch_flagged(self):
        source = "design = DESIGNS.get(name)\n"
        assert rules_of(lint_source("bench/evil.py", source)) == ["VS110"]

    def test_policy_layer_is_exempt(self):
        source = "def pick(name):\n    return DESIGNS[name]\n"
        assert lint_source("core/policy.py", source) == []
        assert lint_source("core/designs.py", source) == []

    def test_other_registries_do_not_fire(self):
        source = "policy = SHUFFLE_POLICIES[name]\n"
        assert lint_source("bench/evil.py", source) == []


class TestSelectValidation:
    """parse_select is the single gate for --select and
    --repro-lint-select: a typo'd rule id must error, not lint nothing
    and exit green."""

    def test_none_means_run_everything(self):
        assert parse_select(None) is None

    def test_valid_selection_parses(self):
        assert parse_select("VS101, VS104") == ("VS101", "VS104")

    def test_unknown_rule_errors_and_names_the_catalogue(self):
        with pytest.raises(ValueError, match="VS999") as err:
            parse_select("VS999")
        assert "VS101" in str(err.value)

    def test_empty_selection_errors(self):
        with pytest.raises(ValueError, match="empty"):
            parse_select(" , ")

    def test_cli_rejects_unknown_rule(self):
        with pytest.raises(SystemExit):
            analysis_main(["--select", "VS999"])


class TestLintMachinery:
    def test_syntax_error_becomes_vs000(self):
        violations = lint_source("core/broken.py", "def f(:\n")
        assert rules_of(violations) == ["VS000"]

    def test_select_filters_rules(self):
        source = "import time\nbuf.payload = 1\n"
        only_104 = lint_source("core/evil.py", source, select=["VS104"])
        assert rules_of(only_104) == ["VS104"]

    def test_violations_sort_stably(self):
        source = "import time\nimport uuid\n"
        violations = lint_source("sim/evil.py", source)
        assert [v.line for v in violations] == [1, 2]

    def test_violation_str_names_rule_and_location(self):
        violation = LintViolation("VS104", "sim/evil.py", 3, "wall clock")
        assert "VS104" in str(violation)
        assert ":3" in str(violation)


class TestCLI:
    def test_clean_tree_exits_zero(self, capsys):
        assert analysis_main([]) == 0
        assert "0 violation(s)" in capsys.readouterr().err

    @staticmethod
    def planted(tmp_path, source):
        # Scopes key on the path after a "repro" segment, so plant the
        # file inside a fake package tree.
        bad = tmp_path / "repro" / "core" / "evil.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(source)
        return bad

    def test_planted_file_exits_one(self, tmp_path, capsys):
        bad = self.planted(tmp_path, "import time\n")
        assert analysis_main([str(bad)]) == 1
        out = capsys.readouterr()
        assert "VS104" in out.out

    def test_json_format(self, tmp_path, capsys):
        bad = self.planted(tmp_path, "import uuid\n")
        assert analysis_main([str(bad), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document[0]["rule"] == "VS104"
        assert document[0]["line"] == 1

    def test_select_limits_rules(self, tmp_path):
        bad = self.planted(tmp_path, "import time\nbuf.payload = 1\n")
        assert analysis_main([str(bad), "--select", "VS103"]) == 1
        assert analysis_main([str(bad), "--select", "VS101"]) == 0

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in STATIC_RULES:
            assert rule_id in out
        assert "qp-state" in out  # runtime catalogue printed too

    def test_missing_path_is_an_error(self):
        with pytest.raises(SystemExit):
            analysis_main(["/no/such/path.py"])


class TestPytestPlugin:
    def test_lint_item_collected_behind_flag(self, pytester=None):
        # The plugin is loaded repo-wide via conftest; assert the option
        # registered and the item type is importable.
        from repro.analysis.pytest_plugin import ReproLintItem
        assert ReproLintItem.__name__ == "ReproLintItem"

    def test_repro_lint_option_runs_clean(self, request):
        assert request.config.getoption("--repro-lint") in (True, False)

    def test_lint_select_option_registered(self, request):
        # --repro-lint-select threads the validated selection into the
        # synthetic lint item (historically it was parsed and dropped).
        assert request.config.getoption("--repro-lint-select") in (
            None, request.config.getoption("--repro-lint-select"))

    def test_model_item_importable(self):
        from repro.analysis.pytest_plugin import ReproModelItem
        assert ReproModelItem.__name__ == "ReproModelItem"

    def test_repro_model_option_registered(self, request):
        assert request.config.getoption("--repro-model") in (True, False)
