"""TPC-H: generator invariants and distributed-vs-reference correctness."""

import numpy as np
import pytest

from repro import Cluster, ClusterConfig, EDR
from repro.tpch import generate, reference_answer, run_query
from repro.tpch.schema import date_to_days


@pytest.fixture(scope="module")
def data():
    return generate(0.01, 2, seed=3)


def answers_close(a, b, tol=1e-6):
    assert set(a) == set(b), f"group keys differ: {set(a) ^ set(b)}"
    for key in a:
        assert abs(a[key] - b[key]) <= tol * max(1.0, abs(a[key])), (
            f"group {key}: {a[key]} != {b[key]}")


class TestDatagen:
    def test_cardinalities_follow_scale_factor(self, data):
        assert len(data.customer) == 1500
        assert len(data.orders) == 15000
        # 1..7 lineitems per order, ~4 on average.
        assert 1 * len(data.orders) <= len(data.lineitem) <= 7 * len(data.orders)

    def test_deterministic(self):
        a = generate(0.005, 2, seed=9)
        b = generate(0.005, 2, seed=9)
        np.testing.assert_array_equal(a.orders, b.orders)
        np.testing.assert_array_equal(a.lineitem, b.lineitem)

    def test_partitions_cover_tables(self, data):
        for table in ("customer", "orders", "lineitem"):
            parts = data.partitions[table]
            total = sum(len(p) for p in parts)
            assert total == len(getattr(data, table))

    def test_nation_replicated(self, data):
        parts = data.partitions["nation"]
        assert len(parts) == 2
        np.testing.assert_array_equal(parts[0], parts[1])

    def test_lineitem_keys_reference_orders(self, data):
        assert np.isin(data.lineitem["l_orderkey"],
                       data.orders["o_orderkey"]).all()

    def test_receiptdate_after_shipdate(self, data):
        assert (data.lineitem["l_receiptdate"] >
                data.lineitem["l_shipdate"]).all()

    def test_copartition_places_by_key(self):
        d = generate(0.005, 3, seed=4, copartition=True)
        for i, part in enumerate(d.partitions["orders"]):
            assert (part["o_orderkey"] % 3 == i).all()
        for i, part in enumerate(d.partitions["lineitem"]):
            assert (part["l_orderkey"] % 3 == i).all()

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            generate(0, 2)

    def test_date_mapping_monotone(self):
        assert date_to_days(1995, 3, 15) > date_to_days(1993, 7, 1)
        assert date_to_days(1993, 10, 1) > date_to_days(1993, 7, 1)


class TestReference:
    def test_q4_counts_positive(self, data):
        ref = reference_answer("Q4", data)
        assert ref and all(v > 0 for v in ref.values())
        assert set(ref) <= {0, 1, 2, 3, 4}

    def test_q3_nonempty(self, data):
        assert reference_answer("Q3", data)

    def test_q10_nonempty(self, data):
        assert reference_answer("Q10", data)

    def test_unknown_query_rejected(self, data):
        with pytest.raises(ValueError):
            reference_answer("Q99", data)


@pytest.mark.parametrize("query", ["Q3", "Q4", "Q10"])
class TestDistributedCorrectness:
    def test_matches_reference(self, query, data):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=2))
        result = run_query(cluster, query, data, design="MESQ/SR")
        answers_close(result.answer, reference_answer(query, data))

    def test_matches_reference_on_rc_read(self, query, data):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=2))
        result = run_query(cluster, query, data, design="MEMQ/RD")
        answers_close(result.answer, reference_answer(query, data))

    def test_matches_reference_on_mpi(self, query, data):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=2))
        result = run_query(cluster, query, data, design="MPI")
        answers_close(result.answer, reference_answer(query, data))


class TestLocalDataPlan:
    def test_q4_local_data_matches(self):
        data = generate(0.01, 3, seed=5, copartition=True)
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=3,
                                        threads_per_node=2))
        result = run_query(cluster, "Q4", data, design="MESQ/SR",
                           local_data=True)
        answers_close(result.answer, reference_answer("Q4", data))

    def test_local_data_is_faster_than_shuffled(self):
        data = generate(0.02, 2, seed=5, copartition=True)
        c1 = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                   threads_per_node=2))
        local = run_query(c1, "Q4", data, design="MESQ/SR", local_data=True)
        c2 = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                   threads_per_node=2))
        shuffled = run_query(c2, "Q4", data, design="MESQ/SR")
        assert local.response_time_ns <= shuffled.response_time_ns

    def test_local_data_only_for_q4(self):
        data = generate(0.005, 2, copartition=True)
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=2))
        with pytest.raises(ValueError, match="Q4"):
            run_query(cluster, "Q3", data, local_data=True)

    def test_unknown_query_rejected(self, ):
        data = generate(0.005, 2)
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=2))
        with pytest.raises(ValueError, match="unknown query"):
            run_query(cluster, "Q7", data)


class TestScaling:
    def test_answer_independent_of_cluster_size(self):
        base = generate(0.008, 2, seed=21)
        ref = reference_answer("Q4", base)
        for nodes in (2, 4):
            data = generate(0.008, nodes, seed=21)
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                            threads_per_node=2))
            result = run_query(cluster, "Q4", data, design="SEMQ/SR")
            answers_close(result.answer, ref)
