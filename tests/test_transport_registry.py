"""The endpoint-backend registry: import-time self-registration and
third-party extension without touching ``repro.core.designs``."""

import numpy as np
import pytest

from repro.core.designs import DESIGNS, Design
from repro.core.transport.registry import (
    EndpointBackend,
    UnknownEndpointKindError,
    backend,
    register_endpoint_kind,
    registered_kinds,
)

from tests.test_endpoints import make_cluster, run_stage_query


class TestImportTimeRegistration:
    def test_builtin_kinds_registered(self):
        kinds = registered_kinds()
        for kind in ("SR_UD", "SR_UD_MC", "SR_RC", "RD_RC", "WR_RC"):
            assert kind in kinds

    def test_write_rc_self_registers_on_import(self):
        """WR_RC is registered by importing its module, not by designs.py."""
        import repro.core.write_rc as wr

        b = backend("WR_RC")
        assert b.send_cls is wr.WriteRCSendEndpoint
        assert b.recv_cls is wr.WriteRCReceiveEndpoint
        assert b.one_sided and not b.uses_ud

    def test_every_design_resolves_through_registry(self):
        for design in DESIGNS.values():
            b = backend(design.endpoint_kind)
            assert design.send_cls is b.send_cls
            assert design.recv_cls is b.recv_cls
            assert design.uses_ud == b.uses_ud
            assert design.one_sided == b.one_sided


class TestUnknownKinds:
    def test_unknown_kind_raises_with_known_kinds_listed(self):
        with pytest.raises(UnknownEndpointKindError) as ei:
            backend("NO_SUCH_KIND")
        msg = str(ei.value)
        assert "NO_SUCH_KIND" in msg
        assert "SR_RC" in msg  # the error names the registered kinds
        assert isinstance(ei.value, KeyError)

    def test_design_with_unknown_kind_fails_on_use(self):
        design = Design("BOGUS/XX", "BOGUS_KIND", multi_endpoint=True)
        with pytest.raises(UnknownEndpointKindError):
            design.send_cls


class TestReRegistration:
    def test_same_pair_is_idempotent(self):
        b = backend("WR_RC")
        again = register_endpoint_kind(
            "WR_RC", b.send_cls, b.recv_cls,
            uses_ud=b.uses_ud, one_sided=b.one_sided)
        assert isinstance(again, EndpointBackend)
        assert backend("WR_RC") is again or backend("WR_RC") == again

    def test_conflicting_pair_is_rejected(self):
        class NotASender:
            pass

        class NotAReceiver:
            pass

        with pytest.raises(ValueError, match="WR_RC"):
            register_endpoint_kind("WR_RC", NotASender, NotAReceiver)


class TestFifthBackend:
    def test_demo_backend_runs_without_modifying_designs(self):
        """A fifth backend registers via the public hook and runs a full
        shuffle through a Design built outside DESIGNS."""
        from repro.core.sr_rc import SRRCReceiveEndpoint, SRRCSendEndpoint

        class DemoSendEndpoint(SRRCSendEndpoint):
            transport = "DEMO"

        class DemoReceiveEndpoint(SRRCReceiveEndpoint):
            transport = "DEMO"

        register_endpoint_kind(
            "DEMO_SR", DemoSendEndpoint, DemoReceiveEndpoint,
            description="test-only fifth backend")
        assert "DEMO_SR" in registered_kinds()
        assert "DEMO_SR" not in {d.endpoint_kind for d in DESIGNS.values()}

        design = Design("DEMO/SR", "DEMO_SR", multi_endpoint=True)
        assert design.send_cls is DemoSendEndpoint
        assert design.recv_cls is DemoReceiveEndpoint

        cluster = make_cluster()
        stage, sinks, _ = run_stage_query(cluster, design, rows_per_node=1000)
        got = np.sum([len(s.result()) for s in sinks
                      if s.result() is not None])
        assert got == cluster.num_nodes * 1000
        for eps in stage.send_endpoints.values():
            for ep in eps:
                assert type(ep) is DemoSendEndpoint
