"""Unit tests for the transmission-group abstraction (§4.1, Figure 3)."""

import pytest

from repro.core import TransmissionGroups


class TestConstruction:
    def test_repartition_singletons(self):
        g = TransmissionGroups.repartition(4)
        assert len(g) == 4
        assert [g[i] for i in range(4)] == [(0,), (1,), (2,), (3,)]
        assert g.fanout == 1

    def test_broadcast_single_group(self):
        g = TransmissionGroups.broadcast(4, exclude=0)
        assert len(g) == 1
        assert g[0] == (1, 2, 3)
        assert g.fanout == 3

    def test_broadcast_without_exclusion(self):
        g = TransmissionGroups.broadcast(3)
        assert g[0] == (0, 1, 2)

    def test_multicast_figure_3b(self):
        # Figure 3(b): node A multicasts to G = {{B,C},{D}}.
        g = TransmissionGroups.multicast([(1, 2), (3,)])
        assert g[0] == (1, 2)
        assert g[1] == (3,)
        assert g.fanout == 2

    def test_all_destinations_deduplicates(self):
        g = TransmissionGroups([(1, 2), (2, 3), (1,)])
        assert g.all_destinations == (1, 2, 3)

    def test_duplicate_nodes_in_group_collapse(self):
        g = TransmissionGroups([(1, 1, 2)])
        assert g[0] == (1, 2)

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            TransmissionGroups([])
        with pytest.raises(ValueError):
            TransmissionGroups([(1,), ()])

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            TransmissionGroups([(-1,)])

    def test_broadcast_of_one_node_rejected(self):
        with pytest.raises(ValueError):
            TransmissionGroups.broadcast(1, exclude=0)

    def test_repartition_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            TransmissionGroups.repartition(0)

    def test_equality_and_hash(self):
        a = TransmissionGroups([(1, 2), (3,)])
        b = TransmissionGroups([(2, 1), (3,)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != TransmissionGroups([(1,), (3,)])

    def test_iteration(self):
        g = TransmissionGroups.repartition(3)
        assert list(g) == [(0,), (1,), (2,)]
