"""Determinism regression: two identical runs must be bit-identical.

The simulator is a deterministic discrete-event machine: with the same
cluster configuration, design and input, every metric and every trace
event must come out the same.  The transport-runtime refactor (and any
future one) must not perturb process spawn order, yield sequences, or
dict iteration order — this suite catches that class of regression for
all five endpoint kinds.
"""

import json

import numpy as np
import pytest

from repro import (
    Cluster,
    ClusterConfig,
    EDR,
    EndpointConfig,
    TransmissionGroups,
)
from repro.core import ReceiveOperator, ShuffleOperator
from repro.core.shuffle import striped_partitioner
from repro.core.stage import ShuffleStage
from repro.engine import CollectSink, QueryFragment, run_fragments
from repro.engine.scan import ScanOperator

DTYPE = np.dtype([("a", np.int64), ("b", np.int64)])

DESIGN_NAMES = ["MEMQ/SR", "MESQ/SR", "MEMQ/RD", "MEMQ/WR", "MESQ/SR+MC"]


def run_once(design, nodes=2, threads=2, rows_per_node=1500, report=False):
    """One complete small shuffle; returns (metrics snapshot, span count,
    simulated end time[, report JSON])."""
    cluster = Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                    threads_per_node=threads))
    tracer = cluster.enable_tracing()
    if report:
        cluster.enable_reporting()
    groups = TransmissionGroups.repartition(nodes)
    cfg = EndpointConfig(message_size=4096)
    stage = ShuffleStage(cluster.fabric, design, groups, config=cfg,
                         threads=threads, registry=cluster.registry)
    cluster.run_process(stage.setup())
    fragments, sinks = [], []
    for n in range(nodes):
        node = cluster.nodes[n]
        table = np.empty(rows_per_node, dtype=DTYPE)
        table["a"] = np.arange(rows_per_node)
        table["b"] = n
        scan = ScanOperator(node, table, threads, batch_rows=256)
        shuffle = ShuffleOperator(node, scan, stage.send_endpoints[n],
                                  groups, striped_partitioner(len(groups)),
                                  threads)
        fragments.append(QueryFragment(node, shuffle, threads))
        recv = ReceiveOperator(node, stage.recv_endpoints[n], threads)
        sink = CollectSink()
        sinks.append(sink)
        fragments.append(QueryFragment(node, recv, threads, sink=sink))
    cluster.run_process(run_fragments(cluster.sim, fragments))
    cluster.run()  # drain trailing completions
    got = sum(len(s.result()) for s in sinks if s.result() is not None)
    assert got == nodes * rows_per_node
    if report:
        report_json = json.dumps(cluster.run_report(), sort_keys=True)
        return (cluster.metrics_snapshot(), len(tracer.events),
                cluster.sim.now, report_json)
    return cluster.metrics_snapshot(), len(tracer.events), cluster.sim.now


@pytest.mark.parametrize("design", DESIGN_NAMES)
def test_identical_runs_produce_identical_telemetry(design):
    first = run_once(design)
    second = run_once(design)
    assert first[2] == second[2], "simulated end times diverge"
    assert first[1] == second[1], "trace span counts diverge"
    assert first[0] == second[0], "metrics snapshots diverge"


@pytest.mark.parametrize("design", DESIGN_NAMES)
def test_identical_runs_produce_byte_identical_reports(design):
    """RunReports contain only simulated-time quantities, so two identical
    runs must serialize to the exact same bytes (the property the
    ``repro.obs diff`` gate and committed CI baselines rely on)."""
    first = run_once(design, report=True)
    second = run_once(design, report=True)
    assert first[2] == second[2], "simulated end times diverge"
    assert first[3] == second[3], "run reports diverge"
