"""Critical-path analyzer, RunReports and the run-diff gate (repro.obs).

Three layers of coverage:

* the attribution sweep — exact conservation over every design family
  (fig8 / fig11 / table1 workloads at scale 0.1), plus the three
  validation mechanisms the analyzer must reproduce: QP-cache thrashing
  dominates fig11's MQ degradation, trunk queueing dominates 4:1
  oversubscription, and the fig8 low-credit regime grows credit-stall
  time;
* the recording substrate — enabling it must not move simulated time by
  a single nanosecond, and a dry budget degrades gracefully;
* the tooling — percentile helpers, report documents, markdown
  rendering, and the ``python -m repro.obs diff`` regression gate.
"""

import copy
import json

import pytest

from repro import Cluster, ClusterConfig, EDR, FDR, EndpointConfig
from repro.bench.experiments import _run
from repro.bench.workloads import run_repartition
from repro.fabric.config import parse_topology
from repro.obs import (
    CATEGORIES,
    REPORT_SCHEMA,
    aggregate_reports,
    attribute,
    build_document,
    critical_path,
    render_markdown,
)
from repro.obs.diff import diff, main as diff_main
from repro.obs.__main__ import main as obs_main
from repro.telemetry import FlowRecorder, TraceBudget, latency_summary, percentile
from repro.telemetry.session import session


def shuffle_attribution(cluster, result):
    """Attribution over the shuffle window [t1 - elapsed, t1]."""
    t1 = cluster.sim.now
    return attribute(cluster.telemetry.links, t1 - result.elapsed_ns, t1)


def assert_conserved(attribution):
    assert attribution["conserved"]
    assert (sum(attribution["categories"].values())
            == attribution["total_ns"]
            == attribution["t1"] - attribution["t0"])


# -- percentile helpers (repro.telemetry.metrics) --------------------------


class TestPercentileHelpers:
    def test_exact_percentile_interpolates(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 0.0) == 10
        assert percentile(values, 1.0) == 40
        assert percentile(values, 0.5) == 25.0
        assert percentile([7], 0.99) == 7.0

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1, 2], 1.5)

    def test_percentile_order_independent(self):
        assert percentile([3, 1, 2], 0.5) == percentile([1, 2, 3], 0.5)

    def test_latency_summary_small_population_is_exact(self):
        values = list(range(1, 101))
        summary = latency_summary(values)
        assert summary["count"] == 100
        assert summary["min"] == 1 and summary["max"] == 100
        assert summary["p50"] == percentile(values, 0.5)
        assert summary["p99"] == percentile(values, 0.99)

    def test_latency_summary_large_population_interpolates(self):
        values = list(range(200))
        exact = latency_summary(values)
        bucketed = latency_summary(values, exact_max=50,
                                   buckets=(50, 100, 150, 200))
        assert bucketed["count"] == exact["count"]
        # Interpolation error is bounded by one bucket width.
        for key in ("p50", "p90", "p99"):
            assert abs(bucketed[key] - exact[key]) <= 50

    def test_latency_summary_empty(self):
        assert latency_summary([]) == {"count": 0}


# -- attribution: conservation across all design families ------------------


TABLE1_DESIGNS = ["MEMQ/SR", "MEMQ/RD", "MESQ/SR",
                  "SEMQ/SR", "SEMQ/RD", "SESQ/SR"]


class TestConservation:
    @pytest.mark.parametrize("design", TABLE1_DESIGNS)
    def test_table1_designs_conserve_at_scale_01(self, design):
        with session(report=True):
            cluster, result = _run(EDR, design, 4, "repartition", 0.1)
        assert_conserved(shuffle_attribution(cluster, result))

    def test_fig8_config_conserves_at_scale_01(self):
        cfg = EndpointConfig(buffers_per_connection=16, credit_frequency=16,
                             ud_window_factor=1)
        with session(report=True):
            cluster, result = _run(EDR, "MESQ/SR", 8, "repartition", 0.1,
                                   config=cfg)
        assert_conserved(shuffle_attribution(cluster, result))

    def test_fig11_config_conserves_at_scale_01(self):
        with session(report=True):
            cluster, result = _run(FDR, "MEMQ/SR", 8, "repartition", 0.1,
                                   num_endpoints=4)
        assert_conserved(shuffle_attribution(cluster, result))

    def test_full_window_conserves_including_setup(self):
        with session(report=True):
            cluster, result = _run(EDR, "MESQ/SR", 4, "repartition", 0.1)
        full = attribute(cluster.telemetry.links, 0, cluster.sim.now)
        assert_conserved(full)
        # The window before the first WR post is setup time.
        assert full["categories"]["setup"] > 0

    def test_empty_recorder_attributes_everything(self):
        class _Sim:
            now = 0

        attribution = attribute(FlowRecorder(_Sim()), 0, 1000)
        assert_conserved(attribution)
        assert attribution["total_ns"] == 1000


# -- attribution: the three validation mechanisms --------------------------


class TestValidationMechanisms:
    def test_fig11_mq_thrash_is_qp_cache_miss_dominated(self):
        """fig11's MQ degradation on FDR: 16 nodes x 8 endpoints create
        enough QP state to thrash the 144-entry FDR context cache; the
        analyzer must attribute the slowdown to qp_cache_miss."""
        with session(report=True):
            cluster, result = _run(FDR, "MEMQ/SR", 16, "repartition", 0.05,
                                   num_endpoints=8)
        attribution = shuffle_attribution(cluster, result)
        assert_conserved(attribution)
        assert attribution["top"] == "qp_cache_miss"
        assert attribution["shares"]["qp_cache_miss"] > 0.5

    def test_oversubscribed_trunks_are_trunk_queueing_dominated(self):
        """abl-oversub at 4:1: the shared leaf-spine trunks serialize the
        cross-leaf traffic; trunk_queueing must dominate, and its share
        must exceed the balanced 1:1 fabric's."""
        shares = {}
        for factor in (1, 4):
            spec = parse_topology(f"leaf-spine:{factor}:4")
            with session(report=True):
                cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8,
                                                topology=spec))
                result = run_repartition(cluster, "MESQ/SR",
                                         bytes_per_node=2 << 20)
            attribution = shuffle_attribution(cluster, result)
            assert_conserved(attribution)
            shares[factor] = attribution["shares"]["trunk_queueing"]
            if factor == 4:
                assert attribution["top"] == "trunk_queueing"
        assert shares[4] > shares[1]

    @staticmethod
    def _credit_run(freq, compute_ns=0.0):
        cfg = EndpointConfig(buffers_per_connection=4, credit_frequency=freq,
                             ud_window_factor=1)
        with session(report=True):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                            threads_per_node=2))
            result = run_repartition(cluster, "MESQ/SR",
                                     bytes_per_node=8 << 20, config=cfg,
                                     compute_ns_per_batch=compute_ns)
        return shuffle_attribution(cluster, result)

    def test_fig8_low_credit_regime_grows_credit_stall(self):
        """fig8's flow-control effect: returning credit only every 4th
        Receive (with a 4-buffer window) forces the sender to wait a full
        credit round-trip per burst."""
        eager = self._credit_run(freq=1)
        lazy = self._credit_run(freq=4)
        assert_conserved(eager)
        assert_conserved(lazy)
        assert (lazy["categories"]["credit_stall"]
                > 10 * max(1, eager["categories"]["credit_stall"]))

    def test_starved_sender_is_credit_stall_dominated(self):
        attribution = self._credit_run(freq=4, compute_ns=20_000)
        assert_conserved(attribution)
        assert attribution["top"] == "credit_stall"


# -- recording substrate ---------------------------------------------------


class TestRecordingIsInvisible:
    @pytest.mark.parametrize("design", ["MESQ/SR", "MEMQ/RD", "MEMQ/WR"])
    def test_link_recording_does_not_move_simulated_time(self, design):
        def run(report):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4))
            if report:
                cluster.enable_reporting()
            result = run_repartition(cluster, design,
                                     bytes_per_node=2 << 20)
            return (cluster.sim.now, result.elapsed_ns,
                    result.total_received_bytes,
                    cluster.sim.events_dispatched)

        assert run(False) == run(True)

    def test_budget_exhaustion_degrades_gracefully(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4))
        links = cluster.enable_reporting(budget=TraceBudget(200))
        result = run_repartition(cluster, "MESQ/SR", bytes_per_node=2 << 20)
        assert links.truncated
        assert links.dropped_records > 0
        assert links.recorded <= 200
        # The attribution explains less, but still conserves exactly,
        # and the report still builds and serializes.
        assert_conserved(shuffle_attribution(cluster, result))
        report = cluster.run_report()
        assert report["records"]["truncated"]
        json.dumps(report)

    def test_flow_dag_reaches_back_through_credit_triggers(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=2))
        cluster.enable_reporting()
        cfg = EndpointConfig(buffers_per_connection=4, credit_frequency=4,
                             ud_window_factor=1)
        run_repartition(cluster, "MESQ/SR", bytes_per_node=8 << 20,
                        config=cfg)
        links = cluster.telemetry.links
        kinds = {f.kind for f in links.flows.values()}
        assert "data" in kinds and "credit" in kinds
        # Credit flows carry a trigger edge back to the data flow whose
        # buffer release produced them.
        triggered = [f for f in links.flows.values()
                     if f.kind == "credit" and f.trigger]
        assert triggered
        for flow in triggered:
            assert links.flows[flow.trigger].kind == "data"

    def test_critical_path_ends_at_last_delivery(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
        cluster.enable_reporting()
        run_repartition(cluster, "MESQ/SR", bytes_per_node=2 << 20)
        links = cluster.telemetry.links
        chain = critical_path(links)
        assert chain
        last_delivery = max(f.delivered_ns for f in links.flows.values()
                            if f.delivered_ns is not None)
        assert chain[-1]["delivered_ns"] == last_delivery
        # Oldest-first: post times never move backwards along the chain.
        posts = [link["posted_ns"] for link in chain]
        assert posts == sorted(posts)


# -- reports ---------------------------------------------------------------


class TestRunReports:
    @pytest.fixture(scope="class")
    def report_and_cluster(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4))
        cluster.enable_reporting()
        run_repartition(cluster, "MESQ/SR", bytes_per_node=2 << 20)
        return cluster.run_report(), cluster

    def test_report_has_latency_percentiles(self, report_and_cluster):
        report, _ = report_and_cluster
        latency = report["latency_ns"]
        assert latency["count"] > 0
        assert latency["min"] <= latency["p50"] <= latency["p90"] \
            <= latency["p99"] <= latency["max"]

    def test_report_is_json_serializable(self, report_and_cluster):
        report, _ = report_and_cluster
        json.dumps(report)

    def test_report_requires_link_recording(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
        with pytest.raises(ValueError, match="enable_reporting"):
            cluster.run_report()

    def test_session_document_carries_schema_and_aggregate(self):
        with session(report=True) as sess:
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
            run_repartition(cluster, "MESQ/SR", bytes_per_node=2 << 20)
            sess.checkpoint("smoke")
            document = sess.report_document()
        assert document["schema"] == REPORT_SCHEMA
        (entry,) = document["experiments"]
        assert entry["name"] == "smoke"
        assert entry["aggregate"]["runs"] == 1
        assert entry["aggregate"]["attribution"]["conserved"]

    def test_aggregate_sums_categories_and_weights_percentiles(self):
        run_a = {
            "attribution": {"total_ns": 100,
                            "categories": {c: 0 for c in CATEGORIES},
                            "conserved": True},
            "latency_ns": {"count": 1, "mean": 10.0, "p50": 10.0,
                           "p90": 10.0, "p99": 10.0},
            "sanitizer": {"violations": 0},
            "records": {"truncated": False},
        }
        run_a["attribution"]["categories"]["wire_serialization"] = 100
        run_b = copy.deepcopy(run_a)
        run_b["latency_ns"] = {"count": 3, "mean": 30.0, "p50": 30.0,
                               "p90": 30.0, "p99": 30.0}
        agg = aggregate_reports([run_a, run_b])
        assert agg["attribution"]["total_ns"] == 200
        assert agg["attribution"]["top"] == "wire_serialization"
        assert agg["latency_ns"]["count"] == 4
        assert agg["latency_ns"]["p99"] == pytest.approx(25.0)

    def test_markdown_rendering(self, report_and_cluster):
        report, _ = report_and_cluster
        document = build_document([{
            "name": "fig8", "runs": [report],
            "aggregate": aggregate_reports([report]),
        }])
        text = render_markdown(document)
        assert "## fig8" in text
        assert "| category |" in text
        assert "Message latency" in text


# -- the diff gate ---------------------------------------------------------


def _document(p99=1000.0, wire=0.8, credit=0.1):
    categories = {c: 0 for c in CATEGORIES}
    categories["wire_serialization"] = int(wire * 1000)
    categories["credit_stall"] = int(credit * 1000)
    categories["sender_compute"] = 1000 - sum(categories.values())
    shares = {c: ns / 1000 for c, ns in categories.items()}
    return {
        "schema": dict(REPORT_SCHEMA),
        "experiments": [{
            "name": "fig8",
            "runs": [],
            "aggregate": {
                "runs": 1,
                "attribution": {"total_ns": 1000, "categories": categories,
                                "shares": shares,
                                "top": "wire_serialization",
                                "conserved": True},
                "latency_ns": {"count": 10, "mean": p99 / 2,
                               "p50": p99 / 2, "p90": p99 * 0.9,
                               "p99": p99},
            },
        }],
    }


class TestDiffGate:
    def test_identical_reports_pass(self):
        assert diff(_document(), _document()) == []

    def test_percentile_regression_fails(self):
        failures = diff(_document(p99=1000.0), _document(p99=1400.0))
        assert any("p99 rose" in f for f in failures)

    def test_attribution_shift_fails(self):
        failures = diff(_document(wire=0.8, credit=0.1),
                        _document(wire=0.6, credit=0.3))
        assert any("credit_stall share shifted" in f for f in failures)

    def test_schema_mismatch_fails(self):
        bad = _document()
        bad["schema"]["version"] = 99
        assert diff(_document(), bad)

    def test_threshold_is_respected(self):
        failures = diff(_document(p99=1000.0), _document(p99=1100.0))
        assert failures == []  # 10% < 25% default gate

    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_cli_exits_nonzero_on_injected_regression(self, tmp_path,
                                                      capsys):
        base = self.write(tmp_path, "base.json", _document(p99=1000.0))
        regressed = self.write(tmp_path, "fresh.json",
                               _document(p99=2000.0))
        assert diff_main([base, regressed]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_cli_passes_identical_reports(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", _document())
        fresh = self.write(tmp_path, "fresh.json", _document())
        assert diff_main([base, fresh]) == 0
        assert "passed" in capsys.readouterr().out

    def test_cli_warn_only_downgrades_to_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", _document(p99=1000.0))
        regressed = self.write(tmp_path, "fresh.json",
                               _document(p99=2000.0))
        assert diff_main([base, regressed, "--warn-only"]) == 0
        assert "REGRESSION" in capsys.readouterr().err

    def test_module_entry_point_dispatches_diff(self, tmp_path):
        base = self.write(tmp_path, "base.json", _document())
        fresh = self.write(tmp_path, "fresh.json", _document())
        assert obs_main(["diff", base, fresh]) == 0

    def test_module_entry_point_renders_markdown(self, tmp_path, capsys):
        report = self.write(tmp_path, "report.json", _document())
        assert obs_main(["render", report]) == 0
        assert "## fig8" in capsys.readouterr().out


# -- repro-bench integration -----------------------------------------------


class TestBenchReportFlag:
    def test_cli_writes_report_document(self, tmp_path, capsys):
        from repro.bench.cli import main as cli_main
        out = tmp_path / "report.json"
        rc = cli_main(["fig12", "--report", str(out)])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["schema"] == REPORT_SCHEMA
        assert document["experiments"][0]["name"] == "fig12"
        for entry in document["experiments"]:
            for run in entry["runs"]:
                assert run["attribution"]["conserved"]
