"""Correctness tests for the RDMA Write endpoint (§7 future work)."""

import numpy as np
import pytest

from repro.core import DESIGNS

from tests.test_shuffle_integration import (
    received_multiset,
    run_shuffle_query,
)
from repro import TransmissionGroups


class TestWriteDesignRegistry:
    def test_write_designs_registered(self):
        assert "MEMQ/WR" in DESIGNS and "SEMQ/WR" in DESIGNS
        assert DESIGNS["MEMQ/WR"].one_sided
        assert not DESIGNS["MEMQ/WR"].uses_ud

    def test_qp_count_matches_mq(self):
        # Same connection footprint as the other MQ designs (Table 1).
        assert DESIGNS["MEMQ/WR"].qps_per_operator(16, 8) == 128
        assert DESIGNS["SEMQ/WR"].qps_per_operator(16, 8) == 16


@pytest.mark.parametrize("design", ["MEMQ/WR", "SEMQ/WR"])
class TestWriteDelivery:
    def test_repartition_exactly_once(self, design):
        sent, sinks, _el, _st, _cl = run_shuffle_query(design)
        expected = np.sort(np.concatenate([t["val"] for t in sent]))
        np.testing.assert_array_equal(received_multiset(sinks), expected)

    def test_broadcast_all_copies(self, design):
        nodes = 3
        groups = TransmissionGroups.broadcast(nodes)
        sent, sinks, _el, _st, _cl = run_shuffle_query(
            design, nodes=nodes, rows_per_node=1500, groups=groups)
        all_vals = np.concatenate([t["val"] for t in sent])
        expected = np.sort(np.tile(all_vals, nodes))
        np.testing.assert_array_equal(received_multiset(sinks), expected)


class TestWriteBufferProtocol:
    def test_remote_free_lists_replenished(self):
        """Every remote buffer lent to a sender must be returned."""
        _s, _k, _e, stage, cluster = run_shuffle_query("MEMQ/WR")
        cluster.run()  # drain in-flight FreeArr writes
        per_link = stage.config.buffers_per_link
        for eps in stage.send_endpoints.values():
            for ep in eps:
                for conn in ep.conns.values():
                    assert len(conn.remote_free) == per_link

    def test_sender_buffers_all_freed(self):
        _s, _k, _e, stage, cluster = run_shuffle_query("SEMQ/WR")
        cluster.run()
        for eps in stage.send_endpoints.values():
            for ep in eps:
                assert not ep._pending
