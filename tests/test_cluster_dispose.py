"""Cluster.dispose() lifecycle: idempotence and use-after-dispose."""

import pytest

from repro import Cluster, ClusterConfig, EDR, TransmissionGroups


def make_cluster(nodes=3, threads=2):
    return Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                 threads_per_node=threads))


def test_dispose_is_idempotent():
    cluster = make_cluster()
    assert not cluster.disposed
    cluster.dispose()
    assert cluster.disposed
    cluster.dispose()  # second call is a no-op, not an error
    assert cluster.disposed


def test_dispose_after_real_run():
    cluster = make_cluster()
    stage = cluster.shuffle_stage(
        "MESQ/SR", TransmissionGroups.repartition(cluster.num_nodes))
    cluster.run_process(stage.setup(), name="setup")
    stage.dispose()
    cluster.dispose()
    cluster.dispose()
    assert cluster.disposed


def test_run_after_dispose_raises():
    cluster = make_cluster()
    cluster.dispose()
    with pytest.raises(RuntimeError, match="disposed"):
        cluster.run()


def test_run_process_after_dispose_raises():
    cluster = make_cluster()
    cluster.dispose()

    def nop():
        yield cluster.sim.timeout(1)

    with pytest.raises(RuntimeError, match="disposed"):
        cluster.run_process(nop(), name="nop")
