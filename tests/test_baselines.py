"""Unit tests for the MPI, IPoIB and qperf baselines."""

import pytest

from repro import Cluster, ClusterConfig, EDR, FDR
from repro.baselines import run_qperf
from repro.baselines.mpi import MPIRuntime
from repro.bench.workloads import run_repartition

MIB = 1 << 20


class TestQperf:
    def test_edr_peak_near_line_rate(self):
        gib = run_qperf(EDR)
        assert 10.5 < gib < 12.0  # paper: ~11.5 GiB/s

    def test_fdr_peak_near_line_rate(self):
        gib = run_qperf(FDR)
        assert 5.2 < gib < 6.2  # paper: ~5.9 GiB/s

    def test_tiny_messages_become_rate_bound(self):
        # At 256 B the per-work-request NIC processing dominates the
        # serialization time and throughput collapses.
        assert run_qperf(EDR, message_size=256, messages=4096) < \
            0.5 * run_qperf(EDR, message_size=65536)

    def test_rejects_empty_run(self):
        with pytest.raises(ValueError):
            run_qperf(EDR, messages=0)


class TestMPIRuntime:
    def test_runtime_is_per_node_singleton(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=2))
        a = MPIRuntime.get(cluster.contexts[0])
        b = MPIRuntime.get(cluster.contexts[0])
        c = MPIRuntime.get(cluster.contexts[1])
        assert a is b
        assert a is not c

    def test_eager_send_recv_roundtrip(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=1))
        rt0 = MPIRuntime.get(cluster.contexts[0])
        rt1 = MPIRuntime.get(cluster.contexts[1])

        def sender():
            yield from rt0.mpi_send(1, tag=7, payload="hello", length=64)

        def receiver():
            src, payload, length = yield from rt1.mpi_recv(tag=7)
            return (src, payload, length)

        cluster.sim.process(sender())
        got = cluster.run_process(receiver())
        assert got == (0, "hello", 64)

    def test_rendezvous_waits_for_matching_recv(self):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=1))
        rt0 = MPIRuntime.get(cluster.contexts[0])
        rt1 = MPIRuntime.get(cluster.contexts[1])
        big = 256 * 1024  # far beyond the eager threshold
        send_done = {}

        def sender():
            yield from rt0.mpi_send(1, tag=3, payload="bulk", length=big)
            send_done["at"] = cluster.sim.now

        def receiver():
            yield cluster.sim.timeout(200_000)  # receiver shows up late
            src, payload, length = yield from rt1.mpi_recv(tag=3)
            return length

        cluster.sim.process(sender())
        assert cluster.run_process(receiver()) == big
        # The blocking send cannot complete before the receiver matched.
        assert send_done["at"] >= 200_000

    def test_progress_gated_on_mpi_calls(self):
        """An arriving message is not matched while no thread is inside
        the MPI library (the overlap-failure mechanism)."""
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2,
                                        threads_per_node=1))
        rt1 = MPIRuntime.get(cluster.contexts[1])
        assert rt1.in_mpi == 0
        # Inject a wire-level arrival while nobody is in an MPI call: it
        # must park in the backlog, not be processed.
        from repro.fabric.packet import Packet
        pkt = Packet(0, 1, 0, 0, "MPI_EAGER", 10, 64, payload="x",
                     meta={"tag": 9})
        rt1._on_wire(pkt)
        assert len(rt1._backlog) == 1

        def receiver():
            src, payload, _len = yield from rt1.mpi_recv(tag=9)
            return payload

        assert cluster.run_process(receiver()) == "x"
        assert len(rt1._backlog) == 0


class TestBaselineShuffles:
    def test_mpi_slower_than_rdma(self):
        def thr(design):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4))
            return run_repartition(
                cluster, design,
                bytes_per_node=8 * MIB).receive_throughput_gib_per_node()

        assert thr("MESQ/SR") > thr("MPI")

    def test_ipoib_slowest(self):
        def thr(design):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=4))
            return run_repartition(
                cluster, design,
                bytes_per_node=6 * MIB).receive_throughput_gib_per_node()

        ipoib = thr("IPoIB")
        assert ipoib < thr("MPI")
        # IPoIB is capped by the kernel stack, far below line rate.
        assert ipoib < 0.5 * EDR.link_bytes_per_ns
