"""Unit tests for simulation primitives (queues, semaphores, pipes)."""

import pytest

from repro.sim import Mutex, Notify, Queue, RatePipe, Semaphore, SimError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestQueue:
    def test_put_then_get(self, sim):
        q = Queue(sim)
        q.put("x")

        def proc():
            item = yield q.get()
            return item

        assert sim.run_process(proc()) == "x"

    def test_get_blocks_until_put(self, sim):
        q = Queue(sim)

        def getter():
            item = yield q.get()
            return (sim.now, item)

        def putter():
            yield sim.timeout(50)
            q.put("late")

        sim.process(putter())
        assert sim.run_process(getter()) == (50, "late")

    def test_fifo_order_items(self, sim):
        q = Queue(sim)
        for i in range(5):
            q.put(i)

        def proc():
            out = []
            for _ in range(5):
                out.append((yield q.get()))
            return out

        assert sim.run_process(proc()) == [0, 1, 2, 3, 4]

    def test_fifo_order_getters(self, sim):
        q = Queue(sim)
        results = []

        def getter(name):
            item = yield q.get()
            results.append((name, item))

        sim.process(getter("first"))
        sim.process(getter("second"))

        def putter():
            yield sim.timeout(1)
            q.put("a")
            q.put("b")

        sim.process(putter())
        sim.run()
        assert results == [("first", "a"), ("second", "b")]

    def test_try_get(self, sim):
        q = Queue(sim)
        assert q.try_get() == (False, None)
        q.put(7)
        assert q.try_get() == (True, 7)
        assert len(q) == 0


class TestSemaphore:
    def test_acquire_release(self, sim):
        sem = Semaphore(sim, 2)

        def proc():
            yield sem.acquire()
            yield sem.acquire()
            assert sem.value == 0
            sem.release()
            return sem.value

        assert sim.run_process(proc()) == 1

    def test_blocks_at_zero(self, sim):
        sem = Semaphore(sim, 1)
        log = []

        def holder():
            yield sem.acquire()
            yield sim.timeout(100)
            sem.release()

        def waiter():
            yield sem.acquire()
            log.append(sim.now)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert log == [100]

    def test_negative_initial_value_rejected(self, sim):
        with pytest.raises(SimError):
            Semaphore(sim, -1)

    def test_try_acquire(self, sim):
        sem = Semaphore(sim, 1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_fifo_wakeup(self, sim):
        sem = Semaphore(sim, 0)
        order = []

        def waiter(name):
            yield sem.acquire()
            order.append(name)

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.process(waiter("c"))

        def releaser():
            yield sim.timeout(1)
            for _ in range(3):
                sem.release()

        sim.process(releaser())
        sim.run()
        assert order == ["a", "b", "c"]


class TestMutex:
    def test_critical_section_serializes(self, sim):
        mutex = Mutex(sim)
        spans = []

        def proc(name):
            start = sim.now
            yield from mutex.critical_section(100)
            spans.append((name, start, sim.now))

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        # b cannot finish its critical section before a releases.
        assert spans == [("a", 0, 100), ("b", 0, 200)]


class TestNotify:
    def test_notify_all_wakes_every_waiter(self, sim):
        cond = Notify(sim)
        woken = []

        def waiter(name):
            value = yield cond.wait()
            woken.append((name, value, sim.now))

        sim.process(waiter("x"))
        sim.process(waiter("y"))
        sim.call_at(30, lambda: cond.notify_all("go"))
        sim.run()
        assert woken == [("x", "go", 30), ("y", "go", 30)]

    def test_waiters_registered_after_notify_need_new_notify(self, sim):
        cond = Notify(sim)
        cond.notify_all()
        woken = []

        def waiter():
            yield cond.wait()
            woken.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert woken == []  # missed the earlier broadcast


class TestRatePipe:
    def test_single_transfer_duration(self, sim):
        pipe = RatePipe(sim, rate=1.0)  # 1 byte/ns

        def proc():
            yield pipe.transmit(1000)
            return sim.now

        assert sim.run_process(proc()) == 1000

    def test_fifo_serialization(self, sim):
        pipe = RatePipe(sim, rate=2.0)
        done = []

        def sender(name, nbytes):
            yield pipe.transmit(nbytes)
            done.append((name, sim.now))

        sim.process(sender("a", 1000))  # 500 ns
        sim.process(sender("b", 1000))  # queued behind a
        sim.run()
        assert done == [("a", 500), ("b", 1000)]

    def test_extra_ns_overhead(self, sim):
        pipe = RatePipe(sim, rate=1.0)

        def proc():
            yield pipe.transmit(100, extra_ns=50)
            return sim.now

        assert sim.run_process(proc()) == 150

    def test_idle_pipe_starts_immediately(self, sim):
        pipe = RatePipe(sim, rate=1.0)

        def proc():
            yield sim.timeout(500)
            yield pipe.transmit(100)
            return sim.now

        assert sim.run_process(proc()) == 600

    def test_occupy(self, sim):
        pipe = RatePipe(sim, rate=1.0)

        def proc():
            yield pipe.occupy(42)
            return sim.now

        assert sim.run_process(proc()) == 42

    def test_rejects_bad_rate(self, sim):
        with pytest.raises(SimError):
            RatePipe(sim, rate=0)

    def test_total_units_accounting(self, sim):
        pipe = RatePipe(sim, rate=1.0)

        def proc():
            yield pipe.transmit(100)
            yield pipe.transmit(200)

        sim.run_process(proc())
        assert pipe.total_units == 300
