"""Property tests (hypothesis) for the transport-runtime primitives.

Random interleavings over the credit policies (transport/credit.py) and
the buffer-ring bookkeeping (transport/rings.py), executed under the
runtime sanitizer: whatever order posts, completions and recycles land
in, the protocol invariants must hold and the sanitizer must stay quiet.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.transport.connections import PeerConnection
from repro.core.transport.credit import grant_credit
from repro.core.transport.rings import BufferRing, PendingTable, RingCursor
from repro.memory import BufferPool
from repro.sim import Notify, Simulator
from repro.verbs import Opcode, SendWR

from tests.test_sanitizer_faults import rc_pair, sanitized_cluster


class TestCreditPolicyProperties:
    @given(grants=st.lists(st.integers(0, 100), max_size=30))
    def test_credit_is_the_running_max_of_grants(self, grants):
        """Absolute-credit semantics (§4.4.1-2): stale or duplicated
        grants are superseded; credit never decreases."""
        sim = Simulator()
        conn = PeerConnection(1)
        conn.notify = Notify(sim)
        for value in grants:
            conn.notify.wait()  # a stalled sender, parked on the notify
            before = conn.credit
            grant_credit(conn, value)
            assert conn.credit == max(before, value)
            if value > before:
                assert not conn.notify._waiters, "increase must wake senders"
            else:
                assert len(conn.notify._waiters) == 1, \
                    "stale grant must not wake senders"
                conn.notify._waiters.clear()
        assert conn.credit == max([0] + grants)


class TestRingCursorProperties:
    @given(base=st.integers(0, 2 ** 20), cap=st.integers(1, 64),
           n=st.integers(1, 200))
    def test_slots_cycle_through_the_ring_in_order(self, base, cap, n):
        cursor = RingCursor(base, cap)
        slots = [cursor.next_slot() for _ in range(n)]
        assert slots == [base + (i % cap) * 8 for i in range(n)]
        assert cursor.produced == n
        assert all(base <= s < base + cap * 8 for s in slots)


class TestPendingTableProperties:
    @given(counts=st.dictionaries(st.integers(0, 20), st.integers(1, 5),
                                  min_size=1, max_size=8))
    def test_last_completion_and_only_it_releases_a_key(self, counts):
        table = PendingTable()
        for key, count in counts.items():
            table.add(key, count)
        assert len(table) == len(counts)
        for key, count in counts.items():
            for i in range(count):
                released = table.complete(key)
                assert released == (i == count - 1)
                assert (key in table) == (not released)
        assert not table
        assert len(table) == 0


class TestBufferRingUnderSanitizer:
    @given(ops=st.lists(st.sampled_from(["post", "drain"]), max_size=24))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_post_drain_interleavings_stay_clean(self, ops):
        """GETFREE -> fill -> post -> poll -> RELEASE in any interleaving
        conserves buffers and never trips a sanitizer rule."""
        sim = Simulator()
        _, ctxs, san = sanitized_cluster(sim)
        qps, cqs = rc_pair(ctxs)
        ring = BufferRing(ctxs[0])
        sim.run_process(ring.provision(4, 256))
        rpool = BufferPool(ctxs[1], len(ops) + 1, 256)

        available = list(ring.pool.buffers)
        in_flight = 0
        recv_idx = 0

        def drain():
            nonlocal in_flight
            sim.run()
            for wc in cqs[0].poll():
                ring.recycle(wc.wr_id)  # reset() runs under the sanitizer
                available.append(wc.wr_id)
                in_flight -= 1
            cqs[1].poll()

        for op in ops:
            if op == "post" and available:
                buf = available.pop()
                qps[1].post_recv_buffer(rpool.buffers[recv_idx], 256)
                recv_idx += 1
                buf.fill("x" * 8, 64)
                qps[0].post_send(SendWR(wr_id=buf, opcode=Opcode.SEND,
                                        buffer=buf, length=64))
                in_flight += 1
            elif op == "drain":
                drain()
        drain()

        assert in_flight == 0
        assert len(available) == 4, "buffer leaked or duplicated"
        assert san.violations == []
