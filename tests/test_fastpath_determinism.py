"""A/B regression for the kernel/fabric fast path.

The fast path (flat callback routing, event-driven completion queues,
calendar-bucket scheduling — see DESIGN.md, "Kernel fast path") must be
*observably invisible*: with ``REPRO_FASTPATH=0`` the legacy generator
processes run instead, and everything a user can measure — simulated end
times, modeled metrics, trace span counts — must come out bit-identical.
Only the four interpreter self-counters (events dispatched, process
wakeups, processes started, queue depth) may differ, because the fast
path legitimately allocates fewer kernel objects.

Also pins down two kernel contracts the fast path leans on: FIFO order
within a same-timestamp batch, and the exclusive ``run(until=...)``
bound.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fabric import (
    DUAL_RAIL,
    EDR,
    LEAF_SPINE,
    SINGLE_SWITCH,
    ClusterConfig,
    Fabric,
    Packet,
)
from repro.sim import Simulator
from tests.test_determinism import DESIGN_NAMES, run_once

#: interpreter self-counters exempt from fast-path invariance.
SIM_SELF_COUNTERS = {
    "sim.events_dispatched",
    "sim.process_wakeups",
    "sim.processes_started",
    "sim.max_queue_depth",
}


def _comparable(snapshot):
    """The snapshot minus the exempt interpreter self-counters."""
    fabric = {k: v for k, v in snapshot["fabric"].items()
              if k not in SIM_SELF_COUNTERS}
    return dict(snapshot, fabric=fabric)


@pytest.mark.parametrize("design", DESIGN_NAMES)
def test_fastpath_matches_legacy_generators(design, monkeypatch):
    monkeypatch.delenv("REPRO_FASTPATH", raising=False)
    fast_snap, fast_spans, fast_now = run_once(design)
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    slow_snap, slow_spans, slow_now = run_once(design)
    assert fast_now == slow_now, "simulated end times diverge"
    assert fast_spans == slow_spans, "trace span counts diverge"
    assert _comparable(fast_snap) == _comparable(slow_snap), \
        "modeled metrics diverge"


# -- multicast legs under jitter and loss -----------------------------------

def _mcast_ab_run(flat, topology):
    """Blast multicast datagrams with jitter and loss injection enabled;
    returns every per-leg outcome in completion order."""
    sim = Simulator()
    config = ClusterConfig(network=EDR, num_nodes=8,
                           topology=topology).with_network(
        ud_jitter_ns=2600, ud_loss_probability=0.25)
    fabric = Fabric(sim, config)
    fabric.flat_routing = flat
    mgid = 7
    for node in range(1, 8):
        fabric.mcast_attach(mgid, node, 200 + node)
    outcomes = []

    def wait_leg(leg):
        copy = yield leg
        outcomes.append((sim.now, copy.dst_node, copy.dropped))

    def collect(fanned_out):
        legs = yield fanned_out
        for leg in legs:
            sim.process(wait_leg(leg))

    for seq in range(16):
        pkt = Packet(0, 0, 11, 0, "SEND", 2048, 2108, meta={"seq": seq})
        sim.process(collect(fabric.route_mcast(pkt, mgid)))
    sim.run()
    return (tuple(outcomes), sim.now,
            fabric.delivered_messages, fabric.dropped_messages)


@pytest.mark.parametrize("topology", [
    SINGLE_SWITCH, LEAF_SPINE(oversubscription=2), DUAL_RAIL,
], ids=["single-switch", "leaf-spine", "dual-rail"])
def test_mcast_legs_match_legacy_under_jitter_and_loss(topology):
    """Multicast exercises walker paths unicast cannot: the trunk hands
    over to a fan-out terminal, and every leg draws jitter *and* loss.
    Arrival times, completion order, and drop decisions must be
    bit-identical across the two routing variants."""
    fast = _mcast_ab_run(True, topology)
    slow = _mcast_ab_run(False, topology)
    assert fast == slow
    outcomes, _now, delivered, dropped = fast
    assert delivered + dropped == len(outcomes) == 16 * 7
    assert dropped > 0, "loss injection should have dropped some legs"
    assert delivered > 0


# -- same-timestamp FIFO ----------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=15),
                min_size=1, max_size=80))
def test_batched_same_timestamp_dispatch_is_fifo(delays):
    """Callbacks fire in (time, schedule order) — batching a timestamp's
    entries into one bucket must not reorder them."""
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.call_at(delay, lambda d=delay, i=index: fired.append((d, i)))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


def test_mid_batch_same_time_entries_run_after_the_batch():
    """An entry scheduled *during* a batch for the same timestamp runs
    after everything already queued for that timestamp."""
    sim = Simulator()
    fired = []
    sim.call_at(5, lambda: (fired.append("a"),
                            sim.call_soon(lambda: fired.append("late"))))
    sim.call_at(5, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "late"]
    assert sim.now == 5


def test_run_process_preserves_rest_of_final_batch():
    """Entries queued behind the stop event at the same timestamp must
    survive ``run_process`` returning and fire on the next run."""
    sim = Simulator()
    fired = []
    ev = sim.event()

    def other():
        yield sim.timeout(5)
        ev.succeed()

    def sched():
        yield sim.timeout(5)
        sim.call_soon(lambda: sim.call_soon(lambda: fired.append("tail")))

    def main():
        yield ev

    sim.process(other())
    sim.process(sched())
    sim.run_process(main())
    assert fired == []
    assert sim.now == 5
    sim.run()
    assert fired == ["tail"]
    assert sim.now == 5


# -- run(until=...) boundary ------------------------------------------------

def test_run_until_bound_is_exclusive():
    sim = Simulator()
    fired = []
    sim.call_at(10, lambda: fired.append("at10"))
    assert sim.run(until=10) == 10
    assert sim.now == 10
    assert fired == [], "event exactly at the bound must stay queued"
    # A later run picks the boundary event up at the current time.
    assert sim.run(until=11) == 11
    assert fired == ["at10"]


def test_run_until_advances_clock_on_early_drain():
    sim = Simulator()
    sim.call_at(3, lambda: None)
    assert sim.run(until=100) == 100
    assert sim.now == 100


def test_run_until_never_moves_clock_backwards():
    sim = Simulator()
    sim.call_at(7, lambda: None)
    sim.run()
    assert sim.now == 7
    fired = []
    sim.call_at(20, lambda: fired.append("later"))
    assert sim.run(until=5) == 7, "until <= now is a no-op"
    assert fired == []
    sim.run()
    assert fired == ["later"]
