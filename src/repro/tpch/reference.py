"""Single-node reference implementations of Q3, Q4 and Q10.

Pure-numpy computations over the whole (unpartitioned) tables; the
distributed plans in :mod:`repro.tpch.queries` must produce identical
answers.  Results are dictionaries keyed by group, with float aggregates.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.tpch.datagen import TPCHData
from repro.tpch.schema import MKT_SEGMENTS, RETURN_FLAGS, date_to_days

__all__ = ["reference_answer", "Q3_PARAMS", "Q4_PARAMS", "Q10_PARAMS"]

#: Q3: BUILDING segment, cutoff date 1995-03-15.
Q3_PARAMS = {
    "segment": MKT_SEGMENTS.index("BUILDING"),
    "date": date_to_days(1995, 3, 15),
}
#: Q4: quarter starting 1993-07-01.
Q4_PARAMS = {
    "date_lo": date_to_days(1993, 7, 1),
    "date_hi": date_to_days(1993, 10, 1),
}
#: Q10: quarter starting 1993-10-01, returned items only.
Q10_PARAMS = {
    "date_lo": date_to_days(1993, 10, 1),
    "date_hi": date_to_days(1994, 1, 1),
    "returnflag": RETURN_FLAGS.index("R"),
}


def _q4(data: TPCHData) -> Dict[int, float]:
    orders = data.orders
    lineitem = data.lineitem
    omask = ((orders["o_orderdate"] >= Q4_PARAMS["date_lo"]) &
             (orders["o_orderdate"] < Q4_PARAMS["date_hi"]))
    late = lineitem[lineitem["l_commitdate"] < lineitem["l_receiptdate"]]
    late_orders = np.unique(late["l_orderkey"])
    sel = orders[omask]
    exists = np.isin(sel["o_orderkey"], late_orders)
    sel = sel[exists]
    out: Dict[int, float] = {}
    for prio in np.unique(sel["o_orderpriority"]):
        out[int(prio)] = float(np.sum(sel["o_orderpriority"] == prio))
    return out


def _q3(data: TPCHData) -> Dict[Tuple[int, int, int], float]:
    cust = data.customer
    orders = data.orders
    lineitem = data.lineitem
    cust = cust[cust["c_mktsegment"] == Q3_PARAMS["segment"]]
    orders = orders[orders["o_orderdate"] < Q3_PARAMS["date"]]
    orders = orders[np.isin(orders["o_custkey"], cust["c_custkey"])]
    li = lineitem[lineitem["l_shipdate"] > Q3_PARAMS["date"]]
    li = li[np.isin(li["l_orderkey"], orders["o_orderkey"])]
    odate = dict(zip(orders["o_orderkey"].tolist(),
                     orders["o_orderdate"].tolist()))
    out: Dict[Tuple[int, int, int], float] = {}
    revenue = li["l_extendedprice"] * (1.0 - li["l_discount"])
    for key, rev in zip(li["l_orderkey"].tolist(), revenue.tolist()):
        group = (key, odate[key], 0)
        out[group] = out.get(group, 0.0) + rev
    return out


def _q10(data: TPCHData) -> Dict[Tuple[int, int], float]:
    cust = data.customer
    orders = data.orders
    lineitem = data.lineitem
    omask = ((orders["o_orderdate"] >= Q10_PARAMS["date_lo"]) &
             (orders["o_orderdate"] < Q10_PARAMS["date_hi"]))
    orders = orders[omask]
    li = lineitem[lineitem["l_returnflag"] == Q10_PARAMS["returnflag"]]
    li = li[np.isin(li["l_orderkey"], orders["o_orderkey"])]
    ocust = dict(zip(orders["o_orderkey"].tolist(),
                     orders["o_custkey"].tolist()))
    nation_of = dict(zip(cust["c_custkey"].tolist(),
                         cust["c_nationkey"].tolist()))
    revenue = li["l_extendedprice"] * (1.0 - li["l_discount"])
    out: Dict[Tuple[int, int], float] = {}
    for okey, rev in zip(li["l_orderkey"].tolist(), revenue.tolist()):
        custkey = ocust[okey]
        group = (custkey, int(nation_of[custkey]))
        out[group] = out.get(group, 0.0) + rev
    return out


def reference_answer(query: str, data: TPCHData):
    """Compute the reference answer for "Q3", "Q4" or "Q10"."""
    impl = {"Q3": _q3, "Q4": _q4, "Q10": _q10}
    try:
        return impl[query](data)
    except KeyError:
        raise ValueError(f"unknown query {query!r}; pick Q3, Q4 or Q10") from None
