"""Pre-projected TPC-H schema (§5.2).

Only the columns touched by Q3, Q4 and Q10 exist — the paper pre-projects
all unused columns "as a column-store database would".  Dates are stored
as integer day offsets from 1992-01-01; low-cardinality strings are
dictionary-encoded to small integers.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CUSTOMER_DTYPE", "ORDERS_DTYPE", "LINEITEM_DTYPE", "NATION_DTYPE",
    "MKT_SEGMENTS", "ORDER_PRIORITIES", "RETURN_FLAGS", "NATIONS",
    "date_to_days", "DATE_EPOCH_DAYS",
]

#: day 0 == 1992-01-01; TPC-H dates span 1992-01-01 .. 1998-12-31.
DATE_EPOCH_DAYS = 0
_DAYS_PER_YEAR = 365.25


def date_to_days(year: int, month: int, day: int) -> int:
    """Approximate day offset from 1992-01-01 (month lengths averaged).

    The generator uses the same mapping, so predicates are exact within
    the simulation even though real calendars are not consulted.
    """
    return int((year - 1992) * _DAYS_PER_YEAR + (month - 1) * 30.4375
               + (day - 1))


MKT_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                "MACHINERY"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW"]
RETURN_FLAGS = ["A", "N", "R"]
NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]

CUSTOMER_DTYPE = np.dtype([
    ("c_custkey", np.int64),
    ("c_mktsegment", np.int8),   # index into MKT_SEGMENTS
    ("c_nationkey", np.int8),    # index into NATIONS
    ("c_acctbal", np.float64),
])

ORDERS_DTYPE = np.dtype([
    ("o_orderkey", np.int64),
    ("o_custkey", np.int64),
    ("o_orderdate", np.int32),     # days since 1992-01-01
    ("o_orderpriority", np.int8),  # index into ORDER_PRIORITIES
    ("o_shippriority", np.int32),  # always 0 in TPC-H
])

LINEITEM_DTYPE = np.dtype([
    ("l_orderkey", np.int64),
    ("l_extendedprice", np.float64),
    ("l_discount", np.float64),
    ("l_shipdate", np.int32),
    ("l_commitdate", np.int32),
    ("l_receiptdate", np.int32),
    ("l_returnflag", np.int8),     # index into RETURN_FLAGS
])

NATION_DTYPE = np.dtype([
    ("n_nationkey", np.int8),
])
