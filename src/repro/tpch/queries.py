"""Distributed TPC-H query plans (§5.2).

Plans were hand-derived the way a commercial optimizer lays them out for
randomly-scattered tables: filter early, shuffle build and probe sides on
the join key, join, re-shuffle intermediate results for the next join,
aggregate partially, and gather partial aggregates on a coordinator.

``local_data=True`` builds the §5.2.1 "local data" variant: tables are
co-partitioned so joins run locally and only the (tiny) partial
aggregates are gathered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cluster import Cluster
from repro.core.endpoint import EndpointConfig
from repro.core.groups import TransmissionGroups
from repro.core.receive import ReceiveOperator
from repro.core.shuffle import ShuffleOperator, hash_partitioner
from repro.core.stage import ShuffleStage
from repro.engine.aggregate import HashAggregateOperator
from repro.engine.filter import FilterOperator
from repro.engine.fragment import CollectSink, QueryFragment, run_fragments
from repro.engine.join import HashJoinOperator
from repro.engine.map import MapOperator
from repro.engine.project import ProjectOperator
from repro.engine.scan import ScanOperator
from repro.tpch.datagen import TPCHData
from repro.tpch.reference import Q3_PARAMS, Q4_PARAMS, Q10_PARAMS

__all__ = ["QueryResult", "run_query"]


@dataclass
class QueryResult:
    """Outcome of one distributed query execution."""

    query: str
    design: str
    num_nodes: int
    #: answer as a dict: group key (int or tuple) -> aggregate value.
    answer: Dict
    #: wall-clock simulated time of the execution phase.
    response_time_ns: int
    #: connection build + registration time (reported separately, §5.1.5).
    setup_ns: int

    def response_time_ms(self) -> float:
        return self.response_time_ns / 1e6


class _PlanContext:
    """Carries everything the per-query builders need."""

    def __init__(self, cluster: Cluster, design: str, data: TPCHData,
                 config: Optional[EndpointConfig], local_data: bool):
        self.cluster = cluster
        self.design = design
        self.data = data
        self.config = config or EndpointConfig()
        self.local_data = local_data
        self.threads = cluster.threads_per_node
        self.n = cluster.num_nodes
        self.stages: List[ShuffleStage] = []
        self.fragments: List[QueryFragment] = []
        self.sink = CollectSink()

    # -- stage/operator helpers ------------------------------------------------

    def make_stage(self, groups) -> ShuffleStage:
        if self.design in ("MPI", "IPoIB"):
            from repro.baselines import baseline_stage
            stage = baseline_stage(self.cluster.fabric, self.design, groups,
                                   config=self.config, threads=self.threads,
                                   registry=self.cluster.registry)
        else:
            stage = ShuffleStage(self.cluster.fabric, self.design, groups,
                                 config=self.config, threads=self.threads,
                                 registry=self.cluster.registry)
        self.stages.append(stage)
        return stage

    def repartition_stage(self) -> ShuffleStage:
        return self.make_stage(TransmissionGroups.repartition(self.n))

    def gather_stage(self) -> ShuffleStage:
        return self.make_stage(TransmissionGroups([(0,)]))

    def scan(self, table: str, node_id: int) -> ScanOperator:
        node = self.cluster.nodes[node_id]
        return ScanOperator(node, self.data.partition(table, node_id),
                            self.threads)

    def shuffle_to(self, stage: ShuffleStage, node_id: int, child,
                   key_column: Optional[str]) -> ShuffleOperator:
        node = self.cluster.nodes[node_id]
        if key_column is None:
            partition = lambda batch: 0  # noqa: E731 - gather everything
        else:
            partition = hash_partitioner(
                lambda b, c=key_column: b[c],
                stage.groups_for[node_id].num_groups)
        return ShuffleOperator(node, child, stage.send_endpoints[node_id],
                               stage.groups_for[node_id], partition,
                               self.threads)

    def receive_from(self, stage: ShuffleStage, node_id: int) -> ReceiveOperator:
        node = self.cluster.nodes[node_id]
        return ReceiveOperator(node, stage.recv_endpoints[node_id],
                               self.threads)

    def add_fragment(self, node_id: int, root, sink=None, name: str = ""):
        node = self.cluster.nodes[node_id]
        self.fragments.append(QueryFragment(node, root, self.threads,
                                            sink=sink, name=name))

    def finalize(self, gather: ShuffleStage, group_cols, aggs) -> None:
        """The coordinator fragment: final aggregation over partials."""
        node0 = self.cluster.nodes[0]
        final = HashAggregateOperator(
            node0, self.receive_from(gather, 0), group_cols, aggs,
            self.threads)
        self.add_fragment(0, final, sink=self.sink, name="coordinator")


def _revenue(batch: np.ndarray) -> np.ndarray:
    from numpy.lib import recfunctions as rfn
    revenue = batch["l_extendedprice"] * (1.0 - batch["l_discount"])
    return rfn.append_fields(batch, "revenue", revenue, usemask=False)


# -- Q4 -------------------------------------------------------------------------


def _build_q4(ctx: _PlanContext) -> None:
    """Q4: priority counts of orders with at least one late lineitem."""
    gather = ctx.gather_stage()
    if not ctx.local_data:
        li_stage = ctx.repartition_stage()
        or_stage = ctx.repartition_stage()
    for node_id in range(ctx.n):
        node = ctx.cluster.nodes[node_id]
        late_li = ProjectOperator(node, FilterOperator(
            node, ctx.scan("lineitem", node_id),
            lambda b: b["l_commitdate"] < b["l_receiptdate"]),
            ["l_orderkey"])
        sel_orders = ProjectOperator(node, FilterOperator(
            node, ctx.scan("orders", node_id),
            lambda b: ((b["o_orderdate"] >= Q4_PARAMS["date_lo"]) &
                       (b["o_orderdate"] < Q4_PARAMS["date_hi"]))),
            ["o_orderkey", "o_orderpriority"])
        if ctx.local_data:
            build, probe = late_li, sel_orders
        else:
            ctx.add_fragment(node_id, ctx.shuffle_to(
                li_stage, node_id, late_li, "l_orderkey"))
            ctx.add_fragment(node_id, ctx.shuffle_to(
                or_stage, node_id, sel_orders, "o_orderkey"))
            build = ctx.receive_from(li_stage, node_id)
            probe = ctx.receive_from(or_stage, node_id)
        exists = HashJoinOperator(node, build, probe,
                                  build_key="l_orderkey",
                                  probe_key="o_orderkey",
                                  num_threads=ctx.threads, semi=True)
        partial = HashAggregateOperator(
            node, exists, ["o_orderpriority"],
            [("count", None, "order_count")], ctx.threads)
        ctx.add_fragment(node_id, ctx.shuffle_to(gather, node_id, partial,
                                                 None))
    ctx.finalize(gather, ["o_orderpriority"],
                 [("sum", "order_count", "order_count")])


def _q4_answer(batch: Optional[np.ndarray]) -> Dict:
    if batch is None:
        return {}
    return {int(r["o_orderpriority"]): float(r["order_count"])
            for r in batch}


# -- Q3 -------------------------------------------------------------------------


def _build_q3(ctx: _PlanContext) -> None:
    """Q3: revenue of unshipped orders for one market segment."""
    gather = ctx.gather_stage()
    c_stage = ctx.repartition_stage()
    o_stage = ctx.repartition_stage()
    oc_stage = ctx.repartition_stage()
    l_stage = ctx.repartition_stage()
    for node_id in range(ctx.n):
        node = ctx.cluster.nodes[node_id]
        cust = ProjectOperator(node, FilterOperator(
            node, ctx.scan("customer", node_id),
            lambda b: b["c_mktsegment"] == Q3_PARAMS["segment"]),
            ["c_custkey"])
        orders = ProjectOperator(node, FilterOperator(
            node, ctx.scan("orders", node_id),
            lambda b: b["o_orderdate"] < Q3_PARAMS["date"]),
            ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"])
        ctx.add_fragment(node_id, ctx.shuffle_to(
            c_stage, node_id, cust, "c_custkey"))
        ctx.add_fragment(node_id, ctx.shuffle_to(
            o_stage, node_id, orders, "o_custkey"))
        # customer ⋈ orders on custkey (customer is a pure filter here).
        join_co = HashJoinOperator(
            node, ctx.receive_from(c_stage, node_id),
            ctx.receive_from(o_stage, node_id),
            build_key="c_custkey", probe_key="o_custkey",
            num_threads=ctx.threads, build_payload=[])
        ctx.add_fragment(node_id, ctx.shuffle_to(
            oc_stage, node_id, join_co, "o_orderkey"))
        lineitem = ProjectOperator(node, FilterOperator(
            node, ctx.scan("lineitem", node_id),
            lambda b: b["l_shipdate"] > Q3_PARAMS["date"]),
            ["l_orderkey", "l_extendedprice", "l_discount"])
        ctx.add_fragment(node_id, ctx.shuffle_to(
            l_stage, node_id, lineitem, "l_orderkey"))
        join_col = HashJoinOperator(
            node, ctx.receive_from(oc_stage, node_id),
            ctx.receive_from(l_stage, node_id),
            build_key="o_orderkey", probe_key="l_orderkey",
            num_threads=ctx.threads,
            build_payload=["o_orderdate", "o_shippriority"])
        partial = HashAggregateOperator(
            node, MapOperator(node, join_col, _revenue),
            ["l_orderkey", "o_orderdate", "o_shippriority"],
            [("sum", "revenue", "revenue")], ctx.threads)
        ctx.add_fragment(node_id, ctx.shuffle_to(gather, node_id, partial,
                                                 None))
    ctx.finalize(gather, ["l_orderkey", "o_orderdate", "o_shippriority"],
                 [("sum", "revenue", "revenue")])


def _q3_answer(batch: Optional[np.ndarray]) -> Dict:
    if batch is None:
        return {}
    return {
        (int(r["l_orderkey"]), int(r["o_orderdate"]),
         int(r["o_shippriority"])): float(r["revenue"])
        for r in batch
    }


# -- Q10 ------------------------------------------------------------------------


def _build_q10(ctx: _PlanContext) -> None:
    """Q10: revenue lost to returned items, per customer (+ nation)."""
    gather = ctx.gather_stage()
    o_stage = ctx.repartition_stage()
    l_stage = ctx.repartition_stage()
    cu_stage = ctx.repartition_stage()
    c_stage = ctx.repartition_stage()
    for node_id in range(ctx.n):
        node = ctx.cluster.nodes[node_id]
        orders = ProjectOperator(node, FilterOperator(
            node, ctx.scan("orders", node_id),
            lambda b: ((b["o_orderdate"] >= Q10_PARAMS["date_lo"]) &
                       (b["o_orderdate"] < Q10_PARAMS["date_hi"]))),
            ["o_orderkey", "o_custkey"])
        lineitem = ProjectOperator(node, FilterOperator(
            node, ctx.scan("lineitem", node_id),
            lambda b: b["l_returnflag"] == Q10_PARAMS["returnflag"]),
            ["l_orderkey", "l_extendedprice", "l_discount"])
        ctx.add_fragment(node_id, ctx.shuffle_to(
            o_stage, node_id, orders, "o_orderkey"))
        ctx.add_fragment(node_id, ctx.shuffle_to(
            l_stage, node_id, lineitem, "l_orderkey"))
        join_ol = HashJoinOperator(
            node, ctx.receive_from(o_stage, node_id),
            ctx.receive_from(l_stage, node_id),
            build_key="o_orderkey", probe_key="l_orderkey",
            num_threads=ctx.threads, build_payload=["o_custkey"])
        partial_cust = HashAggregateOperator(
            node, MapOperator(node, join_ol, _revenue),
            ["o_custkey"], [("sum", "revenue", "revenue")], ctx.threads)
        ctx.add_fragment(node_id, ctx.shuffle_to(
            cu_stage, node_id, partial_cust, "o_custkey"))
        cust = ProjectOperator(
            node, ctx.scan("customer", node_id),
            ["c_custkey", "c_nationkey"])
        ctx.add_fragment(node_id, ctx.shuffle_to(
            c_stage, node_id, cust, "c_custkey"))
        join_c = HashJoinOperator(
            node, ctx.receive_from(c_stage, node_id),
            ctx.receive_from(cu_stage, node_id),
            build_key="c_custkey", probe_key="o_custkey",
            num_threads=ctx.threads, build_payload=["c_nationkey"])
        # NATION is replicated: the final join runs locally (§5.2).
        join_n = HashJoinOperator(
            node, ctx.scan("nation", node_id), join_c,
            build_key="n_nationkey", probe_key="c_nationkey",
            num_threads=ctx.threads, semi=True)
        partial = HashAggregateOperator(
            node, join_n, ["o_custkey", "c_nationkey"],
            [("sum", "revenue", "revenue")], ctx.threads)
        ctx.add_fragment(node_id, ctx.shuffle_to(gather, node_id, partial,
                                                 None))
    ctx.finalize(gather, ["o_custkey", "c_nationkey"],
                 [("sum", "revenue", "revenue")])


def _q10_answer(batch: Optional[np.ndarray]) -> Dict:
    if batch is None:
        return {}
    return {
        (int(r["o_custkey"]), int(r["c_nationkey"])): float(r["revenue"])
        for r in batch
    }


_BUILDERS = {
    "Q3": (_build_q3, _q3_answer),
    "Q4": (_build_q4, _q4_answer),
    "Q10": (_build_q10, _q10_answer),
}


def run_query(cluster: Cluster, query: str, data: TPCHData,
              design: str = "MESQ/SR",
              config: Optional[EndpointConfig] = None,
              local_data: bool = False) -> QueryResult:
    """Execute one TPC-H query on a simulated cluster.

    ``local_data=True`` requires ``data`` generated with
    ``copartition=True`` and is only meaningful for Q4 (Q3/Q10 join on
    different attributes, making co-partitioning impossible, §5.2.2).
    """
    if query not in _BUILDERS:
        raise ValueError(f"unknown query {query!r}; pick Q3, Q4 or Q10")
    if local_data and query != "Q4":
        raise ValueError("the local-data plan exists only for Q4 (§5.2.2)")
    builder, extract = _BUILDERS[query]
    ctx = _PlanContext(cluster, design, data, config, local_data)
    builder(ctx)
    setup_ns = 0
    for stage in ctx.stages:
        cluster.run_process(stage.setup(), name="tpch-stage-setup")
        setup_ns += stage.max_setup_ns
    elapsed = cluster.run_process(
        run_fragments(cluster.sim, ctx.fragments), name=f"tpch-{query}")
    return QueryResult(
        query=query, design=design, num_nodes=cluster.num_nodes,
        answer=extract(ctx.sink.result()), response_time_ns=elapsed,
        setup_ns=setup_ns,
    )
