"""Deterministic TPC-H data generator.

Follows the TPC-H cardinalities (per scale factor SF: 150 000·SF
customers, 1 500 000·SF orders, 1–7 lineitems per order) and the value
distributions that the Q3/Q4/Q10 predicates select on.  Tuples of every
table are scattered to a uniformly random node, except NATION which is
replicated to all nodes (§5.2) — REGION is not touched by these queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.tpch.schema import (
    CUSTOMER_DTYPE,
    LINEITEM_DTYPE,
    NATION_DTYPE,
    NATIONS,
    ORDERS_DTYPE,
    date_to_days,
)

__all__ = ["TPCHData", "generate"]

#: latest o_orderdate: ENDDATE - 151 days per the TPC-H spec.
_MAX_ORDERDATE = date_to_days(1998, 8, 2)


@dataclass
class TPCHData:
    """One generated database: whole tables plus per-node partitions."""

    scale_factor: float
    num_nodes: int
    customer: np.ndarray
    orders: np.ndarray
    lineitem: np.ndarray
    nation: np.ndarray
    #: per-node random partitions, table name -> list of arrays.
    partitions: Dict[str, List[np.ndarray]] = field(default_factory=dict)

    def partition(self, table: str, node: int) -> np.ndarray:
        return self.partitions[table][node]

    @property
    def total_bytes(self) -> int:
        return (self.customer.nbytes + self.orders.nbytes +
                self.lineitem.nbytes + self.nation.nbytes)


def _scatter(rng: np.random.Generator, table: np.ndarray,
             num_nodes: int) -> List[np.ndarray]:
    """Distribute each tuple to a uniformly random node (§5.2)."""
    assignment = rng.integers(0, num_nodes, len(table))
    return [table[assignment == node] for node in range(num_nodes)]


def generate(scale_factor: float, num_nodes: int, seed: int = 2017,
             copartition: bool = False) -> TPCHData:
    """Generate a TPC-H database and scatter it across ``num_nodes``.

    ``copartition=True`` instead places orders and lineitem rows by
    ``hash(orderkey) % n`` and customers by ``hash(custkey) % n`` — the
    "local data" layout of §5.2.1 where Q4 needs no shuffling.
    """
    if scale_factor <= 0:
        raise ValueError(f"scale factor must be positive: {scale_factor}")
    rng = np.random.default_rng(seed)

    n_customer = max(1, int(150_000 * scale_factor))
    n_orders = max(1, int(1_500_000 * scale_factor))

    customer = np.empty(n_customer, dtype=CUSTOMER_DTYPE)
    customer["c_custkey"] = np.arange(1, n_customer + 1)
    customer["c_mktsegment"] = rng.integers(0, 5, n_customer)
    customer["c_nationkey"] = rng.integers(0, len(NATIONS), n_customer)
    customer["c_acctbal"] = rng.uniform(-999.99, 9999.99, n_customer)

    orders = np.empty(n_orders, dtype=ORDERS_DTYPE)
    orders["o_orderkey"] = np.arange(1, n_orders + 1) * 4  # sparse keys
    # TPC-H: only two thirds of customers ever place orders.
    eligible = max(1, (n_customer * 2) // 3)
    orders["o_custkey"] = rng.integers(1, eligible + 1, n_orders)
    orders["o_orderdate"] = rng.integers(0, _MAX_ORDERDATE + 1, n_orders)
    orders["o_orderpriority"] = rng.integers(0, 5, n_orders)
    orders["o_shippriority"] = 0

    counts = rng.integers(1, 8, n_orders)  # 1..7 lineitems per order
    n_lineitem = int(counts.sum())
    lineitem = np.empty(n_lineitem, dtype=LINEITEM_DTYPE)
    lineitem["l_orderkey"] = np.repeat(orders["o_orderkey"], counts)
    odate = np.repeat(orders["o_orderdate"], counts).astype(np.int64)
    lineitem["l_shipdate"] = odate + rng.integers(1, 122, n_lineitem)
    lineitem["l_commitdate"] = odate + rng.integers(30, 91, n_lineitem)
    lineitem["l_receiptdate"] = (
        lineitem["l_shipdate"] + rng.integers(1, 31, n_lineitem))
    lineitem["l_extendedprice"] = rng.uniform(900.0, 105_000.0, n_lineitem)
    lineitem["l_discount"] = rng.integers(0, 11, n_lineitem) / 100.0
    lineitem["l_returnflag"] = rng.integers(0, 3, n_lineitem)
    # Items received after the "current date" window lean to R (returned).

    nation = np.empty(len(NATIONS), dtype=NATION_DTYPE)
    nation["n_nationkey"] = np.arange(len(NATIONS))

    data = TPCHData(scale_factor=scale_factor, num_nodes=num_nodes,
                    customer=customer, orders=orders, lineitem=lineitem,
                    nation=nation)
    if copartition:
        data.partitions = {
            "customer": [customer[customer["c_custkey"] % num_nodes == i]
                         for i in range(num_nodes)],
            "orders": [orders[orders["o_orderkey"] % num_nodes == i]
                       for i in range(num_nodes)],
            "lineitem": [lineitem[lineitem["l_orderkey"] % num_nodes == i]
                         for i in range(num_nodes)],
        }
    else:
        data.partitions = {
            "customer": _scatter(rng, customer, num_nodes),
            "orders": _scatter(rng, orders, num_nodes),
            "lineitem": _scatter(rng, lineitem, num_nodes),
        }
    # NATION is tiny (25 rows) and replicated to every node.
    data.partitions["nation"] = [nation] * num_nodes
    return data
