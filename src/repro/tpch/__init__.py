"""TPC-H: schema, deterministic data generator, and distributed queries.

The evaluation (§5.2) runs TPC-H Q3, Q4 and Q10 with every table's tuples
scattered to random nodes (NATION and REGION replicated), all unused
columns pre-projected away, as a column store would.  This package
provides:

* :mod:`repro.tpch.schema` — pre-projected dtypes and dictionary
  encodings for exactly the columns those queries touch;
* :mod:`repro.tpch.datagen` — a deterministic generator following the
  TPC-H cardinalities and value distributions relevant to Q3/Q4/Q10;
* :mod:`repro.tpch.queries` — distributed query plans built on the
  engine + shuffle operators, plus co-partitioned "local data" variants;
* :mod:`repro.tpch.reference` — single-node numpy implementations used
  to validate every distributed answer.
"""

from repro.tpch.datagen import TPCHData, generate
from repro.tpch.queries import run_query
from repro.tpch.reference import reference_answer

__all__ = ["TPCHData", "generate", "reference_answer", "run_query"]
