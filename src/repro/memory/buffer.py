"""Registered transmission buffers.

Endpoints own and register the memory used for RDMA operations (§4.2).
A :class:`BufferPool` registers one contiguous memory region and carves it
into fixed-size :class:`Buffer` slots — exactly how the C++ implementation
lays out its transmission buffers, and what makes the registered-memory
accounting of Fig 9(b) meaningful.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.verbs.device import VerbsContext
from repro.verbs.memory import MemoryRegion

__all__ = ["Buffer", "BufferPool"]


class Buffer:
    """One RDMA-registered transmission buffer.

    ``payload`` is the opaque stand-in for the buffer's bytes (a tuple
    batch, a byte count descriptor...).  Filling the buffer also publishes
    the payload at the buffer's address in the owning memory region, so a
    remote RDMA Read of this address observes it — mirroring how real
    one-sided reads see whatever currently sits in registered memory.
    """

    __slots__ = ("mr", "addr", "capacity", "payload", "length", "_meta")

    def __init__(self, mr: MemoryRegion, addr: int, capacity: int):
        self.mr = mr
        self.addr = addr
        self.capacity = capacity
        self.payload: Any = None
        self.length = 0
        # Lazily allocated: a mesoscale cluster carves millions of
        # buffers, and an eager empty dict per slot is real memory.
        self._meta: Dict[str, Any] | None = None

    @property
    def meta(self) -> Dict[str, Any]:
        """Scratch metadata, allocated on first use."""
        if self._meta is None:
            self._meta = {}
        return self._meta

    def fill(self, payload: Any, length: int) -> None:
        """Place ``length`` bytes of payload into the buffer."""
        if length > self.capacity:
            raise ValueError(
                f"payload of {length} B exceeds buffer capacity "
                f"{self.capacity}"
            )
        if length < 0:
            raise ValueError(f"negative payload length: {length}")
        san = self.mr.sanitizer
        if san is not None:
            san.on_buffer_write(self, "fill")
        self.payload = payload
        self.length = length
        self.mr.set_object(self.addr, payload)

    def deposit(self, payload: Any, length: int) -> None:
        """NIC-side unwrap of an *arriving* message into this buffer.

        Unlike :meth:`fill` this is the completion of an operation the
        application already posted the buffer for, so it is exempt from
        the buffer-reuse sanitizer check and does not republish the
        payload at the buffer's address (the remote side owns the data).
        """
        self.payload = payload
        self.length = length

    def reset(self) -> None:
        """Clear the buffer for reuse."""
        san = self.mr.sanitizer
        if san is not None:
            san.on_buffer_write(self, "reset")
        self.payload = None
        self.length = 0
        if self._meta:
            self._meta.clear()
        self.mr.set_object(self.addr, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Buffer @{self.addr:#x} {self.length}/{self.capacity}B>"


class BufferPool:
    """A set of equal-size buffers carved from one registered region."""

    def __init__(self, ctx: VerbsContext, count: int, size: int,
                 tenant: Optional[str] = None):
        if count < 1:
            raise ValueError(f"buffer count must be >= 1, got {count}")
        if size < 1:
            raise ValueError(f"buffer size must be >= 1, got {size}")
        self.ctx = ctx
        self.size = size
        self.mr = ctx.reg_mr(count * size, tenant=tenant)
        self.buffers: List[Buffer] = [
            Buffer(self.mr, self.mr.addr + i * size, size) for i in range(count)
        ]
        self._by_addr = {buf.addr: buf for buf in self.buffers}

    def __len__(self) -> int:
        return len(self.buffers)

    def at(self, addr: int) -> Buffer:
        """Resolve a buffer by its registered address."""
        try:
            return self._by_addr[addr]
        except KeyError:
            raise ValueError(
                f"address {addr:#x} is not a buffer start in this pool"
            ) from None

    def release_memory(self) -> None:
        """Deregister the backing region (end-of-query teardown)."""
        self.ctx.dereg_mr(self.mr)
