"""RDMA buffer management: registered transmission buffers and pools."""

from repro.memory.buffer import Buffer, BufferPool

__all__ = ["Buffer", "BufferPool"]
