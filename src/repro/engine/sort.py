"""Sort / top-N operators.

TPC-H Q3 and Q10 end with ``ORDER BY revenue DESC LIMIT 10/20``; the
coordinator applies :class:`TopNOperator` to the final aggregate.  The
operator drains its child completely (sorting is a pipeline breaker),
keeps a bounded heap per thread, merges at a barrier, and emits the
globally best rows from thread 0.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.operator import Operator, OpState
from repro.sim import Barrier

__all__ = ["TopNOperator"]

#: per-tuple heap maintenance cost.
TOPN_NS_PER_TUPLE = 6.0


class TopNOperator(Operator):
    """``ORDER BY key [DESC] LIMIT n`` over the child's output."""

    def __init__(self, node, child: Operator, key_column: str, limit: int,
                 num_threads: int, descending: bool = True):
        super().__init__(node, child)
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.key_column = key_column
        self.limit = limit
        self.descending = descending
        self.num_threads = num_threads
        self._partials: List[List[Tuple[float, int, np.ndarray]]] = [
            [] for _ in range(num_threads)
        ]
        self._barrier = Barrier(node.sim, num_threads)
        self._done = [False] * num_threads
        self._tiebreak = 0

    def _push(self, heap, key: float, row) -> None:
        # heapq is a min-heap: for descending order the smallest of the
        # kept keys sits on top and is evicted first.
        entry_key = key if self.descending else -key
        self._tiebreak += 1
        if len(heap) < self.limit:
            heapq.heappush(heap, (entry_key, self._tiebreak, row))
        elif entry_key > heap[0][0]:
            heapq.heapreplace(heap, (entry_key, self._tiebreak, row))

    def next(self, tid: int):
        if self._done[tid]:
            return (OpState.DEPLETED, None)
            yield  # pragma: no cover
        heap = self._partials[tid]
        while True:
            state, batch = yield from self.child.next(tid)
            if batch is not None and len(batch):
                yield self.per_tuple_cost(len(batch),
                                          ns_per_tuple=TOPN_NS_PER_TUPLE)
                keys = batch[self.key_column]
                for i in range(len(batch)):
                    self._push(heap, float(keys[i]), batch[i])
            if state == OpState.DEPLETED:
                break
        yield self._barrier.arrive()
        self._done[tid] = True
        if tid != 0:
            return (OpState.DEPLETED, None)
        return (OpState.DEPLETED, self._merge())

    def _merge(self) -> Optional[np.ndarray]:
        entries = [e for heap in self._partials for e in heap]
        if not entries:
            return None
        entries.sort(key=lambda e: e[0], reverse=True)
        rows = [e[2] for e in entries[:self.limit]]
        out = np.empty(len(rows), dtype=rows[0].dtype)
        for i, row in enumerate(rows):
            out[i] = row
        return out
