"""Table scan operators (in-memory, vectorized)."""

from __future__ import annotations


import numpy as np

from repro.engine.operator import Operator, OpState

__all__ = ["ScanOperator", "RepeatedSourceOperator"]

#: per-tuple cost of streaming from an in-memory columnar table.
SCAN_NS_PER_TUPLE = 0.4


class ScanOperator(Operator):
    """Scans a node-local table partition (a numpy structured array).

    The partition is statically divided among worker threads; each NEXT
    returns up to ``batch_rows`` tuples (vectorized pull, §2.1).
    """

    def __init__(self, node, table: np.ndarray, num_threads: int,
                 batch_rows: int = 64 * 1024):
        super().__init__(node)
        if batch_rows < 1:
            raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
        self.table = table
        self.num_threads = num_threads
        self.batch_rows = batch_rows
        bounds = np.linspace(0, len(table), num_threads + 1).astype(np.int64)
        self._cursor = list(bounds[:-1])
        self._end = list(bounds[1:])

    def next(self, tid: int):
        lo = self._cursor[tid]
        hi = min(lo + self.batch_rows, self._end[tid])
        if lo >= hi:
            return (OpState.DEPLETED, None)
            yield  # pragma: no cover
        batch = self.table[lo:hi]
        self._cursor[tid] = hi
        yield self.per_tuple_cost(len(batch), ns_per_tuple=SCAN_NS_PER_TUPLE)
        state = OpState.DEPLETED if hi >= self._end[tid] else OpState.MORE_DATA
        return (state, batch)


class RepeatedSourceOperator(Operator):
    """Streams one template batch over and over up to a byte budget.

    The synthetic receive-throughput workloads (§5.1) scan and transmit
    the R table ten times; re-serving the same in-memory batch keeps the
    host-side footprint flat while the simulation still charges full scan
    and hash costs for every pass.
    """

    def __init__(self, node, template: np.ndarray, num_threads: int,
                 total_bytes_per_thread: int):
        super().__init__(node)
        if not len(template):
            raise ValueError("template batch must not be empty")
        self.template = template
        self.num_threads = num_threads
        self.total_bytes_per_thread = total_bytes_per_thread
        self._remaining = [total_bytes_per_thread] * num_threads

    def next(self, tid: int):
        remaining = self._remaining[tid]
        if remaining <= 0:
            return (OpState.DEPLETED, None)
            yield  # pragma: no cover
        batch = self.template
        if batch.nbytes > remaining:
            rows = max(1, remaining // batch.dtype.itemsize)
            batch = batch[:rows]
        self._remaining[tid] = remaining - batch.nbytes
        yield self.per_tuple_cost(len(batch), ns_per_tuple=SCAN_NS_PER_TUPLE)
        state = (OpState.DEPLETED if self._remaining[tid] <= 0
                 else OpState.MORE_DATA)
        return (state, batch)
