"""Projection operator."""

from __future__ import annotations

from typing import Sequence

from numpy.lib import recfunctions as rfn

from repro.engine.operator import Operator

__all__ = ["ProjectOperator"]

#: per-tuple cost of materializing the projected columns.
PROJECT_NS_PER_TUPLE = 0.5


class ProjectOperator(Operator):
    """Keeps a subset of columns of a structured-array batch."""

    def __init__(self, node, child: Operator, columns: Sequence[str]):
        super().__init__(node, child)
        if not columns:
            raise ValueError("projection needs at least one column")
        self.columns = list(columns)

    def next(self, tid: int):
        state, batch = yield from self.child.next(tid)
        if batch is None or not len(batch):
            return (state, None)
        yield self.per_tuple_cost(len(batch),
                                  ns_per_tuple=PROJECT_NS_PER_TUPLE)
        projected = rfn.repack_fields(batch[self.columns])
        return (state, projected)
