"""In-memory hash join.

The build side is drained cooperatively by all worker threads into a
shared hash table the first time any thread calls NEXT; a barrier then
separates the build and probe phases, after which threads probe their own
batches independently — the standard parallel hash-join structure of
in-memory engines [20].
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
from numpy.lib import recfunctions as rfn

from repro.engine.operator import Operator, OpState, concat_batches
from repro.sim import Barrier, Mutex

__all__ = ["HashJoinOperator"]

#: per-tuple hash-table insert cost.
BUILD_NS_PER_TUPLE = 12.0
#: per-tuple probe cost.
PROBE_NS_PER_TUPLE = 10.0


class HashJoinOperator(Operator):
    """Equi-join: ``build.key == probe.key``.

    Output batches concatenate the probe columns with the build columns
    (build columns may be renamed through ``build_prefix`` to avoid
    clashes).  ``semi=True`` turns it into a left semi-join on the probe
    side (used by TPC-H Q4's EXISTS).
    """

    def __init__(self, node, build: Operator, probe: Operator,
                 build_key: str, probe_key: str, num_threads: int,
                 semi: bool = False, build_payload: Optional[List[str]] = None):
        super().__init__(node, probe)
        self.build = build
        self.probe = probe
        self.build_key = build_key
        self.probe_key = probe_key
        self.semi = semi
        self.build_payload = build_payload
        self.num_threads = num_threads
        self._table: Dict[int, List[int]] = {}
        self._build_rows: List[np.ndarray] = []
        self._build_lock = Mutex(node.sim)
        self._barrier = Barrier(node.sim, num_threads)
        self._built = [False] * num_threads
        self._build_array: Optional[np.ndarray] = None
        self._right_array: Optional[np.ndarray] = None

    # -- build phase ---------------------------------------------------------

    def _build_phase(self, tid: int):
        while True:
            state, batch = yield from self.build.next(tid)
            if batch is not None and len(batch):
                yield self.per_tuple_cost(len(batch),
                                          ns_per_tuple=BUILD_NS_PER_TUPLE)
                yield self._build_lock.acquire()
                self._build_rows.append(batch)
                self._build_lock.unlock()
            if state == OpState.DEPLETED:
                break
        yield self._barrier.arrive()
        # Thread 0 finalizes the table; everyone else waits at a second
        # barrier so probes never see a half-built table.
        if tid == 0:
            self._finalize_table()
        yield self._barrier.arrive()

    def _finalize_table(self) -> None:
        array = concat_batches(self._build_rows)
        self._build_rows = []
        if array is None:
            self._build_array = None
            self._right_array = None
            return
        self._build_array = array
        keys = array[self.build_key]
        for i, key in enumerate(keys.tolist()):
            self._table.setdefault(key, []).append(i)
        # The columns carried to the output: the requested payload, or
        # everything except the (redundant) build key.
        names = list(array.dtype.names)
        payload = (self.build_payload if self.build_payload is not None
                   else [c for c in names if c != self.build_key])
        payload = [c for c in payload if c in names]
        if payload:
            self._right_array = rfn.repack_fields(array[payload])
        else:
            self._right_array = None

    # -- probe phase -----------------------------------------------------------

    def next(self, tid: int):
        if not self._built[tid]:
            yield from self._build_phase(tid)
            self._built[tid] = True
        while True:
            state, batch = yield from self.probe.next(tid)
            if batch is None or not len(batch):
                if state == OpState.DEPLETED:
                    return (OpState.DEPLETED, None)
                continue
            yield self.per_tuple_cost(len(batch),
                                      ns_per_tuple=PROBE_NS_PER_TUPLE)
            joined = self._probe_batch(batch)
            if joined is not None or state == OpState.DEPLETED:
                return (state, joined)

    def _probe_batch(self, batch: np.ndarray) -> Optional[np.ndarray]:
        if self._build_array is None and not self.semi:
            return None
        keys = batch[self.probe_key].tolist()
        if self.semi:
            mask = np.fromiter(
                (k in self._table for k in keys), dtype=bool, count=len(keys))
            kept = batch[mask]
            return kept if len(kept) else None
        probe_idx: List[int] = []
        build_idx: List[int] = []
        for i, key in enumerate(keys):
            for j in self._table.get(key, ()):
                probe_idx.append(i)
                build_idx.append(j)
        if not probe_idx:
            return None
        left = batch[np.asarray(probe_idx)]
        if self._right_array is None:
            return left
        right = self._right_array[np.asarray(build_idx)]
        merged = rfn.merge_arrays((left, right), flatten=True,
                                  usemask=False, asrecarray=False)
        return merged
