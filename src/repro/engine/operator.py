"""The vectorized pull-based operator interface (§2.1).

Every operator implements ``next(tid)`` as a *process fragment*: a
generator invoked as ``state, batch = yield from op.next(tid)`` inside a
simulated worker thread.  ``tid`` selects thread-partitioned operator
state, exactly like Figure 1 of the paper.

Batches are numpy structured arrays (or None when an operator has nothing
to return with a Depleted state).  The helpers below centralize the batch
arithmetic so operators stay small.
"""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np

__all__ = [
    "OpState",
    "Operator",
    "batch_rows",
    "batch_nbytes",
    "concat_batches",
]


class OpState(enum.IntEnum):
    """Return state of a NEXT call."""

    MORE_DATA = 0
    DEPLETED = 1


def batch_rows(batch: Optional[np.ndarray]) -> int:
    """Number of tuples in a batch (0 for None)."""
    return 0 if batch is None else len(batch)


def batch_nbytes(batch: Optional[np.ndarray]) -> int:
    """Payload size of a batch in bytes (0 for None)."""
    return 0 if batch is None else batch.nbytes


def concat_batches(batches: List[np.ndarray]) -> Optional[np.ndarray]:
    """Concatenate batches, tolerating the empty list."""
    if not batches:
        return None
    if len(batches) == 1:
        return batches[0]
    return np.concatenate(batches)


class Operator:
    """Base class for all operators.

    Subclasses override :meth:`next`.  The base class stores the cluster
    node the operator runs on (for CPU cost charging) and the child
    operator, forming the usual operator tree.
    """

    def __init__(self, node, child: Optional["Operator"] = None):
        #: the fabric Node this operator executes on.
        self.node = node
        self.sim = node.sim
        self.child = child

    def next(self, tid: int):
        """Process fragment returning ``(OpState, batch)``.

        A Depleted return means this thread will produce nothing further;
        the batch accompanying it may still hold trailing tuples.
        """
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator signature

    def cpu(self, ns: float):
        """Charge CPU time to the calling worker thread."""
        return self.node.cpu_delay(ns)

    def per_tuple_cost(self, rows: int, nbytes: int = 0,
                       ns_per_tuple: float = 0.0,
                       ns_per_byte: float = 0.0):
        """Charge a vectorized per-batch cost in one timeout."""
        return self.node.cpu_delay(rows * ns_per_tuple + nbytes * ns_per_byte)
