"""Selection (filter) operator."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.operator import Operator, OpState

__all__ = ["FilterOperator"]

#: per-tuple predicate evaluation cost.
FILTER_NS_PER_TUPLE = 0.8


class FilterOperator(Operator):
    """Keeps tuples for which ``predicate(batch)`` is True.

    ``predicate`` is vectorized: it receives a batch and returns a boolean
    mask of the same length.
    """

    def __init__(self, node, child: Operator,
                 predicate: Callable[[np.ndarray], np.ndarray]):
        super().__init__(node, child)
        self.predicate = predicate

    def next(self, tid: int):
        while True:
            state, batch = yield from self.child.next(tid)
            if batch is None or not len(batch):
                if state == OpState.DEPLETED:
                    return (OpState.DEPLETED, None)
                continue
            yield self.per_tuple_cost(len(batch),
                                      ns_per_tuple=FILTER_NS_PER_TUPLE)
            mask = self.predicate(batch)
            kept = batch[mask]
            if len(kept) or state == OpState.DEPLETED:
                return (state, kept if len(kept) else None)
