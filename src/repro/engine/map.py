"""Map operator: vectorized batch-to-batch transformation."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine.operator import Operator

__all__ = ["MapOperator"]

#: per-tuple cost of evaluating a scalar expression.
MAP_NS_PER_TUPLE = 1.0


class MapOperator(Operator):
    """Applies ``fn(batch) -> batch`` to every non-empty child batch.

    Used for derived columns, e.g. TPC-H revenue
    ``l_extendedprice * (1 - l_discount)``.
    """

    def __init__(self, node, child: Operator,
                 fn: Callable[[np.ndarray], np.ndarray],
                 ns_per_tuple: float = MAP_NS_PER_TUPLE):
        super().__init__(node, child)
        self.fn = fn
        self.ns_per_tuple = ns_per_tuple

    def next(self, tid: int):
        state, batch = yield from self.child.next(tid)
        if batch is None or not len(batch):
            return (state, None)
        yield self.per_tuple_cost(len(batch), ns_per_tuple=self.ns_per_tuple)
        return (state, self.fn(batch))
