"""Query fragments and worker threads.

A query plan is divided into fragments replicated across the cluster
(§2.1); each fragment runs ``t`` worker threads, each exclusively bound
to a CPU core.  A worker repeatedly calls ``next(tid)`` on the fragment's
root operator until it reports Depleted, optionally feeding batches to a
sink.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.engine.operator import Operator, OpState, concat_batches
from repro.sim import AllOf, Event, Simulator

__all__ = ["CollectSink", "CountSink", "QueryFragment", "run_fragments"]


class CollectSink:
    """Collects every batch a fragment produces (small results only)."""

    def __init__(self):
        self._batches: List[np.ndarray] = []

    def consume(self, tid: int, batch: Optional[np.ndarray]) -> None:
        if batch is not None and len(batch):
            self._batches.append(batch)

    def result(self) -> Optional[np.ndarray]:
        return concat_batches(self._batches)


class CountSink:
    """Counts rows and bytes without retaining data (benchmark use)."""

    def __init__(self):
        self.rows = 0
        self.nbytes = 0

    def consume(self, tid: int, batch: Optional[np.ndarray]) -> None:
        if batch is not None:
            self.rows += len(batch)
            self.nbytes += batch.nbytes

    def result(self):
        return (self.rows, self.nbytes)


class QueryFragment:
    """One fragment: a root operator plus its worker threads."""

    def __init__(self, node, root: Operator, threads: int,
                 sink: Optional[Any] = None, name: str = ""):
        self.node = node
        self.sim: Simulator = node.sim
        self.root = root
        self.threads = threads
        self.sink = sink
        self.name = name or f"fragment-n{node.id}"
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None

    def start(self) -> Event:
        """Launch the worker threads; returns an all-done event."""
        self.started_at = self.sim.now
        procs = [
            self.sim.process(self._worker(tid), name=f"{self.name}-t{tid}")
            for tid in range(self.threads)
        ]
        done = AllOf(self.sim, procs)
        done.add_callback(lambda _e: self._mark_finished())
        return done

    def _mark_finished(self) -> None:
        self.finished_at = self.sim.now

    def _worker(self, tid: int):
        while True:
            state, batch = yield from self.root.next(tid)
            if self.sink is not None:
                self.sink.consume(tid, batch)
            if state == OpState.DEPLETED:
                return

    @property
    def elapsed_ns(self) -> int:
        if self.started_at is None or self.finished_at is None:
            raise RuntimeError(f"{self.name} has not completed")
        return self.finished_at - self.started_at


def run_fragments(sim: Simulator, fragments: List[QueryFragment]):
    """Process fragment: start every fragment, wait for all to finish.

    Returns the wall-clock nanoseconds from start to the last finisher.
    """
    start = sim.now
    done = [frag.start() for frag in fragments]
    yield AllOf(sim, done)
    return sim.now - start
