"""A vectorized, pull-based parallel query engine (the Pythia stand-in).

Operators implement the Volcano-style NEXT interface, vectorized to return
a batch of tuples per call and parallelized by passing a thread id (§2.1,
Figure 1).  Worker threads are simulation processes; CPU work is charged
in simulated nanoseconds through the cluster's cost model, which is what
lets the simulation reproduce compute/communication overlap effects
(Figs 13 and 14).
"""

from repro.engine.operator import (
    Operator,
    OpState,
    batch_nbytes,
    batch_rows,
    concat_batches,
)
from repro.engine.scan import ScanOperator
from repro.engine.filter import FilterOperator
from repro.engine.project import ProjectOperator
from repro.engine.join import HashJoinOperator
from repro.engine.aggregate import HashAggregateOperator
from repro.engine.compute import ComputeOperator
from repro.engine.fragment import QueryFragment, CollectSink, run_fragments

__all__ = [
    "CollectSink",
    "ComputeOperator",
    "FilterOperator",
    "HashAggregateOperator",
    "HashJoinOperator",
    "Operator",
    "OpState",
    "ProjectOperator",
    "QueryFragment",
    "ScanOperator",
    "batch_nbytes",
    "batch_rows",
    "concat_batches",
    "run_fragments",
]
