"""Hash group-by aggregation.

Each worker thread accumulates thread-local partial aggregates while
draining its child; a barrier then lets thread 0 merge the partials and
emit the final groups.  Supported aggregate functions: count, sum.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.operator import Operator, OpState
from repro.sim import Barrier

__all__ = ["HashAggregateOperator"]

#: per-tuple group-lookup + accumulate cost.
AGG_NS_PER_TUPLE = 9.0


class HashAggregateOperator(Operator):
    """``GROUP BY group_cols`` with count/sum aggregates.

    ``aggregates`` is a list of ``(func, column, output_name)`` where
    ``func`` is "count" or "sum" ("count" ignores the column).  Thread 0
    returns the merged result as one batch; other threads return Depleted
    with no data.
    """

    def __init__(self, node, child: Operator, group_cols: Sequence[str],
                 aggregates: Sequence[Tuple[str, Optional[str], str]],
                 num_threads: int):
        super().__init__(node, child)
        for func, _col, _name in aggregates:
            if func not in ("count", "sum"):
                raise ValueError(f"unsupported aggregate function: {func}")
        self.group_cols = list(group_cols)
        self.aggregates = list(aggregates)
        self.num_threads = num_threads
        self._partials: List[Dict[tuple, List[float]]] = [
            {} for _ in range(num_threads)
        ]
        self._barrier = Barrier(node.sim, num_threads)
        self._done = [False] * num_threads

    def next(self, tid: int):
        if self._done[tid]:
            return (OpState.DEPLETED, None)
            yield  # pragma: no cover
        partial = self._partials[tid]
        while True:
            state, batch = yield from self.child.next(tid)
            if batch is not None and len(batch):
                yield self.per_tuple_cost(len(batch),
                                          ns_per_tuple=AGG_NS_PER_TUPLE)
                self._accumulate(partial, batch)
            if state == OpState.DEPLETED:
                break
        yield self._barrier.arrive()
        self._done[tid] = True
        if tid != 0:
            return (OpState.DEPLETED, None)
        return (OpState.DEPLETED, self._merge())

    def _accumulate(self, partial: Dict[tuple, List[float]],
                    batch: np.ndarray) -> None:
        group_arrays = [batch[c] for c in self.group_cols]
        agg_arrays = [
            batch[col] if func == "sum" else None
            for func, col, _name in self.aggregates
        ]
        for i in range(len(batch)):
            key = tuple(arr[i].item() for arr in group_arrays)
            acc = partial.get(key)
            if acc is None:
                acc = [0.0] * len(self.aggregates)
                partial[key] = acc
            for j, (func, _col, _name) in enumerate(self.aggregates):
                if func == "count":
                    acc[j] += 1
                else:
                    acc[j] += agg_arrays[j][i].item()

    def _merge(self) -> Optional[np.ndarray]:
        merged: Dict[tuple, List[float]] = {}
        for partial in self._partials:
            for key, acc in partial.items():
                into = merged.get(key)
                if into is None:
                    merged[key] = list(acc)
                else:
                    for j, value in enumerate(acc):
                        into[j] += value
        if not merged:
            return None
        sample_key = next(iter(merged))
        dtype = [(c, np.float64 if isinstance(sample_key[i], float)
                  else np.int64) for i, c in enumerate(self.group_cols)]
        dtype += [(name, np.float64) for _f, _c, name in self.aggregates]
        out = np.empty(len(merged), dtype=dtype)
        for row, (key, acc) in enumerate(sorted(merged.items())):
            for i, col in enumerate(self.group_cols):
                out[row][col] = key[i]
            for j, (_f, _c, name) in enumerate(self.aggregates):
                out[row][name] = acc[j]
        return out
