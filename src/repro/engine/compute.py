"""A tunable compute stage.

Used by the compute-intensity experiment (§5.1.6, Fig 13): the receiving
plan fragment fetches batches from the RECEIVE operator and then spends a
configurable amount of CPU time per batch, simulating the compute demand
of real queries.
"""

from __future__ import annotations

from repro.engine.operator import Operator, batch_nbytes

__all__ = ["ComputeOperator"]


class ComputeOperator(Operator):
    """Burns ``ns_per_batch`` of CPU per non-empty child batch.

    ``ns_per_byte`` optionally scales the cost with batch size instead.
    """

    def __init__(self, node, child: Operator, ns_per_batch: float = 0.0,
                 ns_per_byte: float = 0.0):
        super().__init__(node, child)
        if ns_per_batch < 0 or ns_per_byte < 0:
            raise ValueError("compute costs must be non-negative")
        self.ns_per_batch = ns_per_batch
        self.ns_per_byte = ns_per_byte
        self.batches = 0

    def next(self, tid: int):
        state, batch = yield from self.child.next(tid)
        if batch is not None and len(batch):
            self.batches += 1
            cost = self.ns_per_batch + self.ns_per_byte * batch_nbytes(batch)
            if cost:
                yield self.cpu(cost)
        return (state, batch)
