"""Run-diff gate for ``repro.obs`` report documents.

Usage (the CI observability job, and by hand when chasing a perf bug)::

    python -m repro.obs diff baseline.json fresh.json

Mirrors the discipline of :mod:`repro.bench.compare`: compares a fresh
report against a committed baseline experiment-by-experiment and fails
(exit 1, ``REGRESSION:`` lines on stderr) when

* an aggregate message-latency percentile (p50/p90/p99) *rose* more than
  ``--threshold`` (default 25%, matching the kernel-perf gate), or
* an attribution share *shifted* more than ``--attr-threshold-pp``
  percentage points in either direction — time silently migrating from
  ``wire_serialization`` into ``credit_stall`` is exactly the kind of
  behavioral drift a throughput number can hide.

``--warn-only`` downgrades failures to warnings for advisory CI lanes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

from repro.obs.critical_path import CATEGORIES
from repro.obs.report import REPORT_SCHEMA

__all__ = ["diff", "main"]

#: default tolerated relative rise of a latency percentile.
DEFAULT_THRESHOLD = 0.25

#: default tolerated attribution-share shift, in percentage points.
DEFAULT_ATTR_THRESHOLD_PP = 5.0

#: aggregate percentile keys the gate watches (latency: higher is worse).
PERCENTILE_KEYS = ("p50", "p90", "p99")


def _check_schema(document: Dict[str, Any], label: str) -> List[str]:
    schema = document.get("schema", {})
    if schema.get("name") != REPORT_SCHEMA["name"]:
        return [f"{label}: not a {REPORT_SCHEMA['name']} document "
                f"(schema {schema!r})"]
    if schema.get("version") != REPORT_SCHEMA["version"]:
        return [f"{label}: schema version {schema.get('version')!r} != "
                f"expected {REPORT_SCHEMA['version']}"]
    return []


def diff(baseline: Dict[str, Any], fresh: Dict[str, Any],
         threshold: float = DEFAULT_THRESHOLD,
         attr_threshold_pp: float = DEFAULT_ATTR_THRESHOLD_PP) -> List[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures: List[str] = []
    failures += _check_schema(baseline, "baseline")
    failures += _check_schema(fresh, "fresh")
    if failures:
        return failures
    base_exps = {e["name"]: e for e in baseline.get("experiments", [])}
    fresh_exps = {e["name"]: e for e in fresh.get("experiments", [])}
    if not base_exps:
        return ["baseline document has no experiments"]
    for name, base in base_exps.items():
        current = fresh_exps.get(name)
        if current is None:
            failures.append(f"{name}: missing from fresh report")
            continue
        base_agg = base.get("aggregate") or {}
        cur_agg = current.get("aggregate") or {}

        base_lat = base_agg.get("latency_ns", {})
        cur_lat = cur_agg.get("latency_ns", {})
        for key in PERCENTILE_KEYS:
            base_value = base_lat.get(key)
            cur_value = cur_lat.get(key)
            if not base_value or cur_value is None:
                continue
            change = (cur_value - base_value) / base_value
            if change > threshold:
                failures.append(
                    f"{name}: latency {key} rose {change:.1%} past the "
                    f"{threshold:.0%} gate ({base_value:,.0f}ns -> "
                    f"{cur_value:,.0f}ns)")

        base_shares = base_agg.get("attribution", {}).get("shares", {})
        cur_shares = cur_agg.get("attribution", {}).get("shares", {})
        if base_shares and cur_shares:
            for category in CATEGORIES:
                shift_pp = 100.0 * (cur_shares.get(category, 0.0)
                                    - base_shares.get(category, 0.0))
                if abs(shift_pp) > attr_threshold_pp:
                    failures.append(
                        f"{name}: {category} share shifted "
                        f"{shift_pp:+.1f}pp past the "
                        f"{attr_threshold_pp:.0f}pp gate "
                        f"({100.0 * base_shares.get(category, 0.0):.1f}% "
                        f"-> "
                        f"{100.0 * cur_shares.get(category, 0.0):.1f}%)")
    return failures


def _summary_line(name: str, entry: Dict[str, Any]) -> str:
    agg = entry.get("aggregate") or {}
    attribution = agg.get("attribution", {})
    latency = agg.get("latency_ns", {})
    top = attribution.get("top", "?")
    p99 = latency.get("p99")
    p99_txt = f"{p99:,.0f}ns" if p99 is not None else "n/a"
    return f"{name}: top={top} p99={p99_txt} runs={agg.get('runs', 0)}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs diff",
        description="Fail if a fresh obs report regressed past the "
                    "committed baseline.",
    )
    parser.add_argument("baseline", help="committed baseline report JSON")
    parser.add_argument("fresh", help="freshly generated report JSON")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="tolerated relative latency-percentile rise "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--attr-threshold-pp", type=float,
                        default=DEFAULT_ATTR_THRESHOLD_PP,
                        help="tolerated attribution-share shift in "
                             "percentage points (default 5.0)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (advisory "
                             "CI lanes)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    fresh_exps = {e["name"]: e for e in fresh.get("experiments", [])}
    for name, entry in fresh_exps.items():
        print(_summary_line(name, entry))

    failures = diff(baseline, fresh, threshold=args.threshold,
                    attr_threshold_pp=args.attr_threshold_pp)
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if args.warn_only:
            print("obs diff: regressions found (warn-only mode)",
                  file=sys.stderr)
            return 0
        return 1
    print(f"\nobs diff passed (latency {args.threshold:.0%}, "
          f"attribution {args.attr_threshold_pp:.0f}pp)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
