"""repro.obs — critical-path analysis over the telemetry link records.

Built on the causal records of :mod:`repro.telemetry.links`, this package
turns one simulated shuffle into an explanation:

* :func:`attribute` — partition the run's wall (simulated) time into
  exclusive categories (QP-cache misses, PCIe stalls, trunk queueing,
  wire time, credit stalls, ...) with an exact conservation guarantee;
* :func:`critical_path` — the causal message chain ending at the last
  delivery;
* :func:`build_run_report` / :func:`render_markdown` — schema-versioned
  JSON reports (``repro-bench --report``) and their human rendering;
* :func:`diff` — the regression gate behind ``python -m repro.obs diff``.

See the "Observability" section of DESIGN.md for the model.
"""

from repro.obs.critical_path import CATEGORIES, attribute, critical_path
from repro.obs.diff import diff
from repro.obs.report import (
    REPORT_SCHEMA,
    aggregate_reports,
    build_document,
    build_run_report,
    render_markdown,
)

__all__ = [
    "CATEGORIES",
    "REPORT_SCHEMA",
    "aggregate_reports",
    "attribute",
    "build_document",
    "build_run_report",
    "critical_path",
    "diff",
    "render_markdown",
]
