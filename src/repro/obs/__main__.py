"""``python -m repro.obs`` — report tooling entry point.

Subcommands::

    python -m repro.obs diff baseline.json fresh.json   # regression gate
    python -m repro.obs render report.json [-o out.md]  # markdown view
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Critical-path report tooling: diff two run reports "
                    "or render one as markdown.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "diff", add_help=False,
        help="compare a fresh report against a baseline (see "
             "repro.obs.diff)")

    render = sub.add_parser("render", help="render a report as markdown")
    render.add_argument("report", help="report JSON produced by "
                                       "repro-bench --report")
    render.add_argument("-o", "--output", metavar="PATH",
                        help="write markdown here instead of stdout")

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "diff":
        # Delegate everything after the subcommand so repro.obs.diff owns
        # its own flags and --help.
        from repro.obs.diff import main as diff_main
        return diff_main(argv[1:])
    args = parser.parse_args(argv)

    from repro.obs.report import render_markdown
    with open(args.report) as fh:
        document = json.load(fh)
    text = render_markdown(document)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
