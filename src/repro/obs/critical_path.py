"""Latency attribution by priority interval sweep (+ critical path).

The analyzer answers one question about a finished shuffle: *where did
the time go?*  Every simulated nanosecond of the analysis window
``[t0, t1)`` is assigned to exactly one of :data:`CATEGORIES`, so the
attribution always conserves: ``sum(categories.values()) == t1 - t0``
holds by construction, not by fixup.

The algorithm is a single sweep over all recorded resource intervals
(:class:`~repro.telemetry.links.PipeInterval`) and endpoint stalls
(:class:`~repro.telemetry.links.StallInterval`).  At any instant several
explanations can be active at once — a QP-cache miss is being charged on
one NIC while a trunk is congested and a sender sits in a credit stall.
Ranking them would require a full causal closure; instead we impose a
fixed *priority* order (hardware penalties beat wire time beats
protocol stalls) and charge each elementary slice of the window to the
highest-priority explanation active during it:

======================  ====  ==========================================
category                prio  meaning
======================  ====  ==========================================
``qp_cache_miss``        0    NIC QP-context-cache miss penalty (§5.2)
``pcie_stall``           1    payload DMA fetch of a non-inlined Write
``trunk_queueing``       2    switch trunk serialization while congested
``wire_serialization``   3    host-link / uncongested-trunk wire time
``nic_processing``       4    baseline NIC WR processing
``credit_stall``         5    sender blocked on credit (incl. RNR)
``buffer_stall``         6    sender blocked on a free buffer
======================  ====  ==========================================

Slices during which *nothing* recorded is active fall through to the
remainder categories by position: before the first WR post they are
``setup`` (partitioning, pool registration, connection exchange), after
the last delivery ``receiver_drain`` (completion draining, final
markers), and in between ``sender_compute`` (materializing tuples into
send buffers — the paper's "application time").

Receiver-side ``data-wait`` stalls are recorded but deliberately *not*
swept: a receiver waiting for data is the mirror image of whatever is
slowing the sender down, and charging it would double-count the cause.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.telemetry.links import FlowRecorder

__all__ = ["CATEGORIES", "attribute", "critical_path"]

#: every attribution category, in report order.  The first seven are
#: explained by recorded intervals (priority = position); the last three
#: are positional remainders.
CATEGORIES = (
    "qp_cache_miss",
    "pcie_stall",
    "trunk_queueing",
    "wire_serialization",
    "nic_processing",
    "credit_stall",
    "buffer_stall",
    "setup",
    "sender_compute",
    "receiver_drain",
)

#: priority index -> category for swept (interval-backed) categories.
_PRIO_NAMES = CATEGORIES[:7]
_NUM_PRIOS = len(_PRIO_NAMES)

#: endpoint stall kinds that participate in the sweep.  ``data-wait`` is
#: intentionally absent (see module docstring).
_STALL_PRIO = {
    "credit-stall": 5,
    "rnr-stall": 5,
    "free-wait": 6,
}

#: sentinel priority for zero-delta boundary cut events.
_CUT = _NUM_PRIOS


def _flow_bounds(recorder: FlowRecorder, t0: int, t1: int):
    """(first WR post, last delivery) clamped into the window."""
    first_post = t1
    last_delivery = t0
    any_post = False
    any_delivery = False
    for flow in recorder.flows.values():
        any_post = True
        if flow.posted_ns < first_post:
            first_post = flow.posted_ns
        if flow.delivered_ns is not None:
            any_delivery = True
            if flow.delivered_ns > last_delivery:
                last_delivery = flow.delivered_ns
    if not any_post:
        # No WR was ever posted: the whole window is setup work
        # (fig12-style connection-establishment runs).
        first_post = t1
    if not any_delivery:
        last_delivery = t1
    return (max(t0, min(first_post, t1)),
            max(t0, min(last_delivery, t1)))


def attribute(recorder: FlowRecorder, t0: int, t1: int) -> Dict[str, Any]:
    """Partition ``[t0, t1)`` into the :data:`CATEGORIES`.

    Returns ``{"t0", "t1", "total_ns", "categories", "shares", "top",
    "conserved"}``.  ``conserved`` is asserted by tests; it can only be
    False if this function has a bug, because the sweep charges each
    elementary slice exactly once.
    """
    if t1 < t0:
        raise ValueError(f"empty attribution window [{t0}, {t1})")
    total = t1 - t0
    categories: Dict[str, int] = {name: 0 for name in CATEGORIES}
    first_post, last_delivery = _flow_bounds(recorder, t0, t1)

    # -- collect (time, priority, delta) events -------------------------
    events: List = []

    def add(start: int, end: int, prio: int) -> None:
        start = max(start, t0)
        end = min(end, t1)
        if end > start:
            events.append((start, prio, 1))
            events.append((end, prio, -1))

    for rec in recorder.pipes:
        base_end = rec.start + rec.base_ns
        if rec.kind == "proc":
            add(rec.start, base_end, 4)                       # nic_processing
        elif rec.kind == "trunk":
            # A trunk hop that queued at least its own serialization time
            # is congestion; otherwise it is plain wire time.
            prio = 2 if rec.waited_ns >= rec.base_ns else 3
            add(rec.start, base_end, prio)
        else:                                                 # egress/ingress
            add(rec.start, base_end, 3)                       # wire
        penalty_end = base_end + rec.penalty_ns
        if rec.penalty_ns:
            add(base_end, penalty_end, 0)                     # qp_cache_miss
        if rec.extra_ns:
            add(penalty_end, penalty_end + rec.extra_ns, 1)   # pcie_stall

    for stall in recorder.stalls:
        prio = _STALL_PRIO.get(stall.kind)
        if prio is not None:
            add(stall.start, stall.start + stall.duration, prio)

    # Boundary cuts so no elementary slice straddles a remainder change.
    for cut in (first_post, last_delivery):
        if t0 < cut < t1:
            events.append((cut, _CUT, 0))

    # -- the sweep ------------------------------------------------------
    def remainder_at(t: int) -> str:
        if t < first_post:
            return "setup"
        if t >= last_delivery:
            return "receiver_drain"
        return "sender_compute"

    events.sort(key=lambda e: e[0])
    counts = [0] * _NUM_PRIOS
    prev = t0
    i = 0
    n = len(events)
    while i < n:
        t = events[i][0]
        if t > prev:
            width = t - prev
            for prio in range(_NUM_PRIOS):
                if counts[prio]:
                    categories[_PRIO_NAMES[prio]] += width
                    break
            else:
                categories[remainder_at(prev)] += width
            prev = t
        while i < n and events[i][0] == t:
            _, prio, delta = events[i]
            if delta:
                counts[prio] += delta
            i += 1
    if t1 > prev:
        width = t1 - prev
        for prio in range(_NUM_PRIOS):
            if counts[prio]:
                categories[_PRIO_NAMES[prio]] += width
                break
        else:
            categories[remainder_at(prev)] += width

    explained = sum(categories.values())
    shares = {
        name: (ns / total if total else 0.0)
        for name, ns in categories.items()
    }
    top = max(CATEGORIES, key=lambda name: categories[name])
    return {
        "t0": t0,
        "t1": t1,
        "total_ns": total,
        "categories": categories,
        "shares": shares,
        "top": top,
        "conserved": explained == total,
    }


def critical_path(recorder: FlowRecorder,
                  limit: int = 32) -> List[Dict[str, Any]]:
    """The causal chain ending at the last delivered message.

    Walks the flow DAG backwards from the final delivery, preferring the
    cross-endpoint ``trigger`` edge (credit return -> the data flow whose
    release produced it) over the same-QP FIFO ``prev`` edge, and returns
    the chain oldest-first.  This is the message-level skeleton of the
    run's critical path; the attribution above explains the time *between*
    its links.
    """
    last: Optional[int] = None
    last_t = -1
    for flow in recorder.flows.values():
        if flow.delivered_ns is not None and flow.delivered_ns > last_t:
            last_t = flow.delivered_ns
            last = flow.id
    chain: List[Dict[str, Any]] = []
    seen = set()
    cursor = last
    while cursor and cursor not in seen and len(chain) < limit:
        seen.add(cursor)
        flow = recorder.flows.get(cursor)
        if flow is None:
            break
        nxt = flow.trigger or flow.prev
        chain.append({
            "flow": flow.id,
            "kind": flow.kind,
            "src": flow.src,
            "dst": flow.dst,
            "size": flow.size,
            "posted_ns": flow.posted_ns,
            "delivered_ns": flow.delivered_ns,
            "edge": ("trigger" if flow.trigger and nxt == flow.trigger
                     else "prev"),
        })
        cursor = nxt
    chain.reverse()
    return chain
