"""Schema-versioned ``RunReport`` documents and their markdown rendering.

A run report is the JSON face of the critical-path analyzer: one
attribution breakdown + message-latency percentiles + per-switch-port
utilization + sanitizer summary per simulated cluster, grouped by
experiment.  The document is fully deterministic — it contains only
simulated-time quantities, never wall-clock — so two identical runs
produce *byte-identical* reports (asserted by the determinism suite) and
``python -m repro.obs diff`` can gate regressions the same way
``repro.bench.compare`` gates kernel throughput.

Produced by ``repro-bench <experiment> --report out.json`` (via
:class:`~repro.telemetry.session.TelemetrySession`) or directly from a
cluster with ``Cluster.enable_reporting()`` + ``Cluster.run_report()``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.critical_path import CATEGORIES, attribute, critical_path
from repro.telemetry.metrics import latency_summary

__all__ = [
    "REPORT_SCHEMA",
    "build_run_report",
    "aggregate_reports",
    "build_document",
    "render_markdown",
]

#: schema stamp of every report document; bump ``version`` on layout
#: changes so ``repro.obs diff`` can refuse mismatched documents.
REPORT_SCHEMA = {"name": "repro-obs-report", "version": 1}

#: flow kinds whose post->delivery latency is a message latency (credit
#: words, finals and ring writes are control traffic).
_LATENCY_KINDS = ("data", "read")

#: cap on sanitizer messages embedded per run (full detail stays in
#: ``--sanitize`` output).
_MAX_SANITIZER_MESSAGES = 10


def build_run_report(telemetry, t0: int = 0,
                     t1: Optional[int] = None) -> Dict[str, Any]:
    """One cluster's report: attribution + latencies + ports + sanitizer.

    Requires link recording (``telemetry.enable_links()`` /
    ``Cluster.enable_reporting()``) to have been active for the run.
    The window defaults to ``[0, sim.now)``.
    """
    links = telemetry.links
    if links is None:
        raise ValueError(
            "link recording is not enabled on this cluster; call "
            "Cluster.enable_reporting() (or Telemetry.enable_links()) "
            "before building endpoints")
    if t1 is None:
        t1 = telemetry.sim.now

    latencies = [
        flow.delivered_ns - flow.posted_ns
        for flow in links.flows.values()
        if flow.kind in _LATENCY_KINDS and flow.delivered_ns is not None
    ]
    snapshot = telemetry.snapshot()
    fabric = getattr(telemetry, "_fabric", None)
    sanitizer = getattr(fabric, "sanitizer", None)
    if sanitizer is None:
        sanitizer_summary: Dict[str, Any] = {"attached": False,
                                             "violations": 0}
    else:
        violations = sanitizer.violations
        sanitizer_summary = {
            "attached": True,
            "violations": len(violations),
            "messages": [
                str(v) for v in violations[:_MAX_SANITIZER_MESSAGES]
            ],
        }

    return {
        "attribution": attribute(links, t0, t1),
        "latency_ns": latency_summary(latencies),
        "ports": snapshot["fabric"].get("topology.ports", {}),
        "sanitizer": sanitizer_summary,
        "records": {
            "flows": len(links.flows),
            "pipe_intervals": len(links.pipes),
            "stalls": len(links.stalls),
            "dropped": links.dropped_records,
            "truncated": links.truncated,
        },
        "critical_path": critical_path(links),
    }


def aggregate_reports(runs: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce one experiment's run reports to headline numbers.

    Attribution nanoseconds sum across runs (shares renormalize over the
    summed window); latency percentiles combine as count-weighted means,
    which is exact for the mean and a standard approximation for the
    quantiles of same-shaped runs.
    """
    if not runs:
        return {"runs": 0}
    categories = {
        name: sum(r["attribution"]["categories"][name] for r in runs)
        for name in CATEGORIES
    }
    total = sum(r["attribution"]["total_ns"] for r in runs)
    latency: Dict[str, Any] = {
        "count": sum(r["latency_ns"]["count"] for r in runs)
    }
    if latency["count"]:
        for key in ("mean", "p50", "p90", "p99"):
            weighted = [(r["latency_ns"][key], r["latency_ns"]["count"])
                        for r in runs
                        if r["latency_ns"].get(key) is not None]
            if weighted:
                latency[key] = (sum(v * c for v, c in weighted)
                                / sum(c for _, c in weighted))
    return {
        "runs": len(runs),
        "attribution": {
            "total_ns": total,
            "categories": categories,
            "shares": {
                name: (ns / total if total else 0.0)
                for name, ns in categories.items()
            },
            "top": max(CATEGORIES, key=lambda name: categories[name]),
            "conserved": all(r["attribution"]["conserved"] for r in runs),
        },
        "latency_ns": latency,
        "violations": sum(r["sanitizer"]["violations"] for r in runs),
        "truncated": any(r["records"]["truncated"] for r in runs),
    }


def build_document(experiments: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Wrap per-experiment entries in the schema envelope."""
    return {"schema": dict(REPORT_SCHEMA), "experiments": experiments}


# -- markdown rendering ----------------------------------------------------

def _ns(value) -> str:
    value = float(value)
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


def render_markdown(document: Dict[str, Any]) -> str:
    """Human-readable rendering of a report document."""
    schema = document.get("schema", {})
    lines = [
        f"# Shuffle run report ({schema.get('name', '?')} "
        f"v{schema.get('version', '?')})",
    ]
    for experiment in document.get("experiments", []):
        agg = experiment.get("aggregate") or {}
        lines.append("")
        lines.append(f"## {experiment.get('name', '(unnamed)')} "
                     f"— {agg.get('runs', 0)} run(s)")
        attribution = agg.get("attribution")
        if attribution:
            lines.append("")
            lines.append(f"Attribution over {_ns(attribution['total_ns'])} "
                         f"of simulated time "
                         f"(top: **{attribution['top']}**, conserved: "
                         f"{attribution['conserved']}):")
            lines.append("")
            lines.append("| category | time | share |")
            lines.append("|---|---:|---:|")
            ranked = sorted(CATEGORIES,
                            key=lambda n: -attribution["categories"][n])
            for name in ranked:
                ns = attribution["categories"][name]
                if not ns:
                    continue
                lines.append(f"| {name} | {_ns(ns)} | "
                             f"{100.0 * attribution['shares'][name]:.1f}% |")
        latency = agg.get("latency_ns", {})
        if latency.get("count"):
            lines.append("")
            lines.append(
                f"Message latency ({latency['count']} messages): "
                f"mean {_ns(latency['mean'])}, p50 {_ns(latency['p50'])}, "
                f"p90 {_ns(latency['p90'])}, p99 {_ns(latency['p99'])}.")
        if agg.get("violations"):
            lines.append("")
            lines.append(f"Sanitizer: {agg['violations']} violation(s).")
        if agg.get("truncated"):
            lines.append("")
            lines.append("Warning: the link-record budget ran dry; "
                         "attribution explains only part of the window.")
        hottest = _hottest_ports(experiment)
        if hottest:
            lines.append("")
            lines.append("Hottest switch ports (max utilization across "
                         "runs):")
            for name, util in hottest:
                lines.append(f"- `{name}`: {100.0 * util:.1f}%")
    lines.append("")
    return "\n".join(lines)


def _hottest_ports(experiment: Dict[str, Any], top: int = 5):
    utilization: Dict[str, float] = {}
    for run in experiment.get("runs", []):
        for name, port in run.get("ports", {}).items():
            utilization[name] = max(utilization.get(name, 0.0),
                                    port.get("utilization", 0.0))
    ranked = sorted(utilization.items(), key=lambda item: -item[1])
    return [(name, util) for name, util in ranked[:top] if util > 0.0]
