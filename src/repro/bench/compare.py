"""Regression gate for ``BENCH_kernel.json`` trajectories.

Usage (the CI ``perf`` job)::

    python -m repro.bench.compare BENCH_kernel.json fresh.json

Compares a freshly measured kernel-bench document against the committed
baseline, direction-aware: ``higher_is_better`` metrics (events/sec,
packets/sec) fail on a drop, wall-clock metrics fail on a rise.  The
default threshold of 25% absorbs runner-to-runner noise; genuine fast-path
regressions are an order of magnitude larger.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

__all__ = ["compare", "breached", "main"]

#: default tolerated relative regression before the gate fails.
DEFAULT_THRESHOLD = 0.25


def _fmt(value: float) -> str:
    return f"{value:,.0f}" if abs(value) >= 100 else f"{value:.3f}"


def compare(baseline: Dict[str, Any], fresh: Dict[str, Any],
            threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Return a list of human-readable failures (empty = gate passes)."""
    failures: List[str] = []
    base_benches = baseline.get("benchmarks", {})
    fresh_benches = fresh.get("benchmarks", {})
    if not base_benches:
        return ["baseline document has no benchmarks"]
    for name, base in base_benches.items():
        current = fresh_benches.get(name)
        if current is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        base_value = float(base["value"])
        cur_value = float(current["value"])
        if base_value <= 0:
            continue
        higher_is_better = bool(base.get("higher_is_better", True))
        change = (cur_value - base_value) / base_value
        regression = -change if higher_is_better else change
        if regression > threshold:
            direction = "dropped" if higher_is_better else "rose"
            failures.append(
                f"{name}: {direction} {regression:.1%} past the "
                f"{threshold:.0%} gate ({_fmt(base_value)} -> "
                f"{_fmt(cur_value)} {base.get('unit', '')})".rstrip()
            )
    return failures


def breached(failures: List[str]) -> List[str]:
    """The benchmark names that breached the gate, in report order.

    Every failure string starts with ``<name>:`` — this extracts the
    names so callers (and the CLI's exit summary) can say *which*
    benchmark failed instead of only that one did.
    """
    return [failure.split(":", 1)[0] for failure in failures]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Fail if a fresh kernel-bench run regressed past the "
                    "committed baseline.",
    )
    parser.add_argument("baseline", help="committed BENCH_kernel.json")
    parser.add_argument("fresh", help="freshly measured kernel-bench JSON")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="tolerated relative regression "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    for name, bench in fresh.get("benchmarks", {}).items():
        base = baseline.get("benchmarks", {}).get(name)
        base_txt = _fmt(float(base["value"])) if base else "n/a (new)"
        print(f"{name}: {_fmt(float(bench['value']))} "
              f"{bench.get('unit', '')} (baseline {base_txt})")

    failures = compare(baseline, fresh, threshold=args.threshold)
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        names = ", ".join(breached(failures))
        print(f"\nperf gate FAILED (threshold {args.threshold:.0%}): "
              f"breached by {names}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed (threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
