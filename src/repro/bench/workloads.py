"""Synthetic shuffle workloads (§5.1).

The paper's receive-throughput experiments scan a replicated table R of
16-byte tuples (two long integers, uniformly random key) on every node
and repartition or broadcast it.  The simulation reproduces that with a
template batch re-served up to a per-node byte budget; the *striped*
partitioner gives every destination an equal slice of each batch -- the
exact traffic pattern per-tuple hashing of a uniform key produces --
while keeping host-side numpy work off the critical path.

Absolute volumes are scaled down from the paper's 160 GiB per node — the
simulation measures steady-state throughput, which converges within tens
of MiB.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.cluster import Cluster
from repro.core.designs import Design
from repro.core.endpoint import EndpointConfig
from repro.core.groups import TransmissionGroups
from repro.core.policy import (
    ShufflePolicy,
    StageContext,
    StagePlan,
    TelemetrySnapshot,
)
from repro.core.receive import ReceiveOperator
from repro.core.shuffle import ShuffleOperator, striped_partitioner
from repro.core.stage import ShuffleStage
from repro.engine.compute import ComputeOperator
from repro.engine.fragment import CountSink, QueryFragment, run_fragments
from repro.engine.scan import RepeatedSourceOperator
from repro.sim import AllOf

__all__ = ["ShuffleRunResult", "run_repartition", "run_broadcast",
           "run_hierarchical"]

#: what the workload runners accept as a design selector.
DesignLike = Union[str, Design, StagePlan, ShufflePolicy]

GIB = float(1 << 30)

#: the synthetic table R: two long integers per tuple (§5.1).
R_DTYPE = np.dtype([("a", np.int64), ("b", np.int64)])


def make_template_batch(rows: int = 16 * 1024, seed: int = 7) -> np.ndarray:
    """A batch of R tuples with a uniformly random key column."""
    rng = np.random.default_rng(seed)
    batch = np.empty(rows, dtype=R_DTYPE)
    batch["a"] = rng.integers(0, 1 << 62, rows)
    batch["b"] = rng.integers(0, 1 << 62, rows)
    return batch


@dataclass
class ShuffleRunResult:
    """Everything a shuffle-throughput experiment reports."""

    design: str
    pattern: str
    network: str
    num_nodes: int
    threads: int
    bytes_per_node: int
    elapsed_ns: int
    setup_ns: int
    total_received_bytes: int
    total_received_rows: int
    registered_bytes_per_node: int
    qps_per_node: int
    messages_sent: int
    #: total time receiver threads spent blocked waiting for data
    #: (summed across all receive endpoints; drives the Fig 13 metric).
    recv_data_wait_ns: int = 0
    #: total time sender threads spent stalled for flow-control credit
    #: (summed across all send endpoints; the §5.1.3 profiling signal).
    send_credit_wait_ns: int = 0

    def receive_throughput_gib_per_node(self) -> float:
        """Received GiB/s per node — the paper's §5.1 metric."""
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.total_received_bytes / GIB) / (
            self.elapsed_ns / 1e9) / self.num_nodes

    def response_time_ms(self) -> float:
        return self.elapsed_ns / 1e6

    def receiver_busy_fraction(self) -> float:
        """Fraction of receiving-thread time not blocked on data.

        Reaches 1.0 when communication is completely hidden behind the
        receiving fragment's computation (the Fig 13 y-axis).
        """
        total = self.elapsed_ns * self.threads * self.num_nodes
        if total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.recv_data_wait_ns / total)


def _resolve_stage(cluster: Cluster, design, groups_for, config,
                   num_endpoints, threads):
    """Build the stage for an RDMA design or a baseline (MPI / IPoIB)."""
    if design in ("MPI", "IPoIB"):
        # Imported lazily: baselines depend on core, not vice versa.
        from repro.baselines import baseline_stage
        return baseline_stage(cluster.fabric, design, groups_for,
                              config=config, threads=threads,
                              registry=cluster.registry)
    return ShuffleStage(cluster.fabric, design, groups_for, config=config,
                        num_endpoints=num_endpoints, threads=threads,
                        registry=cluster.registry)


def _plan_stage(cluster: Cluster, design: DesignLike, pattern: str,
                bytes_per_node: int, config: Optional[EndpointConfig],
                num_endpoints: Optional[int]) -> Optional[StagePlan]:
    """Resolve a policy selector into a plan; None for plain designs."""
    if isinstance(design, StagePlan):
        return design
    if not isinstance(design, ShufflePolicy):
        return None
    ctx = StageContext.from_cluster(
        cluster, config=config, bytes_per_node=bytes_per_node,
        pattern=pattern, num_endpoints=num_endpoints,
        allow_hierarchical=(pattern == "repartition"),
        telemetry=TelemetrySnapshot.from_cluster(cluster))
    return design.plan(ctx)


def _run_shuffle(cluster: Cluster, design: DesignLike, pattern: str,
                 groups_for,
                 bytes_per_node: int, config: Optional[EndpointConfig],
                 num_endpoints: Optional[int],
                 compute_ns_per_batch: float,
                 receive_output_bytes: int) -> ShuffleRunResult:
    plan = _plan_stage(cluster, design, pattern, bytes_per_node, config,
                       num_endpoints)
    if plan is not None:
        if plan.hierarchical:
            if pattern != "repartition":
                raise ValueError(
                    f"hierarchical plans only support repartition, "
                    f"not {pattern!r}")
            return run_hierarchical(
                cluster, plan, bytes_per_node=bytes_per_node, config=config,
                compute_ns_per_batch=compute_ns_per_batch,
                receive_output_bytes=receive_output_bytes)
        design = plan
    n = cluster.num_nodes
    threads = cluster.threads_per_node
    stage = _resolve_stage(cluster, design, groups_for, config,
                           num_endpoints, threads)
    cluster.run_process(stage.setup(), name="stage-setup")
    setup_ns = stage.max_setup_ns

    template = make_template_batch()
    per_thread = max(template.nbytes, bytes_per_node // threads)
    fragments: List[QueryFragment] = []
    sinks: List[CountSink] = []
    messages_before = cluster.fabric.delivered_messages

    for node_id in range(n):
        node = cluster.nodes[node_id]
        groups = stage.groups_for[node_id]
        source = RepeatedSourceOperator(node, template, threads, per_thread)
        shuffle = ShuffleOperator(
            node, source, stage.send_endpoints[node_id], groups,
            striped_partitioner(groups.num_groups), threads)
        fragments.append(QueryFragment(node, shuffle, threads,
                                       name=f"shuffle-{node_id}"))
        receive = ReceiveOperator(node, stage.recv_endpoints[node_id],
                                  threads, output_bytes=receive_output_bytes)
        root = receive
        if compute_ns_per_batch:
            root = ComputeOperator(node, receive,
                                   ns_per_batch=compute_ns_per_batch)
        sink = CountSink()
        sinks.append(sink)
        fragments.append(QueryFragment(node, root, threads, sink=sink,
                                       name=f"receive-{node_id}"))

    elapsed = cluster.run_process(
        run_fragments(cluster.sim, fragments), name="shuffle-query")

    if isinstance(design, str):
        label = design
    elif isinstance(design, StagePlan):
        label = design.design
    else:
        label = design.name

    return ShuffleRunResult(
        design=label,
        pattern=pattern,
        network=cluster.config.network.name,
        num_nodes=n,
        threads=threads,
        bytes_per_node=bytes_per_node,
        elapsed_ns=elapsed,
        setup_ns=setup_ns,
        total_received_bytes=sum(s.nbytes for s in sinks),
        total_received_rows=sum(s.rows for s in sinks),
        registered_bytes_per_node=max(
            stage.registered_bytes(i) for i in range(n)),
        qps_per_node=max(stage.qps_created(i) for i in range(n)),
        messages_sent=cluster.fabric.delivered_messages - messages_before,
        recv_data_wait_ns=sum(
            ep.data_wait_ns
            for eps in stage.recv_endpoints.values() for ep in eps),
        send_credit_wait_ns=sum(
            getattr(ep, "credit_wait_ns", 0)
            for eps in stage.send_endpoints.values() for ep in eps),
    )


def run_repartition(cluster: Cluster, design: DesignLike,
                    bytes_per_node: int = 16 << 20,
                    config: Optional[EndpointConfig] = None,
                    num_endpoints: Optional[int] = None,
                    compute_ns_per_batch: float = 0.0,
                    receive_output_bytes: int = 32 * 1024) -> ShuffleRunResult:
    """Uniform repartition of table R across all nodes (§5.1, Fig 10a/c).

    ``design`` may be a design name, a :class:`Design`, a
    :class:`StagePlan`, or a :class:`ShufflePolicy` (planned against the
    live cluster; hierarchical plans run via :func:`run_hierarchical`).
    """
    groups = TransmissionGroups.repartition(cluster.num_nodes)
    return _run_shuffle(cluster, design, "repartition", groups,
                        bytes_per_node, config, num_endpoints,
                        compute_ns_per_batch, receive_output_bytes)


def run_broadcast(cluster: Cluster, design: DesignLike,
                  bytes_per_node: int = 4 << 20,
                  config: Optional[EndpointConfig] = None,
                  num_endpoints: Optional[int] = None,
                  compute_ns_per_batch: float = 0.0,
                  receive_output_bytes: int = 32 * 1024) -> ShuffleRunResult:
    """Every node broadcasts R to every other node (§5.1, Fig 10b/d)."""
    n = cluster.num_nodes

    def groups_for(node: int) -> TransmissionGroups:
        return TransmissionGroups.broadcast(n, exclude=node)

    return _run_shuffle(cluster, design, "broadcast", groups_for,
                        bytes_per_node, config, num_endpoints,
                        compute_ns_per_batch, receive_output_bytes)


# ---------------------------------------------------------------------------
# two-phase (hierarchical) repartition for oversubscribed leaf-spine
# ---------------------------------------------------------------------------


def _chained_fragments(fragments: Sequence[QueryFragment]):
    """Run fragments strictly one after another (a sender chain)."""
    for fragment in fragments:
        yield fragment.start()


def _hierarchical_query(sim, immediate: List[QueryFragment],
                        chains: List[List[QueryFragment]]):
    """Start the concurrent fragments plus one process per sender chain;
    wait for everything.  Mirrors :func:`run_fragments`' timing."""
    start = sim.now
    events = [fragment.start() for fragment in immediate]
    events += [
        sim.process(_chained_fragments(chain), name=f"inter-chain-{i}")
        for i, chain in enumerate(chains) if chain
    ]
    yield AllOf(sim, events)
    return sim.now - start


def run_hierarchical(cluster: Cluster, plan: StagePlan,
                     bytes_per_node: int = 16 << 20,
                     config: Optional[EndpointConfig] = None,
                     compute_ns_per_batch: float = 0.0,
                     receive_output_bytes: int = 32 * 1024
                     ) -> ShuffleRunResult:
    """Two-phase leaf-spine repartition from a hierarchical StagePlan.

    Splits the uniform repartition by destination locality into two
    concurrent single-phase shuffles:

    * an **intra-leaf** stage (``plan.design``, typically UD) carrying
      each node's share destined for its own leaf — never crosses a
      trunk, runs at full parallelism;
    * an **inter-leaf** stage (``plan.inter``, typically deep-window RC)
      carrying the remaining share to every remote-leaf node.  The
      senders of one source leaf are partitioned round-robin into
      ``plan.inter_concurrency`` chains that each run their fragments
      *sequentially*, keeping the aggregate injection rate of a leaf
      near its trunk rate — each active stream fills the trunk instead
      of queueing behind its leaf-mates' bursts.

    Every byte lands at its final destination (no gateway forwarding),
    so received-bytes throughput accounting is directly comparable to
    the flat runner's.
    """
    if plan.inter is None:
        raise ValueError("run_hierarchical needs a plan with an inter-leaf "
                         "sub-plan; use run_repartition for flat plans")
    n = cluster.num_nodes
    threads = cluster.threads_per_node
    per_leaf = cluster.config.topology.nodes_per_leaf
    leaves = [list(range(lo, min(lo + per_leaf, n)))
              for lo in range(0, n, per_leaf)]
    if len(leaves) < 2:
        # A single leaf has no trunk to coordinate: run the intra design
        # flat, preserving the plan's parameter overrides.
        flat = dataclasses.replace(plan, inter=None, inter_concurrency=1)
        return run_repartition(
            cluster, flat, bytes_per_node=bytes_per_node, config=config,
            compute_ns_per_batch=compute_ns_per_batch,
            receive_output_bytes=receive_output_bytes)
    leaf_of = {node: i for i, members in enumerate(leaves)
               for node in members}

    def intra_groups(node: int) -> TransmissionGroups:
        return TransmissionGroups(
            [(dest,) for dest in leaves[leaf_of[node]]])

    def inter_groups(node: int) -> TransmissionGroups:
        return TransmissionGroups(
            [(dest,) for dest in range(n) if leaf_of[dest] != leaf_of[node]])

    intra_cfg = plan.apply(config)
    inter_cfg = plan.inter.apply(config)
    intra_stage = ShuffleStage(
        cluster.fabric, plan.design, intra_groups, config=intra_cfg,
        num_endpoints=plan.num_endpoints, threads=threads,
        registry=cluster.registry)
    inter_stage = ShuffleStage(
        cluster.fabric, plan.inter.design, inter_groups, config=inter_cfg,
        num_endpoints=plan.inter.num_endpoints, threads=threads,
        registry=cluster.registry)
    cluster.run_process(intra_stage.setup(), name="hier-intra-setup")
    cluster.run_process(inter_stage.setup(), name="hier-inter-setup")
    setup_ns = intra_stage.max_setup_ns + inter_stage.max_setup_ns

    template = make_template_batch()
    immediate: List[QueryFragment] = []
    inter_senders: List[QueryFragment] = []
    sinks: List[CountSink] = []
    messages_before = cluster.fabric.delivered_messages

    def receive_fragment(stage, node_id: int, tag: str) -> QueryFragment:
        node = cluster.nodes[node_id]
        receive = ReceiveOperator(node, stage.recv_endpoints[node_id],
                                  threads, output_bytes=receive_output_bytes)
        root = receive
        if compute_ns_per_batch:
            root = ComputeOperator(node, receive,
                                   ns_per_batch=compute_ns_per_batch)
        sink = CountSink()
        sinks.append(sink)
        return QueryFragment(node, root, threads, sink=sink,
                             name=f"{tag}-receive-{node_id}")

    def shuffle_fragment(stage, node_id: int, nbytes: int,
                         tag: str) -> QueryFragment:
        node = cluster.nodes[node_id]
        groups = stage.groups_for[node_id]
        per_thread = max(template.nbytes, nbytes // threads)
        source = RepeatedSourceOperator(node, template, threads, per_thread)
        shuffle = ShuffleOperator(
            node, source, stage.send_endpoints[node_id], groups,
            striped_partitioner(groups.num_groups), threads)
        return QueryFragment(node, shuffle, threads,
                             name=f"{tag}-shuffle-{node_id}")

    for node_id in range(n):
        own = len(leaves[leaf_of[node_id]])
        intra_bytes = bytes_per_node * own // n
        inter_bytes = bytes_per_node - intra_bytes
        immediate.append(
            shuffle_fragment(intra_stage, node_id, intra_bytes, "intra"))
        immediate.append(receive_fragment(intra_stage, node_id, "intra"))
        immediate.append(receive_fragment(inter_stage, node_id, "inter"))
        inter_senders.append(
            shuffle_fragment(inter_stage, node_id, inter_bytes, "inter"))

    # Round-robin each leaf's inter-leaf senders into c sequential
    # chains: at most c senders per source leaf are active at any time.
    chains: List[List[QueryFragment]] = []
    concurrency = max(1, plan.inter_concurrency)
    for members in leaves:
        leaf_chains: List[List[QueryFragment]] = [
            [] for _ in range(concurrency)]
        for slot, node_id in enumerate(members):
            leaf_chains[slot % concurrency].append(inter_senders[node_id])
        chains.extend(chain for chain in leaf_chains if chain)

    elapsed = cluster.run_process(
        _hierarchical_query(cluster.sim, immediate, chains),
        name="hier-shuffle-query")

    stages = (intra_stage, inter_stage)
    return ShuffleRunResult(
        design=plan.describe(),
        pattern="repartition",
        network=cluster.config.network.name,
        num_nodes=n,
        threads=threads,
        bytes_per_node=bytes_per_node,
        elapsed_ns=elapsed,
        setup_ns=setup_ns,
        total_received_bytes=sum(s.nbytes for s in sinks),
        total_received_rows=sum(s.rows for s in sinks),
        registered_bytes_per_node=max(
            sum(stage.registered_bytes(i) for stage in stages)
            for i in range(n)),
        qps_per_node=max(
            sum(stage.qps_created(i) for stage in stages)
            for i in range(n)),
        messages_sent=cluster.fabric.delivered_messages - messages_before,
        recv_data_wait_ns=sum(
            ep.data_wait_ns for stage in stages
            for eps in stage.recv_endpoints.values() for ep in eps),
        send_credit_wait_ns=sum(
            getattr(ep, "credit_wait_ns", 0) for stage in stages
            for eps in stage.send_endpoints.values() for ep in eps),
    )
