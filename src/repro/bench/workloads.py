"""Synthetic shuffle workloads (§5.1).

The paper's receive-throughput experiments scan a replicated table R of
16-byte tuples (two long integers, uniformly random key) on every node
and repartition or broadcast it.  The simulation reproduces that with a
template batch re-served up to a per-node byte budget; the *striped*
partitioner gives every destination an equal slice of each batch -- the
exact traffic pattern per-tuple hashing of a uniform key produces --
while keeping host-side numpy work off the critical path.

Absolute volumes are scaled down from the paper's 160 GiB per node — the
simulation measures steady-state throughput, which converges within tens
of MiB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster import Cluster
from repro.core.endpoint import EndpointConfig
from repro.core.groups import TransmissionGroups
from repro.core.receive import ReceiveOperator
from repro.core.shuffle import ShuffleOperator, striped_partitioner
from repro.core.stage import ShuffleStage
from repro.engine.compute import ComputeOperator
from repro.engine.fragment import CountSink, QueryFragment, run_fragments
from repro.engine.scan import RepeatedSourceOperator

__all__ = ["ShuffleRunResult", "run_repartition", "run_broadcast"]

GIB = float(1 << 30)

#: the synthetic table R: two long integers per tuple (§5.1).
R_DTYPE = np.dtype([("a", np.int64), ("b", np.int64)])


def make_template_batch(rows: int = 16 * 1024, seed: int = 7) -> np.ndarray:
    """A batch of R tuples with a uniformly random key column."""
    rng = np.random.default_rng(seed)
    batch = np.empty(rows, dtype=R_DTYPE)
    batch["a"] = rng.integers(0, 1 << 62, rows)
    batch["b"] = rng.integers(0, 1 << 62, rows)
    return batch


@dataclass
class ShuffleRunResult:
    """Everything a shuffle-throughput experiment reports."""

    design: str
    pattern: str
    network: str
    num_nodes: int
    threads: int
    bytes_per_node: int
    elapsed_ns: int
    setup_ns: int
    total_received_bytes: int
    total_received_rows: int
    registered_bytes_per_node: int
    qps_per_node: int
    messages_sent: int
    #: total time receiver threads spent blocked waiting for data
    #: (summed across all receive endpoints; drives the Fig 13 metric).
    recv_data_wait_ns: int = 0
    #: total time sender threads spent stalled for flow-control credit
    #: (summed across all send endpoints; the §5.1.3 profiling signal).
    send_credit_wait_ns: int = 0

    def receive_throughput_gib_per_node(self) -> float:
        """Received GiB/s per node — the paper's §5.1 metric."""
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.total_received_bytes / GIB) / (
            self.elapsed_ns / 1e9) / self.num_nodes

    def response_time_ms(self) -> float:
        return self.elapsed_ns / 1e6

    def receiver_busy_fraction(self) -> float:
        """Fraction of receiving-thread time not blocked on data.

        Reaches 1.0 when communication is completely hidden behind the
        receiving fragment's computation (the Fig 13 y-axis).
        """
        total = self.elapsed_ns * self.threads * self.num_nodes
        if total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.recv_data_wait_ns / total)


def _resolve_stage(cluster: Cluster, design: str, groups_for, config,
                   num_endpoints, threads):
    """Build the stage for an RDMA design or a baseline (MPI / IPoIB)."""
    if design in ("MPI", "IPoIB"):
        # Imported lazily: baselines depend on core, not vice versa.
        from repro.baselines import baseline_stage
        return baseline_stage(cluster.fabric, design, groups_for,
                              config=config, threads=threads,
                              registry=cluster.registry)
    return ShuffleStage(cluster.fabric, design, groups_for, config=config,
                        num_endpoints=num_endpoints, threads=threads,
                        registry=cluster.registry)


def _run_shuffle(cluster: Cluster, design: str, pattern: str, groups_for,
                 bytes_per_node: int, config: Optional[EndpointConfig],
                 num_endpoints: Optional[int],
                 compute_ns_per_batch: float,
                 receive_output_bytes: int) -> ShuffleRunResult:
    n = cluster.num_nodes
    threads = cluster.threads_per_node
    stage = _resolve_stage(cluster, design, groups_for, config,
                           num_endpoints, threads)
    cluster.run_process(stage.setup(), name="stage-setup")
    setup_ns = stage.max_setup_ns

    template = make_template_batch()
    per_thread = max(template.nbytes, bytes_per_node // threads)
    fragments: List[QueryFragment] = []
    sinks: List[CountSink] = []
    messages_before = cluster.fabric.delivered_messages

    for node_id in range(n):
        node = cluster.nodes[node_id]
        groups = stage.groups_for[node_id]
        source = RepeatedSourceOperator(node, template, threads, per_thread)
        shuffle = ShuffleOperator(
            node, source, stage.send_endpoints[node_id], groups,
            striped_partitioner(groups.num_groups), threads)
        fragments.append(QueryFragment(node, shuffle, threads,
                                       name=f"shuffle-{node_id}"))
        receive = ReceiveOperator(node, stage.recv_endpoints[node_id],
                                  threads, output_bytes=receive_output_bytes)
        root = receive
        if compute_ns_per_batch:
            root = ComputeOperator(node, receive,
                                   ns_per_batch=compute_ns_per_batch)
        sink = CountSink()
        sinks.append(sink)
        fragments.append(QueryFragment(node, root, threads, sink=sink,
                                       name=f"receive-{node_id}"))

    elapsed = cluster.run_process(
        run_fragments(cluster.sim, fragments), name="shuffle-query")

    return ShuffleRunResult(
        design=design,
        pattern=pattern,
        network=cluster.config.network.name,
        num_nodes=n,
        threads=threads,
        bytes_per_node=bytes_per_node,
        elapsed_ns=elapsed,
        setup_ns=setup_ns,
        total_received_bytes=sum(s.nbytes for s in sinks),
        total_received_rows=sum(s.rows for s in sinks),
        registered_bytes_per_node=max(
            stage.registered_bytes(i) for i in range(n)),
        qps_per_node=max(stage.qps_created(i) for i in range(n)),
        messages_sent=cluster.fabric.delivered_messages - messages_before,
        recv_data_wait_ns=sum(
            ep.data_wait_ns
            for eps in stage.recv_endpoints.values() for ep in eps),
        send_credit_wait_ns=sum(
            getattr(ep, "credit_wait_ns", 0)
            for eps in stage.send_endpoints.values() for ep in eps),
    )


def run_repartition(cluster: Cluster, design: str,
                    bytes_per_node: int = 16 << 20,
                    config: Optional[EndpointConfig] = None,
                    num_endpoints: Optional[int] = None,
                    compute_ns_per_batch: float = 0.0,
                    receive_output_bytes: int = 32 * 1024) -> ShuffleRunResult:
    """Uniform repartition of table R across all nodes (§5.1, Fig 10a/c)."""
    groups = TransmissionGroups.repartition(cluster.num_nodes)
    return _run_shuffle(cluster, design, "repartition", groups,
                        bytes_per_node, config, num_endpoints,
                        compute_ns_per_batch, receive_output_bytes)


def run_broadcast(cluster: Cluster, design: str,
                  bytes_per_node: int = 4 << 20,
                  config: Optional[EndpointConfig] = None,
                  num_endpoints: Optional[int] = None,
                  compute_ns_per_batch: float = 0.0,
                  receive_output_bytes: int = 32 * 1024) -> ShuffleRunResult:
    """Every node broadcasts R to every other node (§5.1, Fig 10b/d)."""
    n = cluster.num_nodes

    def groups_for(node: int) -> TransmissionGroups:
        return TransmissionGroups.broadcast(n, exclude=node)

    return _run_shuffle(cluster, design, "broadcast", groups_for,
                        bytes_per_node, config, num_endpoints,
                        compute_ns_per_batch, receive_output_bytes)
