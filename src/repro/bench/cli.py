"""Command-line entry point: ``repro-bench``.

Regenerates the paper's tables and figures::

    repro-bench table1 fig12            # specific experiments
    repro-bench --all --scale 0.25      # everything, quick mode
    repro-bench fig10 --json out.json   # machine-readable output
    repro-bench fig8 --trace t.json     # Perfetto-loadable trace
    repro-bench fig11 --metrics m.json  # per-node transport metrics
    repro-bench fig8 --report r.json    # latency-attribution RunReport
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.report import render
from repro.telemetry.session import format_digest, session

__all__ = ["main"]

#: version of the ``--json`` result document layout.
#: v5 records the ``--tenants`` override in the document header.
#: v6 records the ``--policy`` selection in the document header.
RESULTS_SCHEMA_VERSION = 6


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the tables and figures of 'Design and "
                    "Evaluation of an RDMA-aware Data Shuffling Operator "
                    "for Parallel Database Systems' (EuroSys '17).",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"experiments to run: {', '.join(ALL_EXPERIMENTS)}")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="volume/scale-factor multiplier (default 1.0; "
                             "use 0.25 for a quick pass)")
    parser.add_argument("--nodes", type=int, default=None, metavar="N",
                        help="override the cluster size: fixed-size "
                             "experiments run at N nodes, node-count "
                             "sweeps collapse to N, and fig10-scaleout "
                             "truncates its 64..1024 sweep at N")
    parser.add_argument("--tenants", type=int, default=3, metavar="N",
                        help="tenant count for the service experiments "
                             "(svc-*): one MESQ/SR victim plus N-1 "
                             "MEMQ/SR aggressors (default 3)")
    parser.add_argument("--policy", metavar="SPEC", default="adaptive",
                        help="shuffle policy for the policy experiments "
                             "(abl-adaptive): adaptive, hierarchical, "
                             "static:<DESIGN>, or a bare design name "
                             "(default adaptive)")
    parser.add_argument("--topology", metavar="SPEC", default=None,
                        help="switch topology for every simulated cluster: "
                             "single-switch (default), leaf-spine[:K[:M]] "
                             "(K:1 oversubscribed trunks, M nodes/leaf, "
                             "e.g. leaf-spine:4), or dual-rail")
    parser.add_argument("--json", metavar="PATH",
                        help="additionally dump results as JSON")
    parser.add_argument("--metrics", metavar="PATH",
                        help="dump per-experiment telemetry snapshots "
                             "(per-node NIC/verbs/endpoint counters) as JSON")
    parser.add_argument("--report", metavar="PATH",
                        help="record causal link telemetry and dump a "
                             "schema-versioned RunReport (latency "
                             "attribution, percentiles, port utilization) "
                             "as JSON; diff two reports with "
                             "'python -m repro.obs diff'")
    parser.add_argument("--trace", metavar="PATH",
                        help="record a Chrome trace-event file of every "
                             "simulated run (load in Perfetto / "
                             "chrome://tracing)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run every simulation under the protocol "
                             "sanitizer (repro.analysis); exit non-zero "
                             "if any violation is detected")
    parser.add_argument("--kernel-bench", metavar="PATH",
                        help="run the kernel hot-path benchmark suite and "
                             "write its BENCH_kernel.json trajectory to "
                             "PATH (see repro.bench.compare for the CI "
                             "regression gate)")
    parser.add_argument("--kernel-bench-scale", type=float, default=0.05,
                        help="scale for the fig8 wall-clock kernel "
                             "benchmark (default 0.05)")
    args = parser.parse_args(argv)

    if args.nodes is not None and args.nodes < 2:
        parser.error("--nodes must be >= 2 (shuffles need a peer)")
    if args.tenants < 2:
        parser.error("--tenants must be >= 2 (a victim and an aggressor)")
    # Validate eagerly so a typo fails before any experiment runs.
    from repro.core.policy import parse_policy
    try:
        parse_policy(args.policy)
    except ValueError as exc:
        parser.error(str(exc))

    if args.topology:
        from repro.fabric.config import parse_topology, set_default_topology
        try:
            spec = parse_topology(args.topology)
        except ValueError as exc:
            parser.error(str(exc))
        print(f"topology: {spec.describe()}", file=sys.stderr)
        # Scope the process-wide default to this invocation so repeated
        # in-process main() calls (tests) cannot leak a topology.
        previous = set_default_topology(spec)
        try:
            return _run(args, parser)
        finally:
            set_default_topology(previous)
    return _run(args, parser)


def _run(args, parser) -> int:
    if args.kernel_bench:
        from repro.bench.kernel import emit
        document = emit(args.kernel_bench,
                        fig8_scale=args.kernel_bench_scale)
        for name, bench in document["benchmarks"].items():
            print(f"{name}: {bench['value']:,.1f} {bench['unit']}")
        print(f"wrote {args.kernel_bench}", file=sys.stderr)
        if not (args.all or args.experiments):
            return 0

    names = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 2
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    experiments_out = []
    with session(trace=args.trace is not None,
                 sanitize=args.sanitize,
                 report=args.report is not None) as sess:
        for name in names:
            start = time.time()
            kwargs = {"scale": args.scale, "nodes": args.nodes}
            if name.startswith("svc"):
                kwargs["tenants"] = args.tenants
            if name == "abl-adaptive":
                kwargs["policy"] = args.policy
            results = ALL_EXPERIMENTS[name](**kwargs)
            digest = sess.checkpoint(name)
            if digest["runs"]:
                line = format_digest(digest)
                for result in results:
                    result.notes = (
                        f"{result.notes}; {line}" if result.notes else line)
            wall = time.time() - start
            for result in results:
                print(render(result))
                print()
            experiments_out.append({
                "name": name,
                "wall_clock_s": round(wall, 3),
                "results": [dataclasses.asdict(r) for r in results],
                "metrics_digest": digest if digest["runs"] else None,
            })
            print(f"[{name} done in {wall:.1f}s]", file=sys.stderr)
        if args.json:
            document = {
                "schema": {"name": "repro-bench-results",
                           "version": RESULTS_SCHEMA_VERSION},
                "scale": args.scale,
                "nodes": args.nodes,
                "tenants": args.tenants,
                "policy": args.policy,
                "topology": args.topology or "single-switch",
                "experiments": experiments_out,
            }
            with open(args.json, "w") as fh:
                json.dump(document, fh, indent=2)
            print(f"wrote {args.json}", file=sys.stderr)
        if args.metrics:
            with open(args.metrics, "w") as fh:
                json.dump(sess.metrics_document(), fh, indent=2)
            print(f"wrote {args.metrics}", file=sys.stderr)
        if args.report:
            with open(args.report, "w") as fh:
                json.dump(sess.report_document(), fh, indent=2)
            print(f"wrote {args.report}", file=sys.stderr)
        if args.trace:
            sess.export_trace(args.trace)
            print(f"wrote {args.trace}", file=sys.stderr)
        if args.sanitize:
            print(sess.sanitizer_report(), file=sys.stderr)
            if sess.violation_count:
                return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
