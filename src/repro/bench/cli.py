"""Command-line entry point: ``repro-bench``.

Regenerates the paper's tables and figures::

    repro-bench table1 fig12            # specific experiments
    repro-bench --all --scale 0.25      # everything, quick mode
    repro-bench fig10 --json out.json   # machine-readable output
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.report import render

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the tables and figures of 'Design and "
                    "Evaluation of an RDMA-aware Data Shuffling Operator "
                    "for Parallel Database Systems' (EuroSys '17).",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"experiments to run: {', '.join(ALL_EXPERIMENTS)}")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="volume/scale-factor multiplier (default 1.0; "
                             "use 0.25 for a quick pass)")
    parser.add_argument("--json", metavar="PATH",
                        help="additionally dump results as JSON")
    args = parser.parse_args(argv)

    names = list(ALL_EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 2
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    collected = []
    for name in names:
        start = time.time()
        results = ALL_EXPERIMENTS[name](scale=args.scale)
        for result in results:
            print(render(result))
            print()
            collected.append(dataclasses.asdict(result))
        print(f"[{name} done in {time.time() - start:.1f}s]",
              file=sys.stderr)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
