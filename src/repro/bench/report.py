"""Plain-text rendering of experiment results.

Each experiment driver returns an :class:`ExperimentResult` — the same
rows/series the paper plots — and this module renders it as an aligned
table, one row per x value and one column per series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

__all__ = ["Series", "ExperimentResult", "render"]


@dataclass
class Series:
    """One line/bar series of a figure."""

    label: str
    y: List[float]


@dataclass
class ExperimentResult:
    """One table or figure's worth of reproduced data."""

    experiment: str          # e.g. "fig10a"
    title: str
    x_label: str
    x: List[Any]
    y_label: str
    series: List[Series]
    notes: str = ""

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.experiment}")

    def value(self, label: str, x: Any) -> float:
        return self.series_by_label(label).y[self.x.index(x)]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render one experiment as an aligned text table."""
    header = [result.x_label] + [s.label for s in result.series]
    rows = [header]
    for i, x in enumerate(result.x):
        row = [_fmt(x)]
        for s in result.series:
            row.append(_fmt(s.y[i] if i < len(s.y) else None))
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = [f"== {result.experiment}: {result.title} ==",
             f"   ({result.y_label})"]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)
