"""Kernel hot-path microbenchmarks and the ``BENCH_kernel.json`` format.

These benchmarks measure the simulator itself — events dispatched per
wall-clock second, process wakeups, fabric packets routed, and the
wall-clock of a full fig8 run — so performance regressions in the event
kernel are caught by CI the same way behavioural regressions are.

The emitted document is a *trajectory* file: every emission keeps a
bounded history of previous measurements, so the committed baseline
doubles as a record of how kernel throughput evolved over time.

Run via ``repro-bench --kernel-bench BENCH_kernel.json`` or the
pytest-benchmark suite in ``benchmarks/test_kernel_hotpath.py``; gate
with ``python -m repro.bench.compare``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

from repro.sim import Simulator

__all__ = [
    "KERNEL_BENCH_SCHEMA_VERSION",
    "bench_dispatch_events",
    "bench_process_wakeups",
    "bench_fabric_packets",
    "bench_train_events",
    "bench_fig8_wall_clock",
    "run_all",
    "emit",
]

#: version of the ``BENCH_kernel.json`` document layout.
#: v2 adds the gated ``fabric_train_events_per_sec`` train-path entry.
KERNEL_BENCH_SCHEMA_VERSION = 2

#: how many historical entries a trajectory file retains.
_HISTORY_LIMIT = 50


def bench_dispatch_events(num_events: int = 300_000,
                          chains: int = 64) -> Dict[str, Any]:
    """Raw callback dispatch: self-rescheduling ``call_at`` chains.

    Exercises the scheduling path the fabric fast path lives on: heap
    churn plus direct-callback carriers (pooled on the fast kernel,
    Event + lambda on the legacy one — the same code runs on both).
    """
    sim = Simulator()
    remaining = [num_events]

    def make_tick(period: int):
        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_at(sim.now + period, tick)
        return tick

    for i in range(chains):
        sim.call_at(i + 1, make_tick(7 + (i % 5)))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "name": "kernel_events_per_sec",
        "value": sim.events_dispatched / elapsed,
        "unit": "events/s",
        "higher_is_better": True,
        "detail": {"events": sim.events_dispatched,
                   "wall_clock_s": round(elapsed, 4)},
    }


def bench_process_wakeups(num_wakeups: int = 150_000,
                          procs: int = 64) -> Dict[str, Any]:
    """Generator processes in a ``yield sim.timeout(...)`` loop.

    Measures the process resume path and Timeout pooling.
    """
    sim = Simulator()
    per_proc = num_wakeups // procs

    def worker(period: int):
        for _ in range(per_proc):
            yield sim.timeout(period)

    for i in range(procs):
        sim.process(worker(11 + (i % 7)), name=f"bench-worker-{i}")
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "name": "kernel_wakeups_per_sec",
        "value": sim.process_wakeups / elapsed,
        "unit": "wakeups/s",
        "higher_is_better": True,
        "detail": {"wakeups": sim.process_wakeups,
                   "wall_clock_s": round(elapsed, 4)},
    }


def bench_fabric_packets(num_packets: int = 30_000) -> Dict[str, Any]:
    """End-to-end packet routing on a two-node fabric (no QPs).

    Covers the coalesced route path: NIC pipes, switch hop, delivery.
    """
    from repro.cluster import Cluster
    from repro.fabric.config import EDR, ClusterConfig
    from repro.fabric.packet import make_train

    cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
    fabric = cluster.fabric

    def pump():
        for i in range(num_packets):
            yield fabric.route(make_train(
                EDR, src_node=0, dst_node=1, src_qpn=1, dst_qpn=2,
                kind="SEND", length=256, wire_bytes=300))

    start = time.perf_counter()
    cluster.run_process(pump(), name="bench-pump")
    elapsed = time.perf_counter() - start
    return {
        "name": "fabric_packets_per_sec",
        "value": num_packets / elapsed,
        "unit": "packets/s",
        "higher_is_better": True,
        "detail": {"packets": num_packets,
                   "wall_clock_s": round(elapsed, 4)},
    }


def bench_train_events(num_messages: int = 2_000,
                       message_bytes: int = 1 << 20) -> Dict[str, Any]:
    """Train-path throughput and the train/per-packet event reduction.

    Routes ``num_messages`` 1 MiB RC messages (256-packet trains at the
    4 KiB MTU) through a two-node fabric twice: once charging each train
    in a single event per pipe (the default), once under the per-packet
    oracle.  The value gated by ``repro.bench.compare`` is the train
    path's event throughput; the detail records the event-reduction
    factor the abstraction buys (the ISSUE target is >= 20x for 1 MiB
    messages).
    """
    from repro.cluster import Cluster
    from repro.fabric.config import EDR, ClusterConfig
    from repro.fabric.packet import make_train

    def run(oracle: bool):
        cluster = Cluster(ClusterConfig(network=EDR, num_nodes=2))
        fabric = cluster.fabric
        fabric.use_packet_oracle(oracle)

        def pump():
            for i in range(num_messages):
                yield fabric.route(make_train(
                    EDR, src_node=0, dst_node=1, src_qpn=1, dst_qpn=2,
                    kind="SEND", length=message_bytes, transport="RC"))

        start = time.perf_counter()
        cluster.run_process(pump(), name="bench-train-pump")
        elapsed = time.perf_counter() - start
        return cluster.sim.events_dispatched, elapsed

    train_events, train_elapsed = run(oracle=False)
    oracle_events, oracle_elapsed = run(oracle=True)
    n_packets = max(1, -(-message_bytes // EDR.mtu))
    return {
        "name": "fabric_train_events_per_sec",
        "value": train_events / train_elapsed,
        "unit": "events/s",
        "higher_is_better": True,
        "detail": {
            "messages": num_messages,
            "message_bytes": message_bytes,
            "n_packets": n_packets,
            "train_events": train_events,
            "oracle_events": oracle_events,
            "event_reduction": round(oracle_events / train_events, 2),
            "train_wall_clock_s": round(train_elapsed, 4),
            "oracle_wall_clock_s": round(oracle_elapsed, 4),
        },
    }


def bench_fig8_wall_clock(scale: float = 0.05) -> Dict[str, Any]:
    """Wall-clock of the full fig8 experiment (both networks)."""
    from repro.bench.experiments import ALL_EXPERIMENTS

    start = time.perf_counter()
    ALL_EXPERIMENTS["fig8"](scale=scale)
    elapsed = time.perf_counter() - start
    return {
        "name": "fig8_wall_clock_s",
        "value": elapsed,
        "unit": "s",
        "higher_is_better": False,
        "detail": {"scale": scale},
    }


def run_all(fig8_scale: float = 0.05) -> Dict[str, Any]:
    """Run the whole suite; returns a ``BENCH_kernel.json`` document."""
    results = [
        bench_dispatch_events(),
        bench_process_wakeups(),
        bench_fabric_packets(),
        bench_train_events(),
        bench_fig8_wall_clock(scale=fig8_scale),
    ]
    return {
        "schema": {"name": "repro-bench-kernel",
                   "version": KERNEL_BENCH_SCHEMA_VERSION},
        "benchmarks": {
            r["name"]: {k: v for k, v in r.items() if k != "name"}
            for r in results
        },
        "history": [],
    }


def emit(path: str, document: Optional[Dict[str, Any]] = None,
         fig8_scale: float = 0.05) -> Dict[str, Any]:
    """Write ``document`` (or a fresh run) to ``path`` as a trajectory.

    If ``path`` already holds a kernel-bench document, its measurement is
    prepended to the new document's bounded history, so successive
    emissions accumulate the performance trajectory.
    """
    if document is None:
        document = run_all(fig8_scale=fig8_scale)
    history = list(document.get("history", ()))
    if os.path.exists(path):
        try:
            with open(path) as fh:
                previous = json.load(fh)
        except (OSError, ValueError):
            previous = None
        if isinstance(previous, dict) and "benchmarks" in previous:
            entry = {
                "timestamp": previous.get("timestamp"),
                "benchmarks": {
                    name: bench.get("value")
                    for name, bench in previous["benchmarks"].items()
                },
            }
            history = ([entry] + previous.get("history", []))[:_HISTORY_LIMIT]
    document = dict(document)
    document["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                          time.gmtime())
    document["history"] = history
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    return document
