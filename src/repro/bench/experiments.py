"""Drivers that regenerate every table and figure of the evaluation (§5).

Each ``figN`` function reproduces the corresponding figure's data; the
returned :class:`~repro.bench.report.ExperimentResult` holds the same
x-axis and series the paper plots.  A global ``scale`` parameter shrinks
transfer volumes for quick runs (the benchmarks use ``scale=0.25``); the
shapes are volume-independent once past warmup.

Simulated volumes are far below the paper's 160 GiB per node — throughput
is steady-state within tens of MiB — and TPC-H scale factors are reduced
proportionally; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from repro.baselines.qperf import run_qperf
from repro.bench.report import ExperimentResult, Series
from repro.bench.workloads import run_broadcast, run_repartition
from repro.cluster import Cluster
from repro.core.designs import design_properties
from repro.core.endpoint import EndpointConfig
from repro.core.groups import TransmissionGroups
from repro.core.stage import ShuffleStage
from repro.fabric.config import (
    EDR,
    FDR,
    LEAF_SPINE,
    ClusterConfig,
    NetworkConfig,
)
from repro.telemetry import nic_cache_stats
from repro.tpch import generate, run_query

__all__ = [
    "fig8", "fig9", "fig10", "fig10_scaleout", "fig11", "fig12", "fig13",
    "fig14a", "fig14_scaling", "table1", "abl_oversub", "abl_adaptive",
    "abl_hierarchical", "svc_tenants", "ALL_EXPERIMENTS",
]

MIB = 1 << 20

#: the paper's plotting order for the six designs.
SIX = ["MEMQ/SR", "MEMQ/RD", "MESQ/SR", "SEMQ/SR", "SEMQ/RD", "SESQ/SR"]
SR_DESIGNS = ["SEMQ/SR", "MEMQ/SR", "SESQ/SR", "MESQ/SR"]


def _volume(design: str, scale: float, nodes: int = 8,
            pattern: str = "repartition") -> int:
    """Per-node transfer volume: UD runs cost more host time per byte."""
    base = 24 * MIB if design.endswith("SQ/SR") else 72 * MIB
    if design in ("MPI", "IPoIB"):
        base = 24 * MIB
    base = int(base * scale)
    if pattern == "broadcast":
        base = base // max(1, nodes - 1)
    return max(2 * MIB, base)


def _run(network: NetworkConfig, design: str, nodes: int,
         pattern: str, scale: float,
         config: Optional[EndpointConfig] = None,
         num_endpoints: Optional[int] = None,
         threads: int = 0):
    """One shuffle run; returns ``(cluster, workload result)`` so callers
    can harvest transport telemetry alongside the throughput number."""
    cluster = Cluster(ClusterConfig(network=network, num_nodes=nodes,
                                    threads_per_node=threads))
    runner = run_repartition if pattern == "repartition" else run_broadcast
    result = runner(cluster, design,
                    bytes_per_node=_volume(design, scale, nodes, pattern),
                    config=config, num_endpoints=num_endpoints)
    return cluster, result


def _throughput(network: NetworkConfig, design: str, nodes: int,
                pattern: str, scale: float,
                config: Optional[EndpointConfig] = None,
                num_endpoints: Optional[int] = None,
                threads: int = 0) -> float:
    _cluster, result = _run(network, design, nodes, pattern, scale,
                            config=config, num_endpoints=num_endpoints,
                            threads=threads)
    return result.receive_throughput_gib_per_node()


# -- Figure 8: credit write-back frequency ------------------------------------------


def fig8(network: NetworkConfig = EDR, nodes: int = 8,
         frequencies: Sequence[int] = (1, 2, 3, 4, 8, 16),
         scale: float = 1.0) -> ExperimentResult:
    """Fig 8: flow-control overhead of the Send/Receive designs.

    Matches §5.1.1's setup: 16 RDMA buffers per remote node per thread;
    the x axis is how many Receives the receiver posts before writing
    credit back.
    """
    series = []
    for design in ["SEMQ/SR", "MEMQ/SR", "SESQ/SR", "MESQ/SR"]:
        ys = []
        for freq in frequencies:
            cfg = EndpointConfig(buffers_per_connection=16,
                                 credit_frequency=freq, ud_window_factor=1)
            ys.append(_throughput(network, design, nodes, "repartition",
                                  scale, config=cfg))
        series.append(Series(design, ys))
    mpi = _throughput(network, "MPI", nodes, "repartition", scale)
    series.append(Series("MPI", [mpi] * len(frequencies)))
    qperf = run_qperf(network)
    series.append(Series("qperf", [qperf] * len(frequencies)))
    return ExperimentResult(
        experiment=f"fig8-{network.name}",
        title=f"Credit write-back frequency, {network.name} "
              f"({nodes} nodes)",
        x_label="credit update frequency", x=list(frequencies),
        y_label="receive throughput per node (GiB/s)", series=series,
        notes="16 buffers per remote node per thread (§5.1.1)",
    )


# -- Figure 9: message size (throughput + pinned memory) ------------------------------


def fig9(network: NetworkConfig = EDR, nodes: int = 8,
         sizes: Sequence[int] = (4 << 10, 16 << 10, 64 << 10, 256 << 10,
                                 1 << 20),
         scale: float = 1.0):
    """Fig 9(a,b): RC message size vs throughput and registered memory."""
    throughput = {d: [] for d in SIX}
    memory = {d: [] for d in SIX}
    for size in sizes:
        for design in SIX:
            cfg = EndpointConfig(message_size=size)
            cluster = Cluster(ClusterConfig(network=network,
                                            num_nodes=nodes))
            result = run_repartition(
                cluster, design,
                bytes_per_node=_volume(design, scale, nodes),
                config=cfg)
            throughput[design].append(
                result.receive_throughput_gib_per_node())
            memory[design].append(
                result.registered_bytes_per_node / MIB)
    thr = ExperimentResult(
        experiment=f"fig9a-{network.name}",
        title=f"Effect of message size ({network.name}): throughput",
        x_label="message size (B)", x=list(sizes),
        y_label="receive throughput per node (GiB/s)",
        series=[Series(d, throughput[d]) for d in SIX],
        notes="UD designs are pinned at the 4 KiB MTU regardless of the "
              "requested size (§2.2.2)",
    )
    mem = ExperimentResult(
        experiment=f"fig9b-{network.name}",
        title=f"Effect of message size ({network.name}): pinned memory",
        x_label="message size (B)", x=list(sizes),
        y_label="registered memory per node (MiB)",
        series=[Series(d, memory[d]) for d in SIX],
        notes="double buffering per thread per destination (§5.1.2)",
    )
    return thr, mem


# -- Figure 10: throughput when scaling out --------------------------------------------


def fig10(networks: Sequence[NetworkConfig] = (FDR, EDR),
          node_counts: Sequence[int] = (2, 4, 8, 16),
          scale: float = 1.0) -> List[ExperimentResult]:
    """Fig 10(a-d): repartition and broadcast throughput vs cluster size."""
    results = []
    panel = {("FDR", "repartition"): "fig10a", ("FDR", "broadcast"): "fig10b",
             ("EDR", "repartition"): "fig10c", ("EDR", "broadcast"): "fig10d"}
    for network in networks:
        for pattern in ("repartition", "broadcast"):
            series = []
            for design in SIX + ["MPI", "IPoIB"]:
                ys = [
                    _throughput(network, design, n, pattern, scale)
                    for n in node_counts
                ]
                series.append(Series(design, ys))
            qperf = run_qperf(network)
            if pattern == "repartition":  # qperf has no broadcast mode
                series.append(Series("qperf", [qperf] * len(node_counts)))
            results.append(ExperimentResult(
                experiment=panel[(network.name, pattern)],
                title=f"{pattern.capitalize()} throughput, "
                      f"{network.name} InfiniBand",
                x_label="nodes", x=list(node_counts),
                y_label="receive throughput per node (GiB/s)",
                series=series,
            ))
    return results


# -- Mesoscale scale-out: 64..1024 nodes on leaf-spine --------------------------------


#: default node counts for the mesoscale sweep.
SCALEOUT_COUNTS = (64, 128, 256, 512, 1024)

#: largest cluster the MQ design runs at — n QPs per node means n^2
#: connections cluster-wide, so the sweep caps it and reports "-" above.
SCALEOUT_MQ_CAP = 256


@contextmanager
def _gc_paused():
    """Pause the cyclic collector for one mesoscale run.

    A 1024-node cluster holds millions of live objects (connections,
    buffer pools, address handles); full collections traverse all of
    them and come to dominate wall-clock (~2x at 256 nodes, worse
    beyond).  Reference counting still reclaims the simulator's acyclic
    churn; one collection after the run picks up the cycles.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()


def _scaleout_volume(nodes: int, scale: float) -> int:
    """Per-node transfer volume for the mesoscale sweep.

    Decays as n^-2 so per-link work stays roughly constant across the
    sweep: every source batch emits one message per destination, so
    cluster-wide messages grow as nodes^2 x batches and a flat per-node
    volume would explode the 1024-node run.  Floored at one template
    batch (256 KiB) so every destination still receives data.
    """
    return max(256 << 10, int(32 * MIB * scale * (64.0 / nodes) ** 2))


def _scaleout_point(network: NetworkConfig, design: str, n: int,
                    scale: float, nodes_per_leaf: int,
                    oversubscription: int, want_trunk_note: bool):
    """Run one (design, node count) point; the cluster dies on return.

    Keeping the cluster's lifetime inside this frame is what makes the
    caller's post-point ``gc.collect()`` cheap: reference counting frees
    the acyclic bulk as the frame unwinds.
    """
    topology = LEAF_SPINE(oversubscription=oversubscription,
                          nodes_per_leaf=nodes_per_leaf)
    cluster = Cluster(ClusterConfig(network=network, num_nodes=n,
                                    threads_per_node=1, topology=topology))
    # ud_window_factor=1: at mesoscale fan-out each link carries ~1
    # message per batch, so the deep UD byte window of §5.1.1 buys
    # nothing and costs O(n^2) receive buffers cluster-wide.
    cfg = EndpointConfig(
        message_size=4096 if design.startswith("MESQ") else 65536,
        buffers_per_connection=2, credit_frequency=2, ud_window_factor=1)
    result = run_repartition(cluster, design,
                             bytes_per_node=_scaleout_volume(n, scale),
                             config=cfg)
    note = None
    if want_trunk_note:
        elapsed = max(1, result.elapsed_ns)
        peak = max((p.pipe.busy_ns / elapsed
                    for p in cluster.fabric.topology.ports()), default=0.0)
        note = f"n={n} peak trunk util {100.0 * min(1.0, peak):.0f}%"
    y = result.receive_throughput_gib_per_node()
    cluster.dispose()
    return y, note


def fig10_scaleout(network: NetworkConfig = EDR,
                   node_counts: Sequence[int] = SCALEOUT_COUNTS,
                   scale: float = 1.0,
                   nodes_per_leaf: int = 32,
                   oversubscription: int = 2,
                   designs: Sequence[str] = ("MESQ/SR", "MEMQ/SR"),
                   mq_cap: int = SCALEOUT_MQ_CAP) -> ExperimentResult:
    """Repartition throughput from 64 to 1024 nodes on a leaf-spine fabric.

    The paper stops at 16 nodes on one switch (Fig 10); this extrapolation
    asks how the two surviving designs behave at mesoscale on a 2:1
    oversubscribed leaf-spine fabric (32 nodes per leaf).  It is the
    flow-level packet-train abstraction that makes the sweep tractable:
    every multi-MTU message crosses each pipe as a single event, so event
    counts scale with messages rather than packets (`REPRO_TRAINS=0`
    re-runs it per-packet for auditing, at ~the MTU-count multiple of the
    cost).

    One thread per node and double buffering keep per-node state minimal;
    the MQ design stops at ``mq_cap`` nodes (n^2 connections cluster-wide)
    while the SQ design runs the full sweep — the paper's §5.1.4 argument
    about QP-context thrash, restated as a scale-out feasibility boundary.
    """
    series = []
    trunk_notes = []
    for design in designs:
        ys = []
        for n in node_counts:
            if "MQ/" in design and n > mq_cap:
                ys.append(None)  # rendered as "-": beyond the MQ cap
                continue
            with _gc_paused():
                # The point runs in a helper so the cluster is already
                # dead when _gc_paused collects on exit: the collector
                # then traverses surviving cycles, not a ~10 GB live
                # heap (tens of seconds at 1024 nodes).
                y, note = _scaleout_point(
                    network, design, n, scale, nodes_per_leaf,
                    oversubscription, want_trunk_note=design == designs[0])
            ys.append(y)
            if note is not None:
                trunk_notes.append(note)
        series.append(Series(design, ys))
    return ExperimentResult(
        experiment=f"fig10-scaleout-{network.name}",
        title=f"Mesoscale repartition scale-out ({network.name}, "
              f"leaf-spine {oversubscription}:1, {nodes_per_leaf}/leaf)",
        x_label="nodes", x=list(node_counts),
        y_label="receive throughput per node (GiB/s)", series=series,
        notes=f"1 thread/node, double buffering; MQ capped at {mq_cap} "
              f"nodes; {designs[0]}: " + ", ".join(trunk_notes),
    )


# -- Figure 11: number of Queue Pairs --------------------------------------------------


def fig11(network: NetworkConfig = EDR, nodes: int = 16,
          endpoint_counts: Sequence[int] = (1, 2, 4, 8),
          scale: float = 1.0) -> ExperimentResult:
    """Fig 11: throughput vs Queue Pairs per operator (EDR, 16 nodes).

    The endpoint count k sweeps between the SE (k=1) and ME (k=t)
    extremes; the resulting QPs per operator are k for SQ designs and
    n*k for MQ designs.
    """
    x_qps: List[int] = []
    rows: Dict[str, Dict[int, float]] = {"SQ/SR": {}, "MQ/SR": {}, "MQ/RD": {}}
    miss_rates: Dict[str, Dict[int, float]] = {k: {} for k in rows}
    for k in endpoint_counts:
        for kind, design in (("SQ/SR", "MESQ/SR"), ("MQ/SR", "MEMQ/SR"),
                             ("MQ/RD", "MEMQ/RD")):
            qps = k if kind == "SQ/SR" else k * nodes
            cluster, result = _run(network, design, nodes, "repartition",
                                   scale, num_endpoints=k)
            rows[kind][qps] = result.receive_throughput_gib_per_node()
            miss_rates[kind][qps] = nic_cache_stats(cluster)["miss_rate"]
            if qps not in x_qps:
                x_qps.append(qps)
    x_qps.sort()
    series = [
        Series(kind, [rows[kind].get(q) for q in x_qps])
        for kind in ("SQ/SR", "MQ/SR", "MQ/RD")
    ]
    # The degradation mechanism (§5.1.4): once QPs outgrow the NIC's
    # context cache, every work request risks a PCIe round trip.
    cache_note = ", ".join(
        f"{kind} {100.0 * miss_rates[kind][max(miss_rates[kind])]:.0f}%"
        for kind in ("SQ/SR", "MQ/SR", "MQ/RD")
    )
    return ExperimentResult(
        experiment="fig11",
        title=f"Effect of many Queue Pairs ({network.name}, {nodes} nodes)",
        x_label="QPs per operator", x=x_qps,
        y_label="receive throughput per node (GiB/s)", series=series,
        notes="endpoint count sweeps 1..t; QPs = k (SQ) or n*k (MQ); "
              f"QP-cache miss rate at max QPs: {cache_note}",
    )


# -- Figure 12: connection setup cost --------------------------------------------------


def fig12(network: NetworkConfig = EDR,
          node_counts: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16),
          threads: int = 0) -> ExperimentResult:
    """Fig 12: time to build the RDMA connections vs cluster size."""
    series = {d: [] for d in SIX}
    for nodes in node_counts:
        for design in SIX:
            cluster = Cluster(ClusterConfig(network=network,
                                            num_nodes=nodes,
                                            threads_per_node=threads))
            stage = ShuffleStage(cluster.fabric, design,
                                 TransmissionGroups.repartition(nodes),
                                 registry=cluster.registry)
            cluster.run_process(stage.setup())
            series[design].append(stage.max_setup_ns / 1e6)
    return ExperimentResult(
        experiment="fig12",
        title=f"Time to build RDMA connections ({network.name})",
        x_label="nodes", x=list(node_counts),
        y_label="time (ms)",
        series=[Series(d, series[d]) for d in SIX],
        notes="per-node setup: QP creation + handshake + registration; "
              "MQ designs grow linearly, SQ designs stay flat (§5.1.5)",
    )


def setup_crossover_mb(network: NetworkConfig = EDR, nodes: int = 8,
                       scale: float = 1.0) -> float:
    """§5.1.5 claim: the shuffle volume above which MESQ/SR with runtime
    connection setup beats IPoIB (which needs none worth counting)."""
    cluster = Cluster(ClusterConfig(network=network, num_nodes=nodes))
    stage = ShuffleStage(cluster.fabric, "MESQ/SR",
                         TransmissionGroups.repartition(nodes),
                         registry=cluster.registry)
    cluster.run_process(stage.setup())
    setup_s = stage.max_setup_ns / 1e9
    mesq = _throughput(network, "MESQ/SR", nodes, "repartition", scale)
    ipoib = _throughput(network, "IPoIB", nodes, "repartition", scale)
    if mesq <= ipoib:
        return float("inf")
    # volume V satisfying V/ipoib == setup + V/mesq (GiB/s -> MB).
    volume_gib = setup_s / (1.0 / ipoib - 1.0 / mesq)
    return volume_gib * 1024.0


# -- Figure 13: compute-intensive receiving fragment -----------------------------------


def fig13(network: NetworkConfig = EDR, nodes: int = 8,
          compute_us: Sequence[float] = (0.0, 2.5, 5.0, 10.0, 15.0, 25.0,
                                         40.0),
          scale: float = 1.0) -> ExperimentResult:
    """Fig 13: relative shuffling throughput as the receiving fragment
    becomes compute intensive (batches of 32 KiB, §5.1.6).

    The y-axis is the receiving fragment's busy fraction — the measured
    share of receiver-thread time not blocked waiting for data.  It
    reaches 100% exactly when communication is completely overlapped
    with computation, matching the paper's definition.
    """
    batch = 32 * 1024
    series = []
    for design in SIX + ["MPI", "IPoIB"]:
        ys = []
        for c_us in compute_us:
            cluster = Cluster(ClusterConfig(network=network,
                                            num_nodes=nodes))
            result = run_repartition(
                cluster, design,
                bytes_per_node=_volume(design, scale, nodes),
                compute_ns_per_batch=c_us * 1000.0,
                receive_output_bytes=batch)
            ys.append(100.0 * result.receiver_busy_fraction())
        series.append(Series(design, ys))
    return ExperimentResult(
        experiment="fig13",
        title=f"Compute-intensive receiving fragment ({network.name})",
        x_label="compute per 32KiB batch (us)", x=list(compute_us),
        y_label="relative shuffling throughput (%)",
        series=series,
        notes="100% = communication fully hidden behind computation",
    )


# -- Figure 14: TPC-H ------------------------------------------------------------------


def fig14a(scale_factor: float = 0.06, nodes: int = 8,
           threads: int = 0) -> ExperimentResult:
    """Fig 14(a): TPC-H Q4 response time, FDR vs EDR, 8 nodes."""
    series = {"MPI": [], "MESQ/SR": [], "local data": []}
    for network in (FDR, EDR):
        data = generate(scale_factor, nodes, seed=42)
        for design in ("MPI", "MESQ/SR"):
            cluster = Cluster(ClusterConfig(network=network,
                                            num_nodes=nodes,
                                            threads_per_node=threads))
            res = run_query(cluster, "Q4", data, design=design)
            series[design].append(res.response_time_ms())
        local = generate(scale_factor, nodes, seed=42, copartition=True)
        cluster = Cluster(ClusterConfig(network=network, num_nodes=nodes,
                                        threads_per_node=threads))
        res = run_query(cluster, "Q4", local, design="MESQ/SR",
                        local_data=True)
        series["local data"].append(res.response_time_ms())
    return ExperimentResult(
        experiment="fig14a",
        title=f"TPC-H Q4 response time, {nodes} nodes, SF={scale_factor}",
        x_label="network", x=["FDR", "EDR"],
        y_label="response time (ms)",
        series=[Series(k, v) for k, v in series.items()],
    )


def fig14_scaling(query: str, scale_factor_per_node: float = 0.0075,
                  node_counts: Sequence[int] = (2, 4, 8, 16),
                  threads: int = 0) -> ExperimentResult:
    """Fig 14(b,c,d): query response time as the database grows in
    proportion to the cluster (Q4, Q3, Q10)."""
    labels = {"Q4": "fig14b", "Q3": "fig14c", "Q10": "fig14d"}
    series = {"MPI": [], "MESQ/SR": []}
    if query == "Q4":
        series["local data"] = []
    for nodes in node_counts:
        sf = scale_factor_per_node * nodes
        data = generate(sf, nodes, seed=42)
        for design in ("MPI", "MESQ/SR"):
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                            threads_per_node=threads))
            res = run_query(cluster, query, data, design=design)
            series[design].append(res.response_time_ms())
        if query == "Q4":
            local = generate(sf, nodes, seed=42, copartition=True)
            cluster = Cluster(ClusterConfig(network=EDR, num_nodes=nodes,
                                            threads_per_node=threads))
            res = run_query(cluster, "Q4", local, design="MESQ/SR",
                            local_data=True)
            series["local data"].append(res.response_time_ms())
    return ExperimentResult(
        experiment=labels[query],
        title=f"TPC-H {query} response time, EDR, DB grows with cluster",
        x_label="nodes", x=list(node_counts),
        y_label="response time (ms)",
        series=[Series(k, v) for k, v in series.items()],
        notes=f"SF = {scale_factor_per_node} per node (scaled-down "
              "stand-in for the paper's 100 GiB per node)",
    )


# -- Ablation: trunk oversubscription --------------------------------------------------


def abl_oversub(network: NetworkConfig = EDR, nodes: int = 8,
                nodes_per_leaf: int = 4,
                factors: Sequence[int] = (1, 2, 4),
                designs: Sequence[str] = ("MESQ/SR", "MEMQ/SR"),
                scale: float = 1.0) -> ExperimentResult:
    """Repartition throughput vs leaf-spine trunk oversubscription.

    The paper's single-switch platform (§5) cannot exhibit cross-rack
    contention; this ablation re-runs the fig10 repartition workload on
    a two-tier leaf-spine fabric and sweeps the trunk oversubscription
    factor k.  At k:1 each leaf's uplink/downlink runs at
    ``nodes_per_leaf * link_rate / k``, so with uniform repartition
    traffic — a fraction (n - m)/(n - 1) of every byte crosses the
    spine — the trunks saturate once k exceeds roughly the inverse of
    that fraction, and throughput collapses no matter how good the
    NIC-level shuffle design is.  The per-switch-port utilization in
    the notes (and in ``--metrics`` snapshots) attributes the collapse
    to the trunk pipes directly.
    """
    series = []
    trunk_notes = []
    for design in designs:
        ys = []
        for k in factors:
            topology = LEAF_SPINE(oversubscription=k,
                                  nodes_per_leaf=nodes_per_leaf)
            cluster = Cluster(ClusterConfig(network=network,
                                            num_nodes=nodes,
                                            topology=topology))
            result = run_repartition(
                cluster, design,
                bytes_per_node=_volume(design, scale, nodes))
            ys.append(result.receive_throughput_gib_per_node())
            if design == designs[0]:
                # Utilization over the transfer window (setup excluded):
                # trunk ports only carry shuffle data.
                elapsed = max(1, result.elapsed_ns)
                peak = max(
                    (p.pipe.busy_ns / elapsed
                     for p in cluster.fabric.topology.ports()),
                    default=0.0)
                trunk_notes.append(f"{k}:1 peak trunk util "
                                   f"{100.0 * min(1.0, peak):.0f}%")
        series.append(Series(design, ys))
    return ExperimentResult(
        experiment=f"abl-oversub-{network.name}",
        title=f"Trunk oversubscription ({network.name}, {nodes} nodes, "
              f"{nodes_per_leaf}/leaf)",
        x_label="oversubscription (k:1)", x=list(factors),
        y_label="receive throughput per node (GiB/s)", series=series,
        notes=f"leaf-spine, {designs[0]}: " + ", ".join(trunk_notes),
    )


# -- Ablation: adaptive policy vs the static grid --------------------------------------


#: the measurement grid the AdaptivePolicy rule table is judged on: one
#: point per regime of the fig8–fig11 sweeps (label, network, nodes,
#: config).  ``None`` config = the workload defaults.
_ADAPTIVE_GRID = [
    ("fig8-edr-f1", EDR, 8,
     EndpointConfig(buffers_per_connection=16, credit_frequency=1,
                    ud_window_factor=1)),
    ("fig8-fdr-f16", FDR, 8,
     EndpointConfig(buffers_per_connection=16, credit_frequency=16,
                    ud_window_factor=1)),
    ("fig9-4k", EDR, 8, EndpointConfig(message_size=4 << 10)),
    ("fig9-1m", EDR, 8, EndpointConfig(message_size=1 << 20)),
    ("fig10-edr-n8", EDR, 8, None),
    ("fig10-fdr-n16", FDR, 16, None),
    ("fig11-edr-n16", EDR, 16, None),
]


def abl_adaptive(scale: float = 1.0, nodes: Optional[int] = None,
                 policy: str = "adaptive",
                 designs: Sequence[str] = SIX) -> ExperimentResult:
    """Adaptive design selection vs the static grid (the policy ablation).

    Re-runs one repartition point from each regime of the fig8–fig11
    measurement grid with every static design plus the ``--policy``
    selection, and reports the adaptive pick's throughput gap to the
    best static design at that point.  The acceptance bar is a gap
    within 5% everywhere: the rule table (see
    :class:`repro.core.policy.AdaptivePolicy`) must never leave a
    regime's winning design on the table.

    The policy plans against the same context the run uses, so the
    adaptive series *is* a normal planned run — including the clamp
    path — not a post-hoc argmax over the static series.
    """
    from repro.core.policy import StageContext, parse_policy

    names, best_ys, policy_ys, notes = [], [], [], []
    for label, network, default_n, cfg in _ADAPTIVE_GRID:
        n = _n(nodes, default_n)
        best_design, best_y = "", 0.0
        for design in designs:
            y = _throughput(network, design, n, "repartition", scale,
                            config=cfg)
            if y > best_y:
                best_design, best_y = design, y
        pol = parse_policy(policy)
        cluster = Cluster(ClusterConfig(network=network, num_nodes=n))
        # Pre-plan with the RC-class volume to pick the run's volume;
        # the runner re-plans with the chosen design's own volume (the
        # starved-window rule keeps the two picks consistent).
        plan = pol.plan(StageContext.from_cluster(
            cluster, config=cfg,
            bytes_per_node=_volume("SEMQ/SR", scale, n)))
        result = run_repartition(
            cluster, pol,
            bytes_per_node=_volume(plan.design, scale, n),
            config=cfg)
        pol_y = result.receive_throughput_gib_per_node()
        cluster.dispose()
        gap = 100.0 * (best_y - pol_y) / max(1e-9, best_y)
        names.append(label)
        best_ys.append(best_y)
        policy_ys.append(pol_y)
        notes.append(f"{label}: {result.design} vs best {best_design} "
                     f"(gap {gap:+.1f}%)")
    return ExperimentResult(
        experiment="abl-adaptive",
        title=f"Adaptive policy vs static grid ({policy})",
        x_label="grid point", x=names,
        y_label="receive throughput per node (GiB/s)",
        series=[Series("best static", best_ys),
                Series(policy, policy_ys)],
        notes="; ".join(notes),
    )


def abl_hierarchical(network: NetworkConfig = EDR, nodes: int = 8,
                     nodes_per_leaf: int = 4, oversubscription: int = 4,
                     scale: float = 1.0) -> ExperimentResult:
    """Two-phase shuffle vs the flat design on an oversubscribed fabric.

    Runs the abl-oversub repartition point at the mesoscale per-node
    state budget (4 KiB UD messages, double buffering, no deep UD
    window — the fig10-scaleout configuration, which is how a
    leaf-spine fabric is actually operated) three ways: the flat UD
    design on a 1:1 fabric, the same on a ``oversubscription``:1
    fabric, and the :class:`~repro.core.policy.HierarchicalPolicy`
    two-phase plan on the constrained fabric.

    The notes decompose the flat design's oversubscription loss into
    the bisection-bound part — per-node throughput can never exceed
    ``link_rate * n / (k * (n - m))``, no matter the shuffle design
    (EXPERIMENTS.md, abl-oversub) — and the recoverable scheduling
    part, and report how much of each the two-phase plan wins back.
    """
    from repro.core.policy import HierarchicalPolicy

    cfg = EndpointConfig(message_size=4096, buffers_per_connection=2,
                         credit_frequency=2, ud_window_factor=1)
    volume = max(2 * MIB, int(24 * MIB * scale))

    def point(design, factor):
        topology = LEAF_SPINE(oversubscription=factor,
                              nodes_per_leaf=nodes_per_leaf)
        cluster = Cluster(ClusterConfig(network=network, num_nodes=nodes,
                                        topology=topology))
        result = run_repartition(cluster, design, bytes_per_node=volume,
                                 config=cfg)
        elapsed = max(1, result.elapsed_ns)
        trunk = max((p.pipe.busy_ns / elapsed
                     for p in cluster.fabric.topology.ports()), default=0.0)
        cluster.dispose()
        return (result.design, result.receive_throughput_gib_per_node(),
                100.0 * min(1.0, trunk))

    flat1 = point("MESQ/SR", 1)
    flat_k = point("MESQ/SR", oversubscription)
    hier = point(HierarchicalPolicy(), oversubscription)

    # The bisection bound: every byte for a remote leaf crosses one
    # trunk of rate m*link/k shared by the leaf's m senders.
    remote = nodes - nodes_per_leaf
    ceiling = (network.link_bytes_per_ns * nodes /
               (oversubscription * remote)) / (1 << 30) * 1e9
    loss = max(1e-9, flat1[1] - flat_k[1])
    recoverable = max(0.0, min(ceiling, flat1[1]) - flat_k[1])
    won = hier[1] - flat_k[1]
    labels = ["flat 1:1", f"flat {oversubscription}:1",
              f"hier {oversubscription}:1"]
    return ExperimentResult(
        experiment=f"abl-hierarchical-{network.name}",
        title=f"Two-phase shuffle under {oversubscription}:1 "
              f"oversubscription ({network.name}, {nodes} nodes, "
              f"{nodes_per_leaf}/leaf)",
        x_label="configuration", x=labels,
        y_label="receive throughput per node (GiB/s)",
        series=[Series("throughput", [flat1[1], flat_k[1], hier[1]]),
                Series("peak trunk util %", [flat1[2], flat_k[2],
                                             hier[2]])],
        notes=(f"{hier[0]}; bisection ceiling {ceiling:.2f} GiB/s; "
               f"flat loss {loss:.2f} GiB/s of which "
               f"{recoverable:.2f} recoverable; two-phase wins back "
               f"{100.0 * won / loss:.0f}% of the loss "
               f"({100.0 * won / max(1e-9, recoverable):.0f}% of the "
               f"recoverable part)"),
    )


# -- Multi-tenant service ablation ----------------------------------------------------


def _svc_run(network: NetworkConfig, nodes: int, threads: int,
             specs, quota_caps, seed: int, qp_cache_entries: int):
    """One service run; returns the per-tenant rollup."""
    # Imported lazily: the service layer sits above bench's usual deps.
    from repro.service import (
        FairSharePolicy,
        QuotaManager,
        ServiceConfig,
        ShuffleService,
    )
    config = ClusterConfig(
        network=network, num_nodes=nodes, threads_per_node=threads,
        seed=seed).with_network(qp_cache_entries=qp_cache_entries)
    cluster = Cluster(config)
    quotas = None
    if quota_caps:
        quotas = QuotaManager()
        for tenant, max_qps in quota_caps.items():
            quotas.set_quota(tenant, max_qps=max_qps)
    service = ShuffleService(
        cluster, specs, policy=FairSharePolicy(), quotas=quotas,
        config=ServiceConfig(max_concurrent=len(specs) + 1, seed=seed))
    report = service.run()
    cluster.dispose()
    return report["tenants"]


def svc_tenants(network: NetworkConfig = FDR, nodes: int = 8,
                tenants: int = 3, threads: int = 4, scale: float = 1.0,
                load_factors: Sequence[float] = (0.5, 1.0, 2.0),
                qp_cache_entries: int = 64,
                seed: int = 1) -> ExperimentResult:
    """Isolation vs sharing on one fabric (the service-shape ablation).

    A MESQ/SR *victim* tenant shares the cluster with ``tenants - 1``
    MQ-style *aggressors* (MEMQ/SR, one endpoint per thread): each
    aggressor job creates O(n*t) Queue Pairs that thrash the NIC's
    QP-context cache — the Fig 10/11 degradation mechanism, now
    cross-tenant.  The x axis scales the tenants' open-loop offered
    load; for every point the victim's p50/p99 job latency is measured
    three ways: running *solo*, *shared* with the aggressors, and
    shared with per-tenant QP quotas that clamp each aggressor to a
    single-endpoint footprint.

    Runs on the FDR-era NIC with its context cache shrunk to
    ``qp_cache_entries`` so the simulated working set (n=8 rather than
    the paper's 16+ nodes) still overflows it, like the real 144-entry
    ConnectX-3 cache does at scale.
    """
    from repro.service import estimate_footprint

    victim = "tenant-a"
    aggressors = [f"tenant-{chr(ord('b') + i)}" for i in range(tenants - 1)]
    bytes_per_job = max(2 * MIB, int(8 * MIB * scale))
    jobs = 4 if scale >= 0.25 else 2
    base_gap_ns = 30_000_000

    def specs_for(names_designs, gap_ns):
        from repro.service import TenantSpec
        return [
            TenantSpec(name=name, design=design,
                       bytes_per_job=bytes_per_job,
                       mean_interarrival_ns=gap_ns, jobs=jobs)
            for name, design in names_designs
        ]

    aggressor_cap = estimate_footprint(
        "MEMQ/SR", nodes, threads, num_endpoints=1).qps

    labels = {}
    for mode in ("solo", "shared", "quota"):
        for q in ("p50", "p99"):
            labels[(mode, "victim", q)] = []
        if mode != "solo":
            labels[(mode, "aggressor", "p99")] = []
    miss_notes = []

    for factor in load_factors:
        gap_ns = max(1, int(base_gap_ns / factor))
        solo = _svc_run(network, nodes, threads,
                        specs_for([(victim, "MESQ/SR")], gap_ns),
                        None, seed, qp_cache_entries)
        mixed = [(victim, "MESQ/SR")] + [(a, "MEMQ/SR") for a in aggressors]
        shared = _svc_run(network, nodes, threads,
                          specs_for(mixed, gap_ns),
                          None, seed, qp_cache_entries)
        quota = _svc_run(network, nodes, threads,
                         specs_for(mixed, gap_ns),
                         {a: aggressor_cap for a in aggressors},
                         seed, qp_cache_entries)
        for mode, rollup in (("solo", solo), ("shared", shared),
                             ("quota", quota)):
            lat = rollup[victim]["latency_ns"]
            for q in ("p50", "p99"):
                labels[(mode, "victim", q)].append(
                    lat.get(q, 0.0) / 1e6)
            if mode != "solo":
                worst = max(
                    rollup[a]["latency_ns"].get("p99", 0.0)
                    for a in aggressors)
                labels[(mode, "aggressor", "p99")].append(worst / 1e6)
        if factor == load_factors[-1]:
            shared_deg = (labels[("shared", "victim", "p99")][-1] /
                          max(1e-9, labels[("solo", "victim", "p99")][-1]))
            quota_deg = (labels[("quota", "victim", "p99")][-1] /
                         max(1e-9, labels[("solo", "victim", "p99")][-1]))
            shared_misses = sum(
                shared[a]["qp_cache_misses"] for a in aggressors)
            quota_misses = sum(
                quota[a]["qp_cache_misses"] for a in aggressors)
            miss_notes.append(
                f"victim p99 degradation at load x{factor:g}: "
                f"{shared_deg:.2f}x shared, {quota_deg:.2f}x with quotas; "
                f"aggressor cache misses {shared_misses} -> {quota_misses}")

    series = [
        Series("victim p50 (solo)", labels[("solo", "victim", "p50")]),
        Series("victim p99 (solo)", labels[("solo", "victim", "p99")]),
        Series("victim p50 (shared)", labels[("shared", "victim", "p50")]),
        Series("victim p99 (shared)", labels[("shared", "victim", "p99")]),
        Series("victim p50 (quota)", labels[("quota", "victim", "p50")]),
        Series("victim p99 (quota)", labels[("quota", "victim", "p99")]),
        Series("aggressor p99 (shared)",
               labels[("shared", "aggressor", "p99")]),
        Series("aggressor p99 (quota)",
               labels[("quota", "aggressor", "p99")]),
    ]
    return ExperimentResult(
        experiment=f"svc-tenants-{network.name}",
        title=f"Tenant isolation vs sharing ({network.name}, {nodes} "
              f"nodes, {tenants} tenants, {qp_cache_entries}-entry QP "
              "cache)",
        x_label="offered load (x base rate)", x=list(load_factors),
        y_label="job latency (ms)", series=series,
        notes=f"MESQ/SR victim + {tenants - 1}x MEMQ/SR aggressors, "
              f"fair-share, {jobs} jobs/tenant; " + "; ".join(miss_notes),
    )


# -- Table 1 ---------------------------------------------------------------------------


def table1(nodes: int = 16, threads: int = 8) -> ExperimentResult:
    """Table 1: the design-property matrix, including live QP counts."""
    rows = design_properties(nodes, threads)
    return ExperimentResult(
        experiment="table1",
        title=f"Design alternatives (n={nodes} nodes, t={threads} threads)",
        x_label="design", x=[r["design"] for r in rows],
        y_label="properties",
        series=[
            Series("QPs/op", [r["qps_per_operator"] for r in rows]),
            Series("connections", [r["open_connections"] for r in rows]),
            Series("contention", [r["thread_contention"] for r in rows]),
            Series("resources", [r["resource_consumption"] for r in rows]),
        ],
    )


def _n(nodes: Optional[int], default: int) -> int:
    """The ``--nodes`` override for fixed-size experiments."""
    return default if nodes is None else nodes


def _counts(nodes: Optional[int],
            default: Sequence[int]) -> Sequence[int]:
    """The ``--nodes`` override for node-count sweeps: collapse the sweep
    to the one requested size."""
    return default if nodes is None else (nodes,)


def _scaleout_counts(nodes: Optional[int]) -> Sequence[int]:
    """``--nodes N`` truncates the mesoscale sweep at N (the CI smoke job
    runs ``fig10-scaleout --nodes 128``); an off-grid N runs alone."""
    if nodes is None:
        return SCALEOUT_COUNTS
    kept = tuple(c for c in SCALEOUT_COUNTS if c <= nodes)
    return kept if kept and kept[-1] == nodes else (nodes,)


#: experiment registry for the CLI.  Every entry takes ``scale`` and the
#: ``--nodes`` override (``None`` = each experiment's paper default).
ALL_EXPERIMENTS = {
    "fig8": lambda scale=1.0, nodes=None: [
        fig8(EDR, nodes=_n(nodes, 8), scale=scale),
        fig8(FDR, nodes=_n(nodes, 8), scale=scale)],
    "fig9": lambda scale=1.0, nodes=None: list(
        fig9(nodes=_n(nodes, 8), scale=scale)),
    "fig10": lambda scale=1.0, nodes=None: fig10(
        node_counts=_counts(nodes, (2, 4, 8, 16)), scale=scale),
    "fig10-scaleout": lambda scale=1.0, nodes=None: [fig10_scaleout(
        node_counts=_scaleout_counts(nodes), scale=scale)],
    "fig11": lambda scale=1.0, nodes=None: [
        fig11(nodes=_n(nodes, 16), scale=scale)],
    "fig12": lambda scale=1.0, nodes=None: [fig12(
        node_counts=_counts(nodes, (2, 4, 6, 8, 10, 12, 14, 16)))],
    "fig13": lambda scale=1.0, nodes=None: [
        fig13(nodes=_n(nodes, 8), scale=scale)],
    "fig14a": lambda scale=1.0, nodes=None: [fig14a(
        scale_factor=0.06 * scale, nodes=_n(nodes, 8))],
    "fig14b": lambda scale=1.0, nodes=None: [fig14_scaling(
        "Q4", scale_factor_per_node=0.0075 * scale,
        node_counts=_counts(nodes, (2, 4, 8, 16)))],
    "fig14c": lambda scale=1.0, nodes=None: [fig14_scaling(
        "Q3", scale_factor_per_node=0.0075 * scale,
        node_counts=_counts(nodes, (2, 4, 8, 16)))],
    "fig14d": lambda scale=1.0, nodes=None: [fig14_scaling(
        "Q10", scale_factor_per_node=0.0075 * scale,
        node_counts=_counts(nodes, (2, 4, 8, 16)))],
    "table1": lambda scale=1.0, nodes=None: [table1(nodes=_n(nodes, 16))],
    "abl-oversub": lambda scale=1.0, nodes=None: [abl_oversub(
        nodes=_n(nodes, 8), scale=scale)],
    "abl-adaptive": lambda scale=1.0, nodes=None, policy="adaptive": [
        abl_adaptive(scale=scale, nodes=nodes, policy=policy),
        abl_hierarchical(nodes=_n(nodes, 8), scale=scale)],
    "svc-tenants": lambda scale=1.0, nodes=None, tenants=3: [svc_tenants(
        nodes=_n(nodes, 8), tenants=tenants, scale=scale)],
}
