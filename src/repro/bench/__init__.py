"""Benchmark harness: workloads, experiment drivers, and reporting.

One driver exists for every table and figure of the paper's evaluation
(§5); see DESIGN.md for the experiment index.  The drivers return plain
data structures; :mod:`repro.bench.report` renders them in the same
rows/series layout the paper plots.
"""

from repro.bench.workloads import (
    ShuffleRunResult,
    run_broadcast,
    run_repartition,
)

__all__ = [
    "ShuffleRunResult",
    "run_broadcast",
    "run_repartition",
]
