"""Per-node verbs device context.

One :class:`VerbsContext` exists per node — the equivalent of an opened
``ibv_context`` plus its protection domain.  It creates Queue Pairs and
Completion Queues, registers memory with pinning-time accounting, and
resolves remote contexts for the transport state machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.fabric.network import Fabric
from repro.sim import Simulator
from repro.verbs.constants import QPType, VerbsError
from repro.verbs.cq import CompletionQueue
from repro.verbs.memory import AddressSpace, MemoryRegion
from repro.verbs.qp import QueuePair

__all__ = ["VerbsContext"]


class VerbsContext:
    """The verbs interface of one node's adapter."""

    def __init__(self, sim: Simulator, fabric: Fabric, node_id: int):
        if node_id in fabric.verbs_contexts:
            raise VerbsError(f"node {node_id} already has a verbs context")
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.node = fabric.node(node_id)
        self.nic = self.node.nic
        self.config = fabric.config
        self.memory = AddressSpace(node_id)
        #: runtime sanitizer; inherited from the fabric so contexts created
        #: after Cluster.enable_sanitizer() are covered automatically.
        self.sanitizer = fabric.sanitizer
        self.memory.sanitizer = self.sanitizer
        self._qps: Dict[int, QueuePair] = {}
        self._cqs: List[CompletionQueue] = []
        self._qpn_counter = 0
        self.qps_created = 0
        #: cumulative simulated time spent pinning/registering memory.
        self.mr_register_ns = 0
        fabric.verbs_contexts[node_id] = self

    @property
    def quotas(self):
        """The per-tenant resource arbiter, or None (dynamic: quotas may
        be enabled on the fabric after this context was created)."""
        return self.fabric.quotas

    @property
    def telemetry(self):
        """The cluster's telemetry bundle (dynamic: tracing may be
        enabled on the fabric after this context was created)."""
        return self.fabric.telemetry

    @property
    def tracer(self):
        return self.fabric.telemetry.tracer

    @property
    def links(self):
        """The causal link recorder, or None (dynamic: reporting may be
        enabled on the fabric after this context was created)."""
        return self.fabric.links

    def dispose(self) -> None:
        """Break this context's QP<->CQ<->endpoint reference cycles.

        Called on end-of-query teardown (see :meth:`Cluster.dispose`);
        the context is unusable afterwards.
        """
        for qp in self._qps.values():
            qp.send_cq = None
            qp.recv_cq = None
        for cq in self._cqs:
            cq.dispose()
        self._qps.clear()
        self._cqs.clear()

    # -- object creation ---------------------------------------------------

    def _assign_qpn(self, qp: QueuePair) -> int:
        # Node-unique QPNs offset by node id make cross-node logs readable.
        self._qpn_counter += 1
        qpn = self.node_id * 1_000_000 + self._qpn_counter
        self._qps[qpn] = qp
        self.qps_created += 1
        return qpn

    def create_cq(self, depth: int = 4096) -> CompletionQueue:
        cq = CompletionQueue(self.sim, depth)
        cq.node_id = self.node_id
        cq.sanitizer = self.sanitizer
        self._cqs.append(cq)
        return cq

    def create_qp(self, qp_type: QPType, send_cq: CompletionQueue,
                  recv_cq: CompletionQueue, max_send_wr: int = 1024,
                  max_recv_wr: int = 4096,
                  tenant: Optional[str] = None) -> QueuePair:
        """``ibv_create_qp``.  Control-path time is charged by the caller
        (see :mod:`repro.verbs.cm`), keeping this immediate for tests.

        ``tenant`` tags the QP for service-layer accounting; when a quota
        arbiter is installed on the fabric it may refuse the creation by
        raising, in which case the QP is rolled back before propagating.
        """
        qp = QueuePair(self, qp_type, send_cq, recv_cq,
                       max_send_wr, max_recv_wr)
        qp.tenant = tenant
        quotas = self.fabric.quotas
        if quotas is not None:
            try:
                quotas.on_qp_created(self.node_id, tenant, qp)
            except Exception:
                del self._qps[qp.qpn]
                self.qps_created -= 1
                raise
        return qp

    def destroy_qp(self, qp: QueuePair) -> None:
        """``ibv_destroy_qp``: drop the QP and its cached NIC context.

        Used by end-of-job teardown in the multi-tenant service; the QP
        must be quiesced (no completions in flight).
        """
        self._qps.pop(qp.qpn, None)
        qp.send_cq = None
        qp.recv_cq = None
        self.nic.qp_cache.evict(qp.qpn)
        quotas = self.fabric.quotas
        if quotas is not None:
            quotas.on_qp_destroyed(self.node_id, qp.tenant, qp)

    def release_cq(self, cq: CompletionQueue) -> None:
        """Drop a completion queue created by :meth:`create_cq`."""
        if cq in self._cqs:
            self._cqs.remove(cq)
            cq.dispose()

    def qp(self, qpn: int) -> QueuePair:
        try:
            return self._qps[qpn]
        except KeyError:
            raise VerbsError(f"no QP {qpn} on node {self.node_id}") from None

    def mcast_attach(self, mgid: int, qp: QueuePair) -> None:
        """``ibv_attach_mcast``: join a UD QP to a multicast group."""
        if qp.qp_type is not QPType.UD:
            raise VerbsError("only UD QPs can join multicast groups")
        self.fabric.mcast_attach(mgid, self.node_id, qp.qpn)

    def mcast_detach(self, mgid: int, qp: QueuePair) -> None:
        self.fabric.mcast_detach(mgid, self.node_id, qp.qpn)

    def peer_context(self, node_id: int) -> "VerbsContext":
        try:
            return self.fabric.verbs_contexts[node_id]
        except KeyError:
            raise VerbsError(f"node {node_id} has no verbs context") from None

    # -- memory registration -------------------------------------------------

    def reg_mr(self, length: int,
               tenant: Optional[str] = None) -> MemoryRegion:
        """Register ``length`` bytes (immediate; no time charged).

        ``tenant`` tags the region for service-layer accounting; an
        installed quota arbiter may refuse the registration by raising,
        in which case the region is rolled back before propagating.
        """
        mr = self.memory.register(length)
        mr.tenant = tenant
        quotas = self.fabric.quotas
        if quotas is not None:
            try:
                quotas.on_mr_registered(self.node_id, tenant, mr)
            except Exception:
                self.memory.deregister(mr)
                raise
        return mr

    def reg_mr_timed(self, length: int, tenant: Optional[str] = None):
        """Process fragment: register memory, charging pin time.

        Usage: ``mr = yield from ctx.reg_mr_timed(nbytes)``.
        """
        config = self.config
        pages = max(1, -(-length // config.page_size))
        cost = config.mr_register_base_ns + pages * config.mr_register_ns_per_page
        self.mr_register_ns += cost
        yield self.sim.timeout(cost)
        return self.reg_mr(length, tenant=tenant)

    def dereg_mr(self, mr: MemoryRegion) -> None:
        self.memory.deregister(mr)
        quotas = self.fabric.quotas
        if quotas is not None:
            quotas.on_mr_deregistered(self.node_id, mr.tenant, mr)

    def dereg_mr_timed(self, mr: MemoryRegion):
        """Process fragment: deregister memory, charging unpin time."""
        pages = max(1, -(-mr.length // self.config.page_size))
        yield self.sim.timeout(pages * self.config.mr_deregister_ns_per_page)
        self.dereg_mr(mr)

    # -- accounting ------------------------------------------------------------

    @property
    def registered_bytes(self) -> int:
        return self.memory.registered_bytes

    @property
    def peak_registered_bytes(self) -> int:
        return self.memory.peak_registered_bytes
