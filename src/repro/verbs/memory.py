"""Registered memory: address spaces and memory regions.

Real RDMA requires pinning pages and registering them with the adapter
before they can be the source or target of RDMA operations (§2.2).  The
simulation gives each node a flat virtual address space from which memory
regions are allocated; remote Reads and Writes resolve absolute addresses
back to the owning region.

A region stores two kinds of content:

* **words** — 64-bit control values at arbitrary offsets (credits, the
  FreeArr/ValidArr circular-queue slots of the RDMA Read endpoint), and
* **objects** — opaque payload references standing in for bulk tuple data,
  so the simulation never copies megabytes of real bytes around.

Registered-byte accounting feeds the memory-consumption experiment
(Fig 9b).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.verbs.constants import VerbsError

__all__ = ["MemoryRegion", "AddressSpace"]


class MemoryRegion:
    """A registered, pinned region of one node's memory."""

    def __init__(self, node_id: int, addr: int, length: int, lkey: int):
        if length <= 0:
            raise VerbsError(f"memory region length must be positive: {length}")
        self.node_id = node_id
        self.addr = addr
        self.length = length
        self.lkey = lkey
        #: rkey would differ from lkey on real hardware; one key suffices.
        self.rkey = lkey
        self._words: Dict[int, int] = {}
        self._objects: Dict[int, Any] = {}
        self.deregistered = False
        #: callbacks invoked as ``fn(addr, value)`` after a word write.
        #: Used by pollers of one-sided message queues (FreeArr/ValidArr,
        #: credit words) to avoid busy-spinning in simulated time; a real
        #: implementation polls the cache line instead.
        self.on_write: list = []
        #: runtime sanitizer hook; ``None`` keeps every access zero-cost.
        self.sanitizer: Optional[Any] = None
        #: owning tenant (service-layer accounting); None outside the
        #: multi-tenant service.
        self.tenant: Optional[str] = None

    def _check(self, addr: int, nbytes: int = 1) -> None:
        if self.deregistered:
            if self.sanitizer is not None:
                self.sanitizer.on_mr_error(self, "deregistered", addr)
            raise VerbsError(f"access to deregistered MR lkey={self.lkey}")
        if not (self.addr <= addr and addr + nbytes <= self.addr + self.length):
            if self.sanitizer is not None:
                self.sanitizer.on_mr_error(self, "out-of-bounds", addr)
            raise VerbsError(
                f"address {addr:#x}+{nbytes} outside MR "
                f"[{self.addr:#x}, {self.addr + self.length:#x})"
            )

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.addr + self.length

    # -- 64-bit control words ---------------------------------------------

    def read_u64(self, addr: int) -> int:
        self._check(addr, 8)
        return self._words.get(addr, 0)

    def write_u64(self, addr: int, value: int) -> None:
        self._check(addr, 8)
        self._words[addr] = int(value)
        for callback in self.on_write:
            callback(addr, value)

    # -- bulk payload objects ----------------------------------------------

    def set_object(self, addr: int, obj: Any) -> None:
        self._check(addr)
        self._objects[addr] = obj

    def get_object(self, addr: int) -> Any:
        self._check(addr)
        return self._objects.get(addr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MR node={self.node_id} [{self.addr:#x},"
            f"+{self.length}) lkey={self.lkey}>"
        )


class AddressSpace:
    """One node's virtual address space and MR registry."""

    #: regions start away from zero so a zero address is always invalid.
    _BASE = 0x10000

    def __init__(self, node_id: int):
        self.node_id = node_id
        self._next_addr = self._BASE
        self._next_key = 1
        self._regions: Dict[int, MemoryRegion] = {}
        self.registered_bytes = 0
        self.peak_registered_bytes = 0
        #: runtime sanitizer propagated to every region registered here.
        self.sanitizer: Optional[Any] = None

    def register(self, length: int) -> MemoryRegion:
        """Allocate and register a fresh region of ``length`` bytes."""
        mr = MemoryRegion(self.node_id, self._next_addr, length, self._next_key)
        mr.sanitizer = self.sanitizer
        # Leave a guard gap so off-by-one addressing bugs fault loudly.
        self._next_addr += length + 4096
        self._next_key += 1
        self._regions[mr.lkey] = mr
        self.registered_bytes += length
        self.peak_registered_bytes = max(
            self.peak_registered_bytes, self.registered_bytes
        )
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        if mr.lkey not in self._regions:
            if self.sanitizer is not None:
                self.sanitizer.on_mr_error(mr, "double-deregister", mr.addr)
            raise VerbsError(f"MR lkey={mr.lkey} is not registered on this node")
        del self._regions[mr.lkey]
        mr.deregistered = True
        self.registered_bytes -= mr.length

    def regions(self) -> Any:
        """Live view of the registered regions (for sanitizer attachment)."""
        return self._regions.values()

    def resolve(self, addr: int) -> MemoryRegion:
        """Find the registered region containing ``addr``.

        Remote access to unregistered memory is a remote-access error on
        real hardware; here it raises :class:`VerbsError`.
        """
        for mr in self._regions.values():
            if mr.contains(addr):
                return mr
        raise VerbsError(
            f"address {addr:#x} not in any registered region of node "
            f"{self.node_id}"
        )
