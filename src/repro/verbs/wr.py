"""Work requests posted to Queue Pairs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.verbs.constants import AddressHandle, Opcode, VerbsError

__all__ = ["SendWR", "RecvWR"]


@dataclass(slots=True)
class SendWR:
    """A work request for the send queue (Send, RDMA Read, RDMA Write).

    Field usage per opcode:

    * ``SEND`` — ``buffer`` holds the data to transmit; ``dest`` names the
      remote QP for UD (RC uses the connected peer); ``imm`` optionally
      carries 32 bits of immediate data delivered with the message.
    * ``READ`` — ``buffer`` is the *local destination*; ``remote_addr`` is
      the registered remote address to read ``length`` bytes from.
    * ``WRITE`` — ``remote_addr`` is the registered remote address to
      write to.  A small control write carries ``value`` (one 64-bit
      word); a bulk write carries ``buffer``.
    """

    wr_id: Any
    opcode: Opcode
    buffer: Any = None
    length: int = 0
    remote_addr: int = 0
    dest: Optional[AddressHandle] = None
    imm: Optional[int] = None
    value: Optional[int] = None
    #: request a completion entry for this WR (IBV_SEND_SIGNALED).
    signaled: bool = True
    #: small payloads may be inlined into the WQE, saving a DMA fetch —
    #: the paper uses this for credit writes (§4.4.1, [16]).
    inline: bool = False
    #: causal flow id stamped by QueuePair.post_send when link recording
    #: is on (repro.telemetry.links); 0 otherwise.
    flow: int = 0

    def __post_init__(self):
        if self.opcode is Opcode.RECV:
            raise VerbsError("RECV is not a send-queue opcode; use RecvWR")
        if self.length < 0:
            raise VerbsError(f"negative WR length: {self.length}")
        if self.opcode is Opcode.WRITE and self.value is None and self.buffer is None:
            raise VerbsError("WRITE needs either a value or a buffer")
        if self.opcode is Opcode.READ and self.buffer is None:
            raise VerbsError("READ needs a local destination buffer")


@dataclass(slots=True)
class RecvWR:
    """A work request for the receive queue.

    ``buffer`` names the registered memory that an incoming Send will be
    deposited into; it may not be touched again until the matching
    completion has been polled (§2.2.3).
    """

    wr_id: Any
    buffer: Any
    length: int

    def __post_init__(self):
        if self.length <= 0:
            raise VerbsError(f"receive buffer length must be positive: {self.length}")
