"""Enumerations and limits for the verbs layer."""

from __future__ import annotations

import enum
from typing import NamedTuple

__all__ = [
    "MCAST_NODE",
    "mcast_ah",
    "VerbsError",
    "QPType",
    "QPState",
    "Opcode",
    "WCStatus",
    "AddressHandle",
    "MAX_RC_MSG",
]

#: Maximum Reliable Connection message size per the InfiniBand spec (§2.2.2).
MAX_RC_MSG = 1 << 30  # 1 GiB

#: sentinel node id in an AddressHandle that designates an InfiniBand
#: multicast group; the handle's qpn field then carries the MGID.
MCAST_NODE = -1


def mcast_ah(mgid: int) -> "AddressHandle":
    """An address handle targeting multicast group ``mgid``."""
    return AddressHandle(MCAST_NODE, mgid)


class VerbsError(Exception):
    """Raised for invalid use of the verbs API (bad state, bad sizes...)."""


class QPType(enum.Enum):
    """RDMA transport service type (§2.2.2)."""

    RC = "reliable_connection"
    UD = "unreliable_datagram"


class QPState(enum.Enum):
    """Simplified Queue Pair state machine (RESET -> INIT -> RTS)."""

    RESET = "reset"
    INIT = "init"
    RTS = "ready_to_send"
    ERROR = "error"


class Opcode(enum.Enum):
    """Work request / completion opcodes."""

    SEND = "send"
    RECV = "recv"
    READ = "rdma_read"
    WRITE = "rdma_write"


class WCStatus(enum.Enum):
    """Work completion status codes (a subset of ``ibv_wc_status``)."""

    SUCCESS = "success"
    LOC_LEN_ERR = "local_length_error"
    REM_ACCESS_ERR = "remote_access_error"
    RNR_RETRY_EXC_ERR = "rnr_retry_exceeded"
    WR_FLUSH_ERR = "flushed"


class AddressHandle(NamedTuple):
    """Datagram destination: which node and which QP number (UD only)."""

    node_id: int
    qpn: int
