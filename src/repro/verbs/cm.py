"""Connection management: the out-of-band bootstrap path.

Setting up RDMA communication is far more involved than opening a TCP
socket (§4.2, [10]): Queue Pairs must be created, routing information
exchanged out of band, and RC QPs walked through the connection handshake.
These helpers charge the simulated control-path time that the
connection-time experiment (Fig 12) measures, and a cluster-wide
:class:`EndpointRegistry` plays the role of the paper's "unique integer"
endpoint identifiers (used like a TCP address/port pair).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.verbs.constants import AddressHandle, VerbsError
from repro.verbs.device import VerbsContext
from repro.verbs.qp import QueuePair

__all__ = ["EndpointRegistry", "connect_rc_pair", "setup_ud_qp", "create_ah"]


class EndpointRegistry:
    """Cluster-wide name service mapping endpoint ids to bootstrap info.

    In the real system this is a TCP-based exchange performed once at
    query start; the information published here (node ids, QP numbers,
    registered buffer addresses and rkeys) is exactly what the C++
    implementation ships over that side channel.
    """

    def __init__(self):
        self._published: Dict[Any, Any] = {}

    def dispose(self) -> None:
        """Forget every published endpoint (end-of-query teardown)."""
        self._published.clear()

    def publish(self, endpoint_id: Any, info: Any) -> None:
        if endpoint_id in self._published:
            raise VerbsError(f"endpoint id {endpoint_id!r} already published")
        self._published[endpoint_id] = info

    def lookup(self, endpoint_id: Any) -> Any:
        try:
            return self._published[endpoint_id]
        except KeyError:
            raise VerbsError(
                f"endpoint id {endpoint_id!r} has not been published"
            ) from None

    def publish_endpoint(self, endpoint_id: int, info: Dict[str, Any]) -> None:
        """Publish one endpoint's bootstrap info under its integer id."""
        self.publish(("ep", endpoint_id), info)

    def lookup_endpoint(self, endpoint_id: int) -> Dict[str, Any]:
        """Resolve the bootstrap info published for an endpoint id."""
        return self.lookup(("ep", endpoint_id))

    def unpublish_endpoint(self, endpoint_id: int) -> None:
        """Forget one endpoint's bootstrap info (end-of-job teardown in
        the multi-tenant service; a no-op for unknown ids)."""
        self._published.pop(("ep", endpoint_id), None)

    def __contains__(self, endpoint_id: Any) -> bool:
        return endpoint_id in self._published


def connect_rc_pair(ctx: VerbsContext, qp: QueuePair,
                    remote: AddressHandle):
    """Process fragment: RC connection handshake for one local QP.

    Charges the per-QP connect time (QP state transitions plus the
    routing-information round trip).  Each side pays for its own QP, as in
    the real handshake.
    """
    yield ctx.sim.timeout(ctx.config.rc_qp_connect_ns)
    qp.connect(remote)


def setup_ud_qp(ctx: VerbsContext, qp: QueuePair):
    """Process fragment: bring a UD QP to ready-to-send."""
    yield ctx.sim.timeout(ctx.config.ud_qp_setup_ns)
    qp.activate()


def create_ah(ctx: VerbsContext, node_id: int, qpn: int):
    """Process fragment: create an address handle for a UD destination."""
    yield ctx.sim.timeout(ctx.config.ah_create_ns)
    return AddressHandle(node_id, qpn)
