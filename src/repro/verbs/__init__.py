"""A faithful InfiniBand verbs (``ibv_*``) layer over the simulated fabric.

The shuffle endpoints in :mod:`repro.core` are written against this API the
same way the paper's C++ implementation is written against libibverbs:

* create Queue Pairs (:class:`QueuePair`) of type Reliable Connection or
  Unreliable Datagram,
* register memory (:class:`MemoryRegion`) with pinning costs accounted,
* post Send / Receive / Read / Write work requests,
* poll Completion Queues (:class:`CompletionQueue`) for completion events.

Transport semantics follow §2.2 of the paper: RC is connected, reliable and
ordered with hardware acks and messages up to 1 GiB; UD is connectionless,
unordered, unacknowledged, silently drops Sends with no matching Receive,
and caps messages at the 4 KiB MTU.
"""

from repro.verbs.constants import (
    MAX_RC_MSG,
    AddressHandle,
    Opcode,
    QPState,
    QPType,
    VerbsError,
    WCStatus,
)
from repro.verbs.cq import CompletionQueue, WorkCompletion
from repro.verbs.device import VerbsContext
from repro.verbs.memory import AddressSpace, MemoryRegion
from repro.verbs.qp import QueuePair
from repro.verbs.wr import RecvWR, SendWR

__all__ = [
    "MAX_RC_MSG",
    "AddressHandle",
    "AddressSpace",
    "CompletionQueue",
    "MemoryRegion",
    "Opcode",
    "QPState",
    "QPType",
    "QueuePair",
    "RecvWR",
    "SendWR",
    "VerbsContext",
    "VerbsError",
    "WCStatus",
    "WorkCompletion",
]
