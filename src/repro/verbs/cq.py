"""Completion queues and work completions."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional

from repro.sim import Event, Queue, Simulator
from repro.verbs.constants import Opcode, VerbsError, WCStatus

__all__ = ["WorkCompletion", "CompletionQueue"]


@dataclass(slots=True)
class WorkCompletion:
    """One completion entry (``ibv_wc``).

    ``wr_id`` is the opaque value the application attached to the work
    request — the endpoints use it to map completions back to buffers.
    """

    wr_id: Any
    opcode: Opcode
    status: WCStatus = WCStatus.SUCCESS
    byte_len: int = 0
    qpn: int = 0
    #: source node/QP for incoming messages (UD receive reports these).
    src_node: int = -1
    src_qpn: int = -1
    #: immediate data, if the sender attached any.
    imm: Optional[int] = None
    #: causal flow id of the message this completion closes (0 = untracked).
    flow: int = 0

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


class CompletionQueue:
    """A completion queue shared by any number of Queue Pairs.

    The paper associates all of an endpoint's QPs with a single CQ to
    amortize polling (§4.4.1); this class supports that directly.  Two
    consumption styles are offered:

    * :meth:`poll` — the non-blocking ``ibv_poll_cq`` equivalent;
    * :meth:`wait` — a blocking get used by simulation processes instead of
      spinning (a real thread busy-polls; burning simulated events to model
      an idle spin would add nothing but cost);
    * :meth:`subscribe` — the event-driven hot path: one callback consumes
      every completion without a process, a getter event, or a re-arm per
      entry.  A CQ is either subscribed or polled/waited on, never both.
    """

    def __init__(self, sim: Simulator, depth: int = 4096):
        if depth < 1:
            raise VerbsError(f"CQ depth must be >= 1, got {depth}")
        self.sim = sim
        self.depth = depth
        self._entries = Queue(sim)
        self.pushed = 0
        self.polled = 0
        #: event-driven consumer (see :meth:`subscribe`).
        self._subscriber: Optional[Callable[[WorkCompletion], None]] = None
        self._pending: Deque[WorkCompletion] = deque()
        self._tick_scheduled = False
        #: runtime sanitizer hook; ``None`` keeps the hot path branch-only.
        self.sanitizer: Optional[Any] = None
        #: owning node, stamped by VerbsContext.create_cq for reporting.
        self.node_id = -1

    def __len__(self) -> int:
        return len(self._entries) + len(self._pending)

    def dispose(self) -> None:
        """Drop queued completions and the subscriber callback.

        The subscriber is a bound endpoint method, which makes every
        CQ<->endpoint pair a reference cycle; teardown breaks it so a
        finished cluster can be reclaimed by reference counting."""
        self._subscriber = None
        self._pending.clear()
        self._entries._items.clear()
        self._entries._getters.clear()

    def push(self, wc: WorkCompletion) -> None:
        """Deposit a completion (called by the simulated NIC)."""
        if self.sanitizer is not None:
            self.sanitizer.on_cq_push(self, wc)
        if len(self) >= self.depth:
            # A real adapter raises a fatal async "CQ overrun" event.
            raise VerbsError(f"CQ overrun (depth={self.depth})")
        self.pushed += 1
        if self._subscriber is not None:
            self._pending.append(wc)
            if not self._tick_scheduled:
                self._tick_scheduled = True
                self.sim.call_soon(self._tick)
        else:
            self._entries.put(wc)

    def subscribe(self, consumer: Callable[[WorkCompletion], None]) -> None:
        """Consume every completion with ``consumer(wc)``, event-driven.

        Completions are delivered one per kernel dispatch in FIFO order:
        a push onto an idle CQ schedules a delivery tick at the exact heap
        position where the blocking :meth:`wait` path would have resumed
        its waiter, and the follow-up tick for a backlogged entry is
        scheduled only after the consumer returns — matching the
        wait/handle/re-wait cycle of a dispatch process tick for tick (so
        event order is bit-identical; see DESIGN.md, "Kernel fast path").
        """
        if self._subscriber is not None:
            raise VerbsError("CQ already has a subscriber")
        self._subscriber = consumer
        # Robustness: adopt anything already queued (none in practice —
        # endpoints subscribe at construction time, before the run).
        while True:
            ok, wc = self._entries.try_get()
            if not ok:
                break
            self._pending.append(wc)
        if self._pending and not self._tick_scheduled:
            self._tick_scheduled = True
            self.sim.call_soon(self._tick)

    def _tick(self) -> None:
        wc = self._pending.popleft()
        self.polled += 1
        if self.sanitizer is not None:
            self.sanitizer.on_cq_consumed(self, wc)
        self._subscriber(wc)  # type: ignore[misc]
        # Re-armed only now: the consumer's own scheduling must land
        # before the next delivery, as it does in the blocking-wait cycle.
        if self._pending:
            self.sim.call_soon(self._tick)
        else:
            self._tick_scheduled = False

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Non-blocking poll; returns up to ``max_entries`` completions."""
        if self._subscriber is not None:
            raise VerbsError("cannot poll() a subscribed CQ")
        out: List[WorkCompletion] = []
        while len(out) < max_entries:
            ok, wc = self._entries.try_get()
            if not ok:
                break
            out.append(wc)
        self.polled += len(out)
        if self.sanitizer is not None:
            for wc in out:
                self.sanitizer.on_cq_consumed(self, wc)
        return out

    def wait(self) -> Event:
        """An event firing with the next completion (blocking poll).

        The bookkeeping callback runs at trigger time, *before* the
        waiting process resumes, so the sanitizer sees a completion as
        consumed by the time a dispatcher handler touches its buffer.
        """
        if self._subscriber is not None:
            raise VerbsError("cannot wait() on a subscribed CQ")
        event = self._entries.get()
        event.add_callback(self._on_waited)
        return event

    def _on_waited(self, event: Event) -> None:
        self.polled += 1
        if self.sanitizer is not None:
            self.sanitizer.on_cq_consumed(self, event.value)
