"""Completion queues and work completions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.sim import Event, Queue, Simulator
from repro.verbs.constants import Opcode, VerbsError, WCStatus

__all__ = ["WorkCompletion", "CompletionQueue"]


@dataclass
class WorkCompletion:
    """One completion entry (``ibv_wc``).

    ``wr_id`` is the opaque value the application attached to the work
    request — the endpoints use it to map completions back to buffers.
    """

    wr_id: Any
    opcode: Opcode
    status: WCStatus = WCStatus.SUCCESS
    byte_len: int = 0
    qpn: int = 0
    #: source node/QP for incoming messages (UD receive reports these).
    src_node: int = -1
    src_qpn: int = -1
    #: immediate data, if the sender attached any.
    imm: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status is WCStatus.SUCCESS


class CompletionQueue:
    """A completion queue shared by any number of Queue Pairs.

    The paper associates all of an endpoint's QPs with a single CQ to
    amortize polling (§4.4.1); this class supports that directly.  Two
    consumption styles are offered:

    * :meth:`poll` — the non-blocking ``ibv_poll_cq`` equivalent;
    * :meth:`wait` — a blocking get used by simulation processes instead of
      spinning (a real thread busy-polls; burning simulated events to model
      an idle spin would add nothing but cost).
    """

    def __init__(self, sim: Simulator, depth: int = 4096):
        if depth < 1:
            raise VerbsError(f"CQ depth must be >= 1, got {depth}")
        self.sim = sim
        self.depth = depth
        self._entries = Queue(sim)
        self.pushed = 0
        self.polled = 0
        #: runtime sanitizer hook; ``None`` keeps the hot path branch-only.
        self.sanitizer: Optional[Any] = None
        #: owning node, stamped by VerbsContext.create_cq for reporting.
        self.node_id = -1

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, wc: WorkCompletion) -> None:
        """Deposit a completion (called by the simulated NIC)."""
        if self.sanitizer is not None:
            self.sanitizer.on_cq_push(self, wc)
        if len(self._entries) >= self.depth:
            # A real adapter raises a fatal async "CQ overrun" event.
            raise VerbsError(f"CQ overrun (depth={self.depth})")
        self.pushed += 1
        self._entries.put(wc)

    def poll(self, max_entries: int = 16) -> List[WorkCompletion]:
        """Non-blocking poll; returns up to ``max_entries`` completions."""
        out: List[WorkCompletion] = []
        while len(out) < max_entries:
            ok, wc = self._entries.try_get()
            if not ok:
                break
            out.append(wc)
        self.polled += len(out)
        if self.sanitizer is not None:
            for wc in out:
                self.sanitizer.on_cq_consumed(self, wc)
        return out

    def wait(self) -> Event:
        """An event firing with the next completion (blocking poll).

        The bookkeeping callback runs at trigger time, *before* the
        waiting process resumes, so the sanitizer sees a completion as
        consumed by the time a dispatcher handler touches its buffer.
        """
        event = self._entries.get()
        event.add_callback(self._on_waited)
        return event

    def _on_waited(self, event: Event) -> None:
        self.polled += 1
        if self.sanitizer is not None:
            self.sanitizer.on_cq_consumed(self, event.value)
