"""Queue Pairs: the RC and UD transport state machines.

The semantics follow §2.2 of the paper:

* **Reliable Connection** — connected one-to-one, reliable, ordered.
  A Send that arrives before a Receive has been posted stalls the
  connection (receiver-not-ready) until one is posted; the sender's
  completion is generated only after the hardware ack returns.  Messages
  up to 1 GiB; RDMA Read and Write supported.
* **Unreliable Datagram** — connectionless; one QP talks to any other.
  No acks: the send completion fires as soon as the local NIC has drained
  the buffer.  Messages are capped at the MTU, may be delivered out of
  order, a Send with no matching Receive at the destination is *silently
  dropped*, and loss injection can discard packets in flight.

All data movement costs flow through the NIC model (processing engine with
the QP-context cache, egress/ingress serialization) so every design
trade-off in the paper's Figure 2 is exercised by these code paths.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.fabric.packet import Packet, make_train
from repro.sim import Event, Queue
from repro.verbs.constants import (
    MAX_RC_MSG,
    AddressHandle,
    Opcode,
    QPState,
    QPType,
    VerbsError,
    WCStatus,
)
from repro.verbs.cq import CompletionQueue, WorkCompletion
from repro.verbs.wr import RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.device import VerbsContext

__all__ = ["QP_FAULT_ACTIONS", "QueuePair", "fault_actions"]

#: fault transitions a transport type exposes to the protocol model
#: checker (repro.analysis.model).  RC retransmits in hardware — the
#: only protocol-visible fault is the whole QP entering ERROR (flushed
#: completions, dead connection).  UD additionally drops individual
#: messages in flight, the loss the §4.4.2 software error handling
#: (absolute credits, keepalive, message counting) exists to absorb.
QP_FAULT_ACTIONS = {
    QPType.RC: ("qp_error",),
    QPType.UD: ("message_loss", "qp_error"),
}


def fault_actions(qp_type: QPType):
    """The fault transitions the model checker explores for ``qp_type``."""
    return QP_FAULT_ACTIONS[qp_type]


class QueuePair:
    """One Queue Pair (send queue + receive queue)."""

    def __init__(self, ctx: "VerbsContext", qp_type: QPType,
                 send_cq: CompletionQueue, recv_cq: CompletionQueue,
                 max_send_wr: int = 1024, max_recv_wr: int = 4096):
        config = ctx.config
        if max_send_wr > config.max_qp_depth or max_recv_wr > config.max_qp_depth:
            raise VerbsError(
                f"queue depth exceeds hardware limit {config.max_qp_depth}"
            )
        self.ctx = ctx
        self.qp_type = qp_type
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_send_wr = max_send_wr
        self.max_recv_wr = max_recv_wr
        self.qpn = ctx._assign_qpn(self)
        #: owning tenant (service-layer accounting); None outside the
        #: multi-tenant service.
        self.tenant: Optional[str] = None
        self.state = QPState.INIT
        self._peer: Optional[AddressHandle] = None
        # RC receives queue up and Sends block on them (RNR); the FIFO
        # getter order of Queue preserves in-order delivery.
        self._rc_recvs = Queue(ctx.sim)
        # UD receives are matched non-blocking; unmatched Sends drop.
        self._ud_recvs: Deque[RecvWR] = deque()
        self._recv_posted = 0
        self._send_outstanding = 0
        self.sends_posted = 0
        self.recvs_posted = 0
        self.ud_drops = 0
        #: receiver-not-ready events: a Send arrived before any Receive
        #: was posted, stalling the connection (telemetry surfaces these
        #: because the credit protocol exists to keep them at zero).
        self.rnr_events = 0
        self.rnr_stall_ns = 0
        #: last flow id posted on this QP — the FIFO ``prev`` edge of the
        #: causal DAG (repro.telemetry.links); only advanced while a
        #: recorder is installed.
        self._last_flow = 0

    # -- state transitions -------------------------------------------------

    @property
    def peer(self) -> Optional[AddressHandle]:
        return self._peer

    def connect(self, remote: AddressHandle) -> None:
        """Transition an RC QP to ready-to-send, bound to ``remote``.

        Timing for the out-of-band handshake is charged by the connection
        manager (:mod:`repro.verbs.cm`), not here.
        """
        if self.qp_type is not QPType.RC:
            raise VerbsError("connect() applies to Reliable Connection QPs only")
        if self.state is not QPState.INIT:
            raise VerbsError(f"cannot connect QP in state {self.state}")
        self._peer = remote
        self.state = QPState.RTS

    def activate(self) -> None:
        """Transition a UD QP to ready-to-send (no peer binding)."""
        if self.qp_type is not QPType.UD:
            raise VerbsError("activate() applies to Unreliable Datagram QPs only")
        if self.state is not QPState.INIT:
            raise VerbsError(f"cannot activate QP in state {self.state}")
        self.state = QPState.RTS

    def fault_actions(self):
        """Fault transitions the model checker explores for this QP's
        transport type (see :data:`QP_FAULT_ACTIONS`)."""
        return QP_FAULT_ACTIONS[self.qp_type]

    # -- posting -------------------------------------------------------------

    def post_recv(self, wr: RecvWR) -> None:
        """``ibv_post_recv``: queue a receive buffer."""
        san = self.ctx.sanitizer
        if san is not None:
            san.check_post_recv(self, wr)
        if self.state not in (QPState.INIT, QPState.RTS):
            raise VerbsError(f"cannot post receive in state {self.state}")
        if self._recv_posted >= self.max_recv_wr:
            raise VerbsError(
                f"receive queue full (max_recv_wr={self.max_recv_wr})"
            )
        if san is not None:
            san.track_post_recv(self, wr)
        self._recv_posted += 1
        self.recvs_posted += 1
        if self.qp_type is QPType.RC:
            self._rc_recvs.put(wr)
        else:
            self._ud_recvs.append(wr)

    def post_recv_buffer(self, buf, length: int) -> None:
        """Post ``buf`` as a Receive identified by the buffer itself —
        the repost idiom of every endpoint's RELEASE path."""
        self.post_recv(RecvWR(wr_id=buf, buffer=buf, length=length))

    def post_send(self, wr: SendWR) -> None:
        """``ibv_post_send``: enqueue a Send / Read / Write work request.

        Returns immediately (the verb is asynchronous); completion is
        reported through the send CQ if ``wr.signaled``.
        """
        san = self.ctx.sanitizer
        if san is not None:
            san.check_post_send(self, wr)
        if self.state is not QPState.RTS:
            raise VerbsError(f"cannot post send in state {self.state}")
        if self._send_outstanding >= self.max_send_wr:
            raise VerbsError(f"send queue full (max_send_wr={self.max_send_wr})")
        if self.qp_type is QPType.UD:
            if wr.opcode is not Opcode.SEND:
                raise VerbsError(
                    "Unreliable Datagram supports only Send/Receive (§2.2.2)"
                )
            if wr.dest is None:
                raise VerbsError("UD Send requires a destination address handle")
            if wr.length > self.ctx.config.mtu:
                raise VerbsError(
                    f"UD message of {wr.length} B exceeds MTU "
                    f"{self.ctx.config.mtu}"
                )
        else:
            if self._peer is None:
                raise VerbsError("RC QP is not connected")
            if wr.length > MAX_RC_MSG:
                raise VerbsError(f"RC message of {wr.length} B exceeds 1 GiB")
        if san is not None:
            san.track_post_send(self, wr)
        self._send_outstanding += 1
        self.sends_posted += 1
        links = self.ctx.links
        if links is not None:
            wr.flow = self._new_flow(links, wr)
        # The hot path drives the per-message protocol as a flat callback
        # chain; the generator processes are the behavioural oracle behind
        # REPRO_FASTPATH=0 (see repro.sim.fastpath).  RDMA Read/Write stay
        # on the generator path — they are off the shuffle hot loop.
        if self.ctx.fabric.flat_routing:
            if self.qp_type is QPType.UD:
                self._ud_send_flat(wr)
                return
            if wr.opcode is Opcode.SEND:
                self._rc_send_flat(wr)
                return
        if self.qp_type is QPType.RC:
            handlers = {
                Opcode.SEND: self._rc_send,
                Opcode.READ: self._rc_read,
                Opcode.WRITE: self._rc_write,
            }
            proc = handlers[wr.opcode](wr)
        else:
            proc = self._ud_send(wr)
        self.ctx.sim.process(proc, name=f"qp{self.qpn}-{wr.opcode.value}")

    def _new_flow(self, links, wr: SendWR) -> int:
        """Allocate a causal flow id for a freshly posted work request.

        The flow kind is the endpoint-protocol tag carried in tuple
        ``wr_id``\\ s ("data", "final", "credit", "read", "valid",
        "free"...), falling back to the verb opcode.  Runs at post time,
        before the fast/legacy dispatch split, so both execution paths
        see identical ids.
        """
        wid = wr.wr_id
        if type(wid) is tuple and wid and isinstance(wid[0], str):
            kind = wid[0]
        else:
            kind = str(wr.opcode.value)
        if self.qp_type is QPType.RC:
            dst = self._peer.node_id
        else:
            dst = max(wr.dest.node_id, 0)
        flow = links.new_flow(kind, self.ctx.node_id, dst, wr.length,
                              prev=self._last_flow)
        if flow:
            self._last_flow = flow
        return flow

    # -- completion helpers ----------------------------------------------------

    def _complete_send(self, wr: SendWR, byte_len: int) -> None:
        self._send_outstanding -= 1
        if wr.signaled:
            self.send_cq.push(WorkCompletion(
                wr_id=wr.wr_id, opcode=wr.opcode, byte_len=byte_len,
                qpn=self.qpn, flow=wr.flow,
            ))

    def _deposit(self, rwr: RecvWR, packet: Packet) -> None:
        """Copy an arriving message into the posted receive buffer."""
        if rwr.length < packet.length:
            raise VerbsError(
                f"receive buffer of {rwr.length} B too small for "
                f"{packet.length} B message"
            )
        if rwr.buffer is not None:
            rwr.buffer.deposit(packet.payload, packet.length)
        self.recv_cq.push(WorkCompletion(
            wr_id=rwr.wr_id, opcode=Opcode.RECV, byte_len=packet.length,
            qpn=self.qpn, src_node=packet.src_node, src_qpn=packet.src_qpn,
            imm=packet.meta.get("imm"), flow=packet.flow,
        ))

    # -- Reliable Connection data paths -----------------------------------------

    def _rc_send(self, wr: SendWR):
        config = self.ctx.config
        nic = self.ctx.nic
        peer = self._peer
        assert peer is not None  # post_send validated the connection
        t0 = self.ctx.sim.now
        yield nic.process_wr(self.qpn, flow=wr.flow)
        packet = make_train(
            config, src_node=self.ctx.node_id, dst_node=peer.node_id,
            src_qpn=self.qpn, dst_qpn=peer.qpn, kind="SEND",
            length=wr.length, transport="RC",
            payload=None if wr.buffer is None else wr.buffer.payload,
            meta={"imm": wr.imm}, flow=wr.flow,
        )
        packet = yield self.ctx.fabric.route(packet)
        remote = self.ctx.peer_context(peer.node_id)
        remote_qp = remote.qp(peer.qpn)
        # Receiver-not-ready: stall until a Receive is posted.  (The
        # paper's credit protocol exists precisely so this never happens.)
        rnr_t0 = self.ctx.sim.now
        rwr = yield remote_qp._rc_recvs.get()
        stalled = self.ctx.sim.now - rnr_t0
        if stalled:
            remote_qp.rnr_events += 1
            remote_qp.rnr_stall_ns += stalled
            self.ctx.tracer.complete(
                peer.node_id, f"qp{peer.qpn}", "rnr-stall",
                rnr_t0, stalled, "verbs")
            if self.ctx.links is not None:
                self.ctx.links.stall(peer.node_id, -1, "rnr-stall",
                                     rnr_t0, stalled)
        remote_qp._recv_posted -= 1
        remote_qp._deposit(rwr, packet)
        ack = make_train(
            config, src_node=peer.node_id, dst_node=self.ctx.node_id,
            src_qpn=peer.qpn, dst_qpn=self.qpn, kind="ACK",
            length=0, wire_bytes=config.rc_ack_bytes, flow=wr.flow,
        )
        yield self.ctx.fabric.route(ack)
        self._complete_send(wr, wr.length)
        self.ctx.tracer.complete(
            self.ctx.node_id, f"qp{self.qpn}", "rc-send", t0,
            self.ctx.sim.now - t0, "verbs", args={"bytes": wr.length})

    def _rc_send_flat(self, wr: SendWR) -> None:
        """Flat-callback twin of :meth:`_rc_send`.

        Every heap entry (NIC processing, route stages, the receive-queue
        get, the ack) is created at the same simulated time and code
        position as in the generator version, so event order, RNR stall
        accounting and trace spans are bit-identical — only the Process
        and generator frame are gone.
        """
        ctx = self.ctx
        sim = ctx.sim
        config = ctx.config
        peer = self._peer
        assert peer is not None  # post_send validated the connection
        t0 = sim.now

        def start() -> None:
            ctx.nic.submit_wr(self.qpn, after_wr, flow=wr.flow)

        def after_wr() -> None:
            packet = make_train(
                config, src_node=ctx.node_id, dst_node=peer.node_id,
                src_qpn=self.qpn, dst_qpn=peer.qpn, kind="SEND",
                length=wr.length, transport="RC",
                payload=None if wr.buffer is None else wr.buffer.payload,
                meta={"imm": wr.imm}, flow=wr.flow,
            )
            ctx.fabric.route(packet).add_callback(arrived)

        def arrived(arrival: Event) -> None:
            packet = arrival.value
            remote = ctx.peer_context(peer.node_id)
            remote_qp = remote.qp(peer.qpn)
            # Receiver-not-ready: stall until a Receive is posted.  (The
            # paper's credit protocol exists precisely so this never
            # happens.)
            rnr_t0 = sim.now

            def got_recv(evt: Event) -> None:
                rwr = evt.value
                stalled = sim.now - rnr_t0
                if stalled:
                    remote_qp.rnr_events += 1
                    remote_qp.rnr_stall_ns += stalled
                    ctx.tracer.complete(
                        peer.node_id, f"qp{peer.qpn}", "rnr-stall",
                        rnr_t0, stalled, "verbs")
                    if ctx.links is not None:
                        ctx.links.stall(peer.node_id, -1, "rnr-stall",
                                        rnr_t0, stalled)
                remote_qp._recv_posted -= 1
                remote_qp._deposit(rwr, packet)
                ack = make_train(
                    config, src_node=peer.node_id, dst_node=ctx.node_id,
                    src_qpn=peer.qpn, dst_qpn=self.qpn, kind="ACK",
                    length=0, wire_bytes=config.rc_ack_bytes, flow=wr.flow,
                )
                ctx.fabric.route(ack).add_callback(acked)

            remote_qp._rc_recvs.get().add_callback(got_recv)

        def acked(_evt: Event) -> None:
            self._complete_send(wr, wr.length)
            ctx.tracer.complete(
                ctx.node_id, f"qp{self.qpn}", "rc-send", t0,
                sim.now - t0, "verbs", args={"bytes": wr.length})

        sim.call_soon(start)

    def _rc_read(self, wr: SendWR):
        config = self.ctx.config
        peer = self._peer
        assert peer is not None  # post_send validated the connection
        t0 = self.ctx.sim.now
        yield self.ctx.nic.process_wr(self.qpn, flow=wr.flow)
        request = make_train(
            config, src_node=self.ctx.node_id, dst_node=peer.node_id,
            src_qpn=self.qpn, dst_qpn=peer.qpn, kind="READ_REQ",
            length=0, wire_bytes=config.rc_header_bytes, flow=wr.flow,
        )
        yield self.ctx.fabric.route(request)
        # The remote CPU stays passive: the remote *NIC* serves the read.
        remote = self.ctx.peer_context(peer.node_id)
        yield remote.nic.process_wr(peer.qpn, flow=wr.flow)
        mr = remote.memory.resolve(wr.remote_addr)
        response = make_train(
            config, src_node=peer.node_id, dst_node=self.ctx.node_id,
            src_qpn=peer.qpn, dst_qpn=self.qpn, kind="READ_RESP",
            length=wr.length, transport="RC",
            payload=mr.get_object(wr.remote_addr), flow=wr.flow,
        )
        response = yield self.ctx.fabric.route(response)
        if wr.buffer is not None:
            wr.buffer.deposit(response.payload, wr.length)
        self._complete_send(wr, wr.length)
        self.ctx.tracer.complete(
            self.ctx.node_id, f"qp{self.qpn}", "rc-read", t0,
            self.ctx.sim.now - t0, "verbs", args={"bytes": wr.length})

    def _rc_write(self, wr: SendWR):
        config = self.ctx.config
        peer = self._peer
        assert peer is not None  # post_send validated the connection
        t0 = self.ctx.sim.now
        # Inlined payloads skip the extra DMA fetch of the payload [16].
        extra = 0 if wr.inline else config.nic_wr_ns
        yield self.ctx.nic.process_wr(self.qpn, extra_ns=extra, flow=wr.flow)
        packet = make_train(
            config, src_node=self.ctx.node_id, dst_node=peer.node_id,
            src_qpn=self.qpn, dst_qpn=peer.qpn, kind="WRITE",
            length=max(wr.length, 8 if wr.value is not None else 0),
            transport="RC",
            payload=None if wr.buffer is None else wr.buffer.payload,
            flow=wr.flow,
        )
        packet = yield self.ctx.fabric.route(packet)
        remote = self.ctx.peer_context(peer.node_id)
        mr = remote.memory.resolve(wr.remote_addr)
        if wr.value is not None:
            mr.write_u64(wr.remote_addr, wr.value)
        else:
            mr.set_object(wr.remote_addr, packet.payload)
        ack = make_train(
            config, src_node=peer.node_id, dst_node=self.ctx.node_id,
            src_qpn=peer.qpn, dst_qpn=self.qpn, kind="ACK",
            length=0, wire_bytes=config.rc_ack_bytes, flow=wr.flow,
        )
        yield self.ctx.fabric.route(ack)
        self._complete_send(wr, wr.length)
        self.ctx.tracer.complete(
            self.ctx.node_id, f"qp{self.qpn}", "rc-write", t0,
            self.ctx.sim.now - t0, "verbs", args={"bytes": wr.length})

    # -- Unreliable Datagram data path ---------------------------------------

    def _ud_send(self, wr: SendWR):
        from repro.verbs.constants import MCAST_NODE

        config = self.ctx.config
        dest = wr.dest
        assert dest is not None  # post_send validated the destination
        t0 = self.ctx.sim.now
        yield self.ctx.nic.process_wr(self.qpn, flow=wr.flow)
        packet = make_train(
            config, src_node=self.ctx.node_id, dst_node=max(dest.node_id, 0),
            src_qpn=self.qpn, dst_qpn=dest.qpn, kind="SEND",
            length=wr.length, transport="UD",
            payload=None if wr.buffer is None else wr.buffer.payload,
            meta={"imm": wr.imm}, flow=wr.flow,
        )
        egress_done = Event(self.ctx.sim)
        if dest.node_id == MCAST_NODE:
            # InfiniBand multicast: the switch replicates the datagram to
            # every attached QP; the sender's port is charged only once.
            fanout = self.ctx.fabric.route_mcast(
                packet, mgid=dest.qpn, egress_event=egress_done)
            self.ctx.sim.process(
                self._ud_mcast_deliver(fanout),
                name=f"qp{self.qpn}-ud-mcast")
        else:
            arrival = self.ctx.fabric.route(
                packet, unordered=True, lossy=True,
                egress_event=egress_done)
            self.ctx.sim.process(
                self._ud_deliver(arrival), name=f"qp{self.qpn}-ud-deliver")
        # No ack in UD: local completion once the NIC drained the buffer.
        yield egress_done
        self._complete_send(wr, wr.length)
        self.ctx.tracer.complete(
            self.ctx.node_id, f"qp{self.qpn}", "ud-send", t0,
            self.ctx.sim.now - t0, "verbs", args={"bytes": wr.length})

    def _ud_send_flat(self, wr: SendWR) -> None:
        """Flat-callback twin of :meth:`_ud_send` and its deliver helpers.

        The deliver callback replaces the per-datagram ``_ud_deliver``
        process; registering it directly on the arrival event (instead of
        via a helper process bootstrap) removes heap entries that carry no
        observable action, which shifts later sequence numbers uniformly
        and therefore cannot reorder anything.
        """
        from repro.verbs.constants import MCAST_NODE

        ctx = self.ctx
        sim = ctx.sim
        config = ctx.config
        dest = wr.dest
        assert dest is not None  # post_send validated the destination
        t0 = sim.now

        def start() -> None:
            ctx.nic.submit_wr(self.qpn, after_wr, flow=wr.flow)

        def after_wr() -> None:
            packet = make_train(
                config, src_node=ctx.node_id, dst_node=max(dest.node_id, 0),
                src_qpn=self.qpn, dst_qpn=dest.qpn, kind="SEND",
                length=wr.length, transport="UD",
                payload=None if wr.buffer is None else wr.buffer.payload,
                meta={"imm": wr.imm}, flow=wr.flow,
            )
            egress_done = Event(sim)
            if dest.node_id == MCAST_NODE:
                fanout = ctx.fabric.route_mcast(
                    packet, mgid=dest.qpn, egress_event=egress_done)
                fanout.add_callback(fan_out)
            else:
                arrival = ctx.fabric.route(
                    packet, unordered=True, lossy=True,
                    egress_event=egress_done)
                arrival.add_callback(self._ud_deliver_flat)
            # No ack in UD: local completion once the NIC drained the
            # buffer.
            egress_done.add_callback(complete)

        def fan_out(fanout: Event) -> None:
            for leg in fanout.value:
                leg.add_callback(self._ud_deliver_flat)

        def complete(_evt: Event) -> None:
            self._complete_send(wr, wr.length)
            ctx.tracer.complete(
                ctx.node_id, f"qp{self.qpn}", "ud-send", t0,
                sim.now - t0, "verbs", args={"bytes": wr.length})

        sim.call_soon(start)

    def _ud_deliver_flat(self, arrival: Event) -> None:
        packet = arrival.value
        if packet.dropped:
            return
        remote = self.ctx.peer_context(packet.dst_node)
        try:
            remote_qp = remote.qp(packet.dst_qpn)
        except VerbsError:
            return  # destination QP vanished; datagram evaporates
        if remote_qp.qp_type is not QPType.UD:
            return
        if not remote_qp._ud_recvs:
            # No Receive posted: the datagram is silently dropped (§2.2.1).
            remote_qp.ud_drops += 1
            return
        rwr = remote_qp._ud_recvs.popleft()
        remote_qp._recv_posted -= 1
        remote_qp._deposit(rwr, packet)

    def _ud_mcast_deliver(self, fanout: Event):
        deliveries = yield fanout
        for leg in deliveries:
            self.ctx.sim.process(
                self._ud_deliver(leg), name=f"qp{self.qpn}-ud-mcast-leg")

    def _ud_deliver(self, arrival: Event):
        packet = yield arrival
        if packet.dropped:
            return
        remote = self.ctx.peer_context(packet.dst_node)
        try:
            remote_qp = remote.qp(packet.dst_qpn)
        except VerbsError:
            return  # destination QP vanished; datagram evaporates
        if remote_qp.qp_type is not QPType.UD:
            return
        if not remote_qp._ud_recvs:
            # No Receive posted: the datagram is silently dropped (§2.2.1).
            remote_qp.ud_drops += 1
            return
        rwr = remote_qp._ud_recvs.popleft()
        remote_qp._recv_posted -= 1
        remote_qp._deposit(rwr, packet)
