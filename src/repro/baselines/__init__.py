"""Performance baselines (§5.1).

The paper compares its RDMA-aware designs against:

* **MPI** (:mod:`repro.baselines.mpi`) — a simulated MVAPICH2: eager and
  rendezvous protocols, a per-node runtime lock, progress that only runs
  while some thread is inside an MPI call (the structural reason MPI
  fails to overlap communication with computation), and a binomial-tree
  broadcast.
* **IPoIB** (:mod:`repro.baselines.ipoib`) — TCP sockets over InfiniBand:
  kernel-stack CPU cost per byte on both sides, bounded socket windows,
  and reduced effective wire efficiency.  Represents a network upgrade
  with no software changes.
* **qperf** (:mod:`repro.baselines.qperf`) — the bandwidth ceiling: one
  sender posting RC Sends from a single buffer, a receiver that never
  touches the data.

MPI and IPoIB implement the §4.2 endpoint interface, so every workload
and experiment driver treats them exactly like the six RDMA designs.
"""

from repro.baselines.mpi import MPIReceiveEndpoint, MPIRuntime, MPISendEndpoint
from repro.baselines.ipoib import IPoIBReceiveEndpoint, IPoIBSendEndpoint
from repro.baselines.qperf import run_qperf
from repro.baselines.stage import baseline_stage

__all__ = [
    "IPoIBReceiveEndpoint",
    "IPoIBSendEndpoint",
    "MPIReceiveEndpoint",
    "MPIRuntime",
    "MPISendEndpoint",
    "baseline_stage",
    "run_qperf",
]
