"""A simulated MVAPICH2-style MPI runtime and endpoint (§5.1 baseline).

The model captures the four structural properties that determine MPI's
shuffle performance relative to bespoke RDMA endpoints:

1. **Eager vs rendezvous.**  Messages up to ``mpi_eager_threshold`` are
   copied through pre-registered internal buffers on both sides (CPU cost
   per byte twice).  Larger messages handshake: the sender posts a
   request-to-send, the receiver answers clear-to-send only once a
   matching receive has been posted *and* its progress engine runs, then
   the data moves.
2. **Progress only inside MPI calls.**  Matching, CTS generation and
   broadcast forwarding on a node only advance while at least one thread
   of that node is blocked inside an MPI call.  This is the mechanism
   behind MPI's failure to overlap communication with computation
   (Figs 13, 14): when all receiver threads are busy processing data,
   the runtime is dead and senders stall in ``MPI_Send``.
3. **A per-node runtime lock** serializing call entry/exit (MVAPICH's
   coarse-grained threading), charged ``mpi_overhead_ns`` per call.
4. **Blocking ``MPI_Send``** on the data path, as in the paper's MPI
   endpoint implementation — the sending thread cannot produce the next
   buffer while the current one is in flight.

Broadcast uses a binomial tree (``MPI_Ibcast``), with intermediate nodes
forwarding when their progress engine runs.
"""

from __future__ import annotations

import itertools
from typing import Any, Deque, Dict, Sequence, Tuple
from collections import deque

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
    ReceiveEndpoint,
    SendEndpoint,
)
from repro.fabric.packet import Packet, make_train
from repro.memory import Buffer, BufferPool
from repro.sim import Event, Mutex, Notify
from repro.verbs.cm import EndpointRegistry
from repro.verbs.device import VerbsContext

__all__ = ["MPIRuntime", "MPISendEndpoint", "MPIReceiveEndpoint"]

_seq = itertools.count(1)


class _PendingRecv:
    """An outstanding MPI_Irecv: (tag, any-source) plus its wake event."""

    __slots__ = ("tag", "event")

    def __init__(self, tag: int, event: Event):
        self.tag = tag
        self.event = event


class MPIRuntime:
    """Per-node MPI library state."""

    #: fabric attribute caching one runtime per node.
    _CACHE_ATTR = "_mpi_runtimes"

    @classmethod
    def get(cls, ctx: VerbsContext) -> "MPIRuntime":
        cache = getattr(ctx.fabric, cls._CACHE_ATTR, None)
        if cache is None:
            cache = {}
            setattr(ctx.fabric, cls._CACHE_ATTR, cache)
        runtime = cache.get(ctx.node_id)
        if runtime is None:
            runtime = cls(ctx)
            cache[ctx.node_id] = runtime
        return runtime

    def __init__(self, ctx: VerbsContext):
        self.ctx = ctx
        self.sim = ctx.sim
        self.node = ctx.node
        self.net = ctx.config
        self.fabric = ctx.fabric
        self.lock = Mutex(ctx.sim)
        #: threads currently blocked inside an MPI call.
        self.in_mpi = 0
        #: eager/unexpected messages awaiting a matching receive, per tag.
        self._unexpected: Dict[int, Deque[Tuple[int, Any, int]]] = {}
        #: posted receives not yet matched, per tag (FIFO).
        self._recvs: Dict[int, Deque[_PendingRecv]] = {}
        #: arrived-but-unprocessed runtime work (progress gating).
        self._backlog: Deque[Packet] = deque()
        #: sender-side rendezvous requests waiting for CTS.
        self._rndv_waiting: Dict[int, Event] = {}
        self._progress_signal = Notify(ctx.sim)
        # Internal eager buffers: a fixed registered region, as MVAPICH
        # pre-registers its eager RDMA buffers.
        self._eager_mr = ctx.reg_mr(64 * self.net.mpi_eager_threshold)
        self.calls = 0

    # -- call gating ------------------------------------------------------------

    def _enter(self):
        """Process fragment: enter the MPI library (charges the lock)."""
        yield from self.lock.critical_section(
            self.net.cpu(self.net.mpi_overhead_ns))
        self.calls += 1
        self.in_mpi += 1
        self._drain_backlog()

    def _exit(self) -> None:
        self.in_mpi -= 1

    def _on_wire(self, packet: Packet) -> None:
        """A message arrived from the fabric (hardware-side deposit)."""
        self._backlog.append(packet)
        if self.in_mpi > 0:
            self._drain_backlog()

    def _drain_backlog(self) -> None:
        while self._backlog:
            self._handle(self._backlog.popleft())

    # -- wire helpers --------------------------------------------------------------

    def _transmit(self, dest: int, kind: str, length: int, payload: Any,
                  meta: dict) -> Event:
        packet = make_train(
            self.net, src_node=self.ctx.node_id, dst_node=dest,
            src_qpn=0, dst_qpn=0, kind=kind, length=length,
            wire_bytes=self.net.wire_bytes(max(length, 16), "RC"),
            payload=payload, meta=meta,
        )
        done = Event(self.sim)

        def proc():
            # NIC doorbell + WQE processing, then the wire.
            yield self.node.nic.processor.occupy(self.net.nic_wr_ns)
            arrived = yield self.fabric.route(packet)
            MPIRuntime.get(self.ctx.peer_context(dest))._on_wire(arrived)
            done.succeed(arrived)

        self.sim.process(proc(), name=f"mpi-tx-{kind}")
        return done

    # -- receive-side handling (progress engine) ---------------------------------------

    def _handle(self, packet: Packet) -> None:
        meta = packet.meta
        kind = packet.kind
        if kind == "MPI_EAGER":
            if meta.get("bcast"):
                tag = meta["tags"][self.ctx.node_id]
                self._deliver(tag, packet.src_node, packet.payload,
                              packet.length, eager=True)
                self._forward_bcast(packet)
            else:
                self._deliver(meta["tag"], packet.src_node, packet.payload,
                              packet.length, eager=True)
        elif kind == "MPI_RTS":
            # Clear-to-send only once a matching receive exists.
            self._try_cts(packet)
        elif kind == "MPI_CTS":
            waiter = self._rndv_waiting.pop(meta["req"], None)
            if waiter is not None:
                waiter.succeed()
        elif kind == "MPI_DATA":
            self._deliver(meta["tag"], packet.src_node, packet.payload,
                          packet.length, eager=False)

    def _try_cts(self, rts: Packet) -> None:
        tag = rts.meta["tag"]
        queue = self._recvs.get(tag)
        if queue:
            recv = queue.popleft()
            # Hand the pending-recv straight to the data message.
            self._recvs.setdefault(("rndv", rts.meta["req"]), deque()).append(recv)
            self._transmit(rts.src_node, "MPI_CTS", 0, None,
                           {"req": rts.meta["req"]})
        else:
            # No matching receive yet: park the RTS; re-examined whenever
            # a receive is posted while progress runs.
            self._unexpected.setdefault(("rts", tag), deque()).append(rts)

    def _deliver(self, tag, src: int, payload: Any, length: int,
                 eager: bool) -> None:
        queue = self._recvs.get(tag)
        if queue:
            recv = queue.popleft()
            recv.event.succeed((src, payload, length, eager))
        else:
            self._unexpected.setdefault(tag, deque()).append(
                (src, payload, length))

    def _forward_bcast(self, packet: Packet) -> None:
        """Binomial-tree forwarding of a broadcast message."""
        members: Tuple[int, ...] = packet.meta["members"]
        me = members.index(self.ctx.node_id)
        total = len(members)
        # Children of position `me` in a binomial tree rooted at 0.
        offset = 1
        while offset <= me:
            offset <<= 1
        while offset < total:
            child = me + offset
            if child < total:
                meta = dict(packet.meta)
                self._transmit(members[child], packet.kind, packet.length,
                               packet.payload, meta)
            offset <<= 1

    # -- the MPI calls used by the endpoint --------------------------------------------

    def mpi_bcast(self, members: Tuple[int, ...], tags: Dict[int, int],
                  payload: Any, length: int, deliver_self: bool = False):
        """Process fragment: MPI_Ibcast rooted at this node.

        The root sends to its binomial-tree children; intermediate nodes
        forward (when their progress engine runs).  Collectives use the
        eager/pipelined path with per-node delivery tags.  ``members``
        must be duplicate-free with the root first; ``deliver_self``
        additionally delivers the message locally (root in its own group).
        """
        yield from self._enter()
        try:
            meta = {"bcast": True, "members": members, "tags": tags}
            yield self.node.cpu_delay(length * self.net.mpi_copy_ns_per_byte)
            if deliver_self:
                self._deliver(tags[self.ctx.node_id], self.ctx.node_id,
                              payload, length, eager=False)
            total = len(members)
            sends = []
            offset = 1
            while offset < total:
                sends.append(self._transmit(
                    members[offset], "MPI_EAGER", length, payload,
                    dict(meta)))
                offset <<= 1
            for send in sends:
                yield send
        finally:
            self._exit()

    def mpi_send(self, dest: int, tag: int, payload: Any, length: int):
        """Process fragment: blocking MPI_Send (eager or rendezvous)."""
        yield from self._enter()
        try:
            meta = {"tag": tag}
            if length <= self.net.mpi_eager_threshold:
                # Copy into the internal eager buffer, then ship.
                yield self.node.cpu_delay(length * self.net.mpi_copy_ns_per_byte)
                yield self._transmit(dest, "MPI_EAGER", length, payload, meta)
            else:
                req = next(_seq)
                cts = Event(self.sim)
                self._rndv_waiting[req] = cts
                self._transmit(dest, "MPI_RTS", 0, None,
                               {"tag": tag, "req": req})
                yield cts
                meta["tag"] = ("rndv", req)
                yield self._transmit(dest, "MPI_DATA", length, payload, meta)
        finally:
            self._exit()

    def mpi_recv(self, tag: int):
        """Process fragment: blocking MPI_Recv(ANY_SOURCE, tag).

        Returns ``(src, payload, length)``.  Models Irecv + Test polling:
        the thread stays inside MPI (progress keeps running) while it
        waits.
        """
        yield from self._enter()
        try:
            unexpected = self._unexpected.get(tag)
            if unexpected:
                src, payload, length = unexpected.popleft()
                yield self.node.cpu_delay(
                    min(length, self.net.mpi_eager_threshold)
                    * self.net.mpi_copy_ns_per_byte)
                return (src, payload, length)
            event = Event(self.sim)
            self._recvs.setdefault(tag, deque()).append(
                _PendingRecv(tag, event))
            # A parked RTS may now be matchable.
            parked = self._unexpected.get(("rts", tag))
            if parked:
                self._try_cts(parked.popleft())
            src, payload, length, eager = yield event
            if eager:
                yield self.node.cpu_delay(length * self.net.mpi_copy_ns_per_byte)
            return (src, payload, length)
        finally:
            self._exit()


class MPISendEndpoint(SendEndpoint):
    """The paper's MPI endpoint, send side (blocking MPI_Send per peer)."""

    transport = "MPI"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        super().__init__(ctx, endpoint_id, config, destinations, num_groups)
        self.peers = dict(peers)
        self.runtime = MPIRuntime.get(ctx)
        self.pool: BufferPool = None

    def setup(self, registry: EndpointRegistry):
        pool_buffers = (self.config.buffers_per_connection * self.num_groups *
                        self.config.threads_per_endpoint)
        yield from self._charge_registration(
            pool_buffers * self.config.message_size)
        self.pool = BufferPool(self.ctx, pool_buffers, self.config.message_size)
        for buf in self.pool.buffers:
            self._free.put(buf)
        registry.publish_endpoint(self.endpoint_id, {"node": self.ctx.node_id})

    def connect(self, registry: EndpointRegistry):
        return
        yield  # pragma: no cover - MPI wires lazily

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        frame = Frame(kind="data", state=state, src_endpoint=self.endpoint_id,
                      payload=buf.payload, length=buf.length,
                      remote_addr=buf.addr)
        if len(dests) > 1:
            # MPI_Ibcast: binomial tree rooted here, intermediate nodes
            # forward; delivery tags differ per receiving endpoint.
            me = self.ctx.node_id
            members = (me,) + tuple(d for d in dests if d != me)
            yield from self.runtime.mpi_bcast(
                members, dict(self.peers), frame, buf.length,
                deliver_self=(me in dests))
        else:
            for dest in dests:
                yield from self.runtime.mpi_send(
                    dest, self.peers[dest], frame, buf.length)
        self.messages_sent += len(dests)
        self.bytes_sent += buf.length * len(dests)
        # Blocking send: the buffer is reusable as soon as send returns.
        buf.reset()
        self._free.put(buf)

    def _send_finals(self):
        for dest in self.destinations:
            frame = Frame(kind="final", state=DataState.DEPLETED,
                          src_endpoint=self.endpoint_id)
            yield from self.runtime.mpi_send(dest, self.peers[dest], frame, 0)


class MPIReceiveEndpoint(ReceiveEndpoint):
    """The paper's MPI endpoint, receive side (MPI_Irecv + Test)."""

    transport = "MPI"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config, sources)
        self.runtime = MPIRuntime.get(ctx)
        self.pool: BufferPool = None
        self._expected_finals = len(self.sources)

    def setup(self, registry: EndpointRegistry):
        per_link = self.config.buffers_per_link
        total = per_link * max(1, len(self.sources))
        yield from self._charge_registration(total * self.config.message_size)
        self.pool = BufferPool(self.ctx, total, self.config.message_size)
        self._avail = list(self.pool.buffers)
        registry.publish_endpoint(self.endpoint_id, {"node": self.ctx.node_id})

    def connect(self, registry: EndpointRegistry):
        return
        yield  # pragma: no cover - MPI wires lazily

    def get_data(self):
        t0 = self.sim.now
        while True:
            if not self._active_sources:
                self.data_wait_ns += self.sim.now - t0
                return (DataState.DEPLETED, -1, 0, None)
            src, frame, length = yield from self.runtime.mpi_recv(
                self.endpoint_id)
            if frame.kind == "final":
                self._source_depleted(frame.src_endpoint)
                if not self._active_sources:
                    # Wake sibling threads parked in MPI_Recv on this tag.
                    parked = self.runtime._recvs.get(self.endpoint_id)
                    while parked:
                        parked.popleft().event.succeed(
                            (self.ctx.node_id,
                             Frame(kind="final", src_endpoint=-1), 0, False))
                    self.data_wait_ns += self.sim.now - t0
                    return (DataState.DEPLETED, -1, 0, None)
                continue
            self.data_wait_ns += self.sim.now - t0
            self.messages_received += 1
            self.bytes_received += frame.length
            local = self._avail.pop() if self._avail else Buffer(
                self.pool.mr, self.pool.mr.addr, self.config.message_size)
            local.deposit(frame.payload, frame.length)
            return (DataState.MORE_DATA, frame.src_endpoint,
                    frame.remote_addr, local)

    def _source_depleted(self, src_endpoint: int) -> None:
        # MPI threads each block in mpi_recv; no shared inbox sentinel is
        # needed — every thread observes depletion independently.
        self._active_sources.discard(src_endpoint)

    def release(self, remote_addr: int, local: Buffer, src: int):
        local.reset()
        self._avail.append(local)
        return
        yield  # pragma: no cover - nothing to post in MPI
