"""Wire MPI / IPoIB endpoints through the standard ShuffleStage."""

from __future__ import annotations

from repro.baselines.ipoib import IPoIBReceiveEndpoint, IPoIBSendEndpoint
from repro.baselines.mpi import MPIReceiveEndpoint, MPISendEndpoint
from repro.core.designs import Design, register_endpoint_kind
from repro.core.stage import ShuffleStage

__all__ = ["baseline_stage", "BASELINE_DESIGNS"]

register_endpoint_kind("MPI", MPISendEndpoint, MPIReceiveEndpoint)
register_endpoint_kind("IPOIB", IPoIBSendEndpoint, IPoIBReceiveEndpoint)

#: Baselines run with one endpoint per thread so that the comparison
#: isolates the transport, not the endpoint-sharing dimension (the MPI
#: runtime and kernel TCP stack serialize per node regardless).
BASELINE_DESIGNS = {
    "MPI": Design("MPI", "MPI", multi_endpoint=True),
    "IPoIB": Design("IPoIB", "IPOIB", multi_endpoint=True),
}


def baseline_stage(fabric, name: str, groups, config=None, threads=None,
                   registry=None) -> ShuffleStage:
    """A ShuffleStage running on a baseline transport ("MPI", "IPoIB")."""
    return ShuffleStage(fabric, BASELINE_DESIGNS[name], groups,
                        config=config, threads=threads, registry=registry)
