"""qperf: the raw bandwidth ceiling (§5.1).

The sender registers a single buffer and keeps posting RDMA Send
requests; the receiver keeps Receive requests posted and never touches
the data.  These assumptions preclude direct comparison with the shuffle
algorithms, but define the dashed "peak" line of Figure 10.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.fabric.config import ClusterConfig, NetworkConfig
from repro.memory import BufferPool
from repro.verbs.constants import AddressHandle, Opcode, QPType
from repro.verbs.wr import RecvWR, SendWR

__all__ = ["run_qperf"]

GIB = float(1 << 30)


def run_qperf(network: NetworkConfig, message_size: int = 64 * 1024,
              messages: int = 2048, outstanding: int = 16) -> float:
    """Peak RC Send/Receive throughput between two nodes, in GiB/s.

    ``outstanding`` models qperf's pipelining: completions are polled
    only to repost, so the wire stays saturated.
    """
    if messages < 1:
        raise ValueError(f"need at least one message, got {messages}")
    cluster = Cluster(ClusterConfig(network=network, num_nodes=2,
                                    threads_per_node=1))
    sim = cluster.sim
    ctx_s, ctx_r = cluster.contexts
    cq_s, cq_r = ctx_s.create_cq(), ctx_r.create_cq()
    qp_s = ctx_s.create_qp(QPType.RC, cq_s, cq_s)
    qp_r = ctx_r.create_qp(QPType.RC, cq_r, cq_r)
    qp_s.connect(AddressHandle(1, qp_r.qpn))
    qp_r.connect(AddressHandle(0, qp_s.qpn))
    send_pool = BufferPool(ctx_s, 1, message_size)  # a single buffer
    recv_pool = BufferPool(ctx_r, outstanding, message_size)
    the_buffer = send_pool.buffers[0]
    the_buffer.fill(None, message_size)
    for buf in recv_pool.buffers:
        qp_r.post_recv(RecvWR(wr_id=buf, buffer=buf, length=message_size))

    received = {"count": 0, "first": None, "last": None}

    def sender():
        inflight = 0
        sent = 0
        while sent < messages:
            while inflight < outstanding and sent < messages:
                qp_s.post_send(SendWR(wr_id=sent, opcode=Opcode.SEND,
                                      buffer=the_buffer, length=message_size))
                inflight += 1
                sent += 1
            yield cq_s.wait()
            inflight -= 1

    def receiver():
        while received["count"] < messages:
            wc = yield cq_r.wait()
            if received["first"] is None:
                received["first"] = sim.now
            received["last"] = sim.now
            received["count"] += 1
            # Repost immediately; the data is never read.
            buf = wc.wr_id
            qp_r.post_recv(RecvWR(wr_id=buf, buffer=buf, length=message_size))

    sim.process(sender(), name="qperf-send")
    done = sim.process(receiver(), name="qperf-recv")
    sim.run()
    if not done.processed or received["count"] < messages:
        raise RuntimeError("qperf run did not complete")
    span = max(1, received["last"] - received["first"])
    # first message excluded from the span, as qperf warms up.
    return (received["count"] - 1) * message_size / GIB / (span / 1e9)
