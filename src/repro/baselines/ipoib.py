"""TCP/IP over InfiniBand (the "IPoIB" baseline, §5.1).

Represents upgrading the network with no software changes: the database
keeps using sockets, and the kernel stack's per-byte CPU cost dominates.
The paper's profiling found the IPoIB shuffle spends about two thirds of
its cycles inside ``send()`` and ``recv()`` — the model charges exactly
those cycles to the communicating threads, plus:

* a per-node kernel-stack pipe capped at ``ipoib_efficiency`` of the link
  rate (IPoIB cannot drive InfiniBand at line rate),
* per-call syscall overhead (``send``/``recv``/``select``),
* a bounded socket window providing flow control,
* segmentation into 64 KiB writes with TCP/IP header overhead.

Delivery is reliable and ordered per connection (TCP), so end-of-stream
uses simple final markers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
    ReceiveEndpoint,
    SendEndpoint,
)
from repro.fabric.packet import Packet, make_train
from repro.memory import Buffer, BufferPool
from repro.sim import Notify, RatePipe
from repro.verbs.cm import EndpointRegistry
from repro.verbs.device import VerbsContext

__all__ = ["IPoIBSendEndpoint", "IPoIBReceiveEndpoint", "TcpStack"]

#: TCP segment size used by the socket layer (one send() chunk).
SEGMENT_BYTES = 64 * 1024
#: per-segment TCP/IP/IPoIB header overhead on the wire.
HEADER_BYTES = 80
#: socket window: in-flight bytes per connection before send() blocks.
WINDOW_BYTES = 1 << 20


class TcpStack:
    """Per-node kernel TCP state: the rate-capped softirq path."""

    _CACHE_ATTR = "_tcp_stacks"

    @classmethod
    def get(cls, ctx: VerbsContext) -> "TcpStack":
        cache = getattr(ctx.fabric, cls._CACHE_ATTR, None)
        if cache is None:
            cache = {}
            setattr(ctx.fabric, cls._CACHE_ATTR, cache)
        stack = cache.get(ctx.node_id)
        if stack is None:
            stack = cls(ctx)
            cache[ctx.node_id] = stack
        return stack

    def __init__(self, ctx: VerbsContext):
        self.ctx = ctx
        rate = ctx.config.link_bytes_per_ns * ctx.config.ipoib_efficiency
        self.tx = RatePipe(ctx.sim, rate, f"ipoib-tx[{ctx.node_id}]")
        self.rx = RatePipe(ctx.sim, rate, f"ipoib-rx[{ctx.node_id}]")
        #: (dst_node, conn_key) -> receiver-side delivery queue hook.
        self.listeners: Dict[Any, "TcpConnection"] = {}


class TcpConnection:
    """One TCP connection between a send and a receive endpoint."""

    def __init__(self, ctx: VerbsContext, dst_node: int, key: Any):
        self.ctx = ctx
        self.sim = ctx.sim
        self.net = ctx.config
        self.dst_node = dst_node
        self.key = key
        self.stack = TcpStack.get(ctx)
        self._in_flight = 0
        self._window_open = Notify(ctx.sim)
        #: receiver side sets this to receive delivered segments.
        self.deliveries: Optional[Any] = None
        self.segments_sent = 0

    def send(self, payload: Any, length: int, meta: dict):
        """Process fragment: blocking socket send of one message.

        Charges the kernel copy to the calling thread, segments the
        message, and respects the socket window.
        """
        yield self.ctx.node.cpu_delay(
            self.net.tcp_syscall_ns + length * self.net.tcp_ns_per_byte)
        remaining = length
        first = True
        while remaining > 0 or first:
            seg = min(SEGMENT_BYTES, remaining) if remaining else 0
            first = False
            while self._in_flight + seg > WINDOW_BYTES:
                yield self._window_open.wait()
            self._in_flight += seg
            self._transmit_segment(seg, payload, meta,
                                   last=(remaining - seg <= 0))
            remaining -= seg
            if seg == 0:
                break

    def _transmit_segment(self, seg: int, payload: Any, meta: dict,
                          last: bool) -> None:
        # One TCP segment is one wire unit: the stack's own
        # segmentation already runs at MTU-or-smaller granularity, so
        # these are single-packet trains by construction.
        packet = make_train(
            self.net, src_node=self.ctx.node_id, dst_node=self.dst_node,
            src_qpn=0, dst_qpn=0, kind="TCP",
            length=seg, wire_bytes=seg + HEADER_BYTES,
            payload=payload if last else None,
            meta=dict(meta, last=last, conn=self.key),
        )
        sim = self.sim

        def proc():
            yield self.stack.tx.transmit(packet.wire_bytes)
            arrived = yield self.ctx.fabric.route(packet)
            remote = TcpStack.get(self.ctx.peer_context(self.dst_node))
            yield remote.rx.transmit(packet.wire_bytes)
            self._in_flight -= seg
            self._window_open.notify_all()
            listener = remote.listeners.get(self.key)
            if listener is not None:
                listener(arrived)

        sim.process(proc(), name="tcp-seg")


class IPoIBSendEndpoint(SendEndpoint):
    """Socket-based SEND endpoint (one connection per destination)."""

    transport = "IPoIB"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        super().__init__(ctx, endpoint_id, config, destinations, num_groups)
        self.peers = dict(peers)
        self._conns: Dict[int, TcpConnection] = {}
        self.pool: BufferPool = None

    def setup(self, registry: EndpointRegistry):
        pool_buffers = (self.config.buffers_per_connection * self.num_groups *
                        self.config.threads_per_endpoint)
        # Plain malloc'd buffers: no registration cost for sockets.
        self.pool = BufferPool(self.ctx, pool_buffers, self.config.message_size)
        for buf in self.pool.buffers:
            self._free.put(buf)
        registry.publish_endpoint(self.endpoint_id, {"node": self.ctx.node_id})
        return
        yield  # pragma: no cover - setup is immediate for sockets

    def connect(self, registry: EndpointRegistry):
        for dest in self.destinations:
            # TCP three-way handshake: about one round trip.
            yield self.sim.timeout(2 * self.net.switch_latency_ns)
            key = (self.endpoint_id, self.peers[dest])
            self._conns[dest] = TcpConnection(self.ctx, dest, key)

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        frame = Frame(kind="data", state=state, src_endpoint=self.endpoint_id,
                      payload=buf.payload, length=buf.length,
                      remote_addr=buf.addr)
        for dest in dests:
            yield from self._conns[dest].send(frame, buf.length, {})
            self.messages_sent += 1
            self.bytes_sent += buf.length
        buf.reset()
        self._free.put(buf)

    def _send_finals(self):
        for dest in self.destinations:
            frame = Frame(kind="final", state=DataState.DEPLETED,
                          src_endpoint=self.endpoint_id)
            yield from self._conns[dest].send(frame, 0, {})


class IPoIBReceiveEndpoint(ReceiveEndpoint):
    """Socket-based RECEIVE endpoint: select() over per-source sockets."""

    transport = "IPoIB"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config, sources)
        self.pool: BufferPool = None
        self._avail: List[Buffer] = []

    def setup(self, registry: EndpointRegistry):
        per_link = self.config.buffers_per_link
        total = per_link * max(1, len(self.sources))
        self.pool = BufferPool(self.ctx, total, self.config.message_size)
        self._avail = list(self.pool.buffers)
        registry.publish_endpoint(self.endpoint_id, {"node": self.ctx.node_id})
        return
        yield  # pragma: no cover - setup is immediate for sockets

    def connect(self, registry: EndpointRegistry):
        stack = TcpStack.get(self.ctx)
        for _src_node, src_ep in self.sources:
            key = (src_ep, self.endpoint_id)
            stack.listeners[key] = self._on_segment
        return
        yield  # pragma: no cover - accept() side is passive

    def _on_segment(self, packet: Packet) -> None:
        if not packet.meta.get("last"):
            return  # only the final segment completes a message
        frame: Frame = packet.payload
        if frame.kind == "final":
            self._source_depleted(frame.src_endpoint)
            return
        # The Frame doubles as the delivered "buffer": it carries .length.
        self._deliver(frame.src_endpoint, frame.remote_addr, frame)

    def get_data(self):
        t0 = self.sim.now
        item = yield self._inbox.get()
        self.data_wait_ns += self.sim.now - t0
        # select() wakeup + recv() copy out of the kernel buffer.
        state, src, remote, frame = item
        if frame is None:
            return item
        yield self.ctx.node.cpu_delay(
            self.net.tcp_syscall_ns
            + frame.length * self.net.tcp_ns_per_byte)
        local = self._avail.pop() if self._avail else Buffer(
            self.pool.mr, self.pool.mr.addr, self.config.message_size)
        local.deposit(frame.payload, frame.length)
        return (state, src, remote, local)

    def release(self, remote_addr: int, local: Buffer, src: int):
        local.reset()
        self._avail.append(local)
        return
        yield  # pragma: no cover - nothing to repost for sockets
