"""Causal link records: the raw material of the critical-path analyzer.

The tracer answers "what happened when"; this module answers "what paid
for what".  While a :class:`FlowRecorder` is installed (see
``Telemetry.enable_links`` / ``Cluster.enable_reporting``), three kinds
of record accumulate:

* **flows** — one per posted work request, forming the causal DAG: the
  ``prev`` edge chains WRs on the same QP (FIFO order), the ``trigger``
  edge points from a credit-return WR back to the data flow whose buffer
  release produced it.  Posting and delivery timestamps give per-message
  latencies.
* **pipe intervals** — every resource-occupancy interval of a NIC
  processor, host link, or switch trunk, split into its base
  (serialization / WR processing) and penalty (QP-context-cache miss,
  payload-DMA fetch) components, plus how long the unit waited behind
  the pipe's FIFO backlog.
* **stalls** — endpoint-visible waiting: credit stalls, free-buffer
  waits, receiver data waits, RNR backoff.

Recording is append-only and never touches the event heap, RNG, or any
process state, so enabling it cannot perturb simulated time — the same
guarantee the tracer gives.  All records share one :class:`TraceBudget`;
when it runs dry the recorder degrades by dropping records (flows come
back as id ``0``) instead of raising, and the attribution in
``repro.obs`` simply explains less of the window.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.trace import TraceBudget

__all__ = ["FlowRecord", "PipeInterval", "StallInterval", "FlowRecorder",
           "DEFAULT_LINK_RECORDS"]

#: default budget for link records (flows + intervals + stalls combined).
DEFAULT_LINK_RECORDS = 2_000_000


class FlowRecord:
    """One message lifecycle: WR post through delivery."""

    __slots__ = ("id", "kind", "src", "dst", "size", "posted_ns",
                 "delivered_ns", "prev", "trigger")

    def __init__(self, flow_id: int, kind: str, src: int, dst: int,
                 size: int, posted_ns: int, prev: int, trigger: int):
        self.id = flow_id
        self.kind = kind
        self.src = src
        self.dst = dst
        self.size = size
        self.posted_ns = posted_ns
        self.delivered_ns: Optional[int] = None
        #: previous flow posted on the same QP (FIFO predecessor).
        self.prev = prev
        #: data flow whose buffer release caused this (credit) flow.
        self.trigger = trigger


class PipeInterval:
    """One occupancy interval of a rate pipe, decomposed by cause.

    ``kind`` is one of ``proc`` (NIC WR processor), ``egress`` /
    ``ingress`` (host links), ``trunk`` (switch port).  The interval
    spans ``[start, start + base_ns + penalty_ns + extra_ns)``:
    ``base_ns`` is serialization or baseline WR processing,
    ``penalty_ns`` a QP-context-cache miss, ``extra_ns`` the payload DMA
    fetch of a non-inlined Write.  ``waited_ns`` is how long the unit
    queued behind the pipe's backlog before ``start``.
    """

    __slots__ = ("kind", "owner", "start", "base_ns", "penalty_ns",
                 "extra_ns", "waited_ns", "flow")

    def __init__(self, kind: str, owner, start: int, base_ns: int,
                 penalty_ns: int, extra_ns: int, waited_ns: int, flow: int):
        self.kind = kind
        self.owner = owner
        self.start = start
        self.base_ns = base_ns
        self.penalty_ns = penalty_ns
        self.extra_ns = extra_ns
        self.waited_ns = waited_ns
        self.flow = flow


class StallInterval:
    """One endpoint-visible wait (credit-stall, free-wait, data-wait...)."""

    __slots__ = ("node", "ep", "kind", "start", "duration")

    def __init__(self, node: int, ep: int, kind: str, start: int,
                 duration: int):
        self.node = node
        self.ep = ep
        self.kind = kind
        self.start = start
        self.duration = duration


class FlowRecorder:
    """Accumulates flow/interval/stall records for one cluster run."""

    def __init__(self, sim, budget: Optional[TraceBudget] = None):
        self.sim = sim
        self.budget = budget if budget is not None else TraceBudget(
            DEFAULT_LINK_RECORDS)
        self.flows: Dict[int, FlowRecord] = {}
        self.pipes: List[PipeInterval] = []
        self.stalls: List[StallInterval] = []
        #: set when the budget ran dry and records were dropped.
        self.truncated = False
        #: one-shot trigger edge: set by the receive endpoint immediately
        #: before returning credit; consumed by the next new_flow() on the
        #: same synchronous call chain (release -> post credit -> post_send).
        self.pending_trigger = 0
        self._next_flow = 1
        #: id(buffer) -> data flow last delivered into that buffer.
        self._buffer_flow: Dict[int, int] = {}

    # -- flow DAG ----------------------------------------------------------

    def new_flow(self, kind: str, src: int, dst: int, size: int,
                 prev: int = 0) -> int:
        """Allocate a flow id for a freshly posted WR; 0 when over budget."""
        trigger = self.pending_trigger
        self.pending_trigger = 0
        if not self.budget.take(1):
            self.truncated = True
            return 0
        flow_id = self._next_flow
        self._next_flow += 1
        self.flows[flow_id] = FlowRecord(flow_id, kind, src, dst, size,
                                         self.sim.now, prev, trigger)
        return flow_id

    def on_deliver(self, flow: int, buf=None) -> None:
        """Stamp delivery time; remember which buffer now holds the flow."""
        record = self.flows.get(flow)
        if record is not None:
            record.delivered_ns = self.sim.now
        if buf is not None:
            self._buffer_flow[id(buf)] = flow

    def buffer_flow(self, buf) -> int:
        """The data flow last delivered into ``buf`` (0 if unknown)."""
        return self._buffer_flow.get(id(buf), 0)

    # -- intervals ---------------------------------------------------------

    def pipe(self, kind: str, owner, start: int, base_ns: int,
             penalty_ns: int = 0, extra_ns: int = 0, waited_ns: int = 0,
             flow: int = 0) -> None:
        if not self.budget.take(1):
            self.truncated = True
            return
        self.pipes.append(PipeInterval(kind, owner, start, base_ns,
                                       penalty_ns, extra_ns, waited_ns,
                                       flow))

    def stall(self, node: int, ep: int, kind: str, start: int,
              duration: int) -> None:
        if duration <= 0:
            return
        if not self.budget.take(1):
            self.truncated = True
            return
        self.stalls.append(StallInterval(node, ep, kind, start, duration))

    # -- accounting --------------------------------------------------------

    @property
    def dropped_records(self) -> int:
        return self.budget.dropped

    @property
    def recorded(self) -> int:
        return len(self.flows) + len(self.pipes) + len(self.stalls)
