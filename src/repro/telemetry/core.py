"""The per-cluster telemetry object: registries + tracer + harvesting.

Design notes
------------

Hot paths (the NIC work-request loop, the QP state machines, the
endpoint send loop) do **not** call into the registry per event — they
keep plain integer attributes (``nic.tx_messages += 1``), exactly as the
seed code already did for a handful of values.  :meth:`Telemetry.snapshot`
harvests those attributes lazily, so the instrumentation cost per event
is one integer add regardless of whether telemetry is enabled.  The
registries exist for control-path instruments, user extensions, and as
the uniform output format; callback metrics bridge the two worlds.

To avoid import cycles this module never imports the fabric/verbs/core
layers — harvesting is duck-typed over the objects handed to
:meth:`attach_fabric` / :meth:`register_endpoint`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.telemetry.links import FlowRecorder
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.trace import NULL_TRACER, TraceBudget, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator

__all__ = [
    "Telemetry",
    "set_enabled",
    "is_enabled",
    "nic_cache_stats",
]

#: global default for newly created Telemetry objects (the no-op mode).
_ENABLED = True


def set_enabled(flag: bool) -> None:
    """Set the global default mode for new :class:`Telemetry` objects.

    Disabling routes all registries to the shared no-op instances and
    stops endpoint tracking, so no per-instrument state is allocated.
    The always-on plain counters keep counting (they cost one int add
    each) and still appear in snapshots.
    """
    global _ENABLED
    _ENABLED = bool(flag)


def is_enabled() -> bool:
    return _ENABLED


class Telemetry:
    """Metrics registries and a tracer for one simulated cluster.

    Owned by :class:`~repro.cluster.Cluster` (one registry per node plus
    a fabric-wide one) and threaded through the fabric so every layer can
    reach it as ``ctx.telemetry`` / ``fabric.telemetry``.
    """

    def __init__(self, sim: "Simulator", num_nodes: int,
                 enabled: Optional[bool] = None,
                 tracer: Optional[Tracer] = None):
        if enabled is None:
            enabled = _ENABLED
        self.sim = sim
        self.num_nodes = num_nodes
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if enabled:
            self.fabric_registry = MetricsRegistry("fabric")
            self._node_registries: Dict[int, MetricsRegistry] = {
                i: MetricsRegistry(f"node{i}") for i in range(num_nodes)
            }
        else:
            self.fabric_registry = NULL_REGISTRY
            self._node_registries = {}
        self._fabric = None
        self._endpoints: List[Any] = []
        #: causal link recorder (repro.obs substrate); None keeps every
        #: instrumentation site a single is-None branch.
        self.links: Optional[FlowRecorder] = None

    # -- access ------------------------------------------------------------

    @property
    def endpoints(self):
        """Every endpoint registered with this telemetry object (the
        harvest surface policies read credit-stall totals from)."""
        return tuple(self._endpoints)

    def node_registry(self, node_id: int) -> MetricsRegistry:
        if not self.enabled:
            return NULL_REGISTRY
        reg = self._node_registries.get(node_id)
        if reg is None:
            reg = self._node_registries[node_id] = MetricsRegistry(
                f"node{node_id}")
        return reg

    # -- wiring ------------------------------------------------------------

    def attach_fabric(self, fabric) -> None:
        """Bind to the fabric whose nodes this object observes."""
        self._fabric = fabric
        if self.tracer is not NULL_TRACER:
            self._wire_pipes()
        if self.links is not None:
            self._wire_links()

    def register_endpoint(self, endpoint) -> None:
        """Called by endpoint constructors so stalls/skew can be harvested."""
        if self.enabled:
            self._endpoints.append(endpoint)

    def enable_tracing(self, max_events: int = 500_000,
                       budget: Optional[TraceBudget] = None,
                       pid_base: int = 0, label: str = "") -> Tracer:
        """Start recording trace events; returns the live tracer.

        Call before building endpoints/stages — components capture the
        tracer when constructed; NIC pipes are rewired here.
        """
        self.tracer = Tracer(
            self.sim,
            budget=budget if budget is not None else TraceBudget(max_events),
            pid_base=pid_base, label=label)
        if self._fabric is not None:
            self._wire_pipes()
        return self.tracer

    def enable_links(self, budget: Optional[TraceBudget] = None
                     ) -> FlowRecorder:
        """Start recording causal link records (flows, pipe intervals,
        stalls) — the input of the ``repro.obs`` critical-path analyzer.

        Like tracing, recording is append-only and cannot perturb the
        simulation; the shared ``budget`` caps memory across a session.
        """
        if self.links is None:
            self.links = FlowRecorder(self.sim, budget=budget)
            if self._fabric is not None:
                self._wire_links()
        return self.links

    def _wire_links(self) -> None:
        self._fabric.links = self.links
        for node in self._fabric.nodes:
            node.nic.links = self.links

    def _wire_pipes(self) -> None:
        for node in self._fabric.nodes:
            nic = node.nic
            nic.egress.bind_trace(self.tracer, node.id, "egress", "tx")
            nic.ingress.bind_trace(self.tracer, node.id, "ingress", "rx")
            nic.processor.bind_trace(self.tracer, node.id, "nicproc", "wr")
        # Switches trace as pseudo-nodes after the real ones: one pid
        # per switch, one thread per trunk port.
        topology = getattr(self._fabric, "topology", None)
        if topology is not None:
            for switch in topology.switches:
                if not switch.ports:
                    continue
                pseudo_node = self.num_nodes + switch.index
                self.tracer.name_process(pseudo_node, switch.name)
                for port in switch.ports:
                    port.pipe.bind_trace(self.tracer, pseudo_node,
                                         port.local_name, "fwd")

    # -- harvesting --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready snapshot: fabric-wide plus per-node metrics."""
        sim = self.sim
        fabric: Dict[str, Any] = {
            "sim.now_ns": sim.now,
            "sim.events_dispatched": sim.events_dispatched,
            "sim.process_wakeups": sim.process_wakeups,
            "sim.processes_started": sim.processes_started,
            "sim.max_queue_depth": sim.max_queue_depth,
        }
        nodes: Dict[str, Dict[str, Any]] = {}
        fb = self._fabric
        if fb is not None:
            fabric["fabric.delivered_messages"] = fb.delivered_messages
            fabric["fabric.dropped_messages"] = fb.dropped_messages
            fabric["fabric.link_bytes"] = {
                f"{s}->{d}": v
                for (s, d), v in sorted(fb.link_bytes.items())
            }
            topology = getattr(fb, "topology", None)
            if topology is not None:
                fabric["topology.kind"] = topology.spec.kind
                elapsed = max(1, sim.now)
                ports: Dict[str, Any] = {}
                for port in topology.ports():
                    ports[port.name] = {
                        "bytes": int(port.pipe.total_units),
                        "busy_ns": port.pipe.busy_ns,
                        "utilization": round(
                            min(1.0, port.pipe.busy_ns / elapsed), 4),
                    }
                if ports:
                    fabric["topology.ports"] = ports
            for node in fb.nodes:
                nodes[str(node.id)] = self._node_snapshot(node)
        for ep in self._endpoints:
            self._merge_endpoint(nodes.setdefault(str(ep.ctx.node_id), {}), ep)
        for metrics in nodes.values():
            self._finish_skew(metrics)
        fabric.update(self.fabric_registry.snapshot())
        for node_id, reg in self._node_registries.items():
            nodes.setdefault(str(node_id), {}).update(reg.snapshot())
        return {"fabric": fabric, "nodes": nodes}

    def _node_snapshot(self, node) -> Dict[str, Any]:
        nic = node.nic
        elapsed = max(1, self.sim.now)
        out: Dict[str, Any] = {
            "nic.tx_messages": nic.tx_messages,
            "nic.rx_messages": nic.rx_messages,
            "nic.tx_bytes": int(nic.egress.total_units),
            "nic.rx_bytes": int(nic.ingress.total_units),
            "nic.qp_cache.hits": nic.qp_cache.hits,
            "nic.qp_cache.misses": nic.qp_cache.misses,
            "nic.qp_cache.evictions": nic.qp_cache.evictions,
            "nic.qp_cache.occupancy": nic.qp_cache.occupancy,
            "nic.qp_cache.miss_rate": round(nic.qp_cache.miss_rate, 6),
            "nic.pcie_stall_ns": nic.pcie_stall_ns,
            "nic.processor_busy_ns": nic.processor.busy_ns,
            "link.egress_busy_ns": nic.egress.busy_ns,
            "link.ingress_busy_ns": nic.ingress.busy_ns,
            "link.egress_utilization": round(
                min(1.0, nic.egress.busy_ns / elapsed), 4),
            "link.ingress_utilization": round(
                min(1.0, nic.ingress.busy_ns / elapsed), 4),
        }
        ctx = self._fabric.verbs_contexts.get(node.id)
        if ctx is not None:
            qps = list(ctx._qps.values())
            out.update({
                "verbs.qps_created": ctx.qps_created,
                "verbs.sends_posted": sum(q.sends_posted for q in qps),
                "verbs.recvs_posted": sum(q.recvs_posted for q in qps),
                "verbs.send_wrs_in_flight": sum(
                    q._send_outstanding for q in qps),
                "verbs.ud_drops": sum(q.ud_drops for q in qps),
                "verbs.rnr_events": sum(q.rnr_events for q in qps),
                "verbs.rnr_stall_ns": sum(q.rnr_stall_ns for q in qps),
                "verbs.cqes_pushed": sum(cq.pushed for cq in ctx._cqs),
                "verbs.cqes_polled": sum(cq.polled for cq in ctx._cqs),
                "verbs.registered_bytes": ctx.registered_bytes,
                "verbs.peak_registered_bytes": ctx.peak_registered_bytes,
                "verbs.mr_register_ns": ctx.mr_register_ns,
            })
        return out

    @staticmethod
    def _merge_endpoint(metrics: Dict[str, Any], ep) -> None:
        def add(key: str, value) -> None:
            metrics[key] = metrics.get(key, 0) + value

        if hasattr(ep, "messages_sent"):  # send side
            add("ep.messages_sent", ep.messages_sent)
            add("ep.bytes_sent", ep.bytes_sent)
            add("ep.credit_wait_ns", getattr(ep, "credit_wait_ns", 0))
            add("ep.credit_stalls", getattr(ep, "credit_stalls", 0))
            add("ep.free_wait_ns", getattr(ep, "free_wait_ns", 0))
            by_dest = getattr(ep, "bytes_by_dest", None)
            if by_dest:
                merged = metrics.setdefault("ep.bytes_by_dest", {})
                for dest, nbytes in by_dest.items():
                    key = str(dest)
                    merged[key] = merged.get(key, 0) + nbytes
        if hasattr(ep, "messages_received"):  # receive side
            add("ep.messages_received", ep.messages_received)
            add("ep.bytes_received", ep.bytes_received)
            add("ep.data_wait_ns", getattr(ep, "data_wait_ns", 0))

    @staticmethod
    def _finish_skew(metrics: Dict[str, Any]) -> None:
        """Per-destination skew: max over mean of this node's sent bytes."""
        by_dest = metrics.get("ep.bytes_by_dest")
        if not by_dest:
            return
        values = list(by_dest.values())
        mean = sum(values) / len(values)
        metrics["ep.dest_skew"] = round(max(values) / mean, 4) if mean else 0.0


def nic_cache_stats(cluster_or_fabric) -> Dict[str, Any]:
    """Aggregate QP-context-cache counters across all NICs of a cluster."""
    fabric = getattr(cluster_or_fabric, "fabric", cluster_or_fabric)
    hits = sum(n.nic.qp_cache.hits for n in fabric.nodes)
    misses = sum(n.nic.qp_cache.misses for n in fabric.nodes)
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": sum(n.nic.qp_cache.evictions for n in fabric.nodes),
        "miss_rate": misses / total if total else 0.0,
        "pcie_stall_ns": sum(n.nic.pcie_stall_ns for n in fabric.nodes),
    }
