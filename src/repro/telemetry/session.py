"""Telemetry sessions: collect metrics/traces across many clusters.

Benchmark drivers construct a fresh :class:`~repro.cluster.Cluster` per
data point, so a figure is dozens of independent simulations.  A
:class:`TelemetrySession` is the collection point: while one is active
(see :func:`session`), every Cluster constructed registers its
:class:`~repro.telemetry.core.Telemetry` with it.  The session

* assigns each run a disjoint trace pid namespace and a *shared* event
  budget, so ``--trace`` output stays browser-sized no matter how many
  runs a figure needs;
* seals finished runs into plain snapshot dicts at :meth:`checkpoint`
  (dropping the references to the simulated cluster, so memory does not
  accumulate over a long ``--all`` invocation);
* reduces snapshots to a one-line digest — the transport-level
  explanation attached to each reproduced figure's notes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.telemetry.core import Telemetry
from repro.telemetry.links import DEFAULT_LINK_RECORDS
from repro.telemetry.trace import TraceBudget, Tracer

__all__ = [
    "TelemetrySession",
    "session",
    "current_session",
    "digest_snapshots",
    "format_digest",
]

_ACTIVE: Optional["TelemetrySession"] = None


def current_session() -> Optional["TelemetrySession"]:
    """The session new Clusters should report to, if any."""
    return _ACTIVE


@contextmanager
def session(trace: bool = False, trace_budget_events: int = 400_000,
            sanitize: bool = False, report: bool = False,
            link_budget_records: int = DEFAULT_LINK_RECORDS):
    """Activate a TelemetrySession for the duration of the ``with`` block."""
    global _ACTIVE
    if _ACTIVE is not None:
        # Nested sessions would double-count; inner scopes just reuse.
        yield _ACTIVE
        return
    sess = TelemetrySession(trace=trace,
                            trace_budget_events=trace_budget_events,
                            sanitize=sanitize, report=report,
                            link_budget_records=link_budget_records)
    _ACTIVE = sess
    try:
        yield sess
    finally:
        _ACTIVE = None


class TelemetrySession:
    """Aggregates telemetry from every cluster built while active."""

    #: pid offset between runs in the merged trace.
    PID_STRIDE = 1000

    def __init__(self, trace: bool = False,
                 trace_budget_events: int = 400_000,
                 sanitize: bool = False, report: bool = False,
                 link_budget_records: int = DEFAULT_LINK_RECORDS):
        self.trace = trace
        self.budget = TraceBudget(trace_budget_events) if trace else None
        #: record causal links on every cluster and seal RunReports at
        #: checkpoint() (repro-bench --report).  One budget is shared
        #: across all runs so report memory stays bounded session-wide.
        self.report = report
        self.link_budget = (TraceBudget(link_budget_records)
                            if report else None)
        #: sealed per-experiment report entries: {"name", "runs",
        #: "aggregate"} (see repro.obs.report).
        self.reports: List[Dict[str, Any]] = []
        self.telemetries: List[Telemetry] = []
        self._tracers: List[Tracer] = []
        self._runs = 0
        #: sealed per-checkpoint records: {"experiment", "runs", "digest"}.
        self.records: List[Dict[str, Any]] = []
        #: request every Cluster built under this session to enable its
        #: runtime sanitizer (repro-bench --sanitize).
        self.sanitize = sanitize
        #: live sanitizers of not-yet-checkpointed runs.
        self.sanitizers: List[Any] = []
        #: violations drained from sealed runs, in checkpoint order.
        self.violation_log: List[Any] = []

    def attach(self, sim, num_nodes: int) -> Telemetry:
        """Create (and track) the Telemetry for one new cluster."""
        index = self._runs
        self._runs += 1
        telemetry = Telemetry(sim, num_nodes)
        if self.trace:
            tracer = telemetry.enable_tracing(
                budget=self.budget,
                pid_base=index * self.PID_STRIDE,
                label=f"run{index}")
            self._tracers.append(tracer)
        if self.report:
            telemetry.enable_links(budget=self.link_budget)
        self.telemetries.append(telemetry)
        return telemetry

    # -- metrics -----------------------------------------------------------

    def checkpoint(self, experiment: str) -> Dict[str, Any]:
        """Seal all live runs under ``experiment``; returns their digest."""
        if self.report:
            # Build RunReports while the clusters are still alive; the
            # snapshots below drop every simulator reference.
            from repro.obs.report import aggregate_reports, build_run_report
            runs = [build_run_report(tel) for tel in self.telemetries
                    if tel.links is not None]
            self.reports.append({
                "name": experiment,
                "runs": runs,
                "aggregate": aggregate_reports(runs),
            })
        snapshots = [tel.snapshot() for tel in self.telemetries]
        digest = digest_snapshots(snapshots)
        self.records.append({
            "experiment": experiment,
            "runs": snapshots,
            "digest": digest,
        })
        self.telemetries.clear()
        for sanitizer in self.sanitizers:
            self.violation_log.extend(sanitizer.violations)
        self.sanitizers.clear()
        return digest

    def register_sanitizer(self, sanitizer: Any) -> None:
        """Track one run's sanitizer so checkpoint() drains its findings."""
        self.sanitizers.append(sanitizer)

    def sanitizer_report(self) -> str:
        """Human-readable summary of every violation seen so far."""
        pending = [v for s in self.sanitizers for v in s.violations]
        found = list(self.violation_log) + pending
        if not found:
            return "sanitizer: clean (0 violations)"
        lines = [f"sanitizer: {len(found)} violation(s)"]
        lines.extend(f"  {violation}" for violation in found)
        return "\n".join(lines)

    @property
    def violation_count(self) -> int:
        return (len(self.violation_log)
                + sum(len(s.violations) for s in self.sanitizers))

    def metrics_document(self) -> Dict[str, Any]:
        """The ``--metrics`` JSON payload."""
        if self.telemetries:  # runs nobody checkpointed
            self.checkpoint("(unattributed)")
        return {
            "schema": {"name": "repro-telemetry-metrics", "version": 1},
            "experiments": self.records,
        }

    def report_document(self) -> Dict[str, Any]:
        """The ``--report`` JSON payload (see repro.obs.report)."""
        from repro.obs.report import build_document
        if self.telemetries:  # runs nobody checkpointed
            self.checkpoint("(unattributed)")
        return build_document(self.reports)

    # -- tracing -----------------------------------------------------------

    def trace_document(self) -> Dict[str, Any]:
        """Merge every run's trace into one Chrome trace-event document."""
        meta: List[Dict[str, Any]] = []
        data: List[Dict[str, Any]] = []
        for tracer in self._tracers:
            meta.extend(tracer._metadata_events())
            data.extend(tracer.sorted_events())
        data.sort(key=lambda e: e["ts"])
        dropped = self.budget.dropped if self.budget else 0
        return {
            "traceEvents": meta + data,
            "displayTimeUnit": "ns",
            "otherData": {
                "clock": "simulated nanoseconds (exported as microseconds)",
                "runs": len(self._tracers),
                "dropped_events": dropped,
            },
        }

    def export_trace(self, path: str) -> None:
        import json
        with open(path, "w") as fh:
            json.dump(self.trace_document(), fh)


def digest_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce run snapshots to the headline transport-level numbers."""
    def node_sum(key: str) -> int:
        return sum(
            metrics.get(key, 0)
            for snap in snapshots for metrics in snap["nodes"].values()
        )

    hits = node_sum("nic.qp_cache.hits")
    misses = node_sum("nic.qp_cache.misses")
    total = hits + misses
    return {
        "runs": len(snapshots),
        "delivered_messages": sum(
            snap["fabric"].get("fabric.delivered_messages", 0)
            for snap in snapshots),
        "qp_cache_hits": hits,
        "qp_cache_misses": misses,
        "qp_cache_miss_rate": misses / total if total else 0.0,
        "pcie_stall_ns": node_sum("nic.pcie_stall_ns"),
        "credit_stall_ns": node_sum("ep.credit_wait_ns"),
        "rnr_stall_ns": node_sum("verbs.rnr_stall_ns"),
        "data_wait_ns": node_sum("ep.data_wait_ns"),
    }


def format_digest(digest: Dict[str, Any]) -> str:
    """One-line rendering for ExperimentResult.notes."""
    return (
        f"telemetry[{digest['runs']} runs]: "
        f"qp-cache miss {100.0 * digest['qp_cache_miss_rate']:.1f}% "
        f"({digest['qp_cache_misses']}/"
        f"{digest['qp_cache_hits'] + digest['qp_cache_misses']}), "
        f"pcie-stall {digest['pcie_stall_ns'] / 1e6:.1f}ms, "
        f"credit-stall {digest['credit_stall_ns'] / 1e6:.1f}ms, "
        f"rnr-stall {digest['rnr_stall_ns'] / 1e6:.1f}ms"
    )
