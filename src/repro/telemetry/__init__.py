"""repro.telemetry — metrics registry + simulated-time tracing.

A lightweight observability layer threaded through every level of the
stack (sim kernel, NIC, fabric, verbs, shuffle endpoints):

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms;
  cheap enough to stay enabled by default, with a global no-op mode
  (:func:`set_enabled`) for benchmarks.
* :class:`Tracer` — spans and instants recorded in simulated
  nanoseconds, exported as Chrome trace-event JSON (open the file in
  ``chrome://tracing`` or https://ui.perfetto.dev): one trace process
  per node, one thread per QP/endpoint/NIC pipe.
* :class:`Telemetry` — the per-cluster bundle (one registry per node
  plus a fabric-wide one), owned by :class:`~repro.cluster.Cluster`.
* :class:`TelemetrySession` — cross-cluster collection for the
  ``repro-bench --metrics/--trace`` flags.

See the "Observability" sections of README.md and DESIGN.md.
"""

from repro.telemetry.core import (
    Telemetry,
    is_enabled,
    nic_cache_stats,
    set_enabled,
)
from repro.telemetry.links import FlowRecorder
from repro.telemetry.metrics import (
    DEFAULT_NS_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    latency_summary,
    percentile,
)
from repro.telemetry.session import (
    TelemetrySession,
    current_session,
    digest_snapshots,
    format_digest,
    session,
)
from repro.telemetry.trace import NULL_TRACER, NullTracer, TraceBudget, Tracer

__all__ = [
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "FlowRecorder",
    "Gauge",
    "Histogram",
    "latency_summary",
    "percentile",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Telemetry",
    "TelemetrySession",
    "TraceBudget",
    "Tracer",
    "current_session",
    "digest_snapshots",
    "format_digest",
    "is_enabled",
    "nic_cache_stats",
    "session",
    "set_enabled",
]
