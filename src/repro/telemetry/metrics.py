"""Metric instruments and the per-node / fabric-wide registry.

Three instrument types cover everything the simulator needs to report:

* :class:`Counter` — a monotonically increasing integer (messages sent,
  cache misses, stall nanoseconds).
* :class:`Gauge` — a point-in-time value that may go up or down (frames
  in flight, queue depth).
* :class:`Histogram` — fixed upper-bound buckets with count/sum/min/max,
  for distributions such as credit-stall durations or message sizes.

A :class:`MetricsRegistry` hands out instruments by dotted name
(``nic.qp_cache.hits``) with get-or-create semantics, and additionally
supports *callback* metrics: a zero-argument callable polled only at
:meth:`MetricsRegistry.snapshot` time.  Callbacks are how hot paths stay
cheap — the NIC, kernel and endpoints keep plain integer attributes (one
``+=`` per event, no indirection) and the registry harvests them lazily.

The global no-op mode (:data:`NULL_REGISTRY`) hands out shared inert
instruments so instrumented code needs no ``if enabled`` branches.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_NS_BUCKETS",
    "EXACT_PERCENTILE_MAX",
    "percentile",
    "latency_summary",
]

#: default histogram buckets for nanosecond durations (1us .. 100ms).
DEFAULT_NS_BUCKETS = (
    1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
)

#: largest sample count for which :func:`latency_summary` sorts the raw
#: values; above this it switches to fixed-bucket interpolation.
EXACT_PERCENTILE_MAX = 10_000


def percentile(values: Sequence[float], q: float) -> float:
    """Exact q-quantile (``0 <= q <= 1``) with linear interpolation.

    Sorts a copy, so intended for small-N summaries; large populations
    should go through a :class:`Histogram` and its
    :meth:`Histogram.percentile` estimate instead.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not values:
        raise ValueError("percentile() of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    frac = rank - lo
    if frac == 0.0:
        return float(ordered[lo])
    return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac


def latency_summary(values: Sequence[float],
                    quantiles: Sequence[float] = (0.5, 0.9, 0.99),
                    exact_max: int = EXACT_PERCENTILE_MAX,
                    buckets: Sequence[float] = DEFAULT_NS_BUCKETS
                    ) -> Dict[str, Any]:
    """count/mean/min/max plus p50/p90/p99 for a latency population.

    Exact (sorted) percentiles for small populations; fixed-bucket
    interpolation via :meth:`Histogram.percentile` beyond ``exact_max``,
    so summarizing millions of message latencies stays O(n).
    """
    count = len(values)
    out: Dict[str, Any] = {"count": count}
    if not count:
        return out
    out["mean"] = sum(values) / count
    out["min"] = min(values)
    out["max"] = max(values)
    if count <= exact_max:
        ordered = sorted(values)
        for q in quantiles:
            out[f"p{round(q * 100):d}"] = percentile(ordered, q)
    else:
        hist = Histogram("latency", buckets)
        for v in values:
            hist.observe(v)
        for q in quantiles:
            out[f"p{round(q * 100):d}"] = hist.percentile(q)
    return out


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything larger.  Bucket counts are cumulative-free (each
    observation lands in exactly one bucket), matching what a plotting
    script wants.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_NS_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram buckets must be sorted and non-empty: {buckets}")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-quantile by linear interpolation inside the
        bucket containing it; the overflow bucket interpolates between
        the last bound and the observed maximum.  Bounded error (one
        bucket width) at O(buckets) cost — the large-N complement of the
        exact :func:`percentile`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            raise ValueError("percentile() of empty histogram")
        target = q * self.count
        seen = 0.0
        lower = float(self.min) if self.min is not None else 0.0
        for i, bound in enumerate(self.buckets):
            upper = float(bound)
            in_bucket = self.counts[i]
            if in_bucket and seen + in_bucket >= target:
                lo = max(lower, float(self.min))
                hi = min(upper, float(self.max))
                frac = (target - seen) / in_bucket
                return lo + (hi - lo) * frac
            seen += in_bucket
            lower = upper
        # Overflow bucket: between the last bound and the observed max.
        in_bucket = self.counts[-1]
        lo = max(lower, float(self.min))
        hi = float(self.max)
        frac = (target - seen) / in_bucket if in_bucket else 1.0
        return lo + (hi - lo) * min(1.0, max(0.0, frac))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.counts)},
                "+Inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Named instruments plus lazily polled callbacks.

    Snapshots are flat ``{name: value}`` dicts — histograms appear as the
    nested dict of :meth:`Histogram.to_dict` — so they serialize straight
    to JSON.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._callbacks: Dict[str, Callable[[], Any]] = {}

    # -- instrument access (get-or-create) -------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_fresh(name)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_fresh(name)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_NS_BUCKETS) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._check_fresh(name)
            inst = self._histograms[name] = Histogram(name, buckets)
        elif tuple(buckets) != inst.buckets:
            raise ValueError(
                f"histogram {name!r} already exists with buckets {inst.buckets}"
            )
        return inst

    def register_callback(self, name: str, fn: Callable[[], Any]) -> None:
        """Poll ``fn()`` at snapshot time under ``name`` (last wins)."""
        if name in self._counters or name in self._gauges or \
                name in self._histograms:
            raise ValueError(f"metric {name!r} already registered")
        self._callbacks[name] = fn

    def _check_fresh(self, name: str) -> None:
        owners = (self._counters, self._gauges, self._histograms,
                  self._callbacks)
        if any(name in o for o in owners):
            raise ValueError(
                f"metric {name!r} already registered with a different type")

    # -- output ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, c in self._counters.items():
            out[name] = c.value
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, h in self._histograms.items():
            out[name] = h.to_dict()
        for name, fn in self._callbacks.items():
            out[name] = fn()
        return out

    def reset(self) -> None:
        """Zero all instruments (callbacks are left registered)."""
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = 0
        for name, h in list(self._histograms.items()):
            self._histograms[name] = Histogram(name, h.buckets)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The no-op registry: every instrument it hands out discards updates.

    Shared singletons keep the disabled path allocation-free; snapshots
    are empty.
    """

    def __init__(self):
        super().__init__("null")
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_NS_BUCKETS) -> Histogram:
        return self._null_histogram

    def register_callback(self, name: str, fn: Callable[[], Any]) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {}


#: the shared no-op registry used when telemetry is globally disabled.
NULL_REGISTRY = NullRegistry()
