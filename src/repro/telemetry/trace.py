"""Simulated-time tracing with Chrome trace-event JSON export.

The :class:`Tracer` records spans and instants stamped in **simulated
nanoseconds** and exports the Chrome trace-event format, loadable in
``chrome://tracing`` or https://ui.perfetto.dev.  The mapping follows the
hardware structure of the simulation:

* one trace **process** (pid) per cluster node, plus one pseudo-process
  per switch of the fabric topology (pid ``num_nodes + switch_index``),
* one trace **thread** (tid) per serialized resource on that node — a QP,
  an endpoint, a NIC pipe (``egress``/``ingress``/``nicproc``), or a
  switch trunk port.

Two span styles are used deliberately:

* resources that are serial by construction (the NIC's FIFO
  :class:`~repro.sim.primitives.RatePipe` pipes) emit paired ``B``/``E``
  events with explicit timestamps — their occupancy intervals never
  overlap, so the begin/end stack discipline always holds;
* everything else (per-message verbs state machines, endpoint stalls,
  where operations on one track interleave freely) emits ``X``
  *complete* events carrying their own duration.

A shared :class:`TraceBudget` bounds the total event count across every
tracer of a session, so ``repro-bench --trace`` on a full-scale figure
produces a file a browser can still open; once exhausted, further events
are counted as dropped, not recorded.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator

__all__ = ["TraceBudget", "Tracer", "NullTracer", "NULL_TRACER"]


class TraceBudget:
    """A shared cap on recorded events (one per session, many tracers)."""

    __slots__ = ("remaining", "dropped")

    def __init__(self, max_events: int = 500_000):
        self.remaining = max_events
        self.dropped = 0

    def take(self, count: int = 1) -> bool:
        """Reserve ``count`` events atomically (all or none)."""
        if self.remaining >= count:
            self.remaining -= count
            return True
        self.dropped += count
        return False


class Tracer:
    """Records trace events in simulated nanoseconds.

    ``pid_base`` offsets every node id, giving each simulated cluster of
    a multi-run session a disjoint pid namespace; ``label`` prefixes the
    process names so runs stay tellable apart in the viewer.
    """

    def __init__(self, sim: "Simulator", budget: Optional[TraceBudget] = None,
                 pid_base: int = 0, label: str = ""):
        self.sim = sim
        self.budget = budget if budget is not None else TraceBudget()
        self.pid_base = pid_base
        self.label = label
        self.events: List[Dict[str, Any]] = []
        self._tids: Dict[Tuple[int, str], int] = {}
        self._pids: Dict[int, str] = {}
        self._next_tid = 1

    # -- identity ---------------------------------------------------------

    def _pid(self, node_id: int) -> int:
        pid = self.pid_base + node_id
        if pid not in self._pids:
            name = f"{self.label}/node{node_id}" if self.label else f"node{node_id}"
            self._pids[pid] = name
        return pid

    def name_process(self, node_id: int, name: str) -> None:
        """Pre-name a trace process before any event lands on it.

        Used for pseudo-nodes that are not cluster machines — switches
        get pid ``num_nodes + switch_index`` with their graph name, so
        trunk-port spans group under e.g. ``leaf0`` instead of a
        phantom ``node9``.  A name set here wins over the ``node{id}``
        auto-naming."""
        pid = self.pid_base + node_id
        self._pids[pid] = f"{self.label}/{name}" if self.label else name

    def _tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = self._next_tid
            self._next_tid += 1
        return tid

    # -- emission ---------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.budget.take():
            self.events.append(event)

    def complete(self, node_id: int, track: str, name: str, start_ns: int,
                 dur_ns: int, cat: str = "", args: Optional[dict] = None) -> None:
        """One ``X`` span with explicit start and duration."""
        pid = self._pid(node_id)
        event = {"ph": "X", "pid": pid, "tid": self._tid(pid, track),
                 "name": name, "cat": cat, "ts": start_ns / 1000.0,
                 "dur": dur_ns / 1000.0}
        if args:
            event["args"] = args
        self._emit(event)

    def span(self, node_id: int, track: str, name: str, start_ns: int,
             end_ns: int, cat: str = "", args: Optional[dict] = None) -> None:
        """A ``B``/``E`` pair with both timestamps known up front.

        Budgeted atomically so a trace never ends on an unmatched begin.
        Only valid on tracks whose spans never nest or overlap (the FIFO
        RatePipes); interleaving operations must use :meth:`complete`.
        """
        if not self.budget.take(2):
            return
        pid = self._pid(node_id)
        tid = self._tid(pid, track)
        begin = {"ph": "B", "pid": pid, "tid": tid, "name": name,
                 "cat": cat, "ts": start_ns / 1000.0}
        if args:
            begin["args"] = args
        self.events.append(begin)
        self.events.append({"ph": "E", "pid": pid, "tid": tid, "name": name,
                            "cat": cat, "ts": end_ns / 1000.0})

    def begin(self, node_id: int, track: str, name: str,
              ts_ns: Optional[int] = None, cat: str = "",
              args: Optional[dict] = None) -> None:
        pid = self._pid(node_id)
        ts = self.sim.now if ts_ns is None else ts_ns
        event = {"ph": "B", "pid": pid, "tid": self._tid(pid, track),
                 "name": name, "cat": cat, "ts": ts / 1000.0}
        if args:
            event["args"] = args
        self._emit(event)

    def end(self, node_id: int, track: str, name: str,
            ts_ns: Optional[int] = None, cat: str = "") -> None:
        pid = self._pid(node_id)
        ts = self.sim.now if ts_ns is None else ts_ns
        self._emit({"ph": "E", "pid": pid, "tid": self._tid(pid, track),
                    "name": name, "cat": cat, "ts": ts / 1000.0})

    def instant(self, node_id: int, track: str, name: str,
                ts_ns: Optional[int] = None, cat: str = "",
                args: Optional[dict] = None) -> None:
        pid = self._pid(node_id)
        ts = self.sim.now if ts_ns is None else ts_ns
        event = {"ph": "i", "pid": pid, "tid": self._tid(pid, track),
                 "name": name, "cat": cat, "ts": ts / 1000.0, "s": "t"}
        if args:
            event["args"] = args
        self._emit(event)

    def counter(self, node_id: int, name: str, values: Dict[str, float],
                ts_ns: Optional[int] = None) -> None:
        """One sample of a ``C`` counter timeline (e.g. queue depth)."""
        pid = self._pid(node_id)
        ts = self.sim.now if ts_ns is None else ts_ns
        self._emit({"ph": "C", "pid": pid, "tid": 0, "name": name,
                    "ts": ts / 1000.0, "args": dict(values)})

    # -- export -----------------------------------------------------------

    def _metadata_events(self) -> List[Dict[str, Any]]:
        meta: List[Dict[str, Any]] = []
        for pid, name in sorted(self._pids.items()):
            meta.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                         "name": "process_name", "args": {"name": name}})
        for (pid, track), tid in sorted(self._tids.items()):
            meta.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                         "name": "thread_name", "args": {"name": track}})
        return meta

    def sorted_events(self) -> List[Dict[str, Any]]:
        """Data events in non-decreasing ``ts`` order (stable)."""
        return sorted(self.events, key=lambda e: e["ts"])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "traceEvents": self._metadata_events() + self.sorted_events(),
            "displayTimeUnit": "ns",
            "otherData": {
                "clock": "simulated nanoseconds (exported as microseconds)",
                "dropped_events": self.budget.dropped,
            },
        }

    def export(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)


class NullTracer:
    """Discards everything; the default when tracing is not requested.

    Instrumented code calls tracer methods unconditionally — the null
    methods return immediately, keeping the disabled path branch-free.
    """

    __slots__ = ()

    events: tuple = ()

    def complete(self, *args, **kwargs) -> None:
        pass

    def name_process(self, *args, **kwargs) -> None:
        pass

    def span(self, *args, **kwargs) -> None:
        pass

    def begin(self, *args, **kwargs) -> None:
        pass

    def end(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass


#: the shared no-op tracer.
NULL_TRACER = NullTracer()
