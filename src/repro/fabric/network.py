"""Nodes and the switched fabric connecting them.

The topology mirrors the paper's clusters: every node has one adapter
plugged into a full-bisection switch, so contention only occurs at the
sender's egress port and the receiver's ingress port.  The fabric is
lossless under congestion (InfiniBand link-level flow control) but — for
the Unreliable Datagram service — may deliver messages out of order, which
is modeled with a bounded random forwarding jitter.  Loss injection (bit
errors, §4.4.2) is available for failure testing and defaults to off.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.fabric.config import ClusterConfig, NetworkConfig
from repro.fabric.nic import NIC
from repro.fabric.packet import Packet
from repro.sim import Event, Simulator, fastpath
from repro.telemetry.core import Telemetry

__all__ = ["Node", "Fabric"]


class Node:
    """One cluster machine: an adapter plus CPU cost helpers."""

    def __init__(self, sim: Simulator, node_id: int, config: NetworkConfig):
        self.sim = sim
        self.id = node_id
        self.config = config
        self.nic = NIC(sim, node_id, config)

    def cpu_delay(self, ns: float) -> Event:
        """A timeout scaled by this node's CPU speed."""
        return self.sim.timeout(self.config.cpu(ns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.id} ({self.config.name})>"


class Fabric:
    """The switched network connecting all nodes of a cluster."""

    def __init__(self, sim: Simulator, cluster: ClusterConfig,
                 telemetry: Optional[Telemetry] = None):
        self.sim = sim
        self.cluster = cluster
        self.config = cluster.network
        self.nodes: List[Node] = [
            Node(sim, i, cluster.network) for i in range(cluster.num_nodes)
        ]
        self._rng = random.Random(cluster.seed)
        self.delivered_messages = 0
        self.dropped_messages = 0
        #: wire bytes carried per directed (src, dst) pair, including
        #: loopback traffic; feeds the link-contention telemetry.
        self.link_bytes: Dict[Tuple[int, int], int] = {}
        self.telemetry = telemetry if telemetry is not None else \
            Telemetry(sim, cluster.num_nodes)
        self.telemetry.attach_fabric(self)
        #: verbs contexts register themselves here (node_id -> VerbsContext)
        #: so Queue Pairs can resolve their peers.
        self.verbs_contexts: dict = {}
        #: runtime sanitizer; ``None`` unless Cluster.enable_sanitizer()
        #: (or repro.analysis.sanitizer.attach_sanitizer) installed one.
        self.sanitizer: Optional[Any] = None
        #: InfiniBand multicast groups: mgid -> set of (node_id, qpn)
        #: attached UD QPs.  The switch replicates a single sender packet
        #: to every member, so the sender's port is charged only once.
        self.mcast_members: dict = {}
        #: route packets via flat callback chains instead of per-packet
        #: generator processes.  Both paths are position-isomorphic (same
        #: heap entries at the same simulated times, same RNG draw order),
        #: so results are bit-identical; see repro.sim.fastpath.
        self.flat_routing = fastpath.enabled()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def route(self, packet: Packet, unordered: bool = False,
              lossy: bool = False,
              egress_event: Optional[Event] = None) -> Event:
        """Carry ``packet`` from source to destination.

        Returns an event that fires with the packet once it has fully
        arrived at the destination NIC (or, for a dropped packet, once the
        fabric has discarded it; ``packet.dropped`` is then True).

        ``unordered`` adds random forwarding jitter so that messages can
        overtake each other — the Unreliable Datagram behaviour.
        ``lossy`` enables loss injection at the configured probability.
        ``egress_event``, if given, fires once the packet has fully left
        the sender's NIC (the point at which an unacknowledged transport
        considers the send complete).
        """
        key = (packet.src_node, packet.dst_node)
        self.link_bytes[key] = self.link_bytes.get(key, 0) + packet.wire_bytes
        if packet.src_node == packet.dst_node:
            return self._route_loopback(packet, egress_event)
        done = Event(self.sim)
        if self.flat_routing:
            self._route_flat(packet, unordered, lossy, done, egress_event)
        else:
            self.sim.process(
                self._route_proc(packet, unordered, lossy, done, egress_event),
                name=f"route-{packet.kind}-{packet.src_node}->{packet.dst_node}",
            )
        return done

    def _route_flat(self, packet: Packet, unordered: bool, lossy: bool,
                    done: Event, egress_event: Optional[Event]) -> None:
        """Flat-callback twin of :meth:`_route_proc`.

        Each stage schedules the next directly on the kernel, so the only
        per-packet allocations are the four closures — no Process, no
        generator frame, no termination event.  The initial ``call_soon``
        stands exactly where the legacy process bootstrap stood, and the
        jitter/loss draws stay inside the stage callbacks, so heap entry
        order and RNG draw order match the generator version event for
        event.
        """
        sim = self.sim
        config = self.config
        src_nic = self.nodes[packet.src_node].nic
        dst_nic = self.nodes[packet.dst_node].nic

        def start() -> None:
            src_nic.submit_tx(packet.wire_bytes, after_egress)

        def after_egress() -> None:
            if egress_event is not None:
                egress_event.succeed(packet)
            latency = config.switch_latency_ns
            if unordered and config.ud_jitter_ns:
                latency += self._rng.randrange(config.ud_jitter_ns)
            sim.call_later(latency, after_switch)

        def after_switch() -> None:
            if lossy and config.ud_loss_probability > 0:
                if self._rng.random() < config.ud_loss_probability:
                    packet.dropped = True
                    self.dropped_messages += 1
                    done.succeed(packet)
                    return
            dst_nic.submit_rx(packet.wire_bytes, packet.dst_qpn, deliver)

        def deliver() -> None:
            self.delivered_messages += 1
            done.succeed(packet)

        sim.call_soon(start)

    def mcast_attach(self, mgid: int, node_id: int, qpn: int) -> None:
        """Attach a UD QP to a multicast group."""
        self.mcast_members.setdefault(mgid, set()).add((node_id, qpn))

    def mcast_detach(self, mgid: int, node_id: int, qpn: int) -> None:
        self.mcast_members.get(mgid, set()).discard((node_id, qpn))

    def route_mcast(self, packet: Packet, mgid: int,
                    egress_event: Optional[Event] = None) -> Event:
        """Replicate one datagram to every group member via the switch.

        The sender's egress port serializes the packet *once*; the switch
        fans it out, and each member's ingress port is charged
        individually.  Returns an event firing with the list of per-member
        delivery events.  The sender, if attached, does not hear its own
        packet (IB loopback suppression is the common HCA default).
        """
        members = [
            m for m in self.mcast_members.get(mgid, ())
            if m[0] != packet.src_node
        ]
        done = Event(self.sim)
        src_nic = self.nodes[packet.src_node].nic

        def fan_out() -> None:
            if egress_event is not None:
                egress_event.succeed(packet)
            deliveries = []
            for node_id, qpn in members:
                deliveries.append(self._mcast_leg(packet, node_id, qpn))
            done.succeed(deliveries)

        if self.flat_routing:
            self.sim.call_soon(lambda: src_nic.submit_tx(packet.wire_bytes,
                                                         fan_out))
        else:
            def proc():
                yield src_nic.transmit(packet.wire_bytes)
                fan_out()

            self.sim.process(proc(), name=f"route-mcast-{mgid}")
        return done

    def _mcast_leg(self, packet: Packet, node_id: int, qpn: int) -> Event:
        """One member's copy: switch hop (+jitter), then its ingress."""
        key = (packet.src_node, node_id)
        self.link_bytes[key] = self.link_bytes.get(key, 0) + packet.wire_bytes
        leg = Event(self.sim)
        copy = Packet(
            src_node=packet.src_node, dst_node=node_id,
            src_qpn=packet.src_qpn, dst_qpn=qpn, kind=packet.kind,
            length=packet.length, wire_bytes=packet.wire_bytes,
            payload=packet.payload, meta=packet.meta,
        )

        if self.flat_routing:
            sim = self.sim
            config = self.config

            def start() -> None:
                # Jitter draws at switch time, not attach time, matching
                # the legacy process's first resumption.
                latency = config.switch_latency_ns
                if config.ud_jitter_ns:
                    latency += self._rng.randrange(config.ud_jitter_ns)
                sim.call_later(latency, after_switch)

            def after_switch() -> None:
                if config.ud_loss_probability > 0:
                    if self._rng.random() < config.ud_loss_probability:
                        copy.dropped = True
                        self.dropped_messages += 1
                        leg.succeed(copy)
                        return
                self.nodes[node_id].nic.submit_rx(copy.wire_bytes, qpn,
                                                  deliver)

            def deliver() -> None:
                self.delivered_messages += 1
                leg.succeed(copy)

            sim.call_soon(start)
            return leg

        def proc():
            latency = self.config.switch_latency_ns
            if self.config.ud_jitter_ns:
                latency += self._rng.randrange(self.config.ud_jitter_ns)
            yield self.sim.timeout(latency)
            if self.config.ud_loss_probability > 0:
                if self._rng.random() < self.config.ud_loss_probability:
                    copy.dropped = True
                    self.dropped_messages += 1
                    leg.succeed(copy)
                    return
            yield self.nodes[node_id].nic.receive(copy.wire_bytes, qpn)
            self.delivered_messages += 1
            leg.succeed(copy)

        self.sim.process(proc(), name="mcast-leg")
        return leg

    def _route_loopback(self, packet: Packet,
                        egress_event: Optional[Event]) -> Event:
        """Local delivery: loops through the HCA, skipping the switch.

        RDMA to one's own node still traverses the adapter (PCIe DMA out
        and back in), so both port pipes are charged; only the switch hop
        and loss/jitter are skipped.
        """
        done = Event(self.sim)
        node = self.nodes[packet.src_node]
        if self.flat_routing:
            def start() -> None:
                node.nic.submit_tx(packet.wire_bytes, after_egress)

            def after_egress() -> None:
                if egress_event is not None:
                    egress_event.succeed(packet)
                node.nic.submit_rx(packet.wire_bytes, packet.dst_qpn,
                                   deliver)

            def deliver() -> None:
                self.delivered_messages += 1
                done.succeed(packet)

            self.sim.call_soon(start)
            return done

        def proc():
            yield node.nic.transmit(packet.wire_bytes)
            if egress_event is not None:
                egress_event.succeed(packet)
            yield node.nic.receive(packet.wire_bytes, packet.dst_qpn)
            self.delivered_messages += 1
            done.succeed(packet)

        self.sim.process(proc(), name="route-loopback")
        return done

    def _route_proc(self, packet: Packet, unordered: bool, lossy: bool,
                    done: Event, egress_event: Optional[Event]):
        src = self.nodes[packet.src_node]
        dst = self.nodes[packet.dst_node]
        yield src.nic.transmit(packet.wire_bytes)
        if egress_event is not None:
            egress_event.succeed(packet)
        latency = self.config.switch_latency_ns
        if unordered and self.config.ud_jitter_ns:
            latency += self._rng.randrange(self.config.ud_jitter_ns)
        yield self.sim.timeout(latency)
        if lossy and self.config.ud_loss_probability > 0:
            if self._rng.random() < self.config.ud_loss_probability:
                packet.dropped = True
                self.dropped_messages += 1
                done.succeed(packet)
                return
        yield dst.nic.receive(packet.wire_bytes, packet.dst_qpn)
        self.delivered_messages += 1
        done.succeed(packet)
