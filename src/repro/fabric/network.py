"""Nodes and the switched fabric connecting them.

The fabric is now three collaborating pieces:

* :mod:`repro.fabric.topology` — the explicit switch graph: ports,
  links, precomputed per-pair routes (built from the cluster's
  :class:`~repro.fabric.config.TopologySpec`);
* :mod:`repro.fabric.routing` — the generic path-walker executing a
  route's hop sequence, in position-isomorphic flat-callback and legacy
  generator variants;
* this module — NIC attachment, delivery accounting, and the loss and
  jitter policy (what *unordered*/*lossy* mean).

The default ``SINGLE_SWITCH`` topology mirrors the paper's clusters:
every node has one adapter plugged into a full-bisection switch, so
contention only occurs at the sender's egress port and the receiver's
ingress port.  Multi-switch presets add contention at trunk ports.  The
fabric is lossless under congestion (InfiniBand link-level flow
control) but — for the Unreliable Datagram service — may deliver
messages out of order, which is modeled with a bounded random
forwarding jitter.  Loss injection (bit errors, §4.4.2) is available
for failure testing and defaults to off.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.fabric import routing
from repro.fabric.config import ClusterConfig, NetworkConfig
from repro.fabric.nic import NIC
from repro.fabric.packet import Packet, clone_for_member
from repro.fabric.topology import Hop, Topology
from repro.sim import Event, Simulator, fastpath, trains
from repro.telemetry.core import Telemetry

__all__ = ["Node", "Fabric"]


class Node:
    """One cluster machine: an adapter plus CPU cost helpers."""

    def __init__(self, sim: Simulator, node_id: int, config: NetworkConfig):
        self.sim = sim
        self.id = node_id
        self.config = config
        self.nic = NIC(sim, node_id, config)

    def cpu_delay(self, ns: float) -> Event:
        """A timeout scaled by this node's CPU speed.

        ``ns`` may be fractional (per-tuple cost models multiply);
        :meth:`NetworkConfig.cpu` rounds to integer nanoseconds exactly
        once, here at the simulation boundary.
        """
        return self.sim.timeout(self.config.cpu(ns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.id} ({self.config.name})>"


class Fabric:
    """The switched network connecting all nodes of a cluster."""

    def __init__(self, sim: Simulator, cluster: ClusterConfig,
                 telemetry: Optional[Telemetry] = None):
        self.sim = sim
        self.cluster = cluster
        self.config = cluster.network
        self.nodes: List[Node] = [
            Node(sim, i, cluster.network) for i in range(cluster.num_nodes)
        ]
        #: the live switch graph; owns trunk-port pipes and routes.
        self.topology = Topology(sim, cluster.topology, cluster.network,
                                 cluster.num_nodes)
        self._rng = random.Random(cluster.seed)
        self.delivered_messages = 0
        #: MTU packets delivered (mode-invariant train accounting; the
        #: message counter above is what telemetry snapshots report).
        self.delivered_packets = 0
        self.dropped_messages = 0
        #: wire bytes carried per directed (src, dst) pair, including
        #: loopback traffic; feeds the link-contention telemetry.
        self.link_bytes: Dict[Tuple[int, int], int] = {}
        self.telemetry = telemetry if telemetry is not None else \
            Telemetry(sim, cluster.num_nodes)
        self.telemetry.attach_fabric(self)
        #: verbs contexts register themselves here (node_id -> VerbsContext)
        #: so Queue Pairs can resolve their peers.
        self.verbs_contexts: dict = {}
        #: runtime sanitizer; ``None`` unless Cluster.enable_sanitizer()
        #: (or repro.analysis.sanitizer.attach_sanitizer) installed one.
        self.sanitizer: Optional[Any] = None
        #: per-tenant resource arbiter; ``None`` unless
        #: Cluster.enable_quotas() installed one.  Duck-typed like the
        #: sanitizer hook: the verbs layer calls ``on_qp_created`` /
        #: ``on_qp_destroyed`` / ``on_mr_registered`` /
        #: ``on_mr_deregistered`` without importing the service layer.
        self.quotas: Optional[Any] = None
        #: causal link recorder, mirrored here by Telemetry.enable_links()
        #: so the routing walkers can record trunk occupancy without an
        #: attribute chase; None keeps recording a single branch.
        self.links = getattr(self.telemetry, "links", None)
        #: InfiniBand multicast groups: mgid -> set of (node_id, qpn)
        #: attached UD QPs.  The fabric replicates a single sender packet
        #: to every member at the last common switch, so the sender's
        #: port (and any shared trunk) is charged only once.
        self.mcast_members: dict = {}
        #: route packets via flat callback chains instead of per-packet
        #: generator processes.  Both paths are position-isomorphic (same
        #: heap entries at the same simulated times, same RNG draw order),
        #: so results are bit-identical; see repro.sim.fastpath.
        self.flat_routing = fastpath.enabled()
        #: charge each message's MTU packets as one train per pipe (the
        #: default) instead of ticking every MTU boundary; both modes
        #: produce bit-identical end times and metrics — see
        #: repro.sim.trains.  The live switches live on the pipes
        #: (RatePipe.split_packets), read once at construction.
        self.train_routing = trains.enabled()

    def use_packet_oracle(self, split: bool = True) -> None:
        """Flip every fabric pipe between train charging and the
        per-packet oracle, for in-process A/B runs (tests, the event
        -reduction benchmark).  Only meaningful on a quiesced fabric —
        mid-flight trains keep the mode they were submitted under."""
        self.train_routing = not split
        for node in self.nodes:
            node.nic.egress.split_packets = split
            node.nic.ingress.split_packets = split
        for port in self.topology.ports():
            port.pipe.split_packets = split

    def dispose(self) -> None:
        """Release the fabric's node and context tables on teardown.

        Breaks the fabric<->context hub edges so a finished cluster can
        be reclaimed by reference counting (see :meth:`Cluster.dispose`);
        the fabric is unusable afterwards.
        """
        self.verbs_contexts.clear()
        self.mcast_members.clear()
        self.link_bytes.clear()
        self.nodes.clear()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def route(self, packet: Packet, unordered: bool = False,
              lossy: bool = False,
              egress_event: Optional[Event] = None) -> Event:
        """Carry ``packet`` from source to destination.

        Returns an event that fires with the packet once it has fully
        arrived at the destination NIC (or, for a dropped packet, once the
        fabric has discarded it; ``packet.dropped`` is then True).

        ``unordered`` adds random forwarding jitter so that messages can
        overtake each other — the Unreliable Datagram behaviour.
        ``lossy`` enables loss injection at the configured probability.
        ``egress_event``, if given, fires once the packet has fully left
        the sender's NIC (the point at which an unacknowledged transport
        considers the send complete).

        Loopback (``src == dst``) turns around inside the HCA: PCIe DMA
        out and back in, so both port pipes are charged, but the route
        has no hops — no switch latency, no jitter, no loss.
        """
        key = (packet.src_node, packet.dst_node)
        self.link_bytes[key] = self.link_bytes.get(key, 0) + packet.wire_bytes
        loopback = packet.src_node == packet.dst_node
        if loopback:
            unordered = lossy = False
        hops = self.topology.route_hops(packet.src_node, packet.dst_node)
        done = Event(self.sim)
        if self.flat_routing:
            routing.flat_route(self, packet, hops, unordered, lossy, done,
                               egress_event)
        else:
            name = ("route-loopback" if loopback else
                    f"route-{packet.kind}-"
                    f"{packet.src_node}->{packet.dst_node}")
            self.sim.process(
                routing.proc_route(self, packet, hops, unordered, lossy,
                                   done, egress_event),
                name=name,
            )
        return done

    def mcast_attach(self, mgid: int, node_id: int, qpn: int) -> None:
        """Attach a UD QP to a multicast group."""
        self.mcast_members.setdefault(mgid, set()).add((node_id, qpn))

    def mcast_detach(self, mgid: int, node_id: int, qpn: int) -> None:
        self.mcast_members.get(mgid, set()).discard((node_id, qpn))

    def route_mcast(self, packet: Packet, mgid: int,
                    egress_event: Optional[Event] = None) -> Event:
        """Replicate one datagram to every group member.

        The sender's egress port serializes the packet *once*; the
        topology splits the member paths into a shared trunk (walked
        once) and per-member legs that start at the last common switch,
        where replication happens.  Each member's ingress port is
        charged individually.  Returns an event firing with the list of
        per-member delivery events.  The sender, if attached, does not
        hear its own packet (IB loopback suppression is the common HCA
        default).
        """
        members = [
            m for m in self.mcast_members.get(mgid, ())
            if m[0] != packet.src_node
        ]
        trunk, leg_hops = self.topology.mcast_route(
            packet.src_node, tuple(m[0] for m in members))
        done = Event(self.sim)

        def fan_out() -> None:
            deliveries = []
            for node_id, qpn in members:
                deliveries.append(
                    self._mcast_leg(packet, node_id, qpn,
                                    leg_hops[node_id]))
            done.succeed(deliveries)

        if self.flat_routing:
            routing.flat_route(self, packet, trunk, False, False, done,
                               egress_event, terminal=fan_out)
        else:
            self.sim.process(
                routing.proc_route(self, packet, trunk, False, False, done,
                                   egress_event, terminal=fan_out),
                name=f"route-mcast-{mgid}")
        return done

    def _mcast_leg(self, packet: Packet, node_id: int, qpn: int,
                   hops: Tuple[Hop, ...]) -> Event:
        """One member's copy: its leg of the distribution tree, then its
        ingress.  Legs are datagrams (jitter and loss both apply)."""
        key = (packet.src_node, node_id)
        self.link_bytes[key] = self.link_bytes.get(key, 0) + packet.wire_bytes
        leg = Event(self.sim)
        copy = clone_for_member(packet, node_id, qpn)
        if self.flat_routing:
            routing.flat_leg(self, copy, hops, leg)
        else:
            self.sim.process(routing.proc_leg(self, copy, hops, leg),
                             name="mcast-leg")
        return leg
