"""The generic path-walker: one pipeline for every routing shape.

Unicast, loopback and the two halves of multicast (shared trunk,
per-member legs) were four near-duplicate egress→switch→ingress
pipelines in the fabric, each duplicated again across the flat-callback
fast path and the legacy generator path.  This module replaces them with
one walker over a precomputed hop sequence
(:class:`~repro.fabric.topology.Route`):

    egress pipe → [port pipe?, forwarding latency]* → loss? → ingress

Both variants are position-isomorphic — every heap entry is created at
the same simulated time and code position, and the jitter/loss RNG
draws happen in the same order — so ``REPRO_FASTPATH=0`` remains a
bit-identical oracle (see :mod:`repro.sim.fastpath`):

* the flat walker's entry point stands exactly where the legacy process
  bootstrap stood (one ``call_soon``),
* a portless hop is one ``call_later`` in both variants; a port hop is
  one pipe completion plus one ``call_later``/``timeout``,
* forwarding jitter (unordered delivery) is drawn on the *first* hop,
  after the egress event fires; loss is drawn after the last hop,
  before the ingress pipe — matching the pre-topology fabric on the
  degenerate single-switch graph.

Latencies arrive here as validated integers
(:class:`~repro.fabric.topology.Hop` is the rounding boundary); the
walkers assert that instead of rounding per packet.

The walkers move whole packet *trains*: every pipe along the path —
egress, trunk ports, ingress — is charged with ``packet.n_packets``
MTU packets' worth of serialization in one event (or, under the
``REPRO_TRAINS=0`` oracle, one tick per MTU boundary; see
:mod:`repro.sim.trains`).  Delivery accounting, loss draws, jitter
draws and trunk links records all stay per *message*: exactly one per
train, from the same code positions in both modes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.fabric.packet import Packet
from repro.fabric.topology import Hop
from repro.sim import Event

__all__ = ["flat_route", "proc_route", "flat_leg", "proc_leg"]

#: a multicast fan-out continuation run instead of ingress delivery.
Terminal = Optional[Callable[[], None]]


def _record_trunk(fabric, port, packet: Packet) -> None:
    """Record one trunk-port occupancy for the critical-path analyzer.

    Called from the same position on both walkers, immediately before the
    pipe entry, so the pre-submit ``busy_until`` read gives the interval
    start and the queueing delay without touching simulation state.
    """
    pipe = port.pipe
    busy_until = pipe.busy_until
    now = fabric.sim.now
    start = busy_until if busy_until > now else now
    fabric.links.pipe("trunk", port.name, start,
                      pipe._serialization_ns(packet.wire_bytes), 0, 0,
                      max(0, busy_until - now), packet.flow)


class _HopWalk:
    """The multi-hop walk of :func:`_flat_walk` as a slotted object.

    Calling the instance starts the walk at hop 0; each hop schedules
    ``_forward`` (after the port pipe, where there is one), which in
    turn schedules ``_advance`` for the next hop after the forwarding
    latency.  Identical heap-entry and RNG-draw positions to the old
    recursive closure, without the closure's self-referential cell — so
    finished walks are reclaimed by reference counting alone.
    """

    __slots__ = ("fabric", "sim", "config", "rng", "packet", "hops",
                 "unordered", "finish", "index", "latency")

    def __init__(self, fabric, sim, config, rng, packet: Packet,
                 hops: Sequence[Hop], unordered: bool,
                 finish: Callable[[], None]):
        self.fabric = fabric
        self.sim = sim
        self.config = config
        self.rng = rng
        self.packet = packet
        self.hops = hops
        self.unordered = unordered
        self.finish = finish
        self.index = 0
        self.latency = 0

    def __call__(self) -> None:
        self._advance()

    def _advance(self) -> None:
        index = self.index
        if index == len(self.hops):
            self.finish()
            return
        hop = self.hops[index]
        latency = hop.latency_ns
        if index == 0 and self.unordered and self.config.ud_jitter_ns:
            latency += self.rng.randrange(self.config.ud_jitter_ns)
        assert type(latency) is int, "hop latency must be integer ns"
        self.index = index + 1
        self.latency = latency
        if hop.port is None:
            self._forward()
        else:
            if self.fabric.links is not None:
                _record_trunk(self.fabric, hop.port, self.packet)
            hop.port.pipe.submit_train(self.packet.wire_bytes,
                                       self.packet.n_packets, self._forward)

    def _forward(self) -> None:
        self.sim.call_later(self.latency, self._advance)


def _flat_walk(fabric, packet: Packet, hops: Sequence[Hop],
               unordered: bool, lossy: bool, done: Event,
               terminal: Terminal) -> Callable[[], None]:
    """Build the flat-callback hop walk; returns its entry point.

    With ``terminal`` the walk ends there (the multicast trunk hands
    over to the fan-out); otherwise it ends in the loss draw and the
    destination's ingress pipe.
    """
    sim = fabric.sim
    config = fabric.config
    rng = fabric._rng

    def deliver() -> None:
        fabric.delivered_messages += 1
        fabric.delivered_packets += packet.n_packets
        done.succeed(packet)

    def ingress() -> None:
        if lossy and config.ud_loss_probability > 0:
            if rng.random() < config.ud_loss_probability:
                packet.dropped = True
                fabric.dropped_messages += 1
                done.succeed(packet)
                return
        fabric.nodes[packet.dst_node].nic.submit_rx(
            packet.wire_bytes, packet.dst_qpn, deliver, flow=packet.flow,
            n_packets=packet.n_packets)

    finish = terminal if terminal is not None else ingress

    # Specialized shapes for the hot cases — identical heap entries and
    # RNG draw positions, just without the generic walker's closures.
    # Latencies are already validated integers (the Hop constructor is
    # the rounding boundary), so the invariant holds by construction.
    if not hops:  # loopback: the HCA turns the packet around
        return finish
    if len(hops) == 1 and hops[0].port is None:
        base = hops[0].latency_ns
        if unordered and config.ud_jitter_ns:
            jitter = config.ud_jitter_ns

            def single_jittered() -> None:
                sim.call_later(base + rng.randrange(jitter), finish)

            return single_jittered

        def single() -> None:
            sim.call_later(base, finish)

        return single

    # Multi-hop: a slotted walker object instead of a recursive closure.
    # A closure that schedules itself (``lambda: advance(index + 1)``)
    # refers to its own cell — a reference cycle per message that only a
    # full gc pass can reclaim, which is ruinous at mesoscale.  The
    # walker threads the hop index through instance state instead (the
    # walk is strictly sequential), keeping every heap entry and RNG
    # draw at the same position while staying refcount-collectable.
    return _HopWalk(fabric, sim, config, rng, packet, hops, unordered,
                    finish)


def flat_route(fabric, packet: Packet, hops: Tuple[Hop, ...],
               unordered: bool, lossy: bool, done: Event,
               egress_event: Optional[Event] = None,
               terminal: Terminal = None) -> None:
    """Flat-callback routing: egress pipe, then the hop walk.

    The initial ``call_soon`` stands exactly where the legacy process
    bootstrap stood; the only per-packet allocations are the stage
    closures — no Process, no generator frame.
    """
    walk = _flat_walk(fabric, packet, hops, unordered, lossy, done, terminal)
    src_nic = fabric.nodes[packet.src_node].nic

    def start() -> None:
        src_nic.submit_tx(packet.wire_bytes, after_egress, flow=packet.flow,
                          n_packets=packet.n_packets)

    def after_egress() -> None:
        if egress_event is not None:
            egress_event.succeed(packet)
        walk()

    fabric.sim.call_soon(start)


def flat_leg(fabric, packet: Packet, hops: Tuple[Hop, ...],
             done: Event) -> None:
    """One multicast leg: the walk without an egress stage (the trunk
    already paid the sender's port once for the whole group).  Legs are
    datagrams: always unordered and lossy."""
    fabric.sim.call_soon(
        _flat_walk(fabric, packet, hops, True, True, done, None))


def proc_route(fabric, packet: Packet, hops: Tuple[Hop, ...],
               unordered: bool, lossy: bool, done: Event,
               egress_event: Optional[Event] = None,
               terminal: Terminal = None):
    """Legacy generator twin of :func:`flat_route` (``REPRO_FASTPATH=0``)."""
    yield fabric.nodes[packet.src_node].nic.transmit(
        packet.wire_bytes, flow=packet.flow, n_packets=packet.n_packets)
    if egress_event is not None:
        egress_event.succeed(packet)
    yield from _proc_walk(fabric, packet, hops, unordered, lossy, done,
                          terminal)


def proc_leg(fabric, packet: Packet, hops: Tuple[Hop, ...], done: Event):
    """Legacy generator twin of :func:`flat_leg`."""
    yield from _proc_walk(fabric, packet, hops, True, True, done, None)


def _proc_walk(fabric, packet: Packet, hops: Sequence[Hop],
               unordered: bool, lossy: bool, done: Event,
               terminal: Terminal):
    sim = fabric.sim
    config = fabric.config
    rng = fabric._rng
    for index, hop in enumerate(hops):
        latency = hop.latency_ns
        if index == 0 and unordered and config.ud_jitter_ns:
            latency += rng.randrange(config.ud_jitter_ns)
        assert type(latency) is int, "hop latency must be integer ns"
        if hop.port is not None:
            if fabric.links is not None:
                _record_trunk(fabric, hop.port, packet)
            yield hop.port.pipe.transmit_train(packet.wire_bytes,
                                               packet.n_packets)
        yield sim.timeout(latency)
    if terminal is not None:
        terminal()
        return
    if lossy and config.ud_loss_probability > 0:
        if rng.random() < config.ud_loss_probability:
            packet.dropped = True
            fabric.dropped_messages += 1
            done.succeed(packet)
            return
    yield fabric.nodes[packet.dst_node].nic.receive(
        packet.wire_bytes, packet.dst_qpn, flow=packet.flow,
        n_packets=packet.n_packets)
    fabric.delivered_messages += 1
    fabric.delivered_packets += packet.n_packets
    done.succeed(packet)
