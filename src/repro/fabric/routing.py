"""The generic path-walker: one pipeline for every routing shape.

Unicast, loopback and the two halves of multicast (shared trunk,
per-member legs) were four near-duplicate egress→switch→ingress
pipelines in the fabric, each duplicated again across the flat-callback
fast path and the legacy generator path.  This module replaces them with
one walker over a precomputed hop sequence
(:class:`~repro.fabric.topology.Route`):

    egress pipe → [port pipe?, forwarding latency]* → loss? → ingress

Both variants are position-isomorphic — every heap entry is created at
the same simulated time and code position, and the jitter/loss RNG
draws happen in the same order — so ``REPRO_FASTPATH=0`` remains a
bit-identical oracle (see :mod:`repro.sim.fastpath`):

* the flat walker's entry point stands exactly where the legacy process
  bootstrap stood (one ``call_soon``),
* a portless hop is one ``call_later`` in both variants; a port hop is
  one pipe completion plus one ``call_later``/``timeout``,
* forwarding jitter (unordered delivery) is drawn on the *first* hop,
  after the egress event fires; loss is drawn after the last hop,
  before the ingress pipe — matching the pre-topology fabric on the
  degenerate single-switch graph.

Latencies arrive here as validated integers
(:class:`~repro.fabric.topology.Hop` is the rounding boundary); the
walkers assert that instead of rounding per packet.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.fabric.packet import Packet
from repro.fabric.topology import Hop
from repro.sim import Event

__all__ = ["flat_route", "proc_route", "flat_leg", "proc_leg"]

#: a multicast fan-out continuation run instead of ingress delivery.
Terminal = Optional[Callable[[], None]]


def _record_trunk(fabric, port, packet: Packet) -> None:
    """Record one trunk-port occupancy for the critical-path analyzer.

    Called from the same position on both walkers, immediately before the
    pipe entry, so the pre-submit ``busy_until`` read gives the interval
    start and the queueing delay without touching simulation state.
    """
    pipe = port.pipe
    busy_until = pipe.busy_until
    now = fabric.sim.now
    start = busy_until if busy_until > now else now
    fabric.links.pipe("trunk", port.name, start,
                      pipe._serialization_ns(packet.wire_bytes), 0, 0,
                      max(0, busy_until - now), packet.flow)


def _flat_walk(fabric, packet: Packet, hops: Sequence[Hop],
               unordered: bool, lossy: bool, done: Event,
               terminal: Terminal) -> Callable[[], None]:
    """Build the flat-callback hop walk; returns its entry point.

    With ``terminal`` the walk ends there (the multicast trunk hands
    over to the fan-out); otherwise it ends in the loss draw and the
    destination's ingress pipe.
    """
    sim = fabric.sim
    config = fabric.config
    rng = fabric._rng

    def deliver() -> None:
        fabric.delivered_messages += 1
        done.succeed(packet)

    def ingress() -> None:
        if lossy and config.ud_loss_probability > 0:
            if rng.random() < config.ud_loss_probability:
                packet.dropped = True
                fabric.dropped_messages += 1
                done.succeed(packet)
                return
        fabric.nodes[packet.dst_node].nic.submit_rx(
            packet.wire_bytes, packet.dst_qpn, deliver, flow=packet.flow)

    finish = terminal if terminal is not None else ingress

    # Specialized shapes for the hot cases — identical heap entries and
    # RNG draw positions, just without the generic walker's closures.
    # Latencies are already validated integers (the Hop constructor is
    # the rounding boundary), so the invariant holds by construction.
    if not hops:  # loopback: the HCA turns the packet around
        return finish
    if len(hops) == 1 and hops[0].port is None:
        base = hops[0].latency_ns
        if unordered and config.ud_jitter_ns:
            jitter = config.ud_jitter_ns

            def single_jittered() -> None:
                sim.call_later(base + rng.randrange(jitter), finish)

            return single_jittered

        def single() -> None:
            sim.call_later(base, finish)

        return single

    def advance(index: int) -> None:
        if index == len(hops):
            finish()
            return
        hop = hops[index]
        latency = hop.latency_ns
        if index == 0 and unordered and config.ud_jitter_ns:
            latency += rng.randrange(config.ud_jitter_ns)
        assert type(latency) is int, "hop latency must be integer ns"

        def forward() -> None:
            sim.call_later(latency, lambda: advance(index + 1))

        if hop.port is None:
            forward()
        else:
            if fabric.links is not None:
                _record_trunk(fabric, hop.port, packet)
            hop.port.pipe.submit(packet.wire_bytes, forward)

    return lambda: advance(0)


def flat_route(fabric, packet: Packet, hops: Tuple[Hop, ...],
               unordered: bool, lossy: bool, done: Event,
               egress_event: Optional[Event] = None,
               terminal: Terminal = None) -> None:
    """Flat-callback routing: egress pipe, then the hop walk.

    The initial ``call_soon`` stands exactly where the legacy process
    bootstrap stood; the only per-packet allocations are the stage
    closures — no Process, no generator frame.
    """
    walk = _flat_walk(fabric, packet, hops, unordered, lossy, done, terminal)
    src_nic = fabric.nodes[packet.src_node].nic

    def start() -> None:
        src_nic.submit_tx(packet.wire_bytes, after_egress, flow=packet.flow)

    def after_egress() -> None:
        if egress_event is not None:
            egress_event.succeed(packet)
        walk()

    fabric.sim.call_soon(start)


def flat_leg(fabric, packet: Packet, hops: Tuple[Hop, ...],
             done: Event) -> None:
    """One multicast leg: the walk without an egress stage (the trunk
    already paid the sender's port once for the whole group).  Legs are
    datagrams: always unordered and lossy."""
    fabric.sim.call_soon(
        _flat_walk(fabric, packet, hops, True, True, done, None))


def proc_route(fabric, packet: Packet, hops: Tuple[Hop, ...],
               unordered: bool, lossy: bool, done: Event,
               egress_event: Optional[Event] = None,
               terminal: Terminal = None):
    """Legacy generator twin of :func:`flat_route` (``REPRO_FASTPATH=0``)."""
    yield fabric.nodes[packet.src_node].nic.transmit(packet.wire_bytes,
                                                     flow=packet.flow)
    if egress_event is not None:
        egress_event.succeed(packet)
    yield from _proc_walk(fabric, packet, hops, unordered, lossy, done,
                          terminal)


def proc_leg(fabric, packet: Packet, hops: Tuple[Hop, ...], done: Event):
    """Legacy generator twin of :func:`flat_leg`."""
    yield from _proc_walk(fabric, packet, hops, True, True, done, None)


def _proc_walk(fabric, packet: Packet, hops: Sequence[Hop],
               unordered: bool, lossy: bool, done: Event,
               terminal: Terminal):
    sim = fabric.sim
    config = fabric.config
    rng = fabric._rng
    for index, hop in enumerate(hops):
        latency = hop.latency_ns
        if index == 0 and unordered and config.ud_jitter_ns:
            latency += rng.randrange(config.ud_jitter_ns)
        assert type(latency) is int, "hop latency must be integer ns"
        if hop.port is not None:
            if fabric.links is not None:
                _record_trunk(fabric, hop.port, packet)
            yield hop.port.pipe.transmit(packet.wire_bytes)
        yield sim.timeout(latency)
    if terminal is not None:
        terminal()
        return
    if lossy and config.ud_loss_probability > 0:
        if rng.random() < config.ud_loss_probability:
            packet.dropped = True
            fabric.dropped_messages += 1
            done.succeed(packet)
            return
    yield fabric.nodes[packet.dst_node].nic.receive(
        packet.wire_bytes, packet.dst_qpn, flow=packet.flow)
    fabric.delivered_messages += 1
    done.succeed(packet)
