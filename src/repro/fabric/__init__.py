"""Simulated InfiniBand fabric.

This package models the hardware substrate the paper's evaluation ran on:

* :mod:`repro.fabric.config` — calibrated constants for the two clusters
  (56 Gbps FDR and 100 Gbps EDR InfiniBand) and the CPU cost model.
* :mod:`repro.fabric.nic` — the network adapter: egress/ingress
  serialization, a per-work-request processing engine, and the LRU Queue
  Pair context cache whose misses reproduce the "too many QPs" effect.
* :mod:`repro.fabric.network` — nodes and the switched fabric connecting
  them, including UD out-of-order jitter and optional loss injection.
"""

from repro.fabric.config import (
    EDR,
    FDR,
    ClusterConfig,
    NetworkConfig,
)
from repro.fabric.network import Fabric, Node
from repro.fabric.nic import NIC, QPContextCache
from repro.fabric.packet import Packet

__all__ = [
    "EDR",
    "FDR",
    "ClusterConfig",
    "Fabric",
    "NIC",
    "NetworkConfig",
    "Node",
    "Packet",
    "QPContextCache",
]
