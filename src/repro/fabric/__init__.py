"""Simulated InfiniBand fabric.

This package models the hardware substrate the paper's evaluation ran on:

* :mod:`repro.fabric.config` — calibrated constants for the two clusters
  (56 Gbps FDR and 100 Gbps EDR InfiniBand) and the CPU cost model.
* :mod:`repro.fabric.nic` — the network adapter: egress/ingress
  serialization, a per-work-request processing engine, and the LRU Queue
  Pair context cache whose misses reproduce the "too many QPs" effect.
* :mod:`repro.fabric.topology` — the explicit switch graph: ports,
  switches, links and precomputed routes, built from a
  :class:`~repro.fabric.config.TopologySpec` preset (single-switch,
  oversubscribed leaf-spine, dual-rail).
* :mod:`repro.fabric.routing` — the generic path-walker executing a
  route's hop sequence (flat-callback fast path and its legacy
  generator oracle).
* :mod:`repro.fabric.network` — nodes and the switched fabric connecting
  them, including UD out-of-order jitter and optional loss injection.
"""

from repro.fabric.config import (
    DUAL_RAIL,
    EDR,
    FDR,
    LEAF_SPINE,
    SINGLE_SWITCH,
    ClusterConfig,
    NetworkConfig,
    TopologySpec,
    parse_topology,
)
from repro.fabric.network import Fabric, Node
from repro.fabric.nic import NIC, QPContextCache
from repro.fabric.packet import Packet
from repro.fabric.topology import Topology

__all__ = [
    "DUAL_RAIL",
    "EDR",
    "FDR",
    "LEAF_SPINE",
    "SINGLE_SWITCH",
    "ClusterConfig",
    "Fabric",
    "NIC",
    "NetworkConfig",
    "Node",
    "Packet",
    "QPContextCache",
    "Topology",
    "TopologySpec",
    "parse_topology",
]
