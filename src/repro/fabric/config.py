"""Calibrated configuration for the simulated clusters.

Every physical constant used anywhere in the reproduction lives here, so
the calibration is auditable in one place.  Two presets mirror the paper's
evaluation platforms (§5):

* :data:`FDR` — 56 Gbps FDR InfiniBand, 2× Intel Xeon E5-2670v2 (10 cores).
* :data:`EDR` — 100 Gbps EDR InfiniBand, 2× Intel Xeon E5-2680v4 (14 cores).

The constants were chosen so that the *shapes* of the paper's figures hold
(who wins, where degradation sets in, where crossovers fall); see
EXPERIMENTS.md for the paper-vs-measured comparison.  Rates are expressed
in bytes per nanosecond, which is numerically identical to GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NetworkConfig", "ClusterConfig", "FDR", "EDR",
    "TopologySpec", "SINGLE_SWITCH", "LEAF_SPINE", "DUAL_RAIL",
    "parse_topology", "default_topology", "set_default_topology",
]

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

US = 1_000  # nanoseconds per microsecond
MS = 1_000_000  # nanoseconds per millisecond


@dataclass(frozen=True)
class NetworkConfig:
    """Constants describing one cluster generation (network + CPU)."""

    name: str

    # ---- link ----------------------------------------------------------
    #: effective data rate of one port after 64b/66b encoding, bytes/ns.
    link_bytes_per_ns: float
    #: one-way propagation + switch forwarding latency.
    switch_latency_ns: int
    #: path MTU; also the maximum Unreliable Datagram message size (§2.2.2).
    mtu: int

    # ---- per-message wire overheads -------------------------------------
    #: LRH+BTH+ICRC framing for an RC packet.
    rc_header_bytes: int
    #: GRH(40)+LRH+BTH+DETH framing for a UD packet.
    ud_header_bytes: int
    #: size of an RC acknowledgment on the reverse path.
    rc_ack_bytes: int

    # ---- NIC ------------------------------------------------------------
    #: NIC processing time per work request (doorbell + WQE fetch + DMA
    #: setup); occupies the NIC processing engine.
    nic_wr_ns: int
    #: number of Queue Pair contexts the NIC caches on-chip.  When the
    #: working set exceeds this, every touch of a cold QP pays
    #: ``qp_cache_miss_ns`` for a PCIe fetch — the mechanism behind the
    #: MQ-design degradation on FDR at 16 nodes (Figs 10, 11; [8,16,17]).
    qp_cache_entries: int
    #: penalty per QP-context cache miss.
    qp_cache_miss_ns: int
    #: maximum work-queue depth supported by the hardware.
    max_qp_depth: int

    # ---- RDMA control-path costs ----------------------------------------
    #: time to create + transition one RC QP to RTS, including the
    #: out-of-band exchange of routing information (Fig 12).
    rc_qp_connect_ns: int
    #: time to create one UD QP (no per-peer handshake).
    ud_qp_setup_ns: int
    #: time to create one address handle for a UD destination.
    ah_create_ns: int
    #: memory registration: fixed cost plus per-4KiB-page pinning cost.
    mr_register_base_ns: int
    mr_register_ns_per_page: int
    mr_deregister_ns_per_page: int

    # ---- CPU cost model ---------------------------------------------------
    #: multiplier on all CPU-side costs (FDR cluster has older, slower
    #: cores; the paper notes local processing is ~50% faster on EDR).
    cpu_scale: float
    #: worker threads available per query fragment (cores are exclusively
    #: bound; paper uses one thread per core).
    cores_per_node: int
    #: hash + branch cost per tuple during partitioning (Alg. 1 line 8).
    hash_ns_per_tuple: float
    #: memcpy cost per byte when copying tuples into registered buffers.
    copy_ns_per_byte: float
    #: CPU time to post one send/recv work request (ibv_post_send /
    #: ibv_post_recv), charged to the calling thread.
    post_wr_ns: int
    #: CPU time for one ibv_poll_cq invocation.
    poll_cq_ns: int
    #: extra serialized bookkeeping (credit check, state update) an
    #: endpoint performs per SEND under its lock; this is what makes the
    #: shared single-QP design (SESQ/SR) contend (§5.1.3 profiling).
    endpoint_send_ns: int

    # ---- TCP/IP over InfiniBand (the IPoIB baseline) ---------------------
    #: per-byte CPU cost of the kernel TCP stack (each side); the paper's
    #: profiling shows ~2/3 of cycles inside send()/recv().
    tcp_ns_per_byte: float
    #: per-call overhead of send()/recv()/select().
    tcp_syscall_ns: int
    #: fraction of the link rate IPoIB can drive at best.
    ipoib_efficiency: float

    # ---- MPI (the MVAPICH baseline) ---------------------------------------
    #: eager/rendezvous switchover threshold.
    mpi_eager_threshold: int
    #: per-message MPI software overhead (matching, tag lookup).
    mpi_overhead_ns: int
    #: per-byte copy cost through MPI internal buffers (eager path).
    mpi_copy_ns_per_byte: float
    #: round trips for the rendezvous handshake.
    mpi_rndv_rtt: int

    # ---- unreliable datagram behaviour ------------------------------------
    #: max extra random delay a UD packet may see (drives out-of-order
    #: delivery; InfiniBand is lossless but unordered for UD, §4.4.2).
    ud_jitter_ns: int
    #: probability that a UD packet is lost (bit errors; rare, default 0).
    ud_loss_probability: float = 0.0

    @property
    def page_size(self) -> int:
        return 4096

    def cpu(self, ns: float) -> int:
        """Scale a CPU-side cost by this cluster's core speed."""
        return int(ns * self.cpu_scale)

    def wire_bytes(self, payload: int, transport: str) -> int:
        """Total bytes on the wire for a message of ``payload`` bytes.

        RC messages larger than the MTU are segmented into MTU-sized
        packets, each paying the per-packet header.
        """
        if transport == "UD":
            return payload + self.ud_header_bytes
        packets = max(1, -(-payload // self.mtu))
        return payload + packets * self.rc_header_bytes


#: 56 Gbps FDR InfiniBand cluster (Xeon E5-2670v2, 10 cores/socket).
FDR = NetworkConfig(
    name="FDR",
    link_bytes_per_ns=6.2,  # 56 Gbps less encoding => ~6.2 GB/s usable
    switch_latency_ns=1300,
    mtu=4096,
    rc_header_bytes=30,
    ud_header_bytes=60,
    rc_ack_bytes=30,
    nic_wr_ns=110,
    qp_cache_entries=144,  # ConnectX-3 era: on-chip ICM cache overflows
    # once ~n*t QP pairs are active (16 nodes x 8 threads, send+receive)
    qp_cache_miss_ns=5200,
    max_qp_depth=16 * 1024,
    rc_qp_connect_ns=int(1.25 * MS),
    ud_qp_setup_ns=int(1.2 * MS),
    ah_create_ns=int(0.02 * MS),
    mr_register_base_ns=int(0.08 * MS),
    mr_register_ns_per_page=180,
    mr_deregister_ns_per_page=35,
    cpu_scale=1.4,
    cores_per_node=8,
    hash_ns_per_tuple=5.0,
    copy_ns_per_byte=0.12,
    post_wr_ns=120,
    poll_cq_ns=90,
    endpoint_send_ns=520,
    tcp_ns_per_byte=0.55,
    tcp_syscall_ns=1600,
    ipoib_efficiency=0.45,
    mpi_eager_threshold=16 * KIB,
    mpi_overhead_ns=450,
    mpi_copy_ns_per_byte=0.10,
    mpi_rndv_rtt=2,
    ud_jitter_ns=2600,
)

#: 100 Gbps EDR InfiniBand cluster (Xeon E5-2680v4, 14 cores/socket).
EDR = NetworkConfig(
    name="EDR",
    link_bytes_per_ns=12.4,  # 100 Gbps less encoding => ~12.4 GB/s usable
    switch_latency_ns=1000,
    mtu=4096,
    rc_header_bytes=30,
    ud_header_bytes=60,
    rc_ack_bytes=30,
    nic_wr_ns=60,
    qp_cache_entries=1024,  # ConnectX-4 era: much larger context cache [17]
    qp_cache_miss_ns=3000,
    max_qp_depth=16 * 1024,
    rc_qp_connect_ns=int(1.2 * MS),
    ud_qp_setup_ns=int(1.1 * MS),
    ah_create_ns=int(0.02 * MS),
    mr_register_base_ns=int(0.08 * MS),
    mr_register_ns_per_page=150,
    mr_deregister_ns_per_page=30,
    cpu_scale=1.0,
    cores_per_node=8,
    hash_ns_per_tuple=5.0,
    copy_ns_per_byte=0.12,
    post_wr_ns=120,
    poll_cq_ns=90,
    endpoint_send_ns=520,
    tcp_ns_per_byte=0.55,
    tcp_syscall_ns=1600,
    ipoib_efficiency=0.40,
    mpi_eager_threshold=16 * KIB,
    mpi_overhead_ns=450,
    mpi_copy_ns_per_byte=0.10,
    mpi_rndv_rtt=2,
    ud_jitter_ns=2200,
)


@dataclass(frozen=True)
class TopologySpec:
    """How the cluster's switches are wired.

    A pure description — :class:`repro.fabric.topology.Topology` turns it
    into a live Port/Switch/Link graph with precomputed routes.  Three
    kinds are supported:

    * ``single-switch`` — every node on one full-bisection switch; the
      paper's platform (§5) and the degenerate default.  Bit-identical to
      the pre-topology fabric.
    * ``leaf-spine`` — ``nodes_per_leaf`` nodes per leaf switch, one
      spine; each leaf's uplink/downlink trunks run at
      ``nodes_per_leaf * link_rate / oversubscription``, so
      ``oversubscription > 1`` starves cross-leaf traffic.
    * ``dual-rail`` — ``rails`` independent full-bisection planes with
      per-destination output ports; traffic is striped over the rails by
      ``(src + dst) % rails``, exposing output-port incast.
    """

    kind: str = "single-switch"
    #: trunk oversubscription factor k in a k:1 leaf-spine fabric.
    oversubscription: int = 1
    #: nodes attached to each leaf switch (leaf-spine only).
    nodes_per_leaf: int = 4
    #: independent switch planes (dual-rail only).
    rails: int = 2

    _KINDS = ("single-switch", "leaf-spine", "dual-rail")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; "
                f"expected one of {', '.join(self._KINDS)}")
        if self.oversubscription < 1:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}")
        if self.nodes_per_leaf < 1:
            raise ValueError(
                f"nodes_per_leaf must be >= 1, got {self.nodes_per_leaf}")
        if self.rails < 1:
            raise ValueError(f"rails must be >= 1, got {self.rails}")

    def describe(self) -> str:
        if self.kind == "leaf-spine":
            return (f"leaf-spine {self.oversubscription}:1, "
                    f"{self.nodes_per_leaf} nodes/leaf")
        if self.kind == "dual-rail":
            return f"dual-rail ({self.rails} planes)"
        return "single-switch (full bisection)"


#: the paper's platform: one full-bisection switch (§5).
SINGLE_SWITCH = TopologySpec("single-switch")


def LEAF_SPINE(oversubscription: int = 1,
               nodes_per_leaf: int = 4) -> TopologySpec:
    """A two-tier leaf-spine fabric with ``oversubscription``:1 trunks."""
    return TopologySpec("leaf-spine", oversubscription=oversubscription,
                        nodes_per_leaf=nodes_per_leaf)


#: two independent full-bisection planes, striped by (src + dst) parity.
DUAL_RAIL = TopologySpec("dual-rail")


def parse_topology(text: str) -> TopologySpec:
    """Parse a CLI topology spec.

    Accepted forms: ``single-switch``, ``dual-rail``, ``leaf-spine``,
    ``leaf-spine:K`` (K:1 oversubscription) and ``leaf-spine:K:M``
    (M nodes per leaf).
    """
    parts = text.strip().split(":")
    kind = parts[0]
    if kind == "leaf-spine":
        oversub = int(parts[1]) if len(parts) > 1 else 1
        per_leaf = int(parts[2]) if len(parts) > 2 else 4
        return LEAF_SPINE(oversubscription=oversub, nodes_per_leaf=per_leaf)
    if len(parts) > 1:
        raise ValueError(f"topology {kind!r} takes no parameters: {text!r}")
    if kind == "single-switch":
        return SINGLE_SWITCH
    if kind == "dual-rail":
        return DUAL_RAIL
    raise ValueError(
        f"unknown topology {text!r}; expected single-switch, "
        f"leaf-spine[:K[:M]] or dual-rail")


#: process-wide default for newly built ClusterConfigs; the
#: ``repro-bench --topology`` knob retargets every experiment through it.
_DEFAULT_TOPOLOGY = SINGLE_SWITCH


def default_topology() -> TopologySpec:
    """The topology newly built :class:`ClusterConfig` objects get."""
    return _DEFAULT_TOPOLOGY


def set_default_topology(spec: TopologySpec) -> TopologySpec:
    """Replace the process-wide default topology; returns the previous
    one so callers can restore it."""
    global _DEFAULT_TOPOLOGY
    previous = _DEFAULT_TOPOLOGY
    _DEFAULT_TOPOLOGY = spec
    return previous


@dataclass(frozen=True)
class ClusterConfig:
    """A concrete experiment platform: a network preset plus topology."""

    network: NetworkConfig
    num_nodes: int
    threads_per_node: int = 0  # 0 => network.cores_per_node
    seed: int = 1
    #: switch wiring; defaults to the ambient :func:`default_topology`
    #: (normally SINGLE_SWITCH, the paper's platform).
    topology: TopologySpec = field(default_factory=default_topology)

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.threads_per_node == 0:
            object.__setattr__(
                self, "threads_per_node", self.network.cores_per_node
            )
        if self.threads_per_node < 1:
            raise ValueError(
                f"threads_per_node must be >= 1, got {self.threads_per_node}"
            )

    def with_network(self, **changes) -> "ClusterConfig":
        """Derive a config whose network preset has fields overridden."""
        return replace(self, network=replace(self.network, **changes))

    def with_topology(self, spec: TopologySpec) -> "ClusterConfig":
        """Derive a config running on a different switch topology."""
        return replace(self, topology=spec)
