"""Wire-level message descriptor exchanged between simulated NICs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Packet"]


@dataclass
class Packet:
    """One message travelling through the fabric.

    A packet is a *message* at the granularity the verbs layer deals in
    (one work request's worth of data); MTU segmentation is folded into
    the wire-byte count rather than simulated packet by packet.
    """

    src_node: int
    dst_node: int
    src_qpn: int
    dst_qpn: int
    #: verb kind: "SEND", "READ_REQ", "READ_RESP", "WRITE", "ACK"
    kind: str
    #: payload size in bytes (excluding headers).
    length: int
    #: total bytes on the wire including per-packet headers.
    wire_bytes: int
    #: opaque payload reference (a Buffer's content, or control words).
    payload: Any = None
    #: extra verb-specific fields (remote addr, wr ids, immediate data).
    meta: dict = field(default_factory=dict)
    #: set True by the fabric when loss injection dropped this packet.
    dropped: bool = False
    #: causal flow id (repro.telemetry.links); 0 when recording is off.
    flow: int = 0

    def __post_init__(self):
        if self.length < 0:
            raise ValueError(f"negative packet length: {self.length}")
        if self.wire_bytes < self.length:
            raise ValueError(
                f"wire bytes ({self.wire_bytes}) smaller than payload "
                f"({self.length})"
            )
