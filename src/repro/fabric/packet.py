"""Wire-level message descriptors exchanged between simulated NICs.

:class:`Packet` is one message at the granularity the verbs layer deals
in (one work request's worth of data).  :class:`PacketTrain` extends it
with the number of back-to-back MTU packets the message occupies on the
wire, so the fabric can charge serialization for the whole train in one
event while the per-packet oracle (``REPRO_TRAINS=0``, see
:mod:`repro.sim.trains`) can still tick every MTU boundary.

Endpoints and the verbs layer construct trains through
:func:`make_train` — the train-aware submit API — rather than building
``Packet`` objects by hand; linter rule VS108 enforces this outside
``fabric/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.config import NetworkConfig

__all__ = ["Packet", "PacketTrain", "make_train", "clone_for_member"]


@dataclass(slots=True)
class Packet:
    """One message travelling through the fabric.

    A packet is a *message* at the granularity the verbs layer deals in
    (one work request's worth of data); MTU segmentation is folded into
    the wire-byte count rather than simulated packet by packet.
    """

    src_node: int
    dst_node: int
    src_qpn: int
    dst_qpn: int
    #: verb kind: "SEND", "READ_REQ", "READ_RESP", "WRITE", "ACK"
    kind: str
    #: payload size in bytes (excluding headers).
    length: int
    #: total bytes on the wire including per-packet headers.
    wire_bytes: int
    #: opaque payload reference (a Buffer's content, or control words).
    payload: Any = None
    #: extra verb-specific fields (remote addr, wr ids, immediate data).
    meta: dict = field(default_factory=dict)
    #: set True by the fabric when loss injection dropped this packet.
    dropped: bool = False
    #: causal flow id (repro.telemetry.links); 0 when recording is off.
    flow: int = 0

    #: MTU packets in this unit; a bare Packet is always one.  Class
    #: attribute (not a dataclass field) so reprs, ``asdict`` and every
    #: existing constructor call stay unchanged.
    n_packets = 1

    def __post_init__(self):
        if self.length < 0:
            raise ValueError(f"negative packet length: {self.length}")
        if self.wire_bytes < self.length:
            raise ValueError(
                f"wire bytes ({self.wire_bytes}) smaller than payload "
                f"({self.length})"
            )


@dataclass(slots=True)
class PacketTrain(Packet):
    """A message plus its MTU segmentation: ``n_packets`` back-to-back
    packets totalling ``wire_bytes`` on the wire.

    The train is the unit the fabric charges pipes with; per-message
    semantics (credits, CQEs, delivery accounting, links records) are
    unaffected by how many MTU packets it spans.
    """

    #: back-to-back MTU packets the message occupies on the wire.
    n_packets: int = 1

    def __post_init__(self):
        # Explicit base call: @dataclass(slots=True) rebuilds the class,
        # which breaks zero-argument super() in methods defined here.
        Packet.__post_init__(self)
        if self.n_packets < 1:
            raise ValueError(f"train needs >= 1 packets: {self.n_packets}")


def make_train(config: "NetworkConfig", *, src_node: int, dst_node: int,
               src_qpn: int, dst_qpn: int, kind: str, length: int = 0,
               transport: Optional[str] = None,
               wire_bytes: Optional[int] = None, payload: Any = None,
               meta: Optional[dict] = None, flow: int = 0) -> PacketTrain:
    """Build the train for one message — the only sanctioned way to
    construct fabric traffic outside ``fabric/`` (linter rule VS108).

    With ``transport`` given ("RC" or "UD"), wire bytes and the MTU
    packet count are derived from ``config`` exactly as
    :meth:`NetworkConfig.wire_bytes` does; an explicit ``wire_bytes``
    (control messages: ACKs, read requests, emulated-protocol frames)
    is a single-packet train.
    """
    if wire_bytes is None:
        if transport is None:
            raise ValueError("make_train needs transport= or wire_bytes=")
        wire_bytes = config.wire_bytes(length, transport)
        if transport == "RC":
            n_packets = max(1, -(-length // config.mtu))
        else:  # UD: one datagram, at most one MTU
            n_packets = 1
    else:
        n_packets = 1
    return PacketTrain(
        src_node=src_node, dst_node=dst_node, src_qpn=src_qpn,
        dst_qpn=dst_qpn, kind=kind, length=length, wire_bytes=wire_bytes,
        payload=payload, meta=meta if meta is not None else {}, flow=flow,
        n_packets=n_packets,
    )


def clone_for_member(packet: Packet, node_id: int, qpn: int) -> Packet:
    """A multicast member's private copy of a replicated datagram.

    Preserves the train shape (``n_packets``) so each leg charges its
    path identically to the trunk; ``dropped`` is reset — loss is drawn
    per leg.
    """
    if type(packet) is Packet:
        return Packet(
            src_node=packet.src_node, dst_node=node_id,
            src_qpn=packet.src_qpn, dst_qpn=qpn, kind=packet.kind,
            length=packet.length, wire_bytes=packet.wire_bytes,
            payload=packet.payload, meta=packet.meta, flow=packet.flow,
        )
    return PacketTrain(
        src_node=packet.src_node, dst_node=node_id,
        src_qpn=packet.src_qpn, dst_qpn=qpn, kind=packet.kind,
        length=packet.length, wire_bytes=packet.wire_bytes,
        payload=packet.payload, meta=packet.meta, flow=packet.flow,
        n_packets=packet.n_packets,
    )
