"""The switch/route layer: an explicit Port/Switch/Link graph.

The paper's clusters hang every node off one full-bisection switch, so
the original fabric hard-coded a single ``switch_latency_ns`` hop.  This
module makes the switching fabric explicit so the simulation can also
model what the paper's platform could not exhibit: rack-scale fabrics
with oversubscribed trunks and multi-plane (rail) wiring.

Structure
---------

* :class:`Switch` — one forwarding element; owns its trunk ports.
* :class:`SwitchPort` — a rate-limited port, backed by the same FIFO
  :class:`~repro.sim.primitives.RatePipe` that models NIC link ports, so
  trunk contention, per-port byte counters and trace spans come for free.
* :class:`Link` — one cable of the graph (pure description; feeds
  :meth:`Topology.describe` and the docs diagram).
* :class:`Hop` — one step of a precomputed path: an optional port to
  serialize through plus an integer forwarding latency.  Hop *identity*
  is meaningful: paths that traverse the same physical resource share
  the same Hop object, which is what lets multicast find the last
  common switch by comparing hops.
* :class:`Route` / :class:`Topology` — per-pair hop sequences, derived
  on lookup from a :class:`~repro.fabric.config.TopologySpec`.  Hop
  tuples are shared per *equivalence class* (same leaf pair, same rail
  and destination, the one single-switch hop) instead of materialised
  per node pair, so route state is O(switches), not O(nodes²) — the
  difference between 16 paper nodes and the 1024-node mesoscale sweep.

The walkers in :mod:`repro.fabric.routing` execute these hop sequences;
the :class:`~repro.fabric.network.Fabric` itself no longer knows what a
switch is.

Loopback routes are empty (``hops == ()``): RDMA to one's own node
turns around inside the HCA and never reaches a switch, on every
topology.

Simulated-time typing: every hop latency is validated to be an ``int``
at construction — this module is the single point where path latencies
enter the simulation, so the walkers downstream can assert integer
nanoseconds instead of rounding per packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.config import NetworkConfig, TopologySpec
from repro.sim import Simulator
from repro.sim.primitives import RatePipe

__all__ = ["Hop", "Link", "Route", "Switch", "SwitchPort", "Topology"]


class Switch:
    """One forwarding element of the fabric graph."""

    __slots__ = ("name", "index", "ports")

    def __init__(self, name: str, index: int):
        self.name = name
        #: dense index; telemetry maps switch i to trace pid
        #: ``num_nodes + i`` so switches appear as pseudo-nodes.
        self.index = index
        self.ports: List["SwitchPort"] = []

    def add_port(self, sim: Simulator, local_name: str,
                 bytes_per_ns: float) -> "SwitchPort":
        port = SwitchPort(self, local_name,
                          RatePipe(sim, bytes_per_ns, name=local_name))
        self.ports.append(port)
        return port

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} ({len(self.ports)} ports)>"


class SwitchPort:
    """A rate-limited switch port, shared by every route crossing it."""

    __slots__ = ("switch", "local_name", "name", "pipe")

    def __init__(self, switch: Switch, local_name: str, pipe: RatePipe):
        self.switch = switch
        self.local_name = local_name
        #: globally unique name, e.g. ``leaf0.up`` / ``spine0.down2``.
        self.name = f"{switch.name}.{local_name}"
        self.pipe = pipe

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SwitchPort {self.name} @ {self.pipe.rate} B/ns>"


@dataclass(frozen=True)
class Link:
    """One cable of the topology graph (description only — contention is
    modeled by the :class:`SwitchPort` pipes, not by Link objects)."""

    a: str
    b: str
    bytes_per_ns: float


class Hop:
    """One step of a precomputed path.

    ``port`` is the :class:`SwitchPort` the packet serializes through
    before forwarding, or ``None`` for a hop through non-blocking
    silicon; ``latency_ns`` is the forwarding latency of the traversed
    switch.  Latencies must be integers: this constructor is the single
    rounding boundary for path latencies (see the module docstring).
    """

    __slots__ = ("port", "latency_ns")

    def __init__(self, port: Optional[SwitchPort], latency_ns: int):
        if type(latency_ns) is not int:
            raise TypeError(
                f"hop latency must be an int (simulated ns), got "
                f"{type(latency_ns).__name__}: {latency_ns!r}")
        if latency_ns < 0:
            raise ValueError(f"negative hop latency: {latency_ns}")
        self.port = port
        self.latency_ns = latency_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.port.name if self.port is not None else "-"
        return f"<Hop {where} +{self.latency_ns}ns>"


class Route:
    """The hop sequence carrying traffic from ``src`` to ``dst``."""

    __slots__ = ("src", "dst", "hops")

    def __init__(self, src: int, dst: int, hops: Tuple[Hop, ...]):
        self.src = src
        self.dst = dst
        self.hops = hops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Route {self.src}->{self.dst} via {len(self.hops)} hops>"


class Topology:
    """A live switch graph plus precomputed routing tables.

    Built once per :class:`~repro.fabric.network.Fabric` from the
    cluster's :class:`~repro.fabric.config.TopologySpec`; owns every
    switch port pipe, so telemetry can harvest per-port bytes and
    utilization from here.
    """

    def __init__(self, sim: Simulator, spec: TopologySpec,
                 network: NetworkConfig, num_nodes: int):
        self.sim = sim
        self.spec = spec
        self.network = network
        self.num_nodes = num_nodes
        self.switches: List[Switch] = []
        self.links: List[Link] = []
        #: per-kind lookup of the (shared) hop tuple for a non-loopback
        #: pair; assigned by the builder below.
        self._pair_hops: "Callable[[int, int], Tuple[Hop, ...]]"
        #: multicast trunk/leg split per (src, member-tuple) group.
        self._mcast_cache: Dict[
            Tuple[int, Tuple[int, ...]],
            Tuple[Tuple[Hop, ...], Dict[int, Tuple[Hop, ...]]]] = {}
        if spec.kind == "leaf-spine":
            self._build_leaf_spine()
        elif spec.kind == "dual-rail":
            self._build_dual_rail()
        else:
            self._build_single_switch()

    # -- construction ------------------------------------------------------

    def _add_switch(self, name: str) -> Switch:
        switch = Switch(name, len(self.switches))
        self.switches.append(switch)
        return switch

    def _build_single_switch(self) -> None:
        """The degenerate preset: the paper's full-bisection switch.

        Every pair shares one portless Hop, so routing reduces to the
        pre-topology pipeline: egress, one switch latency, ingress —
        bit-identical heap entries and RNG draws.
        """
        switch = self._add_switch("sw0")
        hop = Hop(None, self.network.switch_latency_ns)
        rate = self.network.link_bytes_per_ns
        for node in range(self.num_nodes):
            self.links.append(Link(f"node{node}", switch.name, rate))
        shared = (hop,)
        self._pair_hops = lambda src, dst: shared

    def _build_leaf_spine(self) -> None:
        """Two tiers: leaves of ``nodes_per_leaf`` nodes under one spine.

        Each leaf's uplink and the spine's per-leaf downlink are
        rate-limited trunk ports at ``nodes_per_leaf * link_rate / k``
        for a k:1 oversubscription.  Cross-leaf paths pay three switch
        traversals (leaf, spine, leaf); same-leaf paths are identical to
        the single-switch fabric.
        """
        net = self.network
        latency = net.switch_latency_ns
        per_leaf = self.spec.nodes_per_leaf
        num_leaves = -(-self.num_nodes // per_leaf)
        trunk_rate = per_leaf * net.link_bytes_per_ns / self.spec.oversubscription

        leaves = [self._add_switch(f"leaf{i}") for i in range(num_leaves)]
        #: forwarding inside one's own leaf: no trunk crossed.
        local_hop = [Hop(None, latency) for _ in leaves]
        for node in range(self.num_nodes):
            self.links.append(Link(f"node{node}",
                                   leaves[node // per_leaf].name,
                                   net.link_bytes_per_ns))

        up_hop: List[Hop] = []
        down_hop: List[Hop] = []
        spine_hop = Hop(None, latency)
        if num_leaves > 1:
            spine = self._add_switch("spine0")
            for i, leaf in enumerate(leaves):
                up = leaf.add_port(self.sim, "up", trunk_rate)
                down = spine.add_port(self.sim, f"down{i}", trunk_rate)
                up_hop.append(Hop(up, latency))
                down_hop.append(Hop(down, latency))
                self.links.append(Link(f"{leaf.name}.up", spine.name,
                                       trunk_rate))
                self.links.append(Link(f"{spine.name}.down{i}", leaf.name,
                                       trunk_rate))

        # One shared hop tuple per (src leaf, dst leaf) pair — O(leaves²)
        # route state regardless of node count.
        pair: Dict[Tuple[int, int], Tuple[Hop, ...]] = {}
        for sl in range(num_leaves):
            for dl in range(num_leaves):
                if sl == dl:
                    pair[(sl, dl)] = (local_hop[sl],)
                else:
                    pair[(sl, dl)] = (up_hop[sl], spine_hop, down_hop[dl])
        self._pair_hops = (
            lambda src, dst: pair[(src // per_leaf, dst // per_leaf)])

    def _build_dual_rail(self) -> None:
        """Independent full-bisection planes with per-destination output
        ports; traffic is striped over the rails by ``(src + dst) %
        rails``.  The output port makes receiver incast explicit: two
        senders converging on one destination over the same rail
        serialize at its switch port before reaching the NIC.
        """
        net = self.network
        latency = net.switch_latency_ns
        rails = [self._add_switch(f"rail{r}")
                 for r in range(self.spec.rails)]
        out_hop: List[List[Hop]] = []
        for rail in rails:
            hops_for_rail = []
            for dst in range(self.num_nodes):
                port = rail.add_port(self.sim, f"out{dst}",
                                     net.link_bytes_per_ns)
                hops_for_rail.append(Hop(port, latency))
            out_hop.append(hops_for_rail)
            for node in range(self.num_nodes):
                self.links.append(Link(f"node{node}", rail.name,
                                       net.link_bytes_per_ns))
        num_rails = len(rails)
        # One shared 1-tuple per (rail, dst) output port — O(rails · n)
        # route state instead of O(n²).
        rail_hops = [tuple((hop,) for hop in hops_for_rail)
                     for hops_for_rail in out_hop]
        self._pair_hops = (
            lambda src, dst: rail_hops[(src + dst) % num_rails][dst])

    # -- lookup ------------------------------------------------------------

    def route_hops(self, src: int, dst: int) -> Tuple[Hop, ...]:
        """The (shared) hop tuple for one directed pair.

        This is the hot-path lookup: no ``Route`` object is allocated,
        and the returned tuple is shared by every pair of the same
        equivalence class, so Hop-identity comparisons (multicast's
        last-common-switch split) keep working.
        """
        if src == dst:
            return ()
        return self._pair_hops(src, dst)

    def route(self, src: int, dst: int) -> Route:
        """The route for one directed pair (introspection/tests; the
        fabric itself uses :meth:`route_hops`)."""
        return Route(src, dst, self.route_hops(src, dst))

    def mcast_route(self, src: int, members: Sequence[int]
                    ) -> Tuple[Tuple[Hop, ...], Dict[int, Tuple[Hop, ...]]]:
        """Split the members' paths into a shared trunk and per-member
        legs — replication at the *last common switch*.

        The trunk is the longest common prefix (by Hop identity) of all
        member paths, minus its final hop: the last common switch's own
        forwarding (and port, if any) is paid per replica, because that
        switch forwards one copy per downstream direction.  On the
        single-switch fabric this reduces to trunk ``()`` and one
        switch hop per leg — exactly the pre-topology fan-out.  Below
        the replication point each leg is charged individually (two
        members behind the same downstream trunk each pay it; the
        simulation does not model per-edge replication trees).
        """
        key = (src, tuple(members))
        cached = self._mcast_cache.get(key)
        if cached is not None:
            return cached
        paths = {m: self.route_hops(src, m) for m in members}
        prefix_len = 0
        if members:
            first = paths[members[0]]
            for i, hop in enumerate(first):
                if all(len(paths[m]) > i and paths[m][i] is hop
                       for m in members):
                    prefix_len = i + 1
                else:
                    break
        trunk = paths[members[0]][:prefix_len - 1] if prefix_len else ()
        legs = {m: paths[m][len(trunk):] for m in members}
        result = (trunk, legs)
        self._mcast_cache[key] = result
        return result

    # -- introspection -----------------------------------------------------

    def ports(self) -> List[SwitchPort]:
        """Every switch port, in deterministic (switch, port) order."""
        return [port for switch in self.switches for port in switch.ports]

    def describe(self) -> str:
        """A human-readable summary of the wired graph."""
        lines = [f"topology: {self.spec.describe()}, "
                 f"{self.num_nodes} nodes, {len(self.switches)} switches"]
        for switch in self.switches:
            if switch.ports:
                ports = ", ".join(
                    f"{p.local_name}@{p.pipe.rate:g}B/ns"
                    for p in switch.ports)
            else:
                ports = "non-blocking"
            lines.append(f"  {switch.name}: {ports}")
        return "\n".join(lines)
