"""The simulated network adapter.

A NIC has three serialized resources:

* an **egress pipe** draining outbound bytes at the link rate,
* an **ingress pipe** draining inbound bytes at the link rate,
* a **processing engine** that executes work requests (doorbell handling,
  WQE fetch, DMA setup) one at a time.

It also owns the **Queue Pair context cache**: Mellanox NICs keep QP state
in a small on-chip cache backed by host memory over PCIe; touching a QP
that fell out of the cache stalls the processing engine for a PCIe round
trip.  This is the documented mechanism ([8, 16, 17] in the paper) behind
the degradation of the many-Queue-Pair designs on FDR hardware at 16 nodes
(Figs 10 and 11), so it is modeled explicitly.

Trains: the tx/rx entry points take the message's MTU packet count and
charge their pipes per *train* (one event per message, see
:mod:`repro.sim.trains`).  The QP-context cache and the PCIe miss
penalty are charged once per train in **both** modes — real NICs hold
the QP context across a message's back-to-back packets, so per-packet
touching would both be wrong and break the per-packet oracle's
bit-identical cache-counter equivalence.

When a :class:`~repro.telemetry.links.FlowRecorder` is installed on
``self.links``, every occupancy interval is recorded with its base /
cache-penalty / DMA-extra decomposition before entering the pipe.  The
records are appended from the same positions on the generator and
flat-callback paths (all NIC entry points below are shared by both), so
recording cannot perturb event order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.sim import Event, RatePipe, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.config import NetworkConfig

__all__ = ["QPContextCache", "NIC"]


class QPContextCache:
    """LRU cache of Queue Pair contexts held on the NIC.

    ``touch`` records an access and reports whether it hit.  The miss
    penalty is charged by the NIC's processing engine, not here, so the
    cache itself stays a pure bookkeeping structure that tests can probe.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def touch(self, qpn: int) -> bool:
        """Access QP ``qpn``; returns True on hit, False on miss."""
        if qpn in self._entries:
            self._entries.move_to_end(qpn)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[qpn] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return False

    def evict(self, qpn: int) -> None:
        """Drop a QP context (e.g. when the QP is destroyed)."""
        self._entries.pop(qpn, None)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class NIC:
    """One node's network adapter."""

    def __init__(self, sim: Simulator, node_id: int, config: "NetworkConfig",
                 disable_qp_cache: bool = False):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.egress = RatePipe(sim, config.link_bytes_per_ns, f"egress[{node_id}]")
        self.ingress = RatePipe(sim, config.link_bytes_per_ns, f"ingress[{node_id}]")
        # The processing engine is a unit-rate pipe used via occupy():
        # each work element holds it for its processing time.
        self.processor = RatePipe(sim, 1.0, f"nicproc[{node_id}]")
        self.qp_cache = QPContextCache(config.qp_cache_entries)
        #: set True to model an adapter with effectively unlimited context
        #: cache (used by the QP-cache ablation benchmark).
        self.disable_qp_cache = disable_qp_cache
        self.tx_messages = 0
        self.rx_messages = 0
        #: MTU packets carried (mode-invariant train accounting; kept
        #: out of telemetry snapshots, which stay per-message).
        self.tx_packets = 0
        self.rx_packets = 0
        #: cumulative processing-engine stall waiting on PCIe round trips
        #: for cold QP contexts (the Fig 10/11 degradation mechanism).
        self.pcie_stall_ns = 0
        #: causal link recorder (repro.telemetry.links), installed by
        #: Telemetry.enable_links(); None keeps the hot path branch-only.
        self.links = None
        #: optional per-QPN context-miss counter, installed by the service
        #: layer for tenant attribution (QPNs are never reused, so misses
        #: can be rolled up per job after the fact).  ``None`` keeps the
        #: hot path a single branch.
        self.qp_miss_by_qpn: Optional[Dict[int, int]] = None

    def _qp_touch_penalty(self, qpn: int) -> int:
        if self.disable_qp_cache:
            return 0
        if self.qp_cache.touch(qpn):
            return 0
        if self.qp_miss_by_qpn is not None:
            self.qp_miss_by_qpn[qpn] = self.qp_miss_by_qpn.get(qpn, 0) + 1
        self.pcie_stall_ns += self.config.qp_cache_miss_ns
        return self.config.qp_cache_miss_ns

    def _record_proc(self, penalty: int, extra_ns: int, flow: int) -> None:
        busy_until = self.processor.busy_until
        now = self.sim.now
        start = busy_until if busy_until > now else now
        self.links.pipe("proc", self.node_id, start, self.config.nic_wr_ns,
                        penalty, extra_ns, max(0, busy_until - now), flow)

    def _record_link(self, kind: str, pipe: RatePipe, wire_bytes: int,
                     penalty: int, flow: int) -> None:
        busy_until = pipe.busy_until
        now = self.sim.now
        start = busy_until if busy_until > now else now
        self.links.pipe(kind, self.node_id, start,
                        pipe._serialization_ns(wire_bytes), penalty, 0,
                        max(0, busy_until - now), flow)

    def process_wr(self, qpn: int, extra_ns: int = 0, flow: int = 0) -> Event:
        """Occupy the processing engine for one work request on ``qpn``.

        Returns the event fired when the NIC has finished processing (the
        point at which the message starts serializing onto the wire).
        """
        penalty = self._qp_touch_penalty(qpn)
        if self.links is not None:
            self._record_proc(penalty, extra_ns, flow)
        return self.processor.occupy(self.config.nic_wr_ns + penalty + extra_ns)

    def transmit(self, wire_bytes: int, flow: int = 0,
                 n_packets: int = 1) -> Event:
        """Serialize a train of ``wire_bytes`` onto the outbound link."""
        self.tx_messages += 1
        self.tx_packets += n_packets
        if self.links is not None:
            self._record_link("egress", self.egress, wire_bytes, 0, flow)
        return self.egress.transmit_train(wire_bytes, n_packets)

    def receive(self, wire_bytes: int, qpn: int, flow: int = 0,
                n_packets: int = 1) -> Event:
        """Serialize a train of ``wire_bytes`` off the inbound link into
        ``qpn``.

        The receive path also touches the destination QP context, so a
        node being bombarded across many cold QPs slows down symmetrically
        with the send path.  The context is touched once per train (the
        NIC holds it across the message's back-to-back packets), so the
        miss penalty rides on the train as a whole.
        """
        self.rx_messages += 1
        self.rx_packets += n_packets
        penalty = self._qp_touch_penalty(qpn)
        if self.links is not None:
            self._record_link("ingress", self.ingress, wire_bytes, penalty,
                              flow)
        return self.ingress.transmit_train(wire_bytes, n_packets,
                                           extra_ns=penalty)

    def submit_wr(self, qpn: int, func: "Callable[[], None]",
                  extra_ns: int = 0, flow: int = 0) -> None:
        """Hot-path twin of :meth:`process_wr`."""
        penalty = self._qp_touch_penalty(qpn)
        if self.links is not None:
            self._record_proc(penalty, extra_ns, flow)
        self.processor.submit_occupy(
            self.config.nic_wr_ns + penalty + extra_ns, func)

    def submit_tx(self, wire_bytes: int, func: "Callable[[], None]",
                  flow: int = 0, n_packets: int = 1) -> None:
        """Hot-path twin of :meth:`transmit`: run ``func()`` at completion
        instead of returning an event (see :meth:`RatePipe.submit`)."""
        self.tx_messages += 1
        self.tx_packets += n_packets
        if self.links is not None:
            self._record_link("egress", self.egress, wire_bytes, 0, flow)
        self.egress.submit_train(wire_bytes, n_packets, func)

    def submit_rx(self, wire_bytes: int, qpn: int,
                  func: "Callable[[], None]", flow: int = 0,
                  n_packets: int = 1) -> None:
        """Hot-path twin of :meth:`receive`."""
        self.rx_messages += 1
        self.rx_packets += n_packets
        penalty = self._qp_touch_penalty(qpn)
        if self.links is not None:
            self._record_link("ingress", self.ingress, wire_bytes, penalty,
                              flow)
        self.ingress.submit_train(wire_bytes, n_packets, func,
                                  extra_ns=penalty)
