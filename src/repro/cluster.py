"""Convenience bundle: simulator + fabric + verbs contexts + registry.

Most examples, tests and benchmarks start from a :class:`Cluster`:

>>> from repro import Cluster, ClusterConfig, EDR
>>> cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
"""

from __future__ import annotations

from typing import List

from repro.fabric.config import ClusterConfig
from repro.fabric.network import Fabric, Node
from repro.sim import Simulator
from repro.verbs.cm import EndpointRegistry
from repro.verbs.device import VerbsContext

__all__ = ["Cluster"]


class Cluster:
    """A ready-to-use simulated cluster."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, config)
        self.contexts: List[VerbsContext] = [
            VerbsContext(self.sim, self.fabric, i)
            for i in range(config.num_nodes)
        ]
        self.registry = EndpointRegistry()

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def threads_per_node(self) -> int:
        return self.config.threads_per_node

    @property
    def nodes(self) -> List[Node]:
        return self.fabric.nodes

    def run(self, until=None) -> int:
        return self.sim.run(until)

    def run_process(self, generator, name: str = ""):
        return self.sim.run_process(generator, name=name)
