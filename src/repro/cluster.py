"""Convenience bundle: simulator + fabric + verbs contexts + registry.

Most examples, tests and benchmarks start from a :class:`Cluster`:

>>> from repro import Cluster, ClusterConfig, EDR
>>> cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.fabric.config import ClusterConfig
from repro.fabric.network import Fabric, Node
from repro.sim import Simulator
from repro.telemetry.core import Telemetry
from repro.telemetry.session import current_session
from repro.telemetry.trace import Tracer
from repro.verbs.cm import EndpointRegistry
from repro.verbs.device import VerbsContext

__all__ = ["Cluster"]


class Cluster:
    """A ready-to-use simulated cluster."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.sim = Simulator()
        # When a telemetry session is active (e.g. repro-bench --metrics /
        # --trace), every cluster built under it reports automatically.
        session = current_session()
        if session is not None:
            self.telemetry = session.attach(self.sim, config.num_nodes)
        else:
            self.telemetry = Telemetry(self.sim, config.num_nodes)
        self.fabric = Fabric(self.sim, config, telemetry=self.telemetry)
        self.contexts: List[VerbsContext] = [
            VerbsContext(self.sim, self.fabric, i)
            for i in range(config.num_nodes)
        ]
        self.registry = EndpointRegistry()
        self.sanitizer = None
        self.quotas = None
        self._disposed = False
        if session is not None and getattr(session, "sanitize", False):
            self.enable_sanitizer()

    def enable_sanitizer(self, strict: bool = False):
        """Attach the runtime protocol sanitizer to this cluster.

        Idempotent.  With ``strict=True`` the first violation raises
        :class:`~repro.analysis.sanitizer.ProtocolViolationError`; the
        default records violations for inspection via
        ``cluster.sanitizer.report()``.
        """
        if self.sanitizer is not None:
            return self.sanitizer
        # Imported lazily: clusters that never sanitize pay nothing.
        from repro.analysis.sanitizer import Sanitizer, attach_sanitizer
        self.sanitizer = Sanitizer(self.sim, telemetry=self.telemetry,
                                   strict=strict)
        attach_sanitizer(self.fabric, self.sanitizer)
        active = current_session()
        if active is not None:
            active.register_sanitizer(self.sanitizer)
        return self.sanitizer

    def enable_quotas(self, manager):
        """Install a per-tenant resource arbiter on this cluster's fabric.

        ``manager`` is duck-typed (see :class:`repro.service.QuotaManager`):
        the verbs layer calls its ``on_qp_created`` / ``on_qp_destroyed`` /
        ``on_mr_registered`` / ``on_mr_deregistered`` hooks for every
        tenant-tagged resource.  Idempotent for the same manager;
        installing a different one replaces it.
        """
        self.quotas = manager
        self.fabric.quotas = manager
        return manager

    @property
    def disposed(self) -> bool:
        return self._disposed

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def threads_per_node(self) -> int:
        return self.config.threads_per_node

    @property
    def nodes(self) -> List[Node]:
        return self.fabric.nodes

    def dispose(self) -> None:
        """Release this cluster's object graph after a finished run.

        A mesoscale cluster is effectively one strongly-connected
        component — QPs hold their context, the context its fabric, the
        fabric every node, CQ subscribers their endpoints — so nothing
        is freed by reference counting until a cyclic collection has
        traversed tens of millions of objects (tens of seconds at 1024
        nodes).  Breaking the hub edges here lets plain reference
        counting reclaim the bulk; a subsequent ``gc.collect()`` only
        has to sweep the small cyclic remainder.  The cluster is
        unusable afterwards.

        Idempotent: the scheduler tears down many short-lived clusters
        and error paths may dispose twice.  Running a disposed cluster
        raises :class:`RuntimeError` (see :meth:`run` / :meth:`run_process`).
        """
        if self._disposed:
            return
        self._disposed = True
        for ctx in self.contexts:
            ctx.dispose()
        self.contexts.clear()
        self.registry.dispose()
        self.fabric.dispose()
        self.sim.dispose()

    def enable_tracing(self, max_events: int = 500_000) -> Tracer:
        """Record trace events for this cluster's run (Chrome trace JSON).

        Call before building stages; export with
        ``cluster.telemetry.tracer.export(path)``.
        """
        return self.telemetry.enable_tracing(max_events=max_events)

    def enable_reporting(self, budget=None):
        """Record causal link records so :meth:`run_report` can attribute
        this cluster's time (see repro.obs).  Idempotent; call before
        building stages, like :meth:`enable_tracing`.
        """
        return self.telemetry.enable_links(budget=budget)

    def run_report(self, t0: int = 0, t1: int = None) -> Dict[str, Any]:
        """Build this cluster's RunReport (requires enable_reporting())."""
        from repro.obs.report import build_run_report
        return build_run_report(self.telemetry, t0=t0, t1=t1)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Harvest a JSON-ready metrics snapshot of the whole cluster."""
        return self.telemetry.snapshot()

    def shuffle_stage(self, design, groups, context=None, **kwargs):
        """Build a :class:`~repro.core.stage.ShuffleStage` on this cluster,
        wired to the cluster-wide endpoint registry by default.

        ``design`` may be a design name, a :class:`~repro.core.designs.
        Design`, a flat :class:`~repro.core.policy.StagePlan`, or a
        :class:`~repro.core.policy.ShufflePolicy` (planned against
        ``context``, or a context built from this cluster).  The
        argument is validated *eagerly*: an unknown design or endpoint
        kind raises here, naming the known designs and registered
        kinds, instead of failing deep in the transport registry.
        """
        from repro.core.designs import resolve_design
        from repro.core.policy import ShufflePolicy, StageContext, StagePlan
        from repro.core.stage import ShuffleStage
        if isinstance(design, ShufflePolicy):
            if context is None:
                context = StageContext.from_cluster(
                    self, config=kwargs.get("config"),
                    num_endpoints=kwargs.get("num_endpoints"))
            design = design.plan(context)
        if not isinstance(design, StagePlan):
            resolve_design(design)
        kwargs.setdefault("registry", self.registry)
        return ShuffleStage(self.fabric, design, groups, **kwargs)

    def _check_usable(self) -> None:
        if self._disposed:
            raise RuntimeError(
                "cluster has been disposed; build a new Cluster for a "
                "fresh run")

    def run(self, until=None) -> int:
        self._check_usable()
        return self.sim.run(until)

    def run_process(self, generator, name: str = ""):
        self._check_usable()
        return self.sim.run_process(generator, name=name)
