"""Runtime toggle for the coalesced fabric/CQ fast path.

The fast path replaces per-packet generator processes with flat callback
chains that are position-isomorphic to the legacy generators (see
DESIGN.md, "Kernel fast path"): every heap entry is created at the same
simulated time and code position, so simulated end times and modeled
metrics are bit-identical.  The legacy generators are kept behind this
switch as the oracle for the A/B determinism suite
(``tests/test_fastpath_determinism.py``), and as a debugging aid — the
generator code reads like the prose protocol description.

Set ``REPRO_FASTPATH=0`` in the environment to select the legacy path.
Consumers read the flag once at construction time (``Fabric.__init__``,
``CompletionDispatcher.start``), so flipping the variable mid-simulation
has no effect.
"""

from __future__ import annotations

import os

__all__ = ["enabled"]

_FALSEY = ("0", "false", "no", "off", "")


def enabled(default: bool = True) -> bool:
    """Is the fast path on?  Honors the ``REPRO_FASTPATH`` env var."""
    value = os.environ.get("REPRO_FASTPATH")
    if value is None:
        return default
    return value.strip().lower() not in _FALSEY
