"""Blocking primitives built on the simulation kernel.

These are the concurrency building blocks the fabric, verbs layer and
shuffle endpoints are written against: FIFO queues, counting semaphores,
mutexes, broadcast signals, and rate-limited pipes that model link
serialization without per-packet events.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List

from repro.sim.kernel import Event, SimError, Simulator
from repro.sim.trains import enabled as _trains_enabled

__all__ = ["Queue", "Semaphore", "Mutex", "Notify", "Barrier", "RatePipe"]


def _packet_tick() -> None:
    """The per-packet oracle's intermediate MTU-boundary tick.

    Deliberately a no-op: a train's non-final packets carry no protocol
    action, so the oracle's extra heap entries are observability-only
    and cannot perturb any other event (see :mod:`repro.sim.trains`).
    """


class Queue:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item.  Items are delivered in FIFO order to getters in FIFO order.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self):
        """Non-blocking get; returns ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class Semaphore:
    """A counting semaphore with FIFO waiter wakeup."""

    def __init__(self, sim: Simulator, value: int = 1):
        if value < 0:
            raise SimError(f"semaphore initial value must be >= 0, got {value}")
        self.sim = sim
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        """Return an event that fires once a unit has been acquired."""
        event = Event(self.sim)
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Acquire without blocking; returns True on success."""
        if self._value > 0:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        """Release one unit, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Mutex(Semaphore):
    """A binary semaphore with lock/unlock naming and hold-time helper."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, value=1)

    def lock(self) -> Event:
        return self.acquire()

    def unlock(self) -> None:
        self.release()

    def critical_section(self, hold_ns: int):
        """A process fragment: acquire, hold for ``hold_ns``, release.

        Usage: ``yield from mutex.critical_section(250)``.  Models a short
        serialized critical section such as posting to a shared Queue Pair.
        """
        yield self.acquire()
        if hold_ns:
            yield self.sim.timeout(hold_ns)
        self.release()


class Notify:
    """A broadcast signal: ``wait()`` events all fire on ``notify_all()``.

    Unlike :class:`Queue`, a notification wakes *every* current waiter and
    carries an optional value.  Used for condition-variable style "state
    changed, re-check your predicate" wakeups.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def notify_all(self, value: Any = None) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)


class Barrier:
    """A cyclic barrier for a fixed number of parties.

    ``arrive()`` returns an event that fires once all parties of the
    current generation have arrived; the barrier then resets for reuse.
    """

    def __init__(self, sim: Simulator, parties: int):
        if parties < 1:
            raise SimError(f"barrier needs >= 1 parties, got {parties}")
        self.sim = sim
        self.parties = parties
        self._waiting: List[Event] = []

    def arrive(self) -> Event:
        event = Event(self.sim)
        self._waiting.append(event)
        if len(self._waiting) == self.parties:
            waiting, self._waiting = self._waiting, []
            for waiter in waiting:
                waiter.succeed()
        return event


class RatePipe:
    """A FIFO, rate-limited transmission resource.

    Models a link (or a NIC processing engine) that serializes work at a
    fixed rate without simulating individual packets: a transfer of ``n``
    units begins when all previously submitted transfers have drained and
    completes ``n / rate`` later.

    Rates are expressed in units per nanosecond (e.g. bytes/ns, which is
    numerically equal to GB/s).

    The ``*_train`` entry points charge a whole packet train (one
    message's back-to-back MTU packets) in a single event; with
    ``split_packets`` set (the ``REPRO_TRAINS=0`` oracle) they instead
    tick every integer MTU boundary — same charge, same ``busy_until``,
    same counters, just ``n_packets`` completion entries instead of one.
    """

    def __init__(self, sim: Simulator, rate: float, name: str = ""):
        if rate <= 0:
            raise SimError(f"rate must be positive, got {rate}")
        self.sim = sim
        self.rate = rate
        self.name = name
        #: per-packet oracle mode (REPRO_TRAINS=0): ``*_train`` calls
        #: schedule one tick per MTU packet instead of one per train.
        #: Read once at construction; Fabric.use_packet_oracle() flips it
        #: on a quiesced fabric for in-process A/B runs.
        self.split_packets = not _trains_enabled()
        self._busy_until: int = 0
        # Serialization delays by unit count.  Real traffic uses a handful
        # of distinct message sizes, so the division in the hot path is
        # almost always a dict hit; bounded so adversarial size mixes
        # cannot grow it without limit.
        self._ser_cache: Dict[float, int] = {}
        self.total_units: float = 0.0
        #: cumulative occupied time (drives utilization telemetry).
        self.busy_ns: int = 0
        # Optional tracing hook, bound by repro.telemetry.  Because the
        # pipe is FIFO-serial, its occupancy intervals never overlap and
        # can be emitted as well-formed B/E span pairs.
        self._tracer = None
        self._trace_node = 0
        self._trace_track = ""
        self._trace_name = ""

    def bind_trace(self, tracer, node_id: int, track: str, name: str) -> None:
        """Record every occupancy interval as a span on ``node/track``."""
        self._tracer = tracer
        self._trace_node = node_id
        self._trace_track = track
        self._trace_name = name

    def _trace_interval(self, start: int, duration: int, units: float) -> None:
        self._tracer.span(
            self._trace_node, self._trace_track, self._trace_name,
            start, start + duration, cat="fabric",
            args={"bytes": int(units)} if units else None)

    def _serialization_ns(self, units: float) -> int:
        cache = self._ser_cache
        duration = cache.get(units)
        if duration is None:
            duration = int(units / self.rate)
            if len(cache) < 1024:
                cache[units] = duration
        return duration

    def transmit(self, units: float, extra_ns: int = 0) -> Event:
        """Submit ``units`` of work; returns the completion event.

        ``extra_ns`` adds fixed per-item overhead that also occupies the
        pipe (e.g. per-work-request processing time).
        """
        if units < 0:
            raise SimError(f"cannot transmit negative units: {units}")
        start = max(self.sim.now, self._busy_until)
        duration = self._serialization_ns(units) + int(extra_ns)
        self._busy_until = start + duration
        self.total_units += units
        self.busy_ns += duration
        if self._tracer is not None and duration > 0:
            self._trace_interval(start, duration, units)
        event = Event(self.sim)
        event.succeed(delay=self._busy_until - self.sim.now)
        return event

    def submit(self, units: float, func: Callable[[], None],
               extra_ns: int = 0) -> None:
        """Hot-path twin of :meth:`transmit`: identical bookkeeping and
        completion time, but runs ``func()`` at completion via a pooled
        kernel carrier instead of allocating an :class:`Event`."""
        if units < 0:
            raise SimError(f"cannot transmit negative units: {units}")
        start = max(self.sim.now, self._busy_until)
        duration = self._serialization_ns(units) + int(extra_ns)
        self._busy_until = start + duration
        self.total_units += units
        self.busy_ns += duration
        if self._tracer is not None and duration > 0:
            self._trace_interval(start, duration, units)
        self.sim.call_later(self._busy_until - self.sim.now, func)

    def _packet_boundaries(self, start: int, ser_ns: int,
                           n_packets: int) -> None:
        """Schedule the oracle's intermediate MTU-boundary ticks.

        Packet ``i`` (1-based) of ``n`` completes at
        ``start + (ser * i) // n`` — integer boundaries, monotone
        non-decreasing, with the final packet's completion (scheduled by
        the caller, carrying any ``extra_ns``) landing exactly at the
        pipe's ``busy_until``.  All ticks are enqueued consecutively, so
        they cannot reorder any foreign event in a shared time bucket.
        """
        now = self.sim.now
        call_later = self.sim.call_later
        for i in range(1, n_packets):
            call_later(start + (ser_ns * i) // n_packets - now, _packet_tick)

    def transmit_train(self, units: float, n_packets: int,
                       extra_ns: int = 0) -> Event:
        """Charge one packet train; returns the train-arrival event.

        Identical occupancy, counters and completion time to
        :meth:`transmit` — a train *is* one ``units``-sized transfer —
        but under the per-packet oracle the serialization interval is
        additionally ticked at every MTU boundary.
        """
        if units < 0:
            raise SimError(f"cannot transmit negative units: {units}")
        start = max(self.sim.now, self._busy_until)
        ser = self._serialization_ns(units)
        duration = ser + int(extra_ns)
        self._busy_until = start + duration
        self.total_units += units
        self.busy_ns += duration
        if self._tracer is not None and duration > 0:
            self._trace_interval(start, duration, units)
        if n_packets > 1 and self.split_packets:
            self._packet_boundaries(start, ser, n_packets)
        event = Event(self.sim)
        event.succeed(delay=self._busy_until - self.sim.now)
        return event

    def submit_train(self, units: float, n_packets: int,
                     func: Callable[[], None], extra_ns: int = 0) -> None:
        """Hot-path twin of :meth:`transmit_train` (see :meth:`submit`)."""
        if units < 0:
            raise SimError(f"cannot transmit negative units: {units}")
        start = max(self.sim.now, self._busy_until)
        ser = self._serialization_ns(units)
        duration = ser + int(extra_ns)
        self._busy_until = start + duration
        self.total_units += units
        self.busy_ns += duration
        if self._tracer is not None and duration > 0:
            self._trace_interval(start, duration, units)
        if n_packets > 1 and self.split_packets:
            self._packet_boundaries(start, ser, n_packets)
        self.sim.call_later(self._busy_until - self.sim.now, func)

    def occupy(self, duration_ns: int) -> Event:
        """Occupy the pipe for a fixed duration (rate-independent work)."""
        start = max(self.sim.now, self._busy_until)
        duration = int(duration_ns)
        self._busy_until = start + duration
        self.busy_ns += duration
        if self._tracer is not None and duration > 0:
            self._trace_interval(start, duration, 0)
        event = Event(self.sim)
        event.succeed(delay=self._busy_until - self.sim.now)
        return event

    def submit_occupy(self, duration_ns: int,
                      func: Callable[[], None]) -> None:
        """Hot-path twin of :meth:`occupy` (see :meth:`submit`)."""
        start = max(self.sim.now, self._busy_until)
        duration = int(duration_ns)
        self._busy_until = start + duration
        self.busy_ns += duration
        if self._tracer is not None and duration > 0:
            self._trace_interval(start, duration, 0)
        self.sim.call_later(self._busy_until - self.sim.now, func)

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def utilization(self, since: int = 0) -> float:
        """Approximate utilization: busy time over elapsed time."""
        elapsed = max(1, self.sim.now - since)
        return min(1.0, (self._busy_until - since) / elapsed)
