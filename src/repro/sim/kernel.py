"""Core discrete-event simulation kernel.

Time is an integer number of simulated nanoseconds.  The design follows the
classic event-loop model: a priority queue of ``(time, sequence, event)``
entries is drained in order, and each event runs its callbacks when popped.
Processes are generators; yielding an :class:`Event` suspends the process
until the event fires.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
]


class SimError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0  # not triggered yet
_TRIGGERED = 1  # queued, callbacks will run when popped
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: pending, triggered (scheduled on the
    event queue) and processed (callbacks executed).  Waiting on an already
    processed event resumes the waiter immediately (at the current simulated
    time) rather than blocking forever.
    """

    __slots__ = ("sim", "_state", "_ok", "_value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._state = _PENDING
        self._ok = True
        self._value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (not failed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully, firing after ``delay`` ns."""
        if self._state != _PENDING:
            raise SimError(f"{self!r} has already been triggered")
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        self.sim._enqueue(delay, self)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with a failure; waiters get ``exc`` thrown."""
        if self._state != _PENDING:
            raise SimError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise SimError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._ok = False
        self._value = exc
        self.sim._enqueue(delay, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed, the callback is scheduled
        to run immediately (at the current simulated time).
        """
        if self._state == _PROCESSED:
            self.sim.call_at(self.sim.now, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._state = _TRIGGERED
        self._value = value
        sim._enqueue(delay, self)


class Process(Event):
    """A running generator; doubles as the event fired at termination.

    The process resumes each time the event it yielded fires.  A failed
    event is thrown into the generator; an uncaught exception fails the
    process event, and escapes to :meth:`Simulator.run` if nothing waits on
    the process.
    """

    __slots__ = ("_generator", "_waiting_on", "_observed", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._observed = False
        self.name = name or getattr(generator, "__name__", "process")
        sim.processes_started += 1
        # Kick the process off at the current time.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimError(f"cannot interrupt finished process {self.name!r}")
        poker = Event(self.sim)
        poker.add_callback(self._resume)
        poker.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            # The process already ended (e.g. interrupted); stale wakeup.
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            # An interrupt arrived while waiting; the original event may
            # still fire later, and must then be ignored.
            if isinstance(event.value, Interrupt):
                self._waiting_on = None
            else:
                return
        else:
            self._waiting_on = None
        self.sim.process_wakeups += 1
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
            self._generator.throw(exc)
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        self._observed = True
        super().add_callback(callback)

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        super().fail(exc, delay)
        self.sim._defunct.append(self)
        return self


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of the given events fires.

    The value is the ``(event, value)`` pair of the first event.  A failing
    child event fails the condition.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            self.fail(event.value)


class AllOf(_Condition):
    """Fires when every given event has fired; value is the value list."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed([e.value for e in self._events])


class Simulator:
    """The event loop: owns the clock and runs events in timestamp order."""

    def __init__(self):
        self.now: int = 0
        self._heap: List = []
        self._sequence = 0
        self._defunct: List[Process] = []
        # Telemetry counters, harvested lazily by repro.telemetry (the
        # kernel stays dependency-free): plain int adds per event.
        self.events_dispatched = 0
        self.process_wakeups = 0
        self.processes_started = 0
        self.max_queue_depth = 0

    # -- scheduling ------------------------------------------------------

    def _enqueue(self, delay: int, event: Event) -> None:
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + int(delay), self._sequence, event))

    def call_at(self, when: int, func: Callable[[], None]) -> Event:
        """Run ``func()`` at absolute simulated time ``when``."""
        event = Event(self)
        event.add_callback(lambda _e: func())
        event.succeed(delay=when - self.now)
        return event

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the next event on the queue."""
        depth = len(self._heap)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self.events_dispatched += 1
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        event._run_callbacks()
        # Surface exceptions from processes nobody waits on, so bugs do not
        # vanish silently.  A failed process stays on the defunct list until
        # its own termination event has been processed; if no waiter
        # consumed the failure by then, re-raise it here.
        if self._defunct:
            still_pending = []
            for proc in self._defunct:
                if proc._state != _PROCESSED:
                    still_pending.append(proc)
                elif not proc.ok and not proc._observed:
                    self._defunct = still_pending
                    raise proc.value
            self._defunct = still_pending

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queue drains or ``until`` (exclusive).

        Returns the simulated time at which the run stopped.
        """
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when >= until:
                self.now = until
                return self.now
            self.step()
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` as a process to completion.

        Returns the process return value; re-raises its exception on
        failure.  Other already-scheduled activities keep running alongside.
        """
        proc = self.process(generator, name=name)
        while self._heap and not proc.triggered:
            self.step()
        if not proc.triggered:
            raise SimError(f"process {proc.name!r} deadlocked (event queue empty)")
        # Drain the callback that marks the process processed.
        while self._heap and not proc.processed:
            self.step()
        if not proc.ok:
            raise proc.value
        return proc.value
