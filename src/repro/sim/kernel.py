"""Core discrete-event simulation kernel.

Time is an integer number of simulated nanoseconds.  The design follows the
classic event-loop model: a priority queue of ``(time, sequence, entry)``
entries is drained in order, and each entry runs its callbacks when popped.
Processes are generators; yielding an :class:`Event` suspends the process
until the event fires.

Hot-path notes (the "kernel fast path", see DESIGN.md):

* :meth:`Simulator.run` and :meth:`Simulator.run_process` share a batched
  drain loop that pops all entries of one timestamp in an inner loop with
  locally bound heap operations, and flushes the telemetry counters once
  per drain instead of once per event.
* Plain callback scheduling (:meth:`Simulator.call_soon` /
  :meth:`Simulator.call_at` / :meth:`Simulator.call_later`) pushes the
  bare callable as the heap payload — no :class:`Event`, no carrier
  object, no callback list.  The drain loop distinguishes payloads with
  one ``isinstance(entry, Event)`` check.
* :class:`Timeout` objects consumed by exactly one waiting process (the
  ubiquitous ``yield sim.timeout(...)`` pattern) are returned to a
  per-simulator free list and reused by the next ``timeout()`` call.
  Retaining a fired Timeout past the resumption of its waiter and reading
  ``.value`` / ``.processed`` later is unsupported; attach a callback or
  use a fresh :class:`Event` for that.
* Starting a :class:`Process` schedules its first resumption directly
  instead of allocating a bootstrap :class:`Event`.

None of this changes observable behaviour: heap entries are created at the
same simulated times in the same relative order as before, so simulated
end times are bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "SimError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
]


class SimError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0  # not triggered yet
_TRIGGERED = 1  # queued, callbacks will run when popped
_PROCESSED = 2  # callbacks have run

#: cap on the per-simulator Timeout free list (bounds idle memory).
_POOL_MAX = 4096


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: pending, triggered (scheduled on the
    event queue) and processed (callbacks executed).  Waiting on an already
    processed event resumes the waiter immediately (at the current simulated
    time) rather than blocking forever.
    """

    __slots__ = ("sim", "_state", "_ok", "_value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._state = _PENDING
        self._ok = True
        self._value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (not failed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        return self._value

    def succeed(self, value: Any = None, delay: int = 0) -> "Event":
        """Trigger the event successfully, firing after ``delay`` ns."""
        if self._state != _PENDING:
            raise SimError(f"{self!r} has already been triggered")
        self._state = _TRIGGERED
        self._ok = True
        self._value = value
        self.sim._enqueue(delay, self)
        return self

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        """Trigger the event with a failure; waiters get ``exc`` thrown."""
        if self._state != _PENDING:
            raise SimError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise SimError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._ok = False
        self._value = exc
        self.sim._enqueue(delay, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed, the callback is scheduled
        to run immediately (at the current simulated time).
        """
        if self._state == _PROCESSED:
            self.sim.call_soon(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Instances consumed by a single waiting process are pooled: prefer
    ``sim.timeout(...)`` over direct construction so reuse can kick in,
    and do not retain a fired Timeout past its waiter's resumption.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._state = _TRIGGERED
        self._value = value
        sim._enqueue(delay, self)

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        # Recycle the ``yield sim.timeout(...)`` pattern: exactly one
        # waiter, and that waiter is a process resumption.  Condition
        # events (_check callbacks), multi-waiter timeouts and explicit
        # user callbacks keep the object alive and are never pooled.
        if len(callbacks) == 1 and \
                getattr(callbacks[0], "__func__", None) is Process._resume:
            pool = self.sim._timeout_pool
            if len(pool) < _POOL_MAX:
                self._value = None
                pool.append(self)


class Process(Event):
    """A running generator; doubles as the event fired at termination.

    The process resumes each time the event it yielded fires.  A failed
    event is thrown into the generator; an uncaught exception fails the
    process event, and escapes to :meth:`Simulator.run` if nothing waits on
    the process.
    """

    __slots__ = ("_generator", "_send", "_throw", "_waiting_on", "_observed",
                 "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._waiting_on: Optional[Event] = None
        self._observed = False
        self.name = name or getattr(generator, "__name__", "process")
        sim.processes_started += 1
        # Kick the process off at the current time (directly scheduled —
        # no bootstrap Event allocation).
        sim.call_soon(self._bootstrap)

    def _bootstrap(self) -> None:
        # ``_init_event`` is a shared, already-processed Event carrying
        # ``ok=True, value=None`` — the legacy bootstrap's trigger value.
        self._resume(self.sim._init_event)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimError(f"cannot interrupt finished process {self.name!r}")
        poker = Event(self.sim)
        poker.add_callback(self._resume)
        poker.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if self._state != _PENDING:
            # The process already ended (e.g. interrupted); stale wakeup.
            return
        waiting = self._waiting_on
        if waiting is not None and event is not waiting:
            # An interrupt arrived while waiting; the original event may
            # still fire later, and must then be ignored.
            if isinstance(event.value, Interrupt):
                self._waiting_on = None
            else:
                return
        else:
            self._waiting_on = None
        self.sim.process_wakeups += 1
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                target = self._throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
            self._throw(exc)
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        self._observed = True
        super().add_callback(callback)

    def fail(self, exc: BaseException, delay: int = 0) -> "Event":
        super().fail(exc, delay)
        self.sim._defunct.append(self)
        return self


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of the given events fires.

    The value is the ``(event, value)`` pair of the first event.  A failing
    child event fails the condition.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            self.fail(event.value)


class AllOf(_Condition):
    """Fires when every given event has fired; value is the value list."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed([e.value for e in self._events])


class Simulator:
    """The event loop: owns the clock and runs events in timestamp order."""

    def __init__(self):
        self.now: int = 0
        # Calendar-bucket queue: ``_heap`` holds one plain-int entry per
        # distinct pending timestamp; ``_buckets`` maps each timestamp to
        # its entries in schedule order.  Dispatch order — timestamps
        # ascending, insertion order within a timestamp — is exactly the
        # order of the classic ``(time, sequence)`` heap, but a burst of
        # same-time entries costs one heap operation instead of one each,
        # and heap comparisons are int-int instead of tuple-tuple.
        self._heap: List[int] = []
        self._buckets: Dict[int, List] = {}
        self._defunct: List[Process] = []
        # Telemetry counters, harvested lazily by repro.telemetry (the
        # kernel stays dependency-free): plain int adds per event.  The
        # batched drain loop accumulates them locally and flushes once per
        # drain, so mid-drain reads may lag.
        self.events_dispatched = 0
        self.process_wakeups = 0
        self.processes_started = 0
        self.max_queue_depth = 0
        # Free list for pooled Timeouts (see module docstring).
        self._timeout_pool: List[Timeout] = []
        # Shared bootstrap event handed to every process's first resume.
        self._init_event = Event(self)
        self._init_event._state = _PROCESSED

    # -- scheduling ------------------------------------------------------

    def _enqueue(self, delay: int, event: Event) -> None:
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        when = self.now + int(delay)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [event]
            _heappush(self._heap, when)
        else:
            bucket.append(event)

    def dispose(self) -> None:
        """Drop every pending event, parked process and pooled timeout.

        End-of-simulation teardown: pending entries (unexpired drain
        watches, parked processes) hold generator frames whose locals
        reach most of the model, so clearing them here lets reference
        counting reclaim a dead cluster instead of leaving one giant
        cycle for the garbage collector to traverse.  The simulator
        itself stays usable for a fresh run.
        """
        self._heap.clear()
        self._buckets.clear()
        self._defunct.clear()
        self._timeout_pool.clear()

    def call_soon(self, func: Callable[[], None]) -> None:
        """Run ``func()`` at the current simulated time, after everything
        already queued for this timestamp."""
        when = self.now
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [func]
            _heappush(self._heap, when)
        else:
            bucket.append(func)

    def call_at(self, when: int, func: Callable[[], None]) -> None:
        """Run ``func()`` at absolute simulated time ``when`` (>= now)."""
        if when < self.now:
            raise SimError(
                f"cannot schedule into the past (when={when} < now={self.now})"
            )
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [func]
            _heappush(self._heap, when)
        else:
            bucket.append(func)

    def call_later(self, delay: int, func: Callable[[], None]) -> None:
        """Run ``func()`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        when = self.now + int(delay)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [func]
            _heappush(self._heap, when)
        else:
            bucket.append(func)

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now (pooled)."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t._state = _TRIGGERED
            t._value = value
            self._enqueue(delay, t)
            return t
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -------------------------------------------------------

    def _reap_defunct(self) -> None:
        # Surface exceptions from processes nobody waits on, so bugs do not
        # vanish silently.  A failed process stays on the defunct list until
        # its own termination event has been processed; if no waiter
        # consumed the failure by then, re-raise it here.
        # Mutated in place: _drain holds a reference to the same list.
        defunct = self._defunct
        still_pending = []
        for proc in defunct:
            if proc._state != _PROCESSED:
                still_pending.append(proc)
            elif not proc.ok and not proc._observed:
                defunct[:] = still_pending
                raise proc.value
        defunct[:] = still_pending

    def step(self) -> None:
        """Process the next entry on the queue."""
        heap = self._heap
        when = heap[0]
        depth = len(heap)
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        self.events_dispatched += 1
        bucket = self._buckets[when]
        entry = bucket.pop(0)
        if not bucket:
            del self._buckets[when]
            _heappop(heap)
        self.now = when
        if isinstance(entry, Event):
            entry._run_callbacks()
        else:
            entry()
        if self._defunct:
            self._reap_defunct()

    def _drain(self, until: Optional[int], stop: Optional[Event]) -> None:
        """The shared hot loop: dispatch entries in (time, sequence) order.

        ``until`` bounds simulated time (exclusive); ``stop`` halts the
        loop once that event has been processed.  All entries of one
        timestamp are popped in the inner loop so the time comparison and
        attribute loads happen once per timestamp, not once per event.
        Telemetry counters are accumulated in locals and flushed on exit
        (including on exceptions).
        """
        heap = self._heap
        buckets = self._buckets
        pop = _heappop
        defunct = self._defunct
        dispatched = 0
        max_depth = self.max_queue_depth
        sample = 0
        try:
            # The loop is duplicated for the unbounded stop-less case
            # (plain ``run()``, which is every figure run and benchmark)
            # so the common path pays neither a per-batch ``until`` check
            # nor a per-event stop check.
            if until is None and stop is None:
                while heap:
                    when = pop(heap)
                    self.now = when
                    # Queue depth is sampled every 64th timestamp batch
                    # (not before every pop) and counts distinct pending
                    # timestamps, to keep the loop lean; the gauge stays
                    # deterministic but is an approximation — it is one
                    # of the interpreter self-counters exempt from
                    # fast-path invariance (see DESIGN.md).
                    sample -= 1
                    if sample < 0:
                        sample = 63
                        depth = len(heap)
                        if depth > max_depth:
                            max_depth = depth
                    # Entries scheduled for ``when`` mid-batch go to a
                    # fresh bucket that the outer loop dispatches next,
                    # exactly where their sequence numbers would have
                    # placed them; this bucket cannot grow under us.
                    for entry in buckets.pop(when):
                        dispatched += 1
                        if isinstance(entry, Event):
                            entry._run_callbacks()
                        else:
                            entry()
                        if defunct:
                            self._reap_defunct()
            else:
                while heap:
                    when = heap[0]
                    if until is not None and when >= until:
                        break
                    pop(heap)
                    self.now = when
                    sample -= 1
                    if sample < 0:
                        sample = 63
                        depth = len(heap)
                        if depth > max_depth:
                            max_depth = depth
                    bucket = buckets.pop(when)
                    for i, entry in enumerate(bucket):
                        dispatched += 1
                        if isinstance(entry, Event):
                            entry._run_callbacks()
                        else:
                            entry()
                        if defunct:
                            self._reap_defunct()
                        if stop is not None and stop._state == _PROCESSED:
                            # Preserve the rest of the batch for a later
                            # run; mid-batch entries at ``when`` may have
                            # re-created the bucket and must come after.
                            rest = bucket[i + 1:]
                            if rest:
                                existing = buckets.get(when)
                                if existing is None:
                                    buckets[when] = rest
                                    _heappush(heap, when)
                                else:
                                    existing[:0] = rest
                            return
        finally:
            self.events_dispatched += dispatched
            self.max_queue_depth = max_depth

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queue drains or ``until`` is reached.

        Contract — the bound is **exclusive**: every event scheduled
        strictly before ``until`` is processed; an event scheduled exactly
        at ``until`` stays queued, and the clock stops at ``until`` so a
        subsequent ``run()`` resumes with those events due at the current
        time.  The clock advances to ``until`` even when the queue drains
        early, and never moves backwards: ``until <= now`` processes
        nothing and leaves the clock unchanged.

        Returns the simulated time at which the run stopped.
        """
        self._drain(until, None)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` as a process to completion.

        Returns the process return value; re-raises its exception on
        failure.  Other already-scheduled activities keep running alongside.
        """
        proc = self.process(generator, name=name)
        self._drain(None, proc)
        if proc._state != _PROCESSED:
            raise SimError(f"process {proc.name!r} deadlocked (event queue empty)")
        if not proc.ok:
            raise proc.value
        return proc.value
