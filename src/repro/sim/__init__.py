"""Discrete-event simulation kernel.

The whole reproduction runs inside a deterministic discrete-event
simulation: simulated time is an integer number of nanoseconds, concurrent
activities (worker threads, NIC engines, links) are generator-based
processes, and every measurement reported by the benchmarks is simulated
wall-clock time.

The kernel is intentionally small and simpy-like:

* :class:`~repro.sim.kernel.Simulator` owns the clock and the event queue.
* Processes are plain generators that ``yield`` :class:`Event` objects and
  resume when the event fires.
* :mod:`repro.sim.primitives` provides the blocking building blocks used by
  the fabric and the endpoints: FIFO queues, semaphores, mutexes, broadcast
  signals and rate-limited pipes.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimError,
    Simulator,
    Timeout,
)
from repro.sim.primitives import (
    Barrier,
    Mutex,
    Notify,
    Queue,
    RatePipe,
    Semaphore,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "Event",
    "Interrupt",
    "Mutex",
    "Notify",
    "Process",
    "Queue",
    "RatePipe",
    "Semaphore",
    "SimError",
    "Simulator",
    "Timeout",
]
