"""Runtime toggle for flow-level packet trains in the fabric.

With trains enabled (the default), the back-to-back MTU packets of one
message traverse every pipe of the fabric as a single **packet train**:
one serialization charge, one completion event — the flow-level model
that makes mesoscale runs (hundreds to a thousand nodes) affordable.

Set ``REPRO_TRAINS=0`` to select the per-packet oracle: each pipe
schedules one completion tick per MTU packet of the train, with the
train's serialization time distributed over integer packet boundaries
(packet ``i`` of ``n`` lands at ``start + (ser * i) // n``; fixed
per-item overhead rides on the last packet, so the final tick falls
exactly at the pipe's ``busy_until``).  Because pipes are FIFO-serial
and every intermediate tick is a no-op, the two modes produce
bit-identical end times, metrics and critical-path attribution — the
property asserted per endpoint design and per topology preset by
``tests/test_train_determinism.py``, mirroring the
:mod:`repro.sim.fastpath` A/B discipline.

Consumers read the flag once at construction time
(:class:`~repro.sim.primitives.RatePipe` instances created by the NIC
and the topology), so flipping the variable mid-simulation has no
effect; tests and benchmarks can instead flip
``Fabric.use_packet_oracle()`` on a quiesced fabric.
"""

from __future__ import annotations

import os

__all__ = ["enabled"]

_FALSEY = ("0", "false", "no", "off", "")


def enabled(default: bool = True) -> bool:
    """Are packet trains on?  Honors the ``REPRO_TRAINS`` env var."""
    value = os.environ.get("REPRO_TRAINS")
    if value is None:
        return default
    return value.strip().lower() not in _FALSEY
