"""repro — RDMA-aware data shuffling for parallel database systems.

A from-scratch reproduction of Liu, Yin & Blanas, *"Design and Evaluation
of an RDMA-aware Data Shuffling Operator for Parallel Database Systems"*
(EuroSys 2017), built on a deterministic discrete-event simulation of
InfiniBand clusters (see DESIGN.md for the substitution rationale).

Quickstart::

    from repro import Cluster, ClusterConfig, EDR
    from repro.bench.workloads import run_repartition

    cluster = Cluster(ClusterConfig(network=EDR, num_nodes=8))
    result = run_repartition(cluster, design="MESQ/SR",
                             bytes_per_node=16 << 20)
    print(result.receive_throughput_gib_per_node())
"""

from repro.cluster import Cluster
from repro.core import (
    DESIGNS,
    DataState,
    Design,
    EndpointConfig,
    ReceiveOperator,
    ShuffleNetworkError,
    ShuffleOperator,
    ShuffleStage,
    TransmissionGroups,
    design_properties,
)
from repro.fabric import (
    DUAL_RAIL,
    EDR,
    FDR,
    LEAF_SPINE,
    SINGLE_SWITCH,
    ClusterConfig,
    NetworkConfig,
    TopologySpec,
    parse_topology,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "DESIGNS",
    "DUAL_RAIL",
    "DataState",
    "Design",
    "EDR",
    "EndpointConfig",
    "FDR",
    "LEAF_SPINE",
    "NetworkConfig",
    "SINGLE_SWITCH",
    "TopologySpec",
    "parse_topology",
    "ReceiveOperator",
    "ShuffleNetworkError",
    "ShuffleOperator",
    "ShuffleStage",
    "TransmissionGroups",
    "design_properties",
    "__version__",
]
