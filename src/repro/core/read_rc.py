"""RDMA Read over Reliable Connection (§4.4.3, Figure 7, Algorithm 3).

One-sided design: during data transfer the SEND endpoint stays completely
passive; the RECEIVE endpoint pulls buffers with RDMA Read.  Coordination
happens through two circular message queues living in registered memory
and updated by inlined RDMA Writes:

* ``ValidArr`` (at the receiver, one per source) — the sender produces
  addresses of *full* buffers into it;
* ``FreeArr`` (at the sender, one per destination) — the receiver
  produces addresses of *consumed* buffers into it.

The receiver keeps a ``LocalArr`` stack of unused registered destination
buffers; an RDMA Read is issued whenever a valid remote address and a
local buffer are both available.  A sender's buffer becomes reusable only
once *every* member of the transmission group it was sent to has returned
it — which is why this design starves for buffers under broadcast when
any reader lags (§5.1.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence, Tuple

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
    ReceiveEndpoint,
    SendEndpoint,
)
from repro.memory import Buffer, BufferPool
from repro.verbs.cm import EndpointRegistry, connect_rc_pair
from repro.verbs.constants import AddressHandle, Opcode, QPType
from repro.verbs.device import VerbsContext
from repro.verbs.wr import SendWR

__all__ = ["ReadRCSendEndpoint", "ReadRCReceiveEndpoint"]


class _SendLink:
    """Sender-side state per destination: QP + remote ValidArr cursor."""

    __slots__ = ("dest_node", "qp", "valid_base", "valid_cap", "prod")

    def __init__(self, dest_node: int):
        self.dest_node = dest_node
        self.qp = None
        self.valid_base = 0
        self.valid_cap = 0
        self.prod = 0

    def next_valid_slot(self) -> int:
        slot = self.valid_base + (self.prod % self.valid_cap) * 8
        self.prod += 1
        return slot


class ReadRCSendEndpoint(SendEndpoint):
    """Passive SEND endpoint for the RDMA Read design (Figure 7a)."""

    transport = "MQ/RD"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        super().__init__(ctx, endpoint_id, config, destinations, num_groups)
        self.peers = dict(peers)
        self._links: Dict[int, _SendLink] = {}
        #: buffer address -> outstanding FreeArr notifications (Alg 3 l.13).
        self._pending: Dict[int, int] = {}
        self.pool: BufferPool = None
        self._final_bufs: Dict[int, Buffer] = {}
        self.cq = None
        self._free_mr = None

    @property
    def _pool_buffers(self) -> int:
        return (self.config.buffers_per_connection * self.num_groups *
                self.config.threads_per_endpoint)

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        for dest in self.destinations:
            link = _SendLink(dest)
            link.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq)
            self._links[dest] = link
        total = self._pool_buffers + len(self.destinations)  # + final markers
        yield from self._charge_registration(total * self.config.message_size)
        self.pool = BufferPool(self.ctx, total, self.config.message_size)
        for buf in self.pool.buffers[:self._pool_buffers]:
            self._free.put(buf)
        for dest, buf in zip(self.destinations,
                             self.pool.buffers[self._pool_buffers:]):
            self._final_bufs[dest] = buf
        self._final_addrs = {buf.addr for buf in self._final_bufs.values()}
        # FreeArr: one circular region per destination, written remotely.
        cap = self._free_cap
        self._free_mr = yield from self.ctx.reg_mr_timed(
            8 * cap * len(self.destinations))
        self._free_base = {
            dest: self._free_mr.addr + 8 * cap * i
            for i, dest in enumerate(self.destinations)
        }
        self._free_mr.on_write.append(self._on_free_write)
        registry.publish(("ep", self.endpoint_id), {
            "node": self.ctx.node_id,
            "qpn_by_dest": {d: l.qp.qpn for d, l in self._links.items()},
            "freearr_base_by_dest": self._free_base,
            "freearr_cap": cap,
        })

    @property
    def _free_cap(self) -> int:
        """FreeArr slots per destination: every buffer could be pending."""
        return self._pool_buffers + 2

    def connect(self, registry: EndpointRegistry):
        for dest in self.destinations:
            link = self._links[dest]
            info = registry.lookup(("ep", self.peers[dest]))
            remote_qpn = info["qpn_by_source"][self.endpoint_id]
            yield from connect_rc_pair(
                self.ctx, link.qp, AddressHandle(dest, remote_qpn))
            link.valid_base = info["validarr_base_by_source"][self.endpoint_id]
            link.valid_cap = info["validarr_cap"]
        self.sim.process(
            self._drain_cq(), name=f"rd-send-cq-{self.endpoint_id}")

    def _on_free_write(self, addr: int, value: int) -> None:
        """A destination returned a buffer through FreeArr (Alg 3 l.8-14)."""
        if value == 0:
            return
        self._pending[value] -= 1
        if self._pending[value] == 0:
            del self._pending[value]
            if value not in self._final_addrs:
                buf = self.pool.at(value)
                buf.reset()
                self._free.put(buf)

    def _drain_cq(self):
        """The sender's only active work: draining Write completions."""
        while True:
            yield self.cq.wait()

    # -- SEND (Alg 3, lines 1-5) ------------------------------------------------

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.endpoint_send_ns))
        frame = Frame(
            kind="data", state=state, src_endpoint=self.endpoint_id,
            payload=buf.payload, length=buf.length, remote_addr=buf.addr,
        )
        # Encode the metadata in the buffer itself (Alg 3 line 2): a
        # remote RDMA Read of buf.addr observes the frame.
        buf.mr.set_object(buf.addr, frame)
        self._pending[buf.addr] = len(dests)
        for dest in dests:
            link = self._links[dest]
            yield self._cpu(self.net.post_wr_ns)
            link.qp.post_send(SendWR(
                wr_id=("valid", dest), opcode=Opcode.WRITE,
                remote_addr=link.next_valid_slot(), value=buf.addr,
                inline=True, signaled=False,
            ))
            self.record_send(dest, buf.length)

    def _send_finals(self):
        for dest in self.destinations:
            link = self._links[dest]
            buf = self._final_bufs[dest]
            frame = Frame(kind="final", state=DataState.DEPLETED,
                          src_endpoint=self.endpoint_id, remote_addr=buf.addr)
            buf.mr.set_object(buf.addr, frame)
            self._pending[buf.addr] = 1
            yield self._cpu(self.net.post_wr_ns)
            link.qp.post_send(SendWR(
                wr_id=("valid", dest), opcode=Opcode.WRITE,
                remote_addr=link.next_valid_slot(), value=buf.addr,
                inline=True, signaled=False,
            ))


class _RecvLink:
    """Receiver-side state per source (Figure 7b)."""

    __slots__ = ("src_node", "src_endpoint", "qp", "local_arr",
                 "pending_remote", "free_base", "free_cap", "free_prod")

    def __init__(self, src_node: int, src_endpoint: int):
        self.src_node = src_node
        self.src_endpoint = src_endpoint
        self.qp = None
        #: LocalArr: unused registered destination buffers (a stack).
        self.local_arr: List[Buffer] = []
        #: remote buffer addresses produced into ValidArr, not yet read.
        self.pending_remote: Deque[int] = deque()
        self.free_base = 0
        self.free_cap = 0
        self.free_prod = 0

    def next_free_slot(self) -> int:
        slot = self.free_base + (self.free_prod % self.free_cap) * 8
        self.free_prod += 1
        return slot


class ReadRCReceiveEndpoint(ReceiveEndpoint):
    """Active RECEIVE endpoint for the RDMA Read design (Figure 7b)."""

    transport = "MQ/RD"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config, sources)
        self._links: Dict[int, _RecvLink] = {}
        self.cq = None
        self.pool: BufferPool = None
        self._valid_mr = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        per_link = self.config.buffers_per_link
        total = per_link * max(1, len(self.sources))
        yield from self._charge_registration(total * self.config.message_size)
        self.pool = BufferPool(self.ctx, total, self.config.message_size)
        # ValidArr: one circular region per source, written remotely; must
        # hold every buffer the sender could have outstanding plus finals.
        cap = self._valid_cap
        self._valid_mr = yield from self.ctx.reg_mr_timed(
            8 * cap * max(1, len(self.sources)))
        valid_base = {}
        next_buffer = 0
        self._link_by_valid_region = []
        for i, (src_node, src_ep) in enumerate(self.sources):
            link = _RecvLink(src_node, src_ep)
            link.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq)
            for _ in range(per_link):
                link.local_arr.append(self.pool.buffers[next_buffer])
                next_buffer += 1
            base = self._valid_mr.addr + 8 * cap * i
            valid_base[src_ep] = base
            self._link_by_valid_region.append((base, base + 8 * cap, link))
            self._links[src_ep] = link
        self._valid_mr.on_write.append(self._on_valid_write)
        registry.publish(("ep", self.endpoint_id), {
            "node": self.ctx.node_id,
            "qpn_by_source": {
                src_ep: l.qp.qpn for src_ep, l in self._links.items()
            },
            "validarr_base_by_source": valid_base,
            "validarr_cap": cap,
        })

    @property
    def _valid_cap(self) -> int:
        sender_pool = (self.config.buffers_per_connection *
                       self.config.threads_per_endpoint)
        # A sender could funnel its entire pool at one destination; the
        # exact pool size depends on the sender's group count, so leave
        # generous headroom (slots are 8 bytes each).
        return sender_pool * 64 + 4

    def connect(self, registry: EndpointRegistry):
        for src_node, src_ep in self.sources:
            link = self._links[src_ep]
            info = registry.lookup(("ep", src_ep))
            remote_qpn = info["qpn_by_dest"][self.ctx.node_id]
            yield from connect_rc_pair(
                self.ctx, link.qp, AddressHandle(src_node, remote_qpn))
            link.free_base = info["freearr_base_by_dest"][self.ctx.node_id]
            link.free_cap = info["freearr_cap"]
        self.sim.process(
            self._read_completions(), name=f"rd-recv-cq-{self.endpoint_id}")

    # -- the read pump (Alg 3, GETDATA lines 19-25) ------------------------------

    def _on_valid_write(self, addr: int, value: int) -> None:
        if value == 0:
            return
        for lo, hi, link in self._link_by_valid_region:
            if lo <= addr < hi:
                link.pending_remote.append(value)
                self._pump(link)
                return

    def _pump(self, link: _RecvLink) -> None:
        """Issue RDMA Reads while remote addresses and local buffers last."""
        while link.pending_remote and link.local_arr:
            remote_addr = link.pending_remote.popleft()
            local = link.local_arr.pop()
            link.qp.post_send(SendWR(
                wr_id=("read", link.src_endpoint, remote_addr, local),
                opcode=Opcode.READ, buffer=local,
                length=self.config.message_size, remote_addr=remote_addr,
            ))

    def _read_completions(self):
        while True:
            wc = yield self.cq.wait()
            if wc.opcode is not Opcode.READ:
                continue
            _tag, src_ep, remote_addr, local = wc.wr_id
            frame: Frame = local.payload
            link = self._links[src_ep]
            if frame.kind == "final":
                # Return the marker buffer and recycle our local one.
                link.qp.post_send(SendWR(
                    wr_id=("free", src_ep), opcode=Opcode.WRITE,
                    remote_addr=link.next_free_slot(), value=remote_addr,
                    inline=True, signaled=False,
                ))
                local.reset()
                link.local_arr.append(local)
                self._pump(link)
                self._source_depleted(src_ep)
            else:
                self.messages_received += 1
                self.bytes_received += frame.length
                local.payload = frame.payload
                local.length = frame.length
                self._inbox.put((
                    DataState.MORE_DATA, src_ep, remote_addr, local,
                ))

    # -- RELEASE (Alg 3, lines 16-18) ----------------------------------------------

    def release(self, remote_addr: int, local: Buffer, src: int):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.post_wr_ns))
        link = self._links[src]
        yield self._cpu(self.net.post_wr_ns)
        link.qp.post_send(SendWR(
            wr_id=("free", src), opcode=Opcode.WRITE,
            remote_addr=link.next_free_slot(), value=remote_addr,
            inline=True, signaled=False,
        ))
        local.reset()
        link.local_arr.append(local)
        self._pump(link)
