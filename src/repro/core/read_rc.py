"""RDMA Read over Reliable Connection (§4.4.3, Figure 7, Algorithm 3).

One-sided design: during data transfer the SEND endpoint stays completely
passive; the RECEIVE endpoint pulls buffers with RDMA Read.  Coordination
happens through two circular message queues living in registered memory
and updated by inlined RDMA Writes:

* ``ValidArr`` (at the receiver, one per source) — the sender produces
  addresses of *full* buffers into it;
* ``FreeArr`` (at the sender, one per destination) — the receiver
  produces addresses of *consumed* buffers into it.

The receiver keeps a ``LocalArr`` stack of unused registered destination
buffers; an RDMA Read is issued whenever a valid remote address and a
local buffer are both available.  A sender's buffer becomes reusable only
once *every* member of the transmission group it was sent to has returned
it — which is why this design starves for buffers under broadcast when
any reader lags (§5.1.3).

The circular-queue machinery (producer cursors, consumer boards, inlined
ring writes) lives in the shared transport runtime; this module is the
RDMA Read posting policy: what gets produced into which ring, and the
read pump joining ValidArr with LocalArr.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Sequence, Tuple

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
)
from repro.core.transport.connections import (
    PeerConnection,
    rc_connect_receivers,
    rc_connect_senders,
)
from repro.core.transport.credit import RingBoard
from repro.core.transport.dispatch import CompletionDispatcher
from repro.core.transport.registry import register_endpoint_kind
from repro.core.transport.rings import RingCursor, post_ring_write
from repro.core.transport.runtime import (
    RuntimeReceiveEndpoint,
    RuntimeSendEndpoint,
)
from repro.memory import Buffer
from repro.verbs.cm import EndpointRegistry
from repro.verbs.constants import Opcode, QPType
from repro.verbs.device import VerbsContext
from repro.verbs.wr import SendWR

__all__ = ["ReadRCSendEndpoint", "ReadRCReceiveEndpoint"]


class ReadRCSendEndpoint(RuntimeSendEndpoint):
    """Passive SEND endpoint for the RDMA Read design (Figure 7a)."""

    transport = "MQ/RD"

    @classmethod
    def protocol_model(cls, bound):
        """Model-checker hook: one-sided pull — ValidArr announces full
        buffers, the receiver joins them with its local window, issues
        RDMA Reads and returns consumed addresses via FreeArr
        (Algorithm 3).  Ring caps mirror :attr:`_free_cap` (every pool
        buffer could be pending, plus slack) at the bound's pool size.
        """
        from repro.analysis.model.protocols import RingProtocolModel
        from repro.verbs.qp import fault_actions
        cap = bound.sender_buffers + 2
        return RingProtocolModel(
            "RD_RC", bound, role="read",
            valid=RingBoard.model("validarr", cap),
            free=RingBoard.model("freearr", cap),
            faults=fault_actions(QPType.RC))

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        super().__init__(ctx, endpoint_id, config, destinations,
                         num_groups, peers)
        self._final_bufs: Dict[int, Buffer] = {}
        self._free_board: RingBoard = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        for dest in self.destinations:
            conn = self.conns.add(dest, PeerConnection(dest))
            conn.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq,
                                         tenant=self.config.tenant)
        # Reserve one extra buffer per destination for the final markers.
        yield from self.provision_send_pool(extra=len(self.destinations))
        for dest, buf in zip(self.destinations,
                             self.pool.buffers[self.send_pool_buffers:]):
            self._final_bufs[dest] = buf
        self._final_addrs = {buf.addr for buf in self._final_bufs.values()}
        # FreeArr: one circular region per destination, written remotely.
        # A returned address must name a buffer this sender actually has
        # in flight; anything else is a board inconsistency.
        self._free_board = yield from RingBoard.install(
            self, self.destinations, self._free_cap, self._on_free_value,
            name="freearr",
            validator=lambda dest, value: value in self._pending)
        registry.publish_endpoint(self.endpoint_id, {
            "node": self.ctx.node_id,
            "qpn_by_dest": {d: c.qp.qpn for d, c in self.conns.items()},
            "freearr_base_by_dest": self._free_board.base_by_key,
            "freearr_cap": self._free_cap,
        })

    @property
    def _free_cap(self) -> int:
        """FreeArr slots per destination: every buffer could be pending."""
        return self.send_pool_buffers + 2

    def connect(self, registry: EndpointRegistry):
        def bind(conn, info):
            conn.valid = RingCursor(
                info["validarr_base_by_source"][self.endpoint_id],
                info["validarr_cap"])

        yield from rc_connect_senders(self, registry, bind)
        # The sender's only active work is draining Write completions.
        CompletionDispatcher(self).start(f"rd-send-cq-{self.endpoint_id}")

    def _on_free_value(self, dest: int, value: int) -> None:
        """A destination returned a buffer through FreeArr (Alg 3 l.8-14)."""
        if self._pending.complete(value):
            if value not in self._final_addrs:
                self.recycle(self.pool.at(value))

    # -- SEND (Alg 3, lines 1-5) ------------------------------------------------

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.endpoint_send_ns))
        frame = Frame(
            kind="data", state=state, src_endpoint=self.endpoint_id,
            payload=buf.payload, length=buf.length, remote_addr=buf.addr,
        )
        # Encode the metadata in the buffer itself (Alg 3 line 2): a
        # remote RDMA Read of buf.addr observes the frame.
        buf.mr.set_object(buf.addr, frame)
        self._pending.add(buf.addr, len(dests))
        for dest in dests:
            conn = self.conns[dest]
            yield self._cpu(self.net.post_wr_ns)
            post_ring_write(conn.qp, conn.valid, buf.addr, ("valid", dest))
            self.record_send(dest, buf.length)

    def _send_finals(self):
        for dest in self.destinations:
            conn = self.conns[dest]
            buf = self._final_bufs[dest]
            frame = Frame(kind="final", state=DataState.DEPLETED,
                          src_endpoint=self.endpoint_id, remote_addr=buf.addr)
            buf.mr.set_object(buf.addr, frame)
            self._pending.add(buf.addr, 1)
            yield self._cpu(self.net.post_wr_ns)
            post_ring_write(conn.qp, conn.valid, buf.addr, ("valid", dest))


class ReadRCReceiveEndpoint(RuntimeReceiveEndpoint):
    """Active RECEIVE endpoint for the RDMA Read design (Figure 7b)."""

    transport = "MQ/RD"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config, sources)
        self._valid_board: RingBoard = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        per_link = self.config.buffers_per_link
        yield from self.provision_recv_pool()
        # ValidArr: one circular region per source, written remotely; must
        # hold every buffer the sender could have outstanding plus finals.
        self._valid_board = yield from RingBoard.install(
            self, [src_ep for _node, src_ep in self.sources],
            self._valid_cap, self._on_valid_value, min_one=True,
            name="validarr")
        next_buffer = 0
        for src_node, src_ep in self.sources:
            conn = self.conns.add(src_ep, PeerConnection(src_node, src_ep))
            conn.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq,
                                         tenant=self.config.tenant)
            #: LocalArr: unused registered destination buffers (a stack).
            conn.local_arr = []
            conn.pending_remote = deque()
            for _ in range(per_link):
                conn.local_arr.append(self.pool.buffers[next_buffer])
                next_buffer += 1
        registry.publish_endpoint(self.endpoint_id, {
            "node": self.ctx.node_id,
            "qpn_by_source": {
                src_ep: c.qp.qpn for src_ep, c in self.conns.items()
            },
            "validarr_base_by_source": self._valid_board.base_by_key,
            "validarr_cap": self._valid_cap,
        })

    @property
    def _valid_cap(self) -> int:
        sender_pool = (self.config.buffers_per_connection *
                       self.config.threads_per_endpoint)
        # A sender could funnel its entire pool at one destination; the
        # exact pool size depends on the sender's group count, so leave
        # generous headroom (slots are 8 bytes each).
        return sender_pool * 64 + 4

    def connect(self, registry: EndpointRegistry):
        def bind(conn, info):
            conn.free = RingCursor(
                info["freearr_base_by_dest"][self.ctx.node_id],
                info["freearr_cap"])

        yield from rc_connect_receivers(self, registry, bind)
        CompletionDispatcher(self).on(Opcode.READ, self._on_read) \
            .start(f"rd-recv-cq-{self.endpoint_id}")

    # -- the read pump (Alg 3, GETDATA lines 19-25) ------------------------------

    def _on_valid_value(self, src_ep: int, value: int) -> None:
        conn = self.conns[src_ep]
        conn.pending_remote.append(value)
        self._pump(conn)

    def _pump(self, conn: PeerConnection) -> None:
        """Issue RDMA Reads while remote addresses and local buffers last."""
        while conn.pending_remote and conn.local_arr:
            remote_addr = conn.pending_remote.popleft()
            local = conn.local_arr.pop()
            conn.qp.post_send(SendWR(
                wr_id=("read", conn.endpoint, remote_addr, local),
                opcode=Opcode.READ, buffer=local,
                length=self.config.message_size, remote_addr=remote_addr,
            ))

    def _on_read(self, wc) -> None:
        _tag, src_ep, remote_addr, local = wc.wr_id
        frame: Frame = local.payload
        conn = self.conns[src_ep]
        if frame.kind == "final":
            # Return the marker buffer and recycle our local one.
            post_ring_write(conn.qp, conn.free, remote_addr, ("free", src_ep))
            local.reset()
            conn.local_arr.append(local)
            self._pump(conn)
            self._source_depleted(src_ep)
        else:
            local.deposit(frame.payload, frame.length)
            self._deliver(src_ep, remote_addr, local, flow=wc.flow)

    # -- RELEASE (Alg 3, lines 16-18) ----------------------------------------------

    def release(self, remote_addr: int, local: Buffer, src: int):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.post_wr_ns))
        conn = self.conns[src]
        yield self._cpu(self.net.post_wr_ns)
        post_ring_write(conn.qp, conn.free, remote_addr, ("free", src))
        local.reset()
        conn.local_arr.append(local)
        self._pump(conn)


register_endpoint_kind(
    "RD_RC", ReadRCSendEndpoint, ReadRCReceiveEndpoint, one_sided=True,
    description="one-sided RDMA Read over RC, FreeArr/ValidArr "
                "circular queues (§4.4.3)")
