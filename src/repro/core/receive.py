"""The RECEIVE operator (§4.3.2, Algorithm 2).

Each worker thread asks its endpoint for received buffers, copies them
into its thread-partitioned output buffer (cost charged through the CPU
model), releases the transmission buffer back to the endpoint, and
returns the output batch to the parent once full.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.endpoint import ReceiveEndpoint
from repro.engine.operator import Operator, OpState, concat_batches

__all__ = ["ReceiveOperator"]


class ReceiveOperator(Operator):
    """Algorithm 2: fetch, copy, release, emit."""

    def __init__(self, node, endpoints: Sequence[ReceiveEndpoint],
                 num_threads: int, output_bytes: int = 32 * 1024):
        super().__init__(node, child=None)
        if not endpoints:
            raise ValueError("receive needs at least one endpoint")
        self.endpoints = list(endpoints)
        self.num_threads = num_threads
        #: emit an output batch once this many bytes have accumulated
        #: (the paper uses 32 KiB, the L1 data cache size, in §5.1.6).
        self.output_bytes = output_bytes
        self.tuples_in = 0

    def _endpoint(self, tid: int) -> ReceiveEndpoint:
        return self.endpoints[tid % len(self.endpoints)]

    def next(self, tid: int):
        target = self._endpoint(tid)
        net = self.node.config
        acc: List[np.ndarray] = []
        acc_bytes = 0
        while True:
            state, src, remote, local = yield from target.get_data()
            if local is None:
                # End-of-stream sentinel: every source is depleted.
                batch = concat_batches(acc)
                if batch is not None:
                    self.tuples_in += len(batch)
                return (OpState.DEPLETED, batch)
            payload, length = local.payload, local.length
            # Copy out of the registered buffer (Alg 2 l.8) and return it
            # to the endpoint (l.9).
            yield self.per_tuple_cost(0, length,
                                      ns_per_byte=net.copy_ns_per_byte)
            if payload is not None and len(payload):
                acc.append(np.asarray(payload))
                acc_bytes += length
            yield from target.release(remote, local, src)
            if acc_bytes >= self.output_bytes:
                batch = concat_batches(acc)
                if batch is not None:
                    self.tuples_in += len(batch)
                return (OpState.MORE_DATA, batch)
