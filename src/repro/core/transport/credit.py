"""The paper's credit schemes as pluggable policy objects.

Three flow-control mechanisms appear in §4.4, all built on the same
primitive — a peer deposits an absolute value into registered memory (or
a datagram) and a host-side hook reacts:

* **Inlined-value credits** (§4.4.1, SR over RC): the receiver RDMA-
  Writes the absolute credit (total Receives posted) into a per-
  destination *credit word* at the sender — :class:`CreditWordBoard` on
  the sender, :func:`post_credit_word` on the receiver.
* **Credit datagrams** (§4.4.2, SR over UD): UD supports no RDMA Write,
  so the absolute credit travels as a small datagram —
  :class:`CreditDatagramPort` holds the small rotating buffer pools on
  both sides; the sender applies arrivals with :func:`grant_credit`.
* **FreeArr/ValidArr circular queues** (§4.4.3, RD/WR over RC): buffer
  addresses are produced into per-peer circular queues by inlined RDMA
  Writes — :class:`RingBoard` is the consumer side (registered region,
  per-peer slot ranges, write hook); :class:`~.rings.RingCursor` the
  producer side.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.memory import BufferPool
from repro.verbs.constants import Opcode
from repro.verbs.wr import RecvWR, SendWR

from repro.core.transport.connections import PeerConnection
from repro.core.transport.modeling import CreditModel, RingModel

__all__ = [
    "CREDIT_MSG_BYTES",
    "CREDIT_RECV_SLOTS",
    "CREDIT_SLOT_CAP",
    "CreditDatagramPort",
    "CreditWordBoard",
    "RingBoard",
    "grant_credit",
    "post_credit_word",
]

#: wire size of a credit-return datagram (header-only message).
CREDIT_MSG_BYTES = 16
#: credit slots provisioned per peer for credit datagrams.
CREDIT_RECV_SLOTS = 8
#: total credit-slot cap per endpoint: the slots rotate through a shared
#: pool, so mesoscale peer counts do not need 8x slots each — two per
#: peer covers the worst incast burst (each peer has at most one credit
#: plus one keepalive in flight), and credit datagrams tolerate loss by
#: design (absolute values + keepalive), so an overflow degrades, never
#: wedges.
CREDIT_SLOT_CAP = 2048


def grant_credit(conn: PeerConnection, value: int) -> None:
    """Apply an absolute credit value to a sender-side connection.

    Stale (reordered or duplicated) values are superseded by construction
    — the property that keeps the protocol stateless (§4.4.1-2).
    """
    if value > conn.credit:
        conn.credit = value
        conn.notify.notify_all()


def post_credit_word(conn: PeerConnection, value: Optional[int] = None) -> None:
    """Receiver half of the §4.4.1 scheme: write the absolute credit
    (Receives posted so far) into the sender's credit word, inlined into
    the WQE to save the payload DMA fetch [16].

    ``value`` defaults to ``conn.posted`` — the only value a correct
    receiver may advertise.  The parameter exists so the sanitizer can
    observe (and flag) endpoints that overgrant credit they have no
    Receives behind.
    """
    if value is None:
        value = conn.posted
    san = conn.qp.ctx.sanitizer
    if san is not None:
        san.on_credit_issued(conn, value)
    conn.qp.post_send(SendWR(
        wr_id=("credit", conn.endpoint), opcode=Opcode.WRITE,
        remote_addr=conn.credit_addr, value=value,
        inline=True, signaled=False,
    ))


class CreditWordBoard:
    """Sender half of the §4.4.1 scheme: one credit word per destination,
    written remotely by receivers; arrivals grant credit."""

    __slots__ = ("mr",)

    @classmethod
    def model(cls) -> CreditModel:
        """Protocol semantics for the model checker: credit words ride
        inlined RDMA Writes on the data RC QP — lossless and ordered, so
        no keepalive is needed (§4.4.1)."""
        return CreditModel(scheme="credit-word", lossy=False,
                           ordered=True, keepalive=False)

    @classmethod
    def install(cls, ep):
        """Process fragment: register the credit words of ``ep`` (one per
        destination), wire the write hook, and return the per-destination
        address map for the bootstrap exchange."""
        board = cls()
        board.mr = yield from ep.ctx.reg_mr_timed(
            8 * len(ep.destinations), tenant=ep.config.tenant)
        addr_by_dest = {}
        conns = []
        for i, dest in enumerate(ep.destinations):
            conn = ep.conns[dest]
            conn.credit_addr = board.mr.addr + 8 * i
            addr_by_dest[dest] = conn.credit_addr
            conns.append(conn)

        def on_write(addr: int, value: int) -> None:
            grant_credit(conns[(addr - board.mr.addr) // 8], value)

        board.mr.on_write.append(on_write)
        ep.aux_mrs.append(board.mr)
        return addr_by_dest


class RingBoard:
    """Consumer side of per-peer circular message queues (FreeArr or
    ValidArr): one registered region carved into ``cap``-slot rings, one
    per peer, updated by inlined remote Writes.  Every write of a
    non-zero value is routed to ``on_value(key, value)``."""

    __slots__ = ("mr", "cap", "base_by_key", "_regions", "_on_value",
                 "_ep", "name", "validator")

    @classmethod
    def model(cls, name: str, cap: int) -> RingModel:
        """Protocol semantics for the model checker: one circular queue
        of ``cap`` slots whose producer cursor wraps modulo ``cap``
        (§4.4.3) — more in-flight values than slots is an overrun."""
        return RingModel(name=name, cap=cap)

    @classmethod
    def install(cls, ep, keys: Sequence[Any], cap: int,
                on_value: Callable[[Any, int], None],
                min_one: bool = False, name: str = "ring",
                validator: Optional[Callable[[Any, int], bool]] = None):
        """Process fragment: register ``8 * cap`` bytes per key (at least
        one ring when ``min_one``), wire the write hook, and return the
        board (``base_by_key`` feeds the bootstrap exchange).

        ``validator(key, value)`` — optional semantic check consulted by
        the sanitizer on every consumed value (e.g. "this FreeArr address
        names a buffer we actually have in flight"); return ``False`` to
        flag a board inconsistency.
        """
        board = cls()
        board.cap = cap
        board._on_value = on_value
        board._ep = ep
        board.name = name
        board.validator = validator
        count = max(1, len(keys)) if min_one else len(keys)
        # Test doubles install boards on bare namespaces with no config.
        tenant = getattr(getattr(ep, "config", None), "tenant", None)
        board.mr = yield from ep.ctx.reg_mr_timed(
            8 * cap * count, tenant=tenant)
        board.base_by_key = {}
        board._regions: List[Tuple[int, int, Any]] = []
        for i, key in enumerate(keys):
            base = board.mr.addr + 8 * cap * i
            board.base_by_key[key] = base
            board._regions.append((base, base + 8 * cap, key))
        board.mr.on_write.append(board._route)
        ep.aux_mrs.append(board.mr)
        return board

    def _route(self, addr: int, value: int) -> None:
        if value == 0:
            return
        for lo, hi, key in self._regions:
            if lo <= addr < hi:
                san = self._ep.ctx.sanitizer
                if san is not None:
                    san.on_ring_consume(self, lo, key, value)
                self._on_value(key, value)
                return


class CreditDatagramPort:
    """Both halves of the §4.4.2 scheme's buffering: a small rotating
    pool of header-sized buffers — receive slots for incoming credit on
    the sender, send slots for outgoing credit on the receiver (credit
    datagrams complete fast, so a short rotation per peer suffices)."""

    __slots__ = ("ep", "pool", "_cursor")

    @classmethod
    def model(cls) -> CreditModel:
        """Protocol semantics for the model checker: credit datagrams
        ride UD — lossy and unordered, which the absolute values
        tolerate by construction, backed by the receiver's keepalive
        re-advertisement (§4.4.2)."""
        return CreditModel(scheme="credit-datagram", lossy=True,
                           ordered=False, keepalive=True)

    def __init__(self, ep, peer_count: int):
        self.ep = ep
        slots = min(CREDIT_RECV_SLOTS * max(1, peer_count), CREDIT_SLOT_CAP)
        self.pool = BufferPool(ep.ctx, slots, CREDIT_MSG_BYTES,
                               tenant=ep.config.tenant)
        self._cursor = 0
        ep.aux_pools.append(self.pool)

    def post_recv_slots(self) -> None:
        """Post every slot as a Receive for incoming credit datagrams."""
        for buf in self.pool.buffers:
            self.ep.qp.post_recv(RecvWR(wr_id=buf, buffer=buf,
                                        length=CREDIT_MSG_BYTES))

    def repost(self, buf) -> None:
        """Recycle a consumed credit-receive slot."""
        buf.reset()
        self.ep.qp.post_recv(RecvWR(wr_id=buf, buffer=buf,
                                    length=CREDIT_MSG_BYTES))

    def post_credit(self, conn: PeerConnection,
                    value: Optional[int] = None) -> None:
        """Send ``conn.posted`` (or an explicit ``value``, which the
        sanitizer checks against it) as an absolute-credit datagram."""
        # Imported here: this module loads while repro.core.endpoint is
        # still initialising (endpoint -> transport.rings -> package).
        from repro.core.endpoint import Frame, FrameCarrier
        if value is None:
            value = conn.posted
        san = self.ep.ctx.sanitizer
        if san is not None:
            san.on_credit_issued(conn, value, node_id=self.ep.ctx.node_id)
        self._cursor += 1
        frame = Frame(kind="credit", src_endpoint=self.ep.endpoint_id,
                      credit=value)
        self.ep.qp.post_send(SendWR(
            wr_id=("credit", conn.endpoint), opcode=Opcode.SEND,
            buffer=FrameCarrier(frame), length=CREDIT_MSG_BYTES,
            dest=conn.ah, signaled=False,
        ))
