"""The endpoint-backend registry.

Every endpoint implementation (a *kind*: ``"SR_UD"``, ``"SR_RC"``,
``"RD_RC"``, ``"WR_RC"``, ``"SR_UD_MC"``, the simulated baselines, or a
user-supplied transport) registers a send/receive class pair here, plus
the two transport properties the design matrix of Table 1 derives from:
whether the kind rides on Unreliable Datagram and whether its data path
is one-sided.

Kinds normally register themselves at import time (each implementation
module ends with a :func:`register_endpoint_kind` call), so adding a new
backend requires no edits to :mod:`repro.core.designs` — define the two
classes, register the kind, and build a ``Design`` that names it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "EndpointBackend",
    "UnknownEndpointKindError",
    "backend",
    "register_endpoint_kind",
    "registered_kinds",
    "resolve_backend",
]


class UnknownEndpointKindError(KeyError):
    """Raised when a design names an endpoint kind nobody registered."""

    def __init__(self, kind: str, known: Tuple[str, ...]):
        super().__init__(kind)
        self.kind = kind
        self.known = tuple(known)

    def __str__(self) -> str:
        known = ", ".join(self.known) if self.known else "(none)"
        return (f"unknown endpoint kind {self.kind!r}; "
                f"registered kinds: {known}")


@dataclass(frozen=True)
class EndpointBackend:
    """One registered endpoint implementation."""

    kind: str
    send_cls: type
    recv_cls: type
    #: rides on Unreliable Datagram: MTU-capped messages, software error
    #: control (drives the message-size cap and Table 1 columns).
    uses_ud: bool = False
    #: one-sided data path (RDMA Read/Write): flow control in hardware.
    one_sided: bool = False
    description: str = ""


_BACKENDS: Dict[str, EndpointBackend] = {}


def register_endpoint_kind(kind: str, send_cls: type, recv_cls: type, *,
                           uses_ud: bool = False, one_sided: bool = False,
                           description: str = "") -> EndpointBackend:
    """Register an endpoint implementation under ``kind``.

    Re-registering the same class pair is a no-op (modules register at
    import time and may be imported through several paths); registering a
    *different* pair under an existing kind is an error.
    """
    existing = _BACKENDS.get(kind)
    if existing is not None:
        if (existing.send_cls, existing.recv_cls) != (send_cls, recv_cls):
            raise ValueError(
                f"endpoint kind {kind!r} is already registered with "
                f"different classes ({existing.send_cls.__name__}/"
                f"{existing.recv_cls.__name__})"
            )
        return existing
    entry = EndpointBackend(kind, send_cls, recv_cls, uses_ud=uses_ud,
                            one_sided=one_sided, description=description)
    _BACKENDS[kind] = entry
    return entry


def backend(kind: str) -> EndpointBackend:
    """Resolve a registered endpoint kind."""
    try:
        return _BACKENDS[kind]
    except KeyError:
        raise UnknownEndpointKindError(kind, tuple(_BACKENDS)) from None


def resolve_backend(spec) -> EndpointBackend:
    """Resolve a kind name *or* any object that names one.

    Accepts a plain kind string, or anything exposing an
    ``endpoint_kind`` attribute — a :class:`~repro.core.designs.Design`
    or a :class:`~repro.core.policy.StagePlan` — so stage construction
    can look its transport up directly from a plan.
    """
    kind = getattr(spec, "endpoint_kind", spec)
    if not isinstance(kind, str):
        raise TypeError(
            f"cannot resolve an endpoint backend from {spec!r}")
    return backend(kind)


def registered_kinds() -> Tuple[str, ...]:
    """All registered endpoint kinds, in registration order."""
    return tuple(_BACKENDS)
