"""Protocol-semantics descriptors for the model checker.

The flow-control objects of :mod:`repro.core.transport.credit` each
expose a ``model()`` classmethod returning one of these descriptors — a
small, frozen statement of the *semantics* the object implements (is the
credit channel lossy?  ordered?  does a keepalive re-advertise it?  how
many slots does a ring have?).  :mod:`repro.analysis.model` assembles
its transition systems from these descriptors plus the live helpers
(:func:`~repro.core.transport.credit.grant_credit`,
:class:`~repro.core.transport.connections.PeerConnection`,
:class:`~repro.core.transport.rings.RingCursor`), so the checked model
is derived from the same objects the simulator runs — not hand-written
twice.

This module deliberately has no dependencies beyond the stdlib so both
the transport layer and the analysis layer can import it freely.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CreditModel", "RingModel"]


@dataclass(frozen=True)
class CreditModel:
    """Semantics of one credit-return scheme (§4.4.1-2).

    ``scheme``
        ``"credit-word"`` (inlined RDMA Write of the absolute credit) or
        ``"credit-datagram"`` (absolute credit as a small UD datagram).
    ``lossy``
        the channel carrying credit (and data) can drop messages — true
        for UD, where the model checker must explore loss transitions.
    ``ordered``
        credit values arrive in posting order (RC Writes on one QP);
        unordered channels let the checker permute in-flight values.
    ``keepalive``
        the receiver periodically re-advertises the absolute credit, so
        a lost credit message cannot permanently wedge the sender.
    """

    scheme: str
    lossy: bool = False
    ordered: bool = True
    keepalive: bool = False


@dataclass(frozen=True)
class RingModel:
    """Semantics of one FreeArr/ValidArr circular queue (§4.4.3).

    ``cap`` is the slot count the producer's
    :class:`~repro.core.transport.rings.RingCursor` wraps over: more
    than ``cap`` in-flight (produced but unconsumed) values overwrite a
    live slot — the ring-overrun the sanitizer flags at runtime and the
    model checker proves impossible (or finds a trace for).
    """

    name: str
    cap: int

    def __post_init__(self) -> None:
        if self.cap < 1:
            raise ValueError(f"ring {self.name!r} needs at least one slot")
