"""The shared transport runtime beneath the endpoint designs.

The paper's designs differ along two axes only (endpoint count,
transport mechanism); everything else — per-peer connection state, the
credit/FreeArr/ValidArr flow-control machinery, GETFREE/RELEASE buffer
rings, completion dispatch — is common.  This package is that common
runtime, so each design is a thin posting policy:

::

    designs        sr_ud / sr_rc / read_rc / write_rc / mcast / baselines
                        |  (posting policy: what WR to post where)
    transport      registry . connections . credit . rings . dispatch . runtime
                        |  (verbs objects, process fragments)
    verbs          QPs, CQs, MRs, connection manager
                        |  (NIC model, packets)
    fabric         links, switch, loss/reorder injection
                        |  (events, processes)
    sim            discrete-event kernel (integer nanoseconds)

Submodules:

* :mod:`~repro.core.transport.registry` — the endpoint-backend registry
  (kind -> send/receive class pair + transport properties).
* :mod:`~repro.core.transport.connections` — :class:`PeerConnection`,
  :class:`ConnectionTable`, and the RC connect loops.
* :mod:`~repro.core.transport.credit` — the §4.4 credit schemes as
  policy objects (credit words, credit datagrams, ring boards).
* :mod:`~repro.core.transport.rings` — buffer pools behind
  GETFREE/RELEASE, pending-buffer refcounts, circular-queue cursors.
* :mod:`~repro.core.transport.dispatch` — the completion-dispatch loop.
* :mod:`~repro.core.transport.runtime` — endpoint base classes wiring
  it all together (the credited two-sided data path lives here).

Import note: :mod:`.runtime` and :mod:`.credit` depend on
:mod:`repro.core.endpoint`, which itself imports :mod:`.rings` — design
modules import them directly (``from repro.core.transport.runtime
import ...``) rather than through this package root, keeping the
package importable while ``endpoint`` is still initialising.
"""

from repro.core.transport.connections import (
    ConnectionTable,
    PeerConnection,
    rc_connect_receivers,
    rc_connect_senders,
)
from repro.core.transport.dispatch import CompletionDispatcher
from repro.core.transport.registry import (
    EndpointBackend,
    UnknownEndpointKindError,
    backend,
    register_endpoint_kind,
    registered_kinds,
)
from repro.core.transport.rings import (
    BufferRing,
    PendingTable,
    RingCursor,
    charge_registration,
    post_ring_write,
)

__all__ = [
    "BufferRing",
    "CompletionDispatcher",
    "ConnectionTable",
    "EndpointBackend",
    "PeerConnection",
    "PendingTable",
    "RingCursor",
    "UnknownEndpointKindError",
    "backend",
    "charge_registration",
    "post_ring_write",
    "rc_connect_receivers",
    "rc_connect_senders",
    "register_endpoint_kind",
    "registered_kinds",
]
