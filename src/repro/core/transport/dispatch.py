"""The shared completion-dispatch loop.

Every endpoint design used to run a private ``while True: wc = yield
cq.wait()`` process with an ad-hoc ``if``/``elif`` ladder.
:class:`CompletionDispatcher` is that loop with the routing made
declarative: handlers are registered per opcode, unhandled completions
are drained silently (the RDMA Read sender, whose only active work is
draining Write completions, registers no handlers at all).

Handlers run on the dispatcher process and must not block — they are
host-side reactions (recycle a buffer, grant credit, deliver to the
inbox), mirroring how the real implementation keeps its CQ polling loop
free of waits.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.sim import fastpath
from repro.verbs.constants import Opcode

__all__ = ["CompletionDispatcher"]


class CompletionDispatcher:
    """Routes work completions of one CQ to per-opcode handlers."""

    __slots__ = ("ep", "cq", "_handlers")

    def __init__(self, ep, cq=None):
        self.ep = ep
        self.cq = ep.cq if cq is None else cq
        self._handlers: Dict[Opcode, Callable] = {}

    def on(self, opcode: Opcode, handler: Callable) -> "CompletionDispatcher":
        """Register ``handler(wc)`` for completions of ``opcode``."""
        self._handlers[opcode] = handler
        return self

    def start(self, name: str) -> "CompletionDispatcher":
        """Begin consuming the CQ.

        On the fast path the dispatcher subscribes to the CQ directly
        (event-driven, no process or per-completion wait event); the
        legacy ``while True: yield cq.wait()`` process is kept as the A/B
        oracle behind ``REPRO_FASTPATH=0``.  Delivery order is identical
        either way — see :meth:`CompletionQueue.subscribe`.
        """
        if fastpath.enabled():
            self.cq.subscribe(self._dispatch)
        else:
            self.ep.sim.process(self._run(), name=name)
        return self

    def _dispatch(self, wc) -> None:
        handler = self._handlers.get(wc.opcode)
        if handler is not None:
            handler(wc)

    def _run(self):
        while True:
            wc = yield self.cq.wait()
            self._dispatch(wc)
