"""Buffer rings and circular-queue bookkeeping.

Three pieces every endpoint design used to reimplement privately:

* :class:`BufferRing` — the registered transmission-buffer pool plus the
  FIFO free list behind GETFREE/RELEASE (§4.2);
* :class:`PendingTable` — refcounts for buffers in flight to several
  destinations of a transmission group (a buffer becomes reusable only
  once every member has consumed it, §5.1.3);
* :class:`RingCursor` — the producer cursor of one FreeArr/ValidArr
  circular message queue (§4.4.3, Algorithm 3).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.memory import Buffer, BufferPool
from repro.sim import Queue
from repro.verbs.constants import Opcode
from repro.verbs.device import VerbsContext
from repro.verbs.wr import SendWR

__all__ = [
    "BufferRing",
    "PendingTable",
    "RingCursor",
    "charge_registration",
    "post_ring_write",
]


def charge_registration(ctx: VerbsContext, nbytes: int):
    """Process fragment: charge memory pin+register time for ``nbytes``
    (the region itself is created separately, e.g. by a BufferPool)."""
    config = ctx.config
    pages = max(1, -(-nbytes // config.page_size))
    cost = (config.mr_register_base_ns
            + pages * config.mr_register_ns_per_page)
    ctx.mr_register_ns += cost
    yield ctx.sim.timeout(cost)


class BufferRing:
    """A registered buffer pool feeding the GETFREE free list.

    SEND endpoints draw transmission buffers from ``free`` (GETFREE),
    and completions recycle them back through :meth:`recycle` — the
    ring that bounds pinned memory per connection (Fig 9b).
    """

    __slots__ = ("ctx", "free", "pool")

    def __init__(self, ctx: VerbsContext):
        self.ctx = ctx
        self.free = Queue(ctx.sim)
        self.pool: Optional[BufferPool] = None

    def provision(self, count: int, size: int,
                  feed: Optional[int] = None,
                  tenant: Optional[str] = None) -> Any:
        """Process fragment: charge registration for ``count * size``
        bytes, carve the pool, and feed the first ``feed`` buffers
        (default: all) to the free list."""
        yield from charge_registration(self.ctx, count * size)
        self.pool = BufferPool(self.ctx, count, size, tenant=tenant)
        for buf in self.pool.buffers[:count if feed is None else feed]:
            self.free.put(buf)
        return self.pool

    def recycle(self, buf: Buffer) -> None:
        """Return a transmission buffer to the free list."""
        buf.reset()
        self.free.put(buf)


class PendingTable:
    """Refcounts for buffers awaiting per-destination completions."""

    __slots__ = ("_counts",)

    def __init__(self):
        self._counts: Dict[Any, int] = {}

    def add(self, key: Any, count: int) -> None:
        self._counts[key] = count

    def complete(self, key: Any) -> bool:
        """Record one completion; True once the last one arrived."""
        self._counts[key] -= 1
        if self._counts[key] == 0:
            del self._counts[key]
            return True
        return False

    def items(self):
        return self._counts.items()

    def __contains__(self, key: Any) -> bool:
        return key in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)


class RingCursor:
    """Producer cursor over one remote circular queue of 8-byte slots."""

    __slots__ = ("base", "cap", "produced")

    def __init__(self, base: int = 0, cap: int = 0):
        self.base = base
        self.cap = cap
        self.produced = 0

    def next_slot(self) -> int:
        slot = self.base + (self.produced % self.cap) * 8
        self.produced += 1
        return slot


def post_ring_write(qp, cursor: RingCursor, value: int, wr_id: Any) -> None:
    """Produce ``value`` into the remote circular queue behind ``cursor``
    by an inlined, unsignaled RDMA Write (the FreeArr/ValidArr and
    credit-word update primitive)."""
    san = qp.ctx.sanitizer
    if san is not None:
        san.on_ring_produce(qp, cursor)
    qp.post_send(SendWR(
        wr_id=wr_id, opcode=Opcode.WRITE,
        remote_addr=cursor.next_slot(), value=value,
        inline=True, signaled=False,
    ))
