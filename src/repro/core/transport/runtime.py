"""Shared endpoint runtime: the algorithms the designs are policies over.

:class:`RuntimeSendEndpoint` / :class:`RuntimeReceiveEndpoint` add the
transport plumbing every design needs — the per-peer
:class:`~.connections.ConnectionTable`, the in-flight
:class:`~.rings.PendingTable`, and pool provisioning sized by the §4.2
rules (sender pools scale with transmission groups, receiver pools with
sources).

:class:`CreditedSendEndpoint` / :class:`CreditedReceiveEndpoint` add the
credit-synchronized two-sided data path shared verbatim by the SR/RC and
SR/UD designs (Algorithm 1's SEND loop and the RELEASE/credit write-back
of §4.4.1-2); subclasses supply only the posting primitives
(:meth:`_post_data` / :meth:`_post_final` / :meth:`_repost` /
:meth:`_return_credit`).

Per-message semantics over packet trains
----------------------------------------
Everything at this layer observes *messages*: one credit consumed per
send, one CQE per signaled work request, one RELEASE per delivered
buffer.  Below the verbs API a multi-MTU RC message traverses the
fabric as a single :class:`~repro.fabric.packet.PacketTrain` (see
:mod:`repro.sim.trains`) — the endpoint never sees the segmentation,
exactly as real hardware hides per-packet ACK/retransmit behind one
work completion.  The ``trains_sent`` / ``train_packets_sent``
counters record the equivalence (UD messages are MTU-capped, so their
trains are always one packet); they are diagnostic attributes, kept
off telemetry snapshots so train bookkeeping can never perturb the
``REPRO_TRAINS`` A/B oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.memory import Buffer, BufferPool
from repro.verbs.device import VerbsContext

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
    ReceiveEndpoint,
    SendEndpoint,
)
from repro.core.transport.connections import ConnectionTable, PeerConnection
from repro.core.transport.rings import PendingTable

__all__ = [
    "CreditedReceiveEndpoint",
    "CreditedSendEndpoint",
    "RuntimeReceiveEndpoint",
    "RuntimeSendEndpoint",
    "ensure_ud_message_size",
]


def ensure_ud_message_size(ctx: VerbsContext, config: EndpointConfig) -> None:
    """UD messages are MTU-capped (§2.2.2); reject oversized configs."""
    if config.message_size > ctx.config.mtu:
        raise ValueError(
            f"UD message size {config.message_size} exceeds the MTU "
            f"{ctx.config.mtu} (§2.2.2)"
        )


class RuntimeSendEndpoint(SendEndpoint):
    """SEND endpoint on the shared transport runtime."""

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        super().__init__(ctx, endpoint_id, config, destinations, num_groups)
        #: destination node id -> receiving endpoint id.
        self.peers = dict(peers)
        #: per-destination transport state, keyed by destination node id.
        self.conns = ConnectionTable()
        #: buffers in flight, refcounted per destination (§5.1.3).
        self._pending = PendingTable()
        self.cq = None
        #: messages posted and the MTU packets their trains carry
        #: (diagnostic only — deliberately off telemetry snapshots).
        self.trains_sent = 0
        self.train_packets_sent = 0

    @property
    def send_pool_buffers(self) -> int:
        """Transmission buffers: per-connection window x groups x threads."""
        return (self.config.buffers_per_connection * self.num_groups *
                self.config.threads_per_endpoint)

    def provision_send_pool(self, extra: int = 0):
        """Process fragment: charge registration, carve the transmission
        pool (plus ``extra`` reserved buffers, e.g. final markers), and
        feed the non-reserved buffers to the GETFREE free list."""
        total = self.send_pool_buffers + extra
        yield from self._charge_registration(total * self.config.message_size)
        self.pool = BufferPool(self.ctx, total, self.config.message_size,
                               tenant=self.config.tenant)
        for buf in self.pool.buffers[:self.send_pool_buffers]:
            self._free.put(buf)
        return self.pool

    def recycle(self, buf: Buffer) -> None:
        """Return a transmission buffer to the free list."""
        buf.reset()
        self._free.put(buf)

    def data_recycler(self, tag: str = "data") -> Callable:
        """Completion handler recycling buffers once every destination's
        transmission of them completed (``wr_id == (tag, buffer)``)."""
        def handler(wc) -> None:
            kind, ref = wc.wr_id
            if kind != tag:
                return
            if self._pending.complete(ref):
                self.recycle(ref)
        return handler


class CreditedSendEndpoint(RuntimeSendEndpoint):
    """Two-sided SEND data path under stateless credit (§4.4.1-2)."""

    def _consume_credit(self, conn: PeerConnection) -> None:
        """Account one message against ``conn``'s credit window.  Every
        send path must come through here so the sanitizer can observe
        credit underflow at the exact posting site."""
        conn.sent += 1
        san = self.ctx.sanitizer
        if san is not None:
            san.on_credit_consumed(self, conn)

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        # Per-call bookkeeping is serialized: this is the shared-endpoint
        # contention the SE configurations pay for.
        yield from self.lock.critical_section(
            self.net.cpu(self.net.endpoint_send_ns))
        self._pending.add(buf, len(dests))
        for dest in dests:
            conn = self.conns[dest]
            yield from self._wait_credit(conn)
            self._consume_credit(conn)
            frame = Frame(
                kind="data", state=state, src_endpoint=self.endpoint_id,
                seq=conn.sent, payload=buf.payload, length=buf.length,
                remote_addr=buf.addr,
            )
            yield self._cpu(self.net.post_wr_ns)
            self._post_data(conn, buf, frame)
            self.trains_sent += 1
            self.train_packets_sent += max(
                1, -(-buf.length // self.ctx.config.mtu))
            self.record_send(dest, buf.length)

    def _send_finals(self):
        # End-of-stream markers carry the per-connection send total
        # (message counting, §4.4.2; harmless extra state under RC).
        for dest in self.destinations:
            conn = self.conns[dest]
            yield from self._wait_credit(conn)
            self._consume_credit(conn)
            frame = Frame(
                kind="final", state=DataState.DEPLETED,
                src_endpoint=self.endpoint_id, seq=conn.sent,
                total=conn.sent,
            )
            yield self._cpu(self.net.post_wr_ns)
            self._post_final(conn, dest, frame)

    # -- posting policy supplied by the design -----------------------------

    def _post_data(self, conn: PeerConnection, buf: Buffer,
                   frame: Frame) -> None:
        raise NotImplementedError

    def _post_final(self, conn: PeerConnection, dest: int,
                    frame: Frame) -> None:
        raise NotImplementedError


class RuntimeReceiveEndpoint(ReceiveEndpoint):
    """RECEIVE endpoint on the shared transport runtime."""

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config, sources)
        #: per-source transport state, keyed by source *endpoint* id
        #: (frames and circular-queue updates carry endpoint ids).
        self.conns = ConnectionTable()
        self.cq = None

    @property
    def recv_pool_buffers(self) -> int:
        """Receive buffers: the per-link window for every source."""
        return self.config.buffers_per_link * max(1, len(self.sources))

    def provision_recv_pool(self):
        """Process fragment: charge registration and carve the pool."""
        total = self.recv_pool_buffers
        yield from self._charge_registration(total * self.config.message_size)
        self.pool = BufferPool(self.ctx, total, self.config.message_size,
                               tenant=self.config.tenant)
        return self.pool


class CreditedReceiveEndpoint(RuntimeReceiveEndpoint):
    """Two-sided RELEASE path issuing stateless credit (§4.4.1-2)."""

    def release(self, remote_addr: int, local: Buffer, src: int):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.post_wr_ns))
        conn = self.conns[src]
        local.reset()
        self._repost(conn, local)
        conn.posted += 1
        if conn.posted % self.config.credit_frequency == 0:
            # Credit is issued strictly after the Receive is reposted and
            # amortized over credit_frequency Receives (§5.1.1).
            yield self._cpu(self.net.post_wr_ns)
            links = self.ctx.links
            if links is not None:
                # Causal edge: the credit WR posted synchronously below is
                # triggered by the data flow that occupied this buffer.
                links.pending_trigger = links.buffer_flow(local)
            self._return_credit(conn)

    # -- posting policy supplied by the design -----------------------------

    def _repost(self, conn: PeerConnection, local: Buffer) -> None:
        raise NotImplementedError

    def _return_credit(self, conn: PeerConnection) -> None:
        raise NotImplementedError
