"""Per-peer connection state and the connection table.

Every endpoint design keeps one record per peer — the Queue Pair (or UD
address handle) plus whatever its flow-control scheme tracks.  The four
designs used to declare four private ``_SendConnection``/``_RecvLink``
classes each; :class:`PeerConnection` is the single shared record, and
:class:`ConnectionTable` the ordered per-peer container with the RC
connect loops factored out.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.verbs.cm import EndpointRegistry, connect_rc_pair
from repro.verbs.constants import AddressHandle
from repro.verbs.qp import QueuePair

__all__ = [
    "ConnectionTable",
    "PeerConnection",
    "rc_connect_receivers",
    "rc_connect_senders",
]


class PeerConnection:
    """Transport state for one peer of an endpoint.

    The runtime wires ``qp``/``ah``; each credit scheme attaches the
    fields it needs (sender credit window, receiver posted count,
    FreeArr/ValidArr cursors, UD message counting).  Unused fields stay
    at their zero values.
    """

    __slots__ = (
        # wiring
        "node", "endpoint", "qp", "ah",
        # sender-side credit window (§4.4.1)
        "sent", "credit", "credit_addr", "notify",
        # receiver-side credit issue (posted Receives)
        "posted",
        # one-sided circular queues (§4.4.3): producer cursors and state
        "valid", "free", "local_arr", "pending_remote", "remote_free",
        # UD message counting (§4.4.2)
        "received", "expected", "draining",
    )

    def __init__(self, node: int, endpoint: int = -1):
        #: peer node id, and (where known) peer endpoint id.
        self.node = node
        self.endpoint = endpoint
        self.qp: Optional[QueuePair] = None
        self.ah: Optional[AddressHandle] = None
        self.sent = 0
        self.credit = 0
        self.credit_addr = 0
        self.notify = None
        self.posted = 0
        self.valid = None
        self.free = None
        self.local_arr = None
        self.pending_remote = None
        self.remote_free = None
        self.received = 0
        self.expected: Optional[int] = None
        self.draining = False


class ConnectionTable:
    """Ordered per-peer connection records, keyed by peer id.

    SEND endpoints key by destination *node* id, RECEIVE endpoints by
    source *endpoint* id (UD credit frames and one-sided queue updates
    carry endpoint ids, not node ids).
    """

    __slots__ = ("_conns",)

    def __init__(self):
        self._conns: Dict[Any, PeerConnection] = {}

    def add(self, key: Any, conn: PeerConnection) -> PeerConnection:
        self._conns[key] = conn
        return conn

    def __getitem__(self, key: Any) -> PeerConnection:
        return self._conns[key]

    def get(self, key: Any, default=None):
        return self._conns.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._conns

    def __len__(self) -> int:
        return len(self._conns)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._conns)

    def keys(self):
        return self._conns.keys()

    def values(self):
        return self._conns.values()

    def items(self):
        return self._conns.items()

    def qps(self) -> List[QueuePair]:
        """The Queue Pairs wired into this table (Table 1 accounting)."""
        return [c.qp for c in self._conns.values() if c.qp is not None]


def rc_connect_senders(ep, registry: EndpointRegistry,
                       bind: Optional[Callable] = None):
    """Process fragment: run the RC handshake for every sender-side
    connection of ``ep``.

    For each destination the peer RECEIVE endpoint's bootstrap info is
    looked up, the local QP connected to the peer's per-source QP, and
    ``bind(conn, info)`` invoked so the design can capture its wiring
    (initial credit, circular-queue bases, remote free buffers).
    """
    for dest in ep.destinations:
        conn = ep.conns[dest]
        info = registry.lookup_endpoint(ep.peers[dest])
        remote_qpn = info["qpn_by_source"][ep.endpoint_id]
        yield from connect_rc_pair(
            ep.ctx, conn.qp, AddressHandle(dest, remote_qpn))
        if bind is not None:
            bind(conn, info)


def rc_connect_receivers(ep, registry: EndpointRegistry,
                         bind: Optional[Callable] = None):
    """Process fragment: run the RC handshake for every receiver-side
    connection of ``ep`` (the mirror of :func:`rc_connect_senders`)."""
    for src_node, src_ep in ep.sources:
        conn = ep.conns[src_ep]
        info = registry.lookup_endpoint(src_ep)
        remote_qpn = info["qpn_by_dest"][ep.ctx.node_id]
        yield from connect_rc_pair(
            ep.ctx, conn.qp, AddressHandle(src_node, remote_qpn))
        if bind is not None:
            bind(conn, info)
