"""RDMA Write over Reliable Connection — the paper's future work (§7).

    "First, we plan to implement an endpoint based on the RDMA Write
    primitive to evaluate its performance."

The design mirrors the RDMA Read endpoint with the active/passive roles
swapped: the *sender* pushes data into the receiver's registered buffers
with one-sided Writes, while the receiver stays passive on the data path.

Buffer ownership moves through the same two circular message queues:

* at connect time the sender learns every receiver-side buffer address
  for its connection (an initially-full free list);
* the sender pops a remote buffer, RDMA-Writes the data into it, then
  RDMA-Writes the buffer's address into the receiver's ``ValidArr`` —
  RC ordering on one QP guarantees data lands before the notification;
* the receiver consumes ``ValidArr``, hands the buffer to the
  application, and on RELEASE returns the address through the sender's
  ``FreeArr``.

Compared to RDMA Read, the transfer completes in a half round trip (no
read request), but the sender must know free remote buffers in advance,
so a slow receiver stalls the sender symmetrically to the Read design's
broadcast starvation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
    ReceiveEndpoint,
    SendEndpoint,
)
from repro.memory import Buffer, BufferPool
from repro.sim import Notify
from repro.verbs.cm import EndpointRegistry, connect_rc_pair
from repro.verbs.constants import AddressHandle, Opcode, QPType
from repro.verbs.device import VerbsContext
from repro.verbs.wr import SendWR

__all__ = ["WriteRCSendEndpoint", "WriteRCReceiveEndpoint"]


class _FrameCarrier:
    __slots__ = ("payload",)

    def __init__(self, frame: Frame):
        self.payload = frame


class _SendLink:
    """Per-destination sender state: QP, remote free list, ValidArr cursor."""

    __slots__ = ("dest_node", "qp", "remote_free", "notify",
                 "valid_base", "valid_cap", "prod")

    def __init__(self, dest_node: int):
        self.dest_node = dest_node
        self.qp = None
        #: addresses of free buffers at the receiver (LIFO).
        self.remote_free: List[int] = []
        self.notify = None
        self.valid_base = 0
        self.valid_cap = 0
        self.prod = 0

    def next_valid_slot(self) -> int:
        slot = self.valid_base + (self.prod % self.valid_cap) * 8
        self.prod += 1
        return slot


class WriteRCSendEndpoint(SendEndpoint):
    """Active SEND endpoint pushing data with one-sided RDMA Writes."""

    transport = "MQ/WR"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        super().__init__(ctx, endpoint_id, config, destinations, num_groups)
        self.peers = dict(peers)
        self._links: Dict[int, _SendLink] = {}
        self._pending: Dict[Buffer, int] = {}
        self.pool: BufferPool = None
        self.cq = None
        self._free_mr = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        for dest in self.destinations:
            link = _SendLink(dest)
            link.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq)
            link.notify = Notify(self.sim)
            self._links[dest] = link
        pool_buffers = (self.config.buffers_per_connection * self.num_groups *
                        self.config.threads_per_endpoint)
        yield from self._charge_registration(
            pool_buffers * self.config.message_size)
        self.pool = BufferPool(self.ctx, pool_buffers,
                               self.config.message_size)
        for buf in self.pool.buffers:
            self._free.put(buf)
        cap = self.config.buffers_per_link + 2
        self._free_mr = yield from self.ctx.reg_mr_timed(
            8 * cap * len(self.destinations))
        self._free_base = {
            dest: self._free_mr.addr + 8 * cap * i
            for i, dest in enumerate(self.destinations)
        }
        self._free_region = [
            (base, base + 8 * cap, dest)
            for dest, base in self._free_base.items()
        ]
        self._free_mr.on_write.append(self._on_free_write)
        registry.publish(("ep", self.endpoint_id), {
            "node": self.ctx.node_id,
            "qpn_by_dest": {d: l.qp.qpn for d, l in self._links.items()},
            "freearr_base_by_dest": self._free_base,
            "freearr_cap": cap,
        })

    def connect(self, registry: EndpointRegistry):
        for dest in self.destinations:
            link = self._links[dest]
            info = registry.lookup(("ep", self.peers[dest]))
            remote_qpn = info["qpn_by_source"][self.endpoint_id]
            yield from connect_rc_pair(
                self.ctx, link.qp, AddressHandle(dest, remote_qpn))
            link.valid_base = info["validarr_base_by_source"][self.endpoint_id]
            link.valid_cap = info["validarr_cap"]
            link.remote_free = list(
                info["buffer_addrs_by_source"][self.endpoint_id])
        self.sim.process(self._dispatcher(),
                         name=f"wr-send-cq-{self.endpoint_id}")

    def _on_free_write(self, addr: int, value: int) -> None:
        if value == 0:
            return
        for lo, hi, dest in self._free_region:
            if lo <= addr < hi:
                link = self._links[dest]
                link.remote_free.append(value)
                link.notify.notify_all()
                return

    def _dispatcher(self):
        """Recycles local buffers once their data Writes complete."""
        while True:
            wc = yield self.cq.wait()
            if wc.wr_id[0] != "wdata":
                continue
            buf = wc.wr_id[1]
            self._pending[buf] -= 1
            if self._pending[buf] == 0:
                del self._pending[buf]
                buf.reset()
                self._free.put(buf)

    def _push(self, link: _SendLink, frame: Frame, buf, length: int,
              signaled: bool):
        """Write data into a free remote buffer, then notify ValidArr."""
        while not link.remote_free:
            yield link.notify.wait()
        remote_addr = link.remote_free.pop()
        frame.remote_addr = remote_addr
        yield self._cpu(self.net.post_wr_ns)
        link.qp.post_send(SendWR(
            wr_id=("wdata", buf), opcode=Opcode.WRITE,
            buffer=_FrameCarrier(frame), length=length,
            remote_addr=remote_addr, signaled=signaled,
        ))
        yield self._cpu(self.net.post_wr_ns)
        link.qp.post_send(SendWR(
            wr_id=("valid", link.dest_node), opcode=Opcode.WRITE,
            remote_addr=link.next_valid_slot(), value=remote_addr,
            inline=True, signaled=False,
        ))

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.endpoint_send_ns))
        self._pending[buf] = len(dests)
        for dest in dests:
            frame = Frame(kind="data", state=state,
                          src_endpoint=self.endpoint_id,
                          payload=buf.payload, length=buf.length)
            yield from self._push(self._links[dest], frame, buf,
                                  buf.length, signaled=True)
            self.record_send(dest, buf.length)

    def _send_finals(self):
        for dest in self.destinations:
            frame = Frame(kind="final", state=DataState.DEPLETED,
                          src_endpoint=self.endpoint_id)
            yield from self._push(self._links[dest], frame, None, 0,
                                  signaled=False)


class _RecvLink:
    """Per-source receiver state: QP + FreeArr cursor at the sender."""

    __slots__ = ("src_node", "src_endpoint", "qp", "free_base", "free_cap",
                 "free_prod")

    def __init__(self, src_node: int, src_endpoint: int):
        self.src_node = src_node
        self.src_endpoint = src_endpoint
        self.qp = None
        self.free_base = 0
        self.free_cap = 0
        self.free_prod = 0

    def next_free_slot(self) -> int:
        slot = self.free_base + (self.free_prod % self.free_cap) * 8
        self.free_prod += 1
        return slot


class WriteRCReceiveEndpoint(ReceiveEndpoint):
    """Passive RECEIVE endpoint: data appears in its registered buffers."""

    transport = "MQ/WR"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config, sources)
        self._links: Dict[int, _RecvLink] = {}
        self.cq = None
        self.pool: BufferPool = None
        self._valid_mr = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        per_link = self.config.buffers_per_link
        total = per_link * max(1, len(self.sources))
        yield from self._charge_registration(total * self.config.message_size)
        self.pool = BufferPool(self.ctx, total, self.config.message_size)
        cap = per_link * 2 + 4
        self._valid_mr = yield from self.ctx.reg_mr_timed(
            8 * cap * max(1, len(self.sources)))
        valid_base = {}
        buffer_addrs = {}
        self._link_by_valid_region = []
        next_buffer = 0
        for i, (src_node, src_ep) in enumerate(self.sources):
            link = _RecvLink(src_node, src_ep)
            link.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq)
            self._links[src_ep] = link
            addrs = []
            for _ in range(per_link):
                addrs.append(self.pool.buffers[next_buffer].addr)
                next_buffer += 1
            buffer_addrs[src_ep] = addrs
            base = self._valid_mr.addr + 8 * cap * i
            valid_base[src_ep] = base
            self._link_by_valid_region.append((base, base + 8 * cap, link))
        self._valid_mr.on_write.append(self._on_valid_write)
        registry.publish(("ep", self.endpoint_id), {
            "node": self.ctx.node_id,
            "qpn_by_source": {
                src_ep: l.qp.qpn for src_ep, l in self._links.items()
            },
            "validarr_base_by_source": valid_base,
            "validarr_cap": cap,
            "buffer_addrs_by_source": buffer_addrs,
        })

    def connect(self, registry: EndpointRegistry):
        for src_node, src_ep in self.sources:
            link = self._links[src_ep]
            info = registry.lookup(("ep", src_ep))
            remote_qpn = info["qpn_by_dest"][self.ctx.node_id]
            yield from connect_rc_pair(
                self.ctx, link.qp, AddressHandle(src_node, remote_qpn))
            link.free_base = info["freearr_base_by_dest"][self.ctx.node_id]
            link.free_cap = info["freearr_cap"]

    def _on_valid_write(self, addr: int, value: int) -> None:
        if value == 0:
            return
        for lo, hi, link in self._link_by_valid_region:
            if lo <= addr < hi:
                buf = self.pool.at(value)
                frame: Frame = self.pool.mr.get_object(value)
                if frame.kind == "final":
                    # Return the buffer straight away; stream is over.
                    link.qp.post_send(SendWR(
                        wr_id=("free", link.src_endpoint),
                        opcode=Opcode.WRITE,
                        remote_addr=link.next_free_slot(), value=value,
                        inline=True, signaled=False,
                    ))
                    self._source_depleted(link.src_endpoint)
                    return
                buf.payload = frame.payload
                buf.length = frame.length
                self.messages_received += 1
                self.bytes_received += frame.length
                self._inbox.put((
                    DataState.MORE_DATA, link.src_endpoint, value, buf,
                ))
                return

    def release(self, remote_addr: int, local: Buffer, src: int):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.post_wr_ns))
        link = self._links[src]
        local.reset()
        yield self._cpu(self.net.post_wr_ns)
        link.qp.post_send(SendWR(
            wr_id=("free", src), opcode=Opcode.WRITE,
            remote_addr=link.next_free_slot(), value=remote_addr,
            inline=True, signaled=False,
        ))
