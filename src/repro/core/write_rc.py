"""RDMA Write over Reliable Connection — the paper's future work (§7).

    "First, we plan to implement an endpoint based on the RDMA Write
    primitive to evaluate its performance."

The design mirrors the RDMA Read endpoint with the active/passive roles
swapped: the *sender* pushes data into the receiver's registered buffers
with one-sided Writes, while the receiver stays passive on the data path.

Buffer ownership moves through the same two circular message queues:

* at connect time the sender learns every receiver-side buffer address
  for its connection (an initially-full free list);
* the sender pops a remote buffer, RDMA-Writes the data into it, then
  RDMA-Writes the buffer's address into the receiver's ``ValidArr`` —
  RC ordering on one QP guarantees data lands before the notification;
* the receiver consumes ``ValidArr``, hands the buffer to the
  application, and on RELEASE returns the address through the sender's
  ``FreeArr``.

Compared to RDMA Read, the transfer completes in a half round trip (no
read request), but the sender must know free remote buffers in advance,
so a slow receiver stalls the sender symmetrically to the Read design's
broadcast starvation.

Like the Read design, the circular-queue machinery comes from the shared
transport runtime; this module is the RDMA Write posting policy.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
    FrameCarrier,
)
from repro.core.transport.connections import (
    PeerConnection,
    rc_connect_receivers,
    rc_connect_senders,
)
from repro.core.transport.credit import RingBoard
from repro.core.transport.dispatch import CompletionDispatcher
from repro.core.transport.registry import register_endpoint_kind
from repro.core.transport.rings import RingCursor, post_ring_write
from repro.core.transport.runtime import (
    RuntimeReceiveEndpoint,
    RuntimeSendEndpoint,
)
from repro.memory import Buffer
from repro.sim import Notify
from repro.verbs.cm import EndpointRegistry
from repro.verbs.constants import Opcode, QPType
from repro.verbs.device import VerbsContext
from repro.verbs.wr import SendWR

__all__ = ["WriteRCSendEndpoint", "WriteRCReceiveEndpoint"]


class WriteRCSendEndpoint(RuntimeSendEndpoint):
    """Active SEND endpoint pushing data with one-sided RDMA Writes."""

    transport = "MQ/WR"

    @classmethod
    def protocol_model(cls, bound):
        """Model-checker hook: one-sided push — the sender pops a
        known-free remote buffer, Writes data then the ValidArr
        notification (RC ordering hands the buffer over), the receiver
        returns addresses via FreeArr on release.  Ring caps mirror the
        ``setup`` formulas (per-link window, plus slack) at the bound's
        window size."""
        from repro.analysis.model.protocols import RingProtocolModel
        from repro.verbs.qp import fault_actions
        return RingProtocolModel(
            "WR_RC", bound, role="write",
            valid=RingBoard.model("validarr", bound.window * 2 + 4),
            free=RingBoard.model("freearr", bound.window + 2),
            faults=fault_actions(QPType.RC))

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        super().__init__(ctx, endpoint_id, config, destinations,
                         num_groups, peers)
        self._free_board: RingBoard = None
        #: receiver buffer addresses learned at connect, per destination —
        #: the ground truth the FreeArr sanitizer validator checks against.
        self._known_remote: Dict[int, frozenset] = {}

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        for dest in self.destinations:
            conn = self.conns.add(dest, PeerConnection(dest))
            conn.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq,
                                         tenant=self.config.tenant)
            conn.notify = Notify(self.sim)
            #: addresses of free buffers at the receiver (LIFO).
            conn.remote_free = []
        yield from self.provision_send_pool()
        cap = self.config.buffers_per_link + 2
        # A returned address must be one of the receiver-side buffers this
        # sender was granted at connect time.
        self._free_board = yield from RingBoard.install(
            self, self.destinations, cap, self._on_free_value,
            name="freearr",
            validator=lambda dest, value:
                value in self._known_remote.get(dest, ()))
        registry.publish_endpoint(self.endpoint_id, {
            "node": self.ctx.node_id,
            "qpn_by_dest": {d: c.qp.qpn for d, c in self.conns.items()},
            "freearr_base_by_dest": self._free_board.base_by_key,
            "freearr_cap": cap,
        })

    def connect(self, registry: EndpointRegistry):
        def bind(conn, info):
            conn.valid = RingCursor(
                info["validarr_base_by_source"][self.endpoint_id],
                info["validarr_cap"])
            conn.remote_free = list(
                info["buffer_addrs_by_source"][self.endpoint_id])
            self._known_remote[conn.node] = frozenset(conn.remote_free)

        yield from rc_connect_senders(self, registry, bind)
        # Local buffers recycle once their data Writes complete.
        CompletionDispatcher(self) \
            .on(Opcode.WRITE, self.data_recycler("wdata")) \
            .start(f"wr-send-cq-{self.endpoint_id}")

    def _on_free_value(self, dest: int, value: int) -> None:
        conn = self.conns[dest]
        conn.remote_free.append(value)
        conn.notify.notify_all()

    def _push(self, conn: PeerConnection, frame: Frame, buf, length: int,
              signaled: bool):
        """Write data into a free remote buffer, then notify ValidArr."""
        while not conn.remote_free:
            yield conn.notify.wait()
        remote_addr = conn.remote_free.pop()
        frame.remote_addr = remote_addr
        yield self._cpu(self.net.post_wr_ns)
        conn.qp.post_send(SendWR(
            wr_id=("wdata", buf), opcode=Opcode.WRITE,
            buffer=FrameCarrier(frame), length=length,
            remote_addr=remote_addr, signaled=signaled,
        ))
        yield self._cpu(self.net.post_wr_ns)
        post_ring_write(conn.qp, conn.valid, remote_addr,
                        ("valid", conn.node))

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.endpoint_send_ns))
        self._pending.add(buf, len(dests))
        for dest in dests:
            frame = Frame(kind="data", state=state,
                          src_endpoint=self.endpoint_id,
                          payload=buf.payload, length=buf.length)
            yield from self._push(self.conns[dest], frame, buf,
                                  buf.length, signaled=True)
            self.record_send(dest, buf.length)

    def _send_finals(self):
        for dest in self.destinations:
            frame = Frame(kind="final", state=DataState.DEPLETED,
                          src_endpoint=self.endpoint_id)
            yield from self._push(self.conns[dest], frame, None, 0,
                                  signaled=False)


class WriteRCReceiveEndpoint(RuntimeReceiveEndpoint):
    """Passive RECEIVE endpoint: data appears in its registered buffers."""

    transport = "MQ/WR"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config, sources)
        self._valid_board: RingBoard = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        per_link = self.config.buffers_per_link
        yield from self.provision_recv_pool()
        cap = per_link * 2 + 4
        # A notified address must land inside this receiver's own pool.
        pool_addrs = frozenset(buf.addr for buf in self.pool.buffers)
        self._valid_board = yield from RingBoard.install(
            self, [src_ep for _node, src_ep in self.sources], cap,
            self._on_valid_value, min_one=True, name="validarr",
            validator=lambda src_ep, value: value in pool_addrs)
        buffer_addrs = {}
        next_buffer = 0
        for src_node, src_ep in self.sources:
            conn = self.conns.add(src_ep, PeerConnection(src_node, src_ep))
            conn.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq,
                                         tenant=self.config.tenant)
            addrs = []
            for _ in range(per_link):
                addrs.append(self.pool.buffers[next_buffer].addr)
                next_buffer += 1
            buffer_addrs[src_ep] = addrs
        registry.publish_endpoint(self.endpoint_id, {
            "node": self.ctx.node_id,
            "qpn_by_source": {
                src_ep: c.qp.qpn for src_ep, c in self.conns.items()
            },
            "validarr_base_by_source": self._valid_board.base_by_key,
            "validarr_cap": cap,
            "buffer_addrs_by_source": buffer_addrs,
        })

    def connect(self, registry: EndpointRegistry):
        def bind(conn, info):
            conn.free = RingCursor(
                info["freearr_base_by_dest"][self.ctx.node_id],
                info["freearr_cap"])

        yield from rc_connect_receivers(self, registry, bind)

    def _on_valid_value(self, src_ep: int, value: int) -> None:
        conn = self.conns[src_ep]
        buf = self.pool.at(value)
        frame: Frame = self.pool.mr.get_object(value)
        if frame.kind == "final":
            # Return the buffer straight away; stream is over.
            post_ring_write(conn.qp, conn.free, value, ("free", src_ep))
            self._source_depleted(src_ep)
            return
        buf.deposit(frame.payload, frame.length)
        self._deliver(src_ep, value, buf)

    def release(self, remote_addr: int, local: Buffer, src: int):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.post_wr_ns))
        conn = self.conns[src]
        local.reset()
        yield self._cpu(self.net.post_wr_ns)
        post_ring_write(conn.qp, conn.free, remote_addr, ("free", src))


register_endpoint_kind(
    "WR_RC", WriteRCSendEndpoint, WriteRCReceiveEndpoint, one_sided=True,
    description="one-sided RDMA Write over RC, roles of the Read design "
                "swapped (§7 future work)")
