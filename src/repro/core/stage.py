"""Wiring a shuffle stage across a cluster.

A :class:`ShuffleStage` instantiates, for one producer/consumer operator
pair of a query plan, the SEND and RECEIVE endpoints on every node, wires
the connections (send endpoint *j* on node *s* pairs with receive
endpoint ``j % k_recv`` on each destination node), runs the two-phase
setup (create + publish, then resolve + connect) with per-node timing —
which is exactly what the connection-cost experiment (Fig 12) measures —
and exposes the endpoints for building SHUFFLE / RECEIVE operators.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, \
    Union

from repro.core.designs import Design, resolve_design
from repro.core.endpoint import EndpointConfig, ReceiveEndpoint, SendEndpoint
from repro.core.groups import TransmissionGroups
from repro.fabric.network import Fabric
from repro.sim import AllOf
from repro.verbs.cm import EndpointRegistry
from repro.verbs.device import VerbsContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.policy import StagePlan

__all__ = ["ShuffleStage", "get_context"]

_endpoint_ids = itertools.count(1)


def get_context(fabric: Fabric, node_id: int) -> VerbsContext:
    """Fetch (or lazily create) the verbs context of a node."""
    ctx = fabric.verbs_contexts.get(node_id)
    if ctx is None:
        ctx = VerbsContext(fabric.sim, fabric, node_id)
    return ctx


class ShuffleStage:
    """All endpoints of one shuffle operator pair across the cluster."""

    def __init__(
        self,
        fabric: Fabric,
        design: Union[str, Design, "StagePlan"],
        groups: Union[TransmissionGroups,
                      Callable[[int], TransmissionGroups]],
        config: Optional[EndpointConfig] = None,
        sender_nodes: Optional[Sequence[int]] = None,
        num_endpoints: Optional[int] = None,
        threads: Optional[int] = None,
        registry: Optional[EndpointRegistry] = None,
    ):
        self.fabric = fabric
        #: the plan this stage executes, when one was supplied (a flat
        #: :class:`~repro.core.policy.StagePlan`); its design resolves
        #: through the same eager path as a plain name.
        self.plan: Optional["StagePlan"] = None
        if hasattr(design, "apply"):  # a StagePlan (duck-typed: no cycle)
            plan = design
            if plan.hierarchical:
                raise ValueError(
                    f"plan {plan.describe()!r} is hierarchical; a single "
                    f"ShuffleStage runs flat plans only — use the "
                    f"two-phase runner in repro.bench.workloads")
            self.plan = plan
            num_endpoints = num_endpoints or plan.num_endpoints
            config = plan.apply(config)
            design = plan.design
        # Eager validation: an unknown design name or unregistered
        # endpoint kind fails here with the known-design/kind lists.
        self.design = resolve_design(design)
        self.threads = threads or fabric.cluster.threads_per_node
        self.k = num_endpoints or self.design.num_endpoints(self.threads)
        if self.k > self.threads:
            raise ValueError(
                f"more endpoints ({self.k}) than threads ({self.threads})")
        self.registry = registry if registry is not None else EndpointRegistry()

        if callable(groups):
            self.groups_for: Dict[int, TransmissionGroups] = {}
            group_fn = groups
        else:
            self.groups_for = {}
            group_fn = lambda _node: groups  # noqa: E731 - tiny adapter

        self.sender_nodes = tuple(
            sender_nodes if sender_nodes is not None
            else range(fabric.num_nodes))
        for s in self.sender_nodes:
            self.groups_for[s] = group_fn(s)

        # UD caps the message size at the MTU (§2.2.2) and widens the
        # buffer window to keep comparable in-flight bytes per connection.
        base = config or EndpointConfig()
        threads_per_ep = -(-self.threads // self.k)
        message_size = base.message_size
        buffers = base.buffers_per_connection
        if self.design.uses_ud:
            message_size = min(message_size, fabric.config.mtu)
            buffers = buffers * base.ud_window_factor
        self.config = EndpointConfig(
            message_size=message_size,
            buffers_per_connection=buffers,
            credit_frequency=base.credit_frequency,
            threads_per_endpoint=threads_per_ep,
            drain_timeout_ns=base.drain_timeout_ns,
            ud_window_factor=base.ud_window_factor,
            tenant=base.tenant,
        )

        self.receiver_nodes = tuple(sorted({
            dest
            for s in self.sender_nodes
            for dest in self.groups_for[s].all_destinations
        }))

        # Allocate globally-unique endpoint ids first, then build objects.
        send_ids = {
            (s, j): next(_endpoint_ids)
            for s in self.sender_nodes for j in range(self.k)
        }
        recv_ids = {
            (d, r): next(_endpoint_ids)
            for d in self.receiver_nodes for r in range(self.k)
        }

        #: node -> list of SEND endpoints (index = endpoint slot).
        self.send_endpoints: Dict[int, List[SendEndpoint]] = {}
        #: node -> list of RECEIVE endpoints.
        self.recv_endpoints: Dict[int, List[ReceiveEndpoint]] = {}
        sources: Dict[int, List] = {eid: [] for eid in recv_ids.values()}

        for s in self.sender_nodes:
            ctx = get_context(fabric, s)
            destinations = self.groups_for[s].all_destinations
            endpoints = []
            for j in range(self.k):
                peers = {d: recv_ids[(d, j % self.k)] for d in destinations}
                ep = self.design.send_cls(
                    ctx, send_ids[(s, j)], self.config, destinations,
                    self.groups_for[s].num_groups, peers)
                endpoints.append(ep)
                for d in destinations:
                    sources[peers[d]].append((s, ep.endpoint_id))
            self.send_endpoints[s] = endpoints

        for d in self.receiver_nodes:
            ctx = get_context(fabric, d)
            self.recv_endpoints[d] = [
                self.design.recv_cls(
                    ctx, recv_ids[(d, r)], self.config, sources[recv_ids[(d, r)]])
                for r in range(self.k)
            ]

        #: per-node connection build time, filled in by :meth:`setup`.
        self.setup_ns: Dict[int, int] = {}
        self._disposed = False

    # -- lifecycle ------------------------------------------------------------

    def _node_endpoints(self, node: int) -> List:
        return (self.send_endpoints.get(node, []) +
                self.recv_endpoints.get(node, []))

    def setup(self):
        """Process fragment: run two-phase setup, recording per-node time.

        Endpoints on one node set up sequentially (one control thread per
        node, as in the real system); nodes proceed in parallel.
        """
        sim = self.fabric.sim
        nodes = sorted(set(self.sender_nodes) | set(self.receiver_nodes))
        start = sim.now

        def phase1(node):
            for ep in self._node_endpoints(node):
                yield from ep.setup(self.registry)
            return sim.now - start

        procs = [sim.process(phase1(n), name=f"stage-setup-{n}") for n in nodes]
        phase1_ns = yield AllOf(sim, procs)

        def phase2(node):
            for ep in self._node_endpoints(node):
                yield from ep.connect(self.registry)
            return sim.now

        mid = sim.now
        procs = [sim.process(phase2(n), name=f"stage-connect-{n}") for n in nodes]
        ends = yield AllOf(sim, procs)
        for node, p1, end in zip(nodes, phase1_ns, ends):
            self.setup_ns[node] = p1 + (end - mid)
        return self.setup_ns

    def dispose(self) -> None:
        """Tear down this stage's transport resources (idempotent).

        Destroys every Queue Pair (evicting its NIC-cached context),
        deregisters the stage's pinned memory, releases completion
        queues, and unpublishes the endpoints from the registry — the
        per-job teardown the multi-tenant service relies on to reuse one
        cluster for a stream of jobs.  The stage must be quiesced: call
        only after the job's fragments have completed (plus a drain
        grace if other jobs keep the simulation running).
        """
        if self._disposed:
            return
        self._disposed = True
        nodes = sorted(set(self.sender_nodes) | set(self.receiver_nodes))
        for node in nodes:
            ctx = self.fabric.verbs_contexts.get(node)
            if ctx is None:
                continue
            for ep in self._node_endpoints(node):
                for qp in {qp.qpn: qp for qp in ep.qps()}.values():
                    ctx.destroy_qp(qp)
                for mr in ep.registered_regions():
                    if not mr.deregistered:
                        ctx.dereg_mr(mr)
                cq = getattr(ep, "cq", None)
                if cq is not None:
                    ctx.release_cq(cq)
                self.registry.unpublish_endpoint(ep.endpoint_id)

    @property
    def max_setup_ns(self) -> int:
        return max(self.setup_ns.values()) if self.setup_ns else 0

    # -- introspection -----------------------------------------------------------

    def qps_created(self, node: int) -> int:
        """Queue Pairs this stage created on ``node``."""
        return sum(len(ep.qps()) for ep in self._node_endpoints(node))

    def registered_bytes(self, node: int) -> int:
        """Registered memory currently pinned on ``node`` by this stage."""
        return sum(mr.length
                   for ep in self._node_endpoints(node)
                   for mr in ep.registered_regions())
