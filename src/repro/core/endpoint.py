"""The communication-endpoint abstraction (§4.2).

An endpoint hides transport-level intricacies (Queue Pair wiring, memory
registration, flow control, error handling) behind a small interface:

Send side:

* ``SEND(buf, dest, state)`` — schedule ``buf`` for transmission to every
  node in ``dest``; the buffer cannot be touched after the call.
* ``GETFREE()`` — obtain a registered buffer for a later SEND; blocks while
  all transmission buffers are in use.

Receive side:

* ``GETDATA()`` — returns ``(state, src, remote, local)``: a received
  buffer ``local``, the sending endpoint's id ``src``, and the buffer's
  address ``remote`` in the sender (used by one-sided implementations).
* ``RELEASE(remote, local, src)`` — return ``local`` for reuse and, for
  one-sided transports, notify the sender that ``remote`` is consumable.

Every endpoint participating in a query is identified by a unique integer
(used like a TCP address/port pair).  All methods are thread-safe: shared
(single-endpoint) configurations serialize their bookkeeping through a
mutex, which is exactly the contention the SE designs trade resources for.

This module defines the interface and the design-independent state
(configuration, framing, stall accounting, the GETFREE/GETDATA queues).
The transport mechanics the designs share — per-peer connection tables,
the §4.4 credit schemes, buffer rings, completion dispatch, and the
backend registry — live in :mod:`repro.core.transport`; concrete designs
subclass the runtime bases there and supply only posting policy.

Implementation style note: methods that may block are generator *process
fragments* — callers invoke them as ``yield from endpoint.send(...)``
inside a simulation process, mirroring how the real (blocking) C++ calls
occupy a worker thread.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.memory import Buffer
from repro.sim import Mutex, Queue
from repro.verbs.cm import EndpointRegistry
from repro.verbs.device import VerbsContext

from repro.core.transport.rings import charge_registration

__all__ = [
    "DataState",
    "ShuffleNetworkError",
    "EndpointConfig",
    "Frame",
    "SendEndpoint",
    "ReceiveEndpoint",
    "DEPLETED_SENTINEL",
]


class DataState(enum.IntEnum):
    """The binary transmission state carried with every buffer (§4.2)."""

    MORE_DATA = 0
    DEPLETED = 1


class ShuffleNetworkError(Exception):
    """Raised when unreliable transmission lost data past the drain
    timeout; the database system reacts by restarting the query (§4.4.2)."""


@dataclass(frozen=True)
class EndpointConfig:
    """Tunables shared by all endpoint implementations."""

    #: RDMA message size == transmission buffer size.  Capped at the MTU
    #: for Unreliable Datagram endpoints (§2.2.2).
    message_size: int = 64 * 1024
    #: transmission buffers per connection per thread ("double buffering"
    #: by default, §5.1.2; the flow-control experiment of §5.1.1 uses 16).
    buffers_per_connection: int = 2
    #: credit write-back frequency: the receiver returns credit after this
    #: many Receive requests have been reposted (§4.4.1, Fig 8).
    credit_frequency: int = 2
    #: number of worker threads sharing this endpoint (1 in the
    #: multi-endpoint configuration, t in the single-endpoint one);
    #: buffer pools are sized per thread served.
    threads_per_endpoint: int = 1
    #: how long an Unreliable Datagram receiver waits for outstanding
    #: packets after the sent/received totals disagree, before declaring a
    #: network error and forcing a query restart (§4.4.2).
    drain_timeout_ns: int = 50_000_000
    #: UD buffers-per-connection multiplier.  "Double buffering" refers to
    #: the 64 KiB RC buffers (§5.1.2); UD messages are MTU-sized, so the
    #: same *byte* window needs more buffers (the §5.1.1 experiments use
    #: 16 per remote node).  The stage multiplies buffers_per_connection
    #: by this factor for UD endpoints; pinned memory stays far below the
    #: RC designs' (Fig 9b).
    ud_window_factor: int = 4
    #: owning tenant of this endpoint's resources (multi-tenant service
    #: accounting and quota enforcement); None outside the service.
    tenant: Optional[str] = None

    def __post_init__(self):
        if self.message_size < 64:
            raise ValueError(f"message size too small: {self.message_size}")
        if self.buffers_per_connection < 1:
            raise ValueError("need at least one buffer per connection")
        if self.credit_frequency < 1:
            raise ValueError("credit frequency must be >= 1")
        if (self.credit_frequency
                > self.buffers_per_connection * self.threads_per_endpoint):
            # Otherwise the final write-back never happens and the sender
            # can starve for credit at end of stream (§5.1.1 discussion).
            raise ValueError(
                "credit_frequency must not exceed buffers per connection "
                f"({self.credit_frequency} > "
                f"{self.buffers_per_connection * self.threads_per_endpoint})"
            )
        if self.threads_per_endpoint < 1:
            raise ValueError("threads_per_endpoint must be >= 1")

    @property
    def buffers_per_link(self) -> int:
        """Registered buffers provisioned per connection on each side."""
        return self.buffers_per_connection * self.threads_per_endpoint


@dataclass(slots=True)
class Frame:
    """Endpoint-level framing carried inside every transmission buffer.

    The real implementation encodes this in the first bytes of the
    registered buffer (Algorithm 3 line 2); the simulation carries it as
    the buffer payload.
    """

    #: "data" for application buffers, "final" for end-of-stream markers,
    #: "credit" for UD software credit returns.
    kind: str
    state: DataState = DataState.MORE_DATA
    #: unique id of the sending endpoint.
    src_endpoint: int = -1
    #: per-connection sequence number (datagram accounting, §4.4.2).
    seq: int = 0
    #: on a "final" frame: total messages sent on this connection,
    #: including the final itself (§4.4.2).
    total: Optional[int] = None
    #: the tuple batch (opaque to the endpoint).
    payload: Any = None
    #: valid payload bytes.
    length: int = 0
    #: the buffer's address in the *sender's* registered memory; one-sided
    #: receivers return it through RELEASE.
    remote_addr: int = 0
    #: on a "credit" frame: the absolute credit value.
    credit: int = 0


#: item placed on the receive inbox once every source has been depleted.
DEPLETED_SENTINEL = (DataState.DEPLETED, -1, 0, None)


class FrameCarrier:
    """Adapts a :class:`Frame` to the verbs layer's buffer interface.

    A Send work request transmits ``wr.buffer.payload``; wrapping the frame
    in this one-field object lets one application buffer be in flight to
    several destinations with per-connection framing (distinct sequence
    numbers), the way the real code writes per-connection headers into the
    same registered buffer region.
    """

    __slots__ = ("payload",)

    def __init__(self, frame: Frame):
        self.payload = frame


class _EndpointBase:
    """State shared by send and receive endpoints."""

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig):
        self.ctx = ctx
        self.sim = ctx.sim
        self.node = ctx.node
        self.endpoint_id = endpoint_id
        self.config = config
        self.net = ctx.config
        #: serializes bookkeeping when several threads share the endpoint.
        self.lock = Mutex(ctx.sim)
        #: the main registered transmission/receive buffer pool.
        self.pool = None
        #: auxiliary registered pools (e.g. UD credit-datagram slots).
        self.aux_pools: List = []
        #: auxiliary registered regions (credit words, FreeArr/ValidArr).
        self.aux_mrs: List = []
        ctx.telemetry.register_endpoint(self)

    # -- introspection ------------------------------------------------------

    def qps(self) -> List:
        """Queue Pairs owned by this endpoint (Table 1 accounting)."""
        qps = []
        qp = getattr(self, "qp", None)
        if qp is not None:
            qps.append(qp)
        conns = getattr(self, "conns", None)
        if conns is not None:
            qps.extend(conns.qps())
        return qps

    def registered_regions(self) -> List:
        """Registered memory regions pinned by this endpoint (Fig 9b)."""
        regions = []
        if self.pool is not None:
            regions.append(self.pool.mr)
        regions.extend(self.aux_mrs)
        regions.extend(pool.mr for pool in self.aux_pools)
        return regions

    def _cpu(self, ns: float):
        """Charge scaled CPU time to the calling thread."""
        return self.node.cpu_delay(ns)

    def _trace_stall(self, name: str, t0: int) -> None:
        """Emit a stall span on this endpoint's track if time elapsed."""
        waited = self.sim.now - t0
        if waited > 0:
            self.ctx.tracer.complete(
                self.ctx.node_id, f"ep{self.endpoint_id}", name, t0,
                waited, "endpoint")
            links = self.ctx.links
            if links is not None:
                links.stall(self.ctx.node_id, self.endpoint_id, name, t0,
                            waited)

    def _charge_registration(self, nbytes: int):
        """Process fragment: charge memory pin+register time for ``nbytes``
        (the region itself is created separately, e.g. by a BufferPool)."""
        yield from charge_registration(self.ctx, nbytes)


class SendEndpoint(_EndpointBase):
    """Base class for the data-transmitting side."""

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int):
        super().__init__(ctx, endpoint_id, config)
        #: node ids this endpoint may transmit to.
        self.destinations = tuple(destinations)
        #: number of transmission groups (sizes the buffer pool).
        self.num_groups = num_groups
        self._free = Queue(ctx.sim)
        self._attached_threads = 0
        self._finished_threads = 0
        self.messages_sent = 0
        self.bytes_sent = 0
        #: bytes transmitted per destination node (skew telemetry).
        self.bytes_by_dest: Dict[int, int] = {}
        #: profiling: time threads spent blocked for credit / free buffers
        #: (the §5.1.3 "blocked for credit" vs "blocked on completions"
        #: distinction).
        self.credit_wait_ns = 0
        self.credit_stalls = 0
        self.free_wait_ns = 0

    # -- lifecycle ---------------------------------------------------------

    def setup(self, registry: EndpointRegistry):
        """Phase 1 (process fragment): create resources, publish wiring."""
        raise NotImplementedError

    def connect(self, registry: EndpointRegistry):
        """Phase 2 (process fragment): resolve peers, build connections."""
        raise NotImplementedError

    def attach_thread(self) -> None:
        """Declare one worker thread as a user of this endpoint."""
        self._attached_threads += 1

    # -- the §4.2 interface ---------------------------------------------------

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        """Process fragment implementing SEND (may wait for flow control)."""
        raise NotImplementedError

    def record_send(self, dest: int, nbytes: int) -> None:
        """Account one transmitted message (per-destination skew feeds
        the telemetry snapshot)."""
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.bytes_by_dest[dest] = self.bytes_by_dest.get(dest, 0) + nbytes

    def get_free(self):
        """Process fragment implementing GETFREE; returns a Buffer."""
        t0 = self.sim.now
        buf = yield self._free.get()
        self.free_wait_ns += self.sim.now - t0
        self._trace_stall("free-wait", t0)
        yield self._cpu(self.net.poll_cq_ns)
        return buf

    def _wait_credit(self, conn):
        """Block until the connection has credit, tracking stall time."""
        t0 = self.sim.now
        while conn.sent >= conn.credit:
            yield conn.notify.wait()
        waited = self.sim.now - t0
        if waited > 0:
            self.credit_stalls += 1
            self.credit_wait_ns += waited
            self._trace_stall("credit-stall", t0)

    def finish(self):
        """Process fragment: the calling thread is done sending.

        When the last attached thread finishes, end-of-stream markers are
        transmitted on every connection (Algorithm 1, lines 14-17).
        """
        self._finished_threads += 1
        if self._finished_threads == self._attached_threads:
            yield from self._send_finals()
        return None

    def _send_finals(self):
        raise NotImplementedError


class ReceiveEndpoint(_EndpointBase):
    """Base class for the data-receiving side."""

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config)
        #: (source node id, source endpoint id) pairs feeding this endpoint.
        self.sources = tuple(sources)
        #: delivered items: (state, src_endpoint, remote_addr, local Buffer).
        self._inbox = Queue(ctx.sim)
        self._active_sources = {src_ep for _node, src_ep in self.sources}
        self.messages_received = 0
        self.bytes_received = 0
        #: profiling: time threads spent blocked waiting for data.
        self.data_wait_ns = 0

    def setup(self, registry: EndpointRegistry):
        raise NotImplementedError

    def connect(self, registry: EndpointRegistry):
        raise NotImplementedError

    # -- the §4.2 interface ---------------------------------------------------

    def get_data(self):
        """Process fragment implementing GETDATA.

        Returns ``(state, src, remote, local)``; ``local`` is None on the
        end-of-stream sentinel.  Raises :class:`ShuffleNetworkError` if
        unreliable delivery lost data beyond the drain timeout.
        """
        t0 = self.sim.now
        item = yield self._inbox.get()
        self.data_wait_ns += self.sim.now - t0
        self._trace_stall("data-wait", t0)
        yield self._cpu(self.net.poll_cq_ns)
        if isinstance(item, ShuffleNetworkError):
            # Leave the error visible for the other consumer threads too.
            self._inbox.put(item)
            raise item
        return item

    def release(self, remote_addr: int, local: Buffer, src: int):
        """Process fragment implementing RELEASE."""
        raise NotImplementedError

    # -- shared internals ------------------------------------------------------

    def _deliver(self, src_endpoint: int, remote_addr: int, local,
                 flow: int = 0) -> None:
        """Hand one received buffer to the application inbox.

        The single receive-side instrumentation point: every transport
        routes arriving data through here, so message/byte accounting is
        uniform across designs.  ``flow`` closes the causal DAG edge when
        link recording is on: the flow's delivery time is stamped and the
        buffer remembered, so a later credit return can name the data
        message that freed it.
        """
        self.messages_received += 1
        self.bytes_received += local.length
        if flow:
            links = self.ctx.links
            if links is not None:
                links.on_deliver(flow, local)
        self._inbox.put((DataState.MORE_DATA, src_endpoint, remote_addr,
                         local))

    def _source_depleted(self, src_endpoint: int) -> None:
        """Mark one source finished; emit sentinels when all are done."""
        self._active_sources.discard(src_endpoint)
        if not self._active_sources:
            for _ in range(self.config.threads_per_endpoint):
                self._inbox.put(DEPLETED_SENTINEL)

    def _fail(self, error: ShuffleNetworkError) -> None:
        self._inbox.put(error)
