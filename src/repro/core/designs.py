"""The six shuffling-operator designs (§4.5, Table 1).

Two orthogonal dimensions:

* endpoint count per operator — single endpoint shared by all threads
  (SE) or one endpoint per thread (ME);
* endpoint implementation — single Queue Pair with Send/Receive over UD
  (SQ/SR), per-peer Queue Pairs with Send/Receive over RC (MQ/SR), or
  per-peer Queue Pairs with RDMA Read over RC (MQ/RD).

``WR_RC`` (RDMA Write over RC) implements the paper's first future-work
item and is exposed as two extra designs (SEMQ/WR, MEMQ/WR) for the
extension benchmarks.

Endpoint implementations self-register with the backend registry
(:mod:`repro.core.transport.registry`) at import time; a :class:`Design`
merely *names* a kind, and resolves classes and transport properties
through the registry.  Importing the implementation modules below is
what populates it for the built-in kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Type

from typing import Union

from repro.core.endpoint import ReceiveEndpoint, SendEndpoint
from repro.core.transport.registry import backend, register_endpoint_kind

# Importing an implementation module registers its endpoint kind.
import repro.core.mcast      # noqa: F401  (SR_UD_MC)
import repro.core.read_rc    # noqa: F401  (RD_RC)
import repro.core.sr_rc      # noqa: F401  (SR_RC)
import repro.core.sr_ud      # noqa: F401  (SR_UD)
import repro.core.write_rc   # noqa: F401  (WR_RC)

__all__ = [
    "Design",
    "DESIGNS",
    "UnknownDesignError",
    "design_properties",
    "register_endpoint_kind",
    "resolve_design",
]


class UnknownDesignError(KeyError):
    """Raised for a design name that is not in :data:`DESIGNS`."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        from repro.core.transport.registry import registered_kinds
        return (f"unknown shuffle design {self.name!r}; known designs: "
                f"{', '.join(sorted(DESIGNS))} (registered endpoint "
                f"kinds: {', '.join(registered_kinds())})")


@dataclass(frozen=True)
class Design:
    """One point in the design space of Table 1."""

    name: str
    endpoint_kind: str  # key into the endpoint-backend registry
    multi_endpoint: bool

    @property
    def send_cls(self) -> Type[SendEndpoint]:
        return backend(self.endpoint_kind).send_cls

    @property
    def recv_cls(self) -> Type[ReceiveEndpoint]:
        return backend(self.endpoint_kind).recv_cls

    @property
    def uses_ud(self) -> bool:
        return backend(self.endpoint_kind).uses_ud

    @property
    def one_sided(self) -> bool:
        return backend(self.endpoint_kind).one_sided

    def num_endpoints(self, threads: int) -> int:
        """Endpoints per operator: 1 (SE) or t (ME)."""
        return threads if self.multi_endpoint else 1

    def qps_per_operator(self, num_nodes: int, threads: int) -> int:
        """The "Open connections (QPs) per node" column of Table 1."""
        per_endpoint = 1 if self.uses_ud else num_nodes
        return self.num_endpoints(threads) * per_endpoint

    # -- Table 1 descriptive columns -----------------------------------------

    @property
    def connections_label(self) -> str:
        if self.uses_ud:
            return "t" if self.multi_endpoint else "1"
        return "n*t" if self.multi_endpoint else "n"

    @property
    def resource_consumption(self) -> str:
        if self.uses_ud:
            return "Moderate" if self.multi_endpoint else "Minimal"
        return "Excessive" if self.multi_endpoint else "Moderate"

    @property
    def thread_contention(self) -> str:
        if self.multi_endpoint:
            return "None"
        return "Excessive" if self.uses_ud else "Moderate"

    @property
    def messaging(self) -> str:
        return ("Half-trip, up to 4 KiB" if self.uses_ud
                else "Round-trip, up to 1 GiB")

    @property
    def transport(self) -> str:
        return ("Unreliable Datagram (UD), error control in software"
                if self.uses_ud
                else "Reliable Connection (RC), error control in hardware")

    @property
    def flow_control(self) -> str:
        return ("One-sided, flow control in hardware" if self.one_sided
                else "Two-sided, flow control in software")


#: the six designs of the paper, plus the future-work variants: the
#: hardware-multicast MESQ/SR and the RDMA Write endpoint (§7).
DESIGNS: Dict[str, Design] = {
    "MEMQ/RD": Design("MEMQ/RD", "RD_RC", multi_endpoint=True),
    "SEMQ/RD": Design("SEMQ/RD", "RD_RC", multi_endpoint=False),
    "MEMQ/SR": Design("MEMQ/SR", "SR_RC", multi_endpoint=True),
    "SEMQ/SR": Design("SEMQ/SR", "SR_RC", multi_endpoint=False),
    "MESQ/SR": Design("MESQ/SR", "SR_UD", multi_endpoint=True),
    "SESQ/SR": Design("SESQ/SR", "SR_UD", multi_endpoint=False),
    "MESQ/SR+MC": Design("MESQ/SR+MC", "SR_UD_MC", multi_endpoint=True),
    "MEMQ/WR": Design("MEMQ/WR", "WR_RC", multi_endpoint=True),
    "SEMQ/WR": Design("SEMQ/WR", "WR_RC", multi_endpoint=False),
}

#: the order the paper lists the six designs in.
PAPER_ORDER = ["MEMQ/SR", "MEMQ/RD", "MESQ/SR", "SEMQ/SR", "SEMQ/RD", "SESQ/SR"]


def resolve_design(design: Union[str, "Design"]) -> Design:
    """Resolve a design name (or pass a :class:`Design` through), eagerly.

    The single sanctioned name→design lookup: it raises
    :class:`UnknownDesignError` listing the known designs for a bad
    name, and probes the endpoint-backend registry so a design naming
    an unregistered kind fails here — at stage/policy construction —
    with the registered-kind list, instead of deep inside the transport
    layer at send time.
    """
    if isinstance(design, Design):
        d = design
    else:
        try:
            d = DESIGNS[design]
        except (KeyError, TypeError):
            raise UnknownDesignError(str(design)) from None
    backend(d.endpoint_kind)  # raises UnknownEndpointKindError eagerly
    return d


def design_properties(num_nodes: int, threads: int) -> List[dict]:
    """Rows reproducing Table 1 for a concrete cluster size."""
    rows = []
    for name in ["MEMQ/RD", "MEMQ/SR", "SEMQ/RD", "SEMQ/SR", "MESQ/SR",
                 "SESQ/SR"]:
        d = DESIGNS[name]
        rows.append({
            "design": name,
            "open_connections": d.connections_label,
            "qps_per_operator": d.qps_per_operator(num_nodes, threads),
            "resource_consumption": d.resource_consumption,
            "thread_contention": d.thread_contention,
            "messaging": d.messaging,
            "transport": d.transport,
            "flow_control": d.flow_control,
        })
    return rows
