"""RDMA Send/Receive over Reliable Connection (§4.4.1, Figure 5).

The endpoint keeps one Queue Pair per peer node (RC is connection
oriented), all associated with a single Completion Queue to amortize
polling.  Senders and receivers are synchronized through the paper's
*stateless credit* protocol:

* the receiver issues credit only after posting a Receive request, and
  transmits the **absolute** credit (total Receives posted on the
  connection so far) by an inlined RDMA Write into the sender's memory;
* the write-back is amortized over ``credit_frequency`` Receives (§5.1.1);
* the sender transmits only while ``sent < credit``.

Because credit is issued strictly after the Receive is posted, a Send can
never arrive at a receiver that has nowhere to put it — the condition the
RC transport punishes with receiver-not-ready stalls.

The credited send/release algorithms live in the shared transport runtime
(:mod:`repro.core.transport.runtime`); this module is the RC posting
policy: per-destination RC QPs, Send WRs for data, credit words written
back by inlined RDMA Writes.
"""

from __future__ import annotations

from repro.core.endpoint import Frame, FrameCarrier
from repro.core.transport.connections import (
    PeerConnection,
    rc_connect_receivers,
    rc_connect_senders,
)
from repro.core.transport.credit import (
    CreditWordBoard,
    post_credit_word,
)
from repro.core.transport.dispatch import CompletionDispatcher
from repro.core.transport.registry import register_endpoint_kind
from repro.core.transport.runtime import (
    CreditedReceiveEndpoint,
    CreditedSendEndpoint,
)
from repro.memory import Buffer
from repro.sim import Notify
from repro.verbs.cm import EndpointRegistry
from repro.verbs.constants import Opcode, QPType
from repro.verbs.wr import SendWR

__all__ = ["SRRCSendEndpoint", "SRRCReceiveEndpoint"]


class SRRCSendEndpoint(CreditedSendEndpoint):
    """SEND endpoint using RDMA Send over Reliable Connection."""

    transport = "MQ/SR"

    @classmethod
    def protocol_model(cls, bound):
        """Model-checker hook: credited two-sided flow over per-peer RC
        QPs, with the §4.4.1 credit-word scheme."""
        from repro.analysis.model.protocols import CreditProtocolModel
        from repro.verbs.qp import fault_actions
        return CreditProtocolModel(
            "SR_RC", bound, credit=CreditWordBoard.model(),
            faults=fault_actions(QPType.RC))

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        for dest in self.destinations:
            conn = self.conns.add(dest, PeerConnection(dest))
            conn.notify = Notify(self.sim)
            conn.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq,
                                         tenant=self.config.tenant)
        yield from self.provision_send_pool()
        # One credit word per destination, written remotely by receivers.
        addr_by_dest = yield from CreditWordBoard.install(self)
        registry.publish_endpoint(self.endpoint_id, {
            "node": self.ctx.node_id,
            "qpn_by_dest": {d: c.qp.qpn for d, c in self.conns.items()},
            "credit_addr_by_dest": addr_by_dest,
        })

    def connect(self, registry: EndpointRegistry):
        def bind(conn, info):
            conn.credit = info["initial_credit"]

        yield from rc_connect_senders(self, registry, bind)
        CompletionDispatcher(self).on(Opcode.SEND, self.data_recycler()) \
            .start(f"sr-rc-send-disp-{self.endpoint_id}")

    # -- RC posting policy -------------------------------------------------

    def _post_data(self, conn: PeerConnection, buf: Buffer,
                   frame: Frame) -> None:
        conn.qp.post_send(SendWR(
            wr_id=("data", buf), opcode=Opcode.SEND,
            buffer=FrameCarrier(frame), length=buf.length,
        ))

    def _post_final(self, conn: PeerConnection, dest: int,
                    frame: Frame) -> None:
        conn.qp.post_send(SendWR(
            wr_id=("final", dest), opcode=Opcode.SEND,
            buffer=FrameCarrier(frame), length=0, signaled=False,
        ))


class SRRCReceiveEndpoint(CreditedReceiveEndpoint):
    """RECEIVE endpoint using RDMA Receive over Reliable Connection."""

    transport = "MQ/SR"

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        per_link = self.config.buffers_per_link
        yield from self.provision_recv_pool()
        next_buffer = 0
        for src_node, src_ep in self.sources:
            conn = self.conns.add(src_ep, PeerConnection(src_node, src_ep))
            conn.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq,
                                         tenant=self.config.tenant)
            for _ in range(per_link):
                buf = self.pool.buffers[next_buffer]
                next_buffer += 1
                conn.qp.post_recv_buffer(buf, self.config.message_size)
                conn.posted += 1
        registry.publish_endpoint(self.endpoint_id, {
            "node": self.ctx.node_id,
            "qpn_by_source": {
                src_ep: c.qp.qpn for src_ep, c in self.conns.items()
            },
            "initial_credit": per_link,
        })

    def connect(self, registry: EndpointRegistry):
        def bind(conn, info):
            conn.credit_addr = info["credit_addr_by_dest"][self.ctx.node_id]

        yield from rc_connect_receivers(self, registry, bind)
        CompletionDispatcher(self).on(Opcode.RECV, self._on_receive) \
            .start(f"sr-rc-recv-disp-{self.endpoint_id}")

    def _on_receive(self, wc) -> None:
        """Route one receive completion into the application inbox."""
        buf: Buffer = wc.wr_id
        frame: Frame = buf.payload
        if frame.kind == "data":
            buf.deposit(frame.payload, frame.length)
            self._deliver(frame.src_endpoint, frame.remote_addr, buf,
                          flow=wc.flow)
        elif frame.kind == "final":
            # Repost the consumed Receive, without issuing credit: the
            # stream has ended and the sender needs none.
            conn = self.conns[frame.src_endpoint]
            buf.reset()
            conn.qp.post_recv_buffer(buf, self.config.message_size)
            self._source_depleted(frame.src_endpoint)

    # -- RC posting policy -------------------------------------------------

    def _repost(self, conn: PeerConnection, local: Buffer) -> None:
        conn.qp.post_recv_buffer(local, self.config.message_size)

    def _return_credit(self, conn: PeerConnection) -> None:
        post_credit_word(conn)


register_endpoint_kind(
    "SR_RC", SRRCSendEndpoint, SRRCReceiveEndpoint,
    description="Send/Receive over RC, stateless credit (§4.4.1)")
