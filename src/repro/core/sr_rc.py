"""RDMA Send/Receive over Reliable Connection (§4.4.1, Figure 5).

The endpoint keeps one Queue Pair per peer node (RC is connection
oriented), all associated with a single Completion Queue to amortize
polling.  Senders and receivers are synchronized through the paper's
*stateless credit* protocol:

* the receiver issues credit only after posting a Receive request, and
  transmits the **absolute** credit (total Receives posted on the
  connection so far) by an inlined RDMA Write into the sender's memory;
* the write-back is amortized over ``credit_frequency`` Receives (§5.1.1);
* the sender transmits only while ``sent < credit``.

Because credit is issued strictly after the Receive is posted, a Send can
never arrive at a receiver that has nowhere to put it — the condition the
RC transport punishes with receiver-not-ready stalls.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
    FrameCarrier,
    ReceiveEndpoint,
    SendEndpoint,
)
from repro.memory import Buffer, BufferPool
from repro.sim import Notify
from repro.verbs.cm import EndpointRegistry, connect_rc_pair
from repro.verbs.constants import AddressHandle, Opcode, QPType
from repro.verbs.device import VerbsContext
from repro.verbs.wr import RecvWR, SendWR

__all__ = ["SRRCSendEndpoint", "SRRCReceiveEndpoint"]


class _SendConnection:
    """Sender-side state for one destination (Figure 5a)."""

    __slots__ = ("dest_node", "qp", "sent", "credit", "credit_addr", "notify")

    def __init__(self, dest_node: int, notify: Notify):
        self.dest_node = dest_node
        self.qp = None
        self.sent = 0
        self.credit = 0
        self.credit_addr = 0
        self.notify = notify


class SRRCSendEndpoint(SendEndpoint):
    """SEND endpoint using RDMA Send over Reliable Connection."""

    transport = "MQ/SR"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        super().__init__(ctx, endpoint_id, config, destinations, num_groups)
        #: destination node id -> receiving endpoint id.
        self.peers = dict(peers)
        self._conns: Dict[int, _SendConnection] = {}
        self._pending: Dict[Buffer, int] = {}
        self.pool: BufferPool = None
        self.cq = None
        self._credit_mr = None

    # -- lifecycle -------------------------------------------------------------

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        for dest in self.destinations:
            self._conns[dest] = _SendConnection(dest, Notify(self.sim))
            self._conns[dest].qp = self.ctx.create_qp(
                QPType.RC, self.cq, self.cq)
        pool_buffers = self.config.buffers_per_connection * \
            self.num_groups * self.config.threads_per_endpoint
        yield from self._charge_registration(
            pool_buffers * self.config.message_size)
        self.pool = BufferPool(self.ctx, pool_buffers, self.config.message_size)
        for buf in self.pool.buffers:
            self._free.put(buf)
        # One credit word per destination, written remotely by receivers.
        self._credit_mr = yield from self.ctx.reg_mr_timed(
            8 * len(self.destinations))
        addr_by_dest = {}
        for i, dest in enumerate(self.destinations):
            addr = self._credit_mr.addr + 8 * i
            self._conns[dest].credit_addr = addr
            addr_by_dest[dest] = addr
        self._credit_mr.on_write.append(self._on_credit_write)
        registry.publish(("ep", self.endpoint_id), {
            "node": self.ctx.node_id,
            "qpn_by_dest": {d: c.qp.qpn for d, c in self._conns.items()},
            "credit_addr_by_dest": addr_by_dest,
        })

    def connect(self, registry: EndpointRegistry):
        for dest in self.destinations:
            conn = self._conns[dest]
            info = registry.lookup(("ep", self.peers[dest]))
            remote_qpn = info["qpn_by_source"][self.endpoint_id]
            yield from connect_rc_pair(
                self.ctx, conn.qp, AddressHandle(dest, remote_qpn))
            conn.credit = info["initial_credit"]
        self.sim.process(self._dispatcher(), name=f"sr-rc-send-disp-{self.endpoint_id}")

    def _on_credit_write(self, addr: int, value: int) -> None:
        index = (addr - self._credit_mr.addr) // 8
        conn = self._conns[self.destinations[index]]
        if value > conn.credit:
            conn.credit = value
            conn.notify.notify_all()

    # -- the SEND/GETFREE interface ------------------------------------------------

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        # Per-call bookkeeping is serialized: this is the shared-endpoint
        # contention the SE configurations pay for.
        yield from self.lock.critical_section(
            self.net.cpu(self.net.endpoint_send_ns))
        self._pending[buf] = len(dests)
        for dest in dests:
            conn = self._conns[dest]
            yield from self._wait_credit(conn)
            conn.sent += 1
            frame = Frame(
                kind="data", state=state, src_endpoint=self.endpoint_id,
                seq=conn.sent, payload=buf.payload, length=buf.length,
                remote_addr=buf.addr,
            )
            yield self._cpu(self.net.post_wr_ns)
            conn.qp.post_send(SendWR(
                wr_id=("data", buf), opcode=Opcode.SEND,
                buffer=FrameCarrier(frame), length=buf.length,
            ))
            self.record_send(dest, buf.length)

    def _send_finals(self):
        for dest in self.destinations:
            conn = self._conns[dest]
            yield from self._wait_credit(conn)
            conn.sent += 1
            frame = Frame(
                kind="final", state=DataState.DEPLETED,
                src_endpoint=self.endpoint_id, seq=conn.sent,
                total=conn.sent,
            )
            yield self._cpu(self.net.post_wr_ns)
            conn.qp.post_send(SendWR(
                wr_id=("final", dest), opcode=Opcode.SEND,
                buffer=FrameCarrier(frame), length=0, signaled=False,
            ))

    def _dispatcher(self):
        """Drains send completions and recycles transmission buffers."""
        while True:
            wc = yield self.cq.wait()
            kind, ref = wc.wr_id
            if kind != "data":
                continue
            self._pending[ref] -= 1
            if self._pending[ref] == 0:
                del self._pending[ref]
                ref.reset()
                self._free.put(ref)


class _RecvConnection:
    """Receiver-side state for one source connection (Figure 5b)."""

    __slots__ = ("src_node", "src_endpoint", "qp", "posted", "credit_addr")

    def __init__(self, src_node: int, src_endpoint: int):
        self.src_node = src_node
        self.src_endpoint = src_endpoint
        self.qp = None
        self.posted = 0
        self.credit_addr = 0


class SRRCReceiveEndpoint(ReceiveEndpoint):
    """RECEIVE endpoint using RDMA Receive over Reliable Connection."""

    transport = "MQ/SR"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        super().__init__(ctx, endpoint_id, config, sources)
        self._conns: Dict[int, _RecvConnection] = {}
        self.cq = None
        self.pool: BufferPool = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        per_link = self.config.buffers_per_link
        total_buffers = per_link * max(1, len(self.sources))
        yield from self._charge_registration(
            total_buffers * self.config.message_size)
        self.pool = BufferPool(self.ctx, total_buffers, self.config.message_size)
        next_buffer = 0
        for src_node, src_ep in self.sources:
            conn = _RecvConnection(src_node, src_ep)
            conn.qp = self.ctx.create_qp(QPType.RC, self.cq, self.cq)
            self._conns[src_ep] = conn
            for _ in range(per_link):
                buf = self.pool.buffers[next_buffer]
                next_buffer += 1
                conn.qp.post_recv(RecvWR(
                    wr_id=buf, buffer=buf, length=self.config.message_size))
                conn.posted += 1
        registry.publish(("ep", self.endpoint_id), {
            "node": self.ctx.node_id,
            "qpn_by_source": {
                src_ep: c.qp.qpn for src_ep, c in self._conns.items()
            },
            "initial_credit": per_link,
        })

    def connect(self, registry: EndpointRegistry):
        for src_node, src_ep in self.sources:
            conn = self._conns[src_ep]
            info = registry.lookup(("ep", src_ep))
            remote_qpn = info["qpn_by_dest"][self.ctx.node_id]
            yield from connect_rc_pair(
                self.ctx, conn.qp, AddressHandle(src_node, remote_qpn))
            conn.credit_addr = info["credit_addr_by_dest"][self.ctx.node_id]
        self.sim.process(
            self._dispatcher(), name=f"sr-rc-recv-disp-{self.endpoint_id}")

    def _dispatcher(self):
        """Routes receive completions into the application inbox."""
        while True:
            wc = yield self.cq.wait()
            if wc.opcode is not Opcode.RECV:
                continue
            buf: Buffer = wc.wr_id
            frame: Frame = buf.payload
            if frame.kind == "data":
                self.messages_received += 1
                self.bytes_received += frame.length
                buf.payload = frame.payload
                buf.length = frame.length
                self._inbox.put((
                    DataState.MORE_DATA, frame.src_endpoint,
                    frame.remote_addr, buf,
                ))
            elif frame.kind == "final":
                # Repost the consumed Receive, without issuing credit: the
                # stream has ended and the sender needs none.
                conn = self._conns[frame.src_endpoint]
                buf.reset()
                conn.qp.post_recv(RecvWR(
                    wr_id=buf, buffer=buf, length=self.config.message_size))
                self._source_depleted(frame.src_endpoint)

    def release(self, remote_addr: int, local: Buffer, src: int):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.post_wr_ns))
        conn = self._conns[src]
        local.reset()
        conn.qp.post_recv(RecvWR(
            wr_id=local, buffer=local, length=self.config.message_size))
        conn.posted += 1
        if conn.posted % self.config.credit_frequency == 0:
            # Absolute credit keeps the protocol stateless; inlining the
            # value into the WQE saves the payload DMA fetch [16].
            yield self._cpu(self.net.post_wr_ns)
            conn.qp.post_send(SendWR(
                wr_id=("credit", src), opcode=Opcode.WRITE,
                remote_addr=conn.credit_addr, value=conn.posted,
                inline=True, signaled=False,
            ))
