"""The paper's primary contribution: RDMA-aware data shuffling operators.

Contents (section numbers refer to the paper):

* :mod:`repro.core.groups` — the transmission-group abstraction
  encapsulating repartition / multicast / broadcast patterns (§4.1).
* :mod:`repro.core.endpoint` — the communication-endpoint abstraction and
  its interface (§4.2), plus shared machinery (framing, buffer pools).
* :mod:`repro.core.transport` — the shared transport runtime under the
  designs: connection tables, credit schemes, buffer rings, completion
  dispatch, and the endpoint-backend registry.
* :mod:`repro.core.sr_rc` — RDMA Send/Receive over Reliable Connection
  with the stateless credit protocol (§4.4.1).
* :mod:`repro.core.sr_ud` — RDMA Send/Receive over Unreliable Datagram
  with software flow control and message counting (§4.4.2).
* :mod:`repro.core.read_rc` — RDMA Read over Reliable Connection with the
  FreeArr/ValidArr circular message queues (§4.4.3, Algorithm 3).
* :mod:`repro.core.write_rc` — an RDMA **Write**-based endpoint (the
  paper's first future-work item, §7).
* :mod:`repro.core.shuffle` / :mod:`repro.core.receive` — the SHUFFLE and
  RECEIVE operators (Algorithms 1 and 2).
* :mod:`repro.core.designs` — the six-design registry of Table 1.
* :mod:`repro.core.stage` — wiring: builds endpoints on every node of a
  cluster, runs connection setup, exposes the operators.
"""

from repro.core.designs import DESIGNS, Design, design_properties
from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    ReceiveEndpoint,
    SendEndpoint,
    ShuffleNetworkError,
)
from repro.core.groups import TransmissionGroups
from repro.core.receive import ReceiveOperator
from repro.core.shuffle import ShuffleOperator
from repro.core.stage import ShuffleStage

__all__ = [
    "DESIGNS",
    "DataState",
    "Design",
    "EndpointConfig",
    "ReceiveEndpoint",
    "ReceiveOperator",
    "SendEndpoint",
    "ShuffleNetworkError",
    "ShuffleOperator",
    "ShuffleStage",
    "TransmissionGroups",
    "design_properties",
]
