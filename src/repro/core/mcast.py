"""MESQ/SR with native InfiniBand multicast — future work #3 (§7).

    "Third, we plan to specialize the MESQ/SR algorithm to use the native
    InfiniBand multicast primitive for broadcasting data.  We hypothesize
    that this will reduce the CPU cost during analytical query
    processing."

The send endpoint posts *one* Send work request per buffer for any
transmission group with more than one member: the datagram is addressed
to a multicast group the receivers' QPs joined at connection time, and
the fabric performs the replication at the last switch common to every
member's path (on the paper's single-switch platform, that one switch;
on a leaf-spine fabric, a shared trunk is crossed once before the
replication point — see ``repro.fabric.topology``).  The sender thus
pays one
``ibv_post_send`` and one egress serialization instead of ``|G|`` of
them — exactly the CPU and port-bandwidth saving the paper hypothesizes.

Flow control still operates per member (credit must be available on
*every* member before the single Send is posted), and the per-member
message counting of §4.4.2 is unchanged, so loss handling and
end-of-stream detection work exactly as in the base design.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.endpoint import DataState, Frame, FrameCarrier
from repro.core.sr_ud import SRUDReceiveEndpoint, SRUDSendEndpoint
from repro.core.transport.registry import register_endpoint_kind
from repro.memory import Buffer
from repro.verbs.cm import EndpointRegistry
from repro.verbs.constants import Opcode, mcast_ah
from repro.verbs.wr import SendWR

__all__ = ["McastSRUDSendEndpoint", "McastSRUDReceiveEndpoint"]


class McastSRUDSendEndpoint(SRUDSendEndpoint):
    """SRUD send endpoint using hardware multicast for group sends."""

    transport = "SQ/SR+MC"

    @classmethod
    def protocol_model(cls, bound):
        """Model-checker hook: like SR_UD, but a group send serves every
        member with one datagram — paying one credit and one Receive on
        each member (§4.5)."""
        from repro.analysis.model.protocols import CreditProtocolModel
        from repro.core.transport.credit import CreditDatagramPort
        from repro.verbs.constants import QPType
        from repro.verbs.qp import fault_actions
        return CreditProtocolModel(
            "SR_UD_MC", bound, credit=CreditDatagramPort.model(),
            faults=fault_actions(QPType.UD), multicast=True)

    def setup(self, registry: EndpointRegistry):
        yield from super().setup(registry)
        # The endpoint id doubles as the MGID; receivers join it.
        info = registry.lookup_endpoint(self.endpoint_id)
        info["mgid"] = self.endpoint_id

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        # The HCA does not loop a multicast datagram back to its sender,
        # so a group containing this node needs one explicit self copy.
        me = self.ctx.node_id
        others = [d for d in dests if d != me]
        if len(others) < 2:
            yield from super().send(buf, dests, state)
            return
        yield from self.lock.critical_section(
            self.net.cpu(self.net.endpoint_send_ns))
        self._pending.add(buf, 1 + (1 if me in dests else 0))
        # Per-member flow control: every destination must have credit.
        for dest in dests:
            yield from self._wait_credit(self.conns[dest])
        for dest in dests:
            self._consume_credit(self.conns[dest])
        frame = Frame(
            kind="data", state=state, src_endpoint=self.endpoint_id,
            seq=0, payload=buf.payload, length=buf.length,
            remote_addr=buf.addr,
        )
        yield self._cpu(self.net.post_wr_ns)
        self.qp.post_send(SendWR(
            wr_id=("data", buf), opcode=Opcode.SEND,
            buffer=FrameCarrier(frame), length=buf.length,
            dest=mcast_ah(self.endpoint_id),
        ))
        # One multicast packet serves every remote member; attribute the
        # bytes to each destination for the skew telemetry.
        self.messages_sent += 1
        self.bytes_sent += buf.length
        for dest in others:
            self.bytes_by_dest[dest] = \
                self.bytes_by_dest.get(dest, 0) + buf.length
        if me in dests:
            yield self._cpu(self.net.post_wr_ns)
            self.qp.post_send(SendWR(
                wr_id=("data", buf), opcode=Opcode.SEND,
                buffer=FrameCarrier(frame), length=buf.length,
                dest=self.conns[me].ah,
            ))
            self.record_send(me, buf.length)

    def _send_finals(self):
        # Finals carry per-destination totals, so they go point-to-point.
        yield from super()._send_finals()


class McastSRUDReceiveEndpoint(SRUDReceiveEndpoint):
    """SRUD receive endpoint that joins its sources' multicast groups."""

    transport = "SQ/SR+MC"

    def connect(self, registry: EndpointRegistry):
        yield from super().connect(registry)
        for _src_node, src_ep in self.sources:
            info = registry.lookup_endpoint(src_ep)
            mgid = info.get("mgid")
            if mgid is not None:
                self.ctx.mcast_attach(mgid, self.qp)


register_endpoint_kind(
    "SR_UD_MC", McastSRUDSendEndpoint, McastSRUDReceiveEndpoint,
    uses_ud=True,
    description="MESQ/SR with native InfiniBand multicast (§7 future work)")
