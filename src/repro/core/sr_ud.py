"""RDMA Send/Receive over Unreliable Datagram (§4.4.2, Figure 6).

A *single* Queue Pair per endpoint communicates with every other node —
the property that keeps the design's footprint at Θ(1) QPs and makes it
scale (Table 1, Figs 10-11).  The price is software error handling:

* Messages are capped at the MTU (4 KiB) and may arrive out of order.
* The same stateless credit protocol as §4.4.1 synchronizes sender and
  receiver, but since UD supports no RDMA Write, credit returns travel as
  small datagrams carrying the absolute credit value.  Because the value
  is absolute, reordered or lost credit messages are superseded by the
  next one (the receiver additionally re-advertises credit on a slow
  keepalive so a lost final credit cannot wedge the sender).
* End of stream is detected by *message counting*: the sender counts
  datagrams per destination and ships the total in a final marker; the
  receiver compares totals with its own counts, waits up to the drain
  timeout for stragglers, and declares a network error (query restart)
  if they never reconcile — the set-oriented insight that lets a database
  use UD without a reorder buffer (§1, §4.4.2).

The credited send/release algorithms live in the shared transport runtime
(:mod:`repro.core.transport.runtime`); this module is the UD posting
policy: one shared QP, address handles per peer, credit datagrams, and
the message-counting end-of-stream machinery.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.endpoint import (
    EndpointConfig,
    Frame,
    FrameCarrier,
    ShuffleNetworkError,
)
from repro.core.transport.connections import PeerConnection
from repro.core.transport.credit import (
    CREDIT_MSG_BYTES,
    CreditDatagramPort,
    grant_credit,
)
from repro.core.transport.dispatch import CompletionDispatcher
from repro.core.transport.registry import register_endpoint_kind
from repro.core.transport.runtime import (
    CreditedReceiveEndpoint,
    CreditedSendEndpoint,
    ensure_ud_message_size,
)
from repro.memory import Buffer
from repro.sim import Notify
from repro.verbs.cm import EndpointRegistry, create_ah, setup_ud_qp
from repro.verbs.constants import Opcode, QPType
from repro.verbs.device import VerbsContext
from repro.verbs.wr import SendWR

__all__ = ["SRUDSendEndpoint", "SRUDReceiveEndpoint"]


class SRUDSendEndpoint(CreditedSendEndpoint):
    """SEND endpoint using RDMA Send over Unreliable Datagram."""

    transport = "SQ/SR"

    @classmethod
    def protocol_model(cls, bound):
        """Model-checker hook: credited two-sided flow over the one
        shared UD QP — lossy datagram credits with keepalive, message
        counting against the final's total, and the drain timeout
        (§4.4.2)."""
        from repro.analysis.model.protocols import CreditProtocolModel
        from repro.verbs.qp import fault_actions
        return CreditProtocolModel(
            "SR_UD", bound, credit=CreditDatagramPort.model(),
            faults=fault_actions(QPType.UD))

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        ensure_ud_message_size(ctx, config)
        super().__init__(ctx, endpoint_id, config, destinations,
                         num_groups, peers)
        #: receiving endpoint id -> connection (credit datagrams carry the
        #: receiver's endpoint id, not the node id).
        self._conn_by_peer: Dict[int, PeerConnection] = {}
        self.qp = None
        self._credit_in: CreditDatagramPort = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        # The single shared UD queue aggregates every peer's credit-receive
        # slots, so size it to the device limit rather than the default
        # (8 slots x 1023 peers overflows 4096 at mesoscale).
        self.qp = self.ctx.create_qp(
            QPType.UD, self.cq, self.cq,
            max_recv_wr=self.ctx.config.max_qp_depth,
            tenant=self.config.tenant)
        yield from setup_ud_qp(self.ctx, self.qp)
        for dest in self.destinations:
            conn = self.conns.add(dest, PeerConnection(dest))
            conn.notify = Notify(self.sim)
        yield from self.provision_send_pool()
        # Small receive slots for incoming credit datagrams.
        self._credit_in = CreditDatagramPort(self, len(self.destinations))
        self._credit_in.post_recv_slots()
        registry.publish_endpoint(self.endpoint_id, {
            "node": self.ctx.node_id,
            "qpn": self.qp.qpn,
        })

    def connect(self, registry: EndpointRegistry):
        for dest in self.destinations:
            conn = self.conns[dest]
            info = registry.lookup_endpoint(self.peers[dest])
            conn.ah = yield from create_ah(self.ctx, dest, info["qpn"])
            conn.credit = info["initial_credit"]
            self._conn_by_peer[self.peers[dest]] = conn
        CompletionDispatcher(self) \
            .on(Opcode.SEND, self.data_recycler()) \
            .on(Opcode.RECV, self._on_credit) \
            .start(f"sr-ud-send-disp-{self.endpoint_id}")

    def _on_credit(self, wc) -> None:
        """Apply a credit-datagram arrival and recycle its receive slot."""
        buf: Buffer = wc.wr_id
        frame: Frame = buf.payload
        if frame.kind == "credit":
            conn = self._conn_by_peer.get(frame.src_endpoint)
            if conn is not None:
                grant_credit(conn, frame.credit)
        self._credit_in.repost(buf)

    # -- UD posting policy -------------------------------------------------

    def _post_data(self, conn: PeerConnection, buf: Buffer,
                   frame: Frame) -> None:
        self.qp.post_send(SendWR(
            wr_id=("data", buf), opcode=Opcode.SEND,
            buffer=FrameCarrier(frame), length=buf.length, dest=conn.ah,
        ))

    def _post_final(self, conn: PeerConnection, dest: int,
                    frame: Frame) -> None:
        self.qp.post_send(SendWR(
            wr_id=("final", dest), opcode=Opcode.SEND,
            buffer=FrameCarrier(frame), length=0, dest=conn.ah,
            signaled=False,
        ))


class SRUDReceiveEndpoint(CreditedReceiveEndpoint):
    """RECEIVE endpoint using RDMA Receive over Unreliable Datagram."""

    transport = "SQ/SR"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        ensure_ud_message_size(ctx, config)
        super().__init__(ctx, endpoint_id, config, sources)
        self.qp = None
        self._credit_out: CreditDatagramPort = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        # One shared queue holds every source's posted data buffers; use
        # the device-limit depth so mesoscale source counts fit.
        self.qp = self.ctx.create_qp(
            QPType.UD, self.cq, self.cq,
            max_recv_wr=self.ctx.config.max_qp_depth,
            tenant=self.config.tenant)
        yield from setup_ud_qp(self.ctx, self.qp)
        per_link = self.config.buffers_per_link
        yield from self.provision_recv_pool()
        for buf in self.pool.buffers:
            self.qp.post_recv_buffer(buf, self.config.message_size)
        for src_node, src_ep in self.sources:
            conn = self.conns.add(src_ep, PeerConnection(src_node, src_ep))
            conn.posted = per_link
        # Tiny buffers for outgoing credit datagrams; they complete fast,
        # so a small rotation per source suffices.
        self._credit_out = CreditDatagramPort(self, len(self.sources))
        registry.publish_endpoint(self.endpoint_id, {
            "node": self.ctx.node_id,
            "qpn": self.qp.qpn,
            "initial_credit": per_link,
        })

    def connect(self, registry: EndpointRegistry):
        for src_node, src_ep in self.sources:
            conn = self.conns[src_ep]
            info = registry.lookup_endpoint(src_ep)
            conn.ah = yield from create_ah(self.ctx, src_node, info["qpn"])
        CompletionDispatcher(self).on(Opcode.RECV, self._on_receive) \
            .start(f"sr-ud-recv-disp-{self.endpoint_id}")
        self.sim.process(
            self._credit_keepalive(), name=f"sr-ud-keepalive-{self.endpoint_id}")

    # -- data path ---------------------------------------------------------------

    def _on_receive(self, wc) -> None:
        buf: Buffer = wc.wr_id
        frame: Frame = buf.payload
        conn = self.conns.get(frame.src_endpoint)
        if conn is None:
            # Stray datagram from an unknown endpoint: drop it.
            buf.reset()
            self.qp.post_recv_buffer(buf, self.config.message_size)
            return
        conn.received += 1
        if frame.kind == "data":
            buf.deposit(frame.payload, frame.length)
            self._deliver(frame.src_endpoint, frame.remote_addr, buf,
                          flow=wc.flow)
        elif frame.kind == "final":
            conn.expected = frame.total
            buf.reset()
            self.qp.post_recv_buffer(buf, self.config.message_size)
        self._check_link_complete(conn)

    def _check_link_complete(self, conn: PeerConnection) -> None:
        if conn.expected is None:
            return
        if conn.received >= conn.expected:
            self._source_depleted(conn.endpoint)
        elif not conn.draining:
            # Out-of-order delivery means stragglers are *common* at end
            # of stream; give them the drain window before declaring loss.
            conn.draining = True
            self.sim.process(
                self._drain_watch(conn),
                name=f"sr-ud-drain-{self.endpoint_id}-{conn.endpoint}")

    def _drain_watch(self, conn: PeerConnection):
        yield self.sim.timeout(self.config.drain_timeout_ns)
        if conn.expected is not None and conn.received < conn.expected:
            self._fail(ShuffleNetworkError(
                f"endpoint {self.endpoint_id}: source {conn.endpoint} "
                f"sent {conn.expected} messages but only {conn.received} "
                f"arrived within the drain timeout — restarting the query"
            ))

    def _credit_keepalive(self):
        """Periodically re-advertise absolute credit to active sources.

        Credit datagrams can be lost; because values are absolute this
        retransmission is idempotent and unwedges a starved sender.
        """
        interval = max(1, self.config.drain_timeout_ns // 4)
        while self._active_sources:
            yield self.sim.timeout(interval)
            for src_ep in list(self._active_sources):
                self._credit_out.post_credit(self.conns[src_ep])

    # -- UD posting policy -------------------------------------------------

    def _repost(self, conn: PeerConnection, local: Buffer) -> None:
        self.qp.post_recv_buffer(local, self.config.message_size)

    def _return_credit(self, conn: PeerConnection) -> None:
        self._credit_out.post_credit(conn)


register_endpoint_kind(
    "SR_UD", SRUDSendEndpoint, SRUDReceiveEndpoint, uses_ud=True,
    description="Send/Receive over UD, credit datagrams + "
                "message counting (§4.4.2)")
