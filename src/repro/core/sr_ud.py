"""RDMA Send/Receive over Unreliable Datagram (§4.4.2, Figure 6).

A *single* Queue Pair per endpoint communicates with every other node —
the property that keeps the design's footprint at Θ(1) QPs and makes it
scale (Table 1, Figs 10-11).  The price is software error handling:

* Messages are capped at the MTU (4 KiB) and may arrive out of order.
* The same stateless credit protocol as §4.4.1 synchronizes sender and
  receiver, but since UD supports no RDMA Write, credit returns travel as
  small datagrams carrying the absolute credit value.  Because the value
  is absolute, reordered or lost credit messages are superseded by the
  next one (the receiver additionally re-advertises credit on a slow
  keepalive so a lost final credit cannot wedge the sender).
* End of stream is detected by *message counting*: the sender counts
  datagrams per destination and ships the total in a final marker; the
  receiver compares totals with its own counts, waits up to the drain
  timeout for stragglers, and declares a network error (query restart)
  if they never reconcile — the set-oriented insight that lets a database
  use UD without a reorder buffer (§1, §4.4.2).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.endpoint import (
    DataState,
    EndpointConfig,
    Frame,
    FrameCarrier,
    ReceiveEndpoint,
    SendEndpoint,
    ShuffleNetworkError,
)
from repro.memory import Buffer, BufferPool
from repro.sim import Notify
from repro.verbs.cm import EndpointRegistry, create_ah, setup_ud_qp
from repro.verbs.constants import AddressHandle, Opcode, QPType
from repro.verbs.device import VerbsContext
from repro.verbs.wr import RecvWR, SendWR

__all__ = ["SRUDSendEndpoint", "SRUDReceiveEndpoint"]

#: wire size of a credit-return datagram (header-only message).
CREDIT_MSG_BYTES = 16
#: credit-receive slots the sender provisions per destination.
CREDIT_RECV_SLOTS = 8


class _SendLink:
    """Sender-side state for one destination (all sharing one QP)."""

    __slots__ = ("dest_node", "ah", "sent", "credit", "notify")

    def __init__(self, dest_node: int, notify: Notify):
        self.dest_node = dest_node
        self.ah: Optional[AddressHandle] = None
        self.sent = 0
        self.credit = 0
        self.notify = notify


class SRUDSendEndpoint(SendEndpoint):
    """SEND endpoint using RDMA Send over Unreliable Datagram."""

    transport = "SQ/SR"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig, destinations: Sequence[int],
                 num_groups: int, peers: Dict[int, int]):
        if config.message_size > ctx.config.mtu:
            raise ValueError(
                f"UD message size {config.message_size} exceeds the MTU "
                f"{ctx.config.mtu} (§2.2.2)"
            )
        super().__init__(ctx, endpoint_id, config, destinations, num_groups)
        self.peers = dict(peers)
        self._links: Dict[int, _SendLink] = {}
        #: receiving endpoint id -> link (credit datagrams carry the
        #: receiver's endpoint id, not the node id).
        self._link_by_peer: Dict[int, _SendLink] = {}
        self._pending: Dict[Buffer, int] = {}
        self.qp = None
        self.cq = None
        self.pool: BufferPool = None
        self._credit_pool: BufferPool = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        self.qp = self.ctx.create_qp(QPType.UD, self.cq, self.cq)
        yield from setup_ud_qp(self.ctx, self.qp)
        for dest in self.destinations:
            self._links[dest] = _SendLink(dest, Notify(self.sim))
        pool_buffers = self.config.buffers_per_connection * \
            self.num_groups * self.config.threads_per_endpoint
        yield from self._charge_registration(
            pool_buffers * self.config.message_size)
        self.pool = BufferPool(self.ctx, pool_buffers, self.config.message_size)
        for buf in self.pool.buffers:
            self._free.put(buf)
        # Small receive slots for incoming credit datagrams.
        credit_slots = CREDIT_RECV_SLOTS * max(1, len(self.destinations))
        self._credit_pool = BufferPool(self.ctx, credit_slots, CREDIT_MSG_BYTES)
        for buf in self._credit_pool.buffers:
            self.qp.post_recv(RecvWR(wr_id=buf, buffer=buf,
                                     length=CREDIT_MSG_BYTES))
        registry.publish(("ep", self.endpoint_id), {
            "node": self.ctx.node_id,
            "qpn": self.qp.qpn,
        })

    def connect(self, registry: EndpointRegistry):
        for dest in self.destinations:
            link = self._links[dest]
            info = registry.lookup(("ep", self.peers[dest]))
            link.ah = yield from create_ah(self.ctx, dest, info["qpn"])
            link.credit = info["initial_credit"]
            self._link_by_peer[self.peers[dest]] = link
        self.sim.process(
            self._dispatcher(), name=f"sr-ud-send-disp-{self.endpoint_id}")

    # -- data path -----------------------------------------------------------

    def send(self, buf: Buffer, dests: Sequence[int], state: DataState):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.endpoint_send_ns))
        self._pending[buf] = len(dests)
        for dest in dests:
            link = self._links[dest]
            yield from self._wait_credit(link)
            link.sent += 1
            frame = Frame(
                kind="data", state=state, src_endpoint=self.endpoint_id,
                seq=link.sent, payload=buf.payload, length=buf.length,
                remote_addr=buf.addr,
            )
            yield self._cpu(self.net.post_wr_ns)
            self.qp.post_send(SendWR(
                wr_id=("data", buf), opcode=Opcode.SEND,
                buffer=FrameCarrier(frame), length=buf.length, dest=link.ah,
            ))
            self.record_send(dest, buf.length)

    def _send_finals(self):
        for dest in self.destinations:
            link = self._links[dest]
            yield from self._wait_credit(link)
            link.sent += 1
            frame = Frame(
                kind="final", state=DataState.DEPLETED,
                src_endpoint=self.endpoint_id, seq=link.sent,
                total=link.sent,
            )
            yield self._cpu(self.net.post_wr_ns)
            self.qp.post_send(SendWR(
                wr_id=("final", dest), opcode=Opcode.SEND,
                buffer=FrameCarrier(frame), length=0, dest=link.ah,
                signaled=False,
            ))

    def _dispatcher(self):
        """Recycles buffers on send completions; applies credit arrivals."""
        while True:
            wc = yield self.cq.wait()
            if wc.opcode is Opcode.SEND:
                kind, ref = wc.wr_id
                if kind != "data":
                    continue
                self._pending[ref] -= 1
                if self._pending[ref] == 0:
                    del self._pending[ref]
                    ref.reset()
                    self._free.put(ref)
            elif wc.opcode is Opcode.RECV:
                buf: Buffer = wc.wr_id
                frame: Frame = buf.payload
                if frame.kind == "credit":
                    link = self._link_by_peer.get(frame.src_endpoint)
                    if link is not None and frame.credit > link.credit:
                        link.credit = frame.credit
                        link.notify.notify_all()
                buf.reset()
                self.qp.post_recv(RecvWR(wr_id=buf, buffer=buf,
                                         length=CREDIT_MSG_BYTES))


class _RecvLink:
    """Receiver-side accounting for one source endpoint."""

    __slots__ = ("src_node", "src_endpoint", "posted", "received",
                 "expected", "ah", "draining")

    def __init__(self, src_node: int, src_endpoint: int):
        self.src_node = src_node
        self.src_endpoint = src_endpoint
        self.posted = 0
        self.received = 0  # every datagram counts, data and final alike
        self.expected: Optional[int] = None
        self.ah: Optional[AddressHandle] = None
        self.draining = False


class SRUDReceiveEndpoint(ReceiveEndpoint):
    """RECEIVE endpoint using RDMA Receive over Unreliable Datagram."""

    transport = "SQ/SR"

    def __init__(self, ctx: VerbsContext, endpoint_id: int,
                 config: EndpointConfig,
                 sources: Sequence[Tuple[int, int]]):
        if config.message_size > ctx.config.mtu:
            raise ValueError(
                f"UD message size {config.message_size} exceeds the MTU "
                f"{ctx.config.mtu} (§2.2.2)"
            )
        super().__init__(ctx, endpoint_id, config, sources)
        self._links: Dict[int, _RecvLink] = {}
        self.qp = None
        self.cq = None
        self.pool: BufferPool = None
        self._credit_out: BufferPool = None

    def setup(self, registry: EndpointRegistry):
        self.cq = self.ctx.create_cq()
        self.qp = self.ctx.create_qp(QPType.UD, self.cq, self.cq)
        yield from setup_ud_qp(self.ctx, self.qp)
        per_link = self.config.buffers_per_link
        total_buffers = per_link * max(1, len(self.sources))
        yield from self._charge_registration(
            total_buffers * self.config.message_size)
        self.pool = BufferPool(self.ctx, total_buffers, self.config.message_size)
        for buf in self.pool.buffers:
            self.qp.post_recv(RecvWR(
                wr_id=buf, buffer=buf, length=self.config.message_size))
        for src_node, src_ep in self.sources:
            link = _RecvLink(src_node, src_ep)
            link.posted = per_link
            self._links[src_ep] = link
        # Tiny buffers for outgoing credit datagrams; they complete fast,
        # so a small rotation per source suffices.
        self._credit_out = BufferPool(
            self.ctx, CREDIT_RECV_SLOTS * max(1, len(self.sources)),
            CREDIT_MSG_BYTES)
        self._credit_cursor = 0
        registry.publish(("ep", self.endpoint_id), {
            "node": self.ctx.node_id,
            "qpn": self.qp.qpn,
            "initial_credit": per_link,
        })

    def connect(self, registry: EndpointRegistry):
        for src_node, src_ep in self.sources:
            link = self._links[src_ep]
            info = registry.lookup(("ep", src_ep))
            link.ah = yield from create_ah(self.ctx, src_node, info["qpn"])
        self.sim.process(
            self._dispatcher(), name=f"sr-ud-recv-disp-{self.endpoint_id}")
        self.sim.process(
            self._credit_keepalive(), name=f"sr-ud-keepalive-{self.endpoint_id}")

    # -- data path ---------------------------------------------------------------

    def _dispatcher(self):
        while True:
            wc = yield self.cq.wait()
            if wc.opcode is not Opcode.RECV:
                continue
            buf: Buffer = wc.wr_id
            frame: Frame = buf.payload
            link = self._links.get(frame.src_endpoint)
            if link is None:
                # Stray datagram from an unknown endpoint: drop it.
                buf.reset()
                self.qp.post_recv(RecvWR(
                    wr_id=buf, buffer=buf, length=self.config.message_size))
                continue
            link.received += 1
            if frame.kind == "data":
                self.messages_received += 1
                self.bytes_received += frame.length
                buf.payload = frame.payload
                buf.length = frame.length
                self._inbox.put((
                    DataState.MORE_DATA, frame.src_endpoint,
                    frame.remote_addr, buf,
                ))
            elif frame.kind == "final":
                link.expected = frame.total
                buf.reset()
                self.qp.post_recv(RecvWR(
                    wr_id=buf, buffer=buf, length=self.config.message_size))
            self._check_link_complete(link)

    def _check_link_complete(self, link: _RecvLink) -> None:
        if link.expected is None:
            return
        if link.received >= link.expected:
            self._source_depleted(link.src_endpoint)
        elif not link.draining:
            # Out-of-order delivery means stragglers are *common* at end
            # of stream; give them the drain window before declaring loss.
            link.draining = True
            self.sim.process(
                self._drain_watch(link),
                name=f"sr-ud-drain-{self.endpoint_id}-{link.src_endpoint}")

    def _drain_watch(self, link: _RecvLink):
        yield self.sim.timeout(self.config.drain_timeout_ns)
        if link.expected is not None and link.received < link.expected:
            self._fail(ShuffleNetworkError(
                f"endpoint {self.endpoint_id}: source {link.src_endpoint} "
                f"sent {link.expected} messages but only {link.received} "
                f"arrived within the drain timeout — restarting the query"
            ))

    def _credit_keepalive(self):
        """Periodically re-advertise absolute credit to active sources.

        Credit datagrams can be lost; because values are absolute this
        retransmission is idempotent and unwedges a starved sender.
        """
        interval = max(1, self.config.drain_timeout_ns // 4)
        while self._active_sources:
            yield self.sim.timeout(interval)
            for src_ep in list(self._active_sources):
                link = self._links[src_ep]
                self._post_credit(link)

    def _post_credit(self, link: _RecvLink) -> None:
        slot = self._credit_out.buffers[
            self._credit_cursor % len(self._credit_out.buffers)]
        self._credit_cursor += 1
        frame = Frame(kind="credit", src_endpoint=self.endpoint_id,
                      credit=link.posted)
        self.qp.post_send(SendWR(
            wr_id=("credit", link.src_endpoint), opcode=Opcode.SEND,
            buffer=FrameCarrier(frame), length=CREDIT_MSG_BYTES,
            dest=link.ah, signaled=False,
        ))

    def release(self, remote_addr: int, local: Buffer, src: int):
        yield from self.lock.critical_section(
            self.net.cpu(self.net.post_wr_ns))
        link = self._links[src]
        local.reset()
        self.qp.post_recv(RecvWR(
            wr_id=local, buffer=local, length=self.config.message_size))
        link.posted += 1
        if link.posted % self.config.credit_frequency == 0:
            yield self._cpu(self.net.post_wr_ns)
            self._post_credit(link)
