"""The transmission-group abstraction (§4.1, Figure 3).

A transmission group set ``G`` is a list of node-id sets.  Hashing a tuple
selects a group index; the buffer is then transmitted to *every* node in
that group.  The three patterns of Figure 3:

* repartition — ``G`` contains singletons, one per node;
* multicast   — groups contain several nodes each;
* broadcast   — one group holding every (other) node.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["TransmissionGroups"]


class TransmissionGroups:
    """An immutable list of destination-node sets."""

    def __init__(self, groups: Sequence[Iterable[int]]):
        if not groups:
            raise ValueError("at least one transmission group is required")
        self._groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(set(g))) for g in groups
        )
        for i, group in enumerate(self._groups):
            if not group:
                raise ValueError(f"transmission group {i} is empty")
            if any(node < 0 for node in group):
                raise ValueError(f"negative node id in group {i}: {group}")

    def __len__(self) -> int:
        return len(self._groups)

    def __getitem__(self, index: int) -> Tuple[int, ...]:
        return self._groups[index]

    def __iter__(self):
        return iter(self._groups)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TransmissionGroups)
            and self._groups == other._groups
        )

    def __hash__(self) -> int:
        return hash(self._groups)

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    @property
    def all_destinations(self) -> Tuple[int, ...]:
        """Every node that appears in any group, each once, sorted."""
        seen = set()
        for group in self._groups:
            seen.update(group)
        return tuple(sorted(seen))

    @property
    def fanout(self) -> int:
        """The largest number of recipients a single buffer can have."""
        return max(len(group) for group in self._groups)

    # -- the three patterns of Figure 3 -------------------------------------

    @classmethod
    def repartition(cls, num_nodes: int) -> "TransmissionGroups":
        """One singleton group per node: ``G = {{0},{1},...,{n-1}}``."""
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        return cls([(i,) for i in range(num_nodes)])

    @classmethod
    def multicast(cls, groups: Sequence[Iterable[int]]) -> "TransmissionGroups":
        """Arbitrary user-defined groups (Figure 3b)."""
        return cls(groups)

    @classmethod
    def broadcast(cls, num_nodes: int,
                  exclude: int = -1) -> "TransmissionGroups":
        """A single group with every node (optionally excluding one).

        Node A broadcasting to the rest of the cluster (Figure 3c) uses
        ``broadcast(n, exclude=A)``.
        """
        members = [i for i in range(num_nodes) if i != exclude]
        if not members:
            raise ValueError("broadcast group would be empty")
        return cls([members])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join("{" + ",".join(map(str, g)) + "}" for g in self._groups)
        return f"G=[{inner}]"
