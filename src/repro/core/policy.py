"""Per-stage shuffle policies: choosing an endpoint design from context.

The paper's central result is that *no single endpoint design wins
everywhere* (§5, Table 1): the MQ designs dominate while their Queue
Pair working set fits the NIC's context cache and collapse beyond it
(Fig 10/11), RC needs large messages to amortize round trips (Fig 9),
and a single UD Queue Pair serializes under thread contention.  The
bench drivers and the multi-tenant service used to hard-wire a design
*string* through ``Cluster.shuffle_stage`` / ``ShuffleStage`` /
``service.scheduler``; this module turns that choice into a first-class
object:

* :class:`StageContext` — everything known about a stage before it
  runs: cluster shape, message-size estimate, topology and
  oversubscription, tenant quota caps, and a live
  :class:`TelemetrySnapshot`.
* :class:`StagePlan` — what a policy decides: the design (endpoint
  kind + endpoint count) plus optional credit/window parameter
  overrides, and, for two-phase leaf-spine shuffles, a nested
  inter-leaf plan.
* :class:`ShufflePolicy` — ``plan(ctx) -> StagePlan``, with an
  :meth:`~ShufflePolicy.observe` hook the service scheduler feeds
  measured telemetry between jobs so a policy can re-plan mid-run.

Three built-in policies: :class:`StaticPolicy` reproduces the legacy
fixed-design paths bit-for-bit, :class:`AdaptivePolicy` encodes the
fig8–fig11 measurement grid as a rule table plus observed-telemetry
overrides, and :class:`HierarchicalPolicy` decomposes a repartition on
an oversubscribed leaf-spine fabric into an intra-leaf exchange plus
coordinated inter-leaf streams (one active stream per leaf pair).

This module (with :mod:`repro.core.designs`) is the *only* place that
may dispatch on raw design strings — lint rule VS110 enforces that the
rest of the tree goes through :func:`resolve_design` / plans.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.designs import DESIGNS, Design, resolve_design
from repro.core.endpoint import EndpointConfig

__all__ = [
    "TelemetrySnapshot",
    "StageContext",
    "StagePlan",
    "ShufflePolicy",
    "StaticPolicy",
    "AdaptivePolicy",
    "HierarchicalPolicy",
    "SHUFFLE_POLICIES",
    "parse_policy",
    "plan_footprint",
]


# ---------------------------------------------------------------------------
# context
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetrySnapshot:
    """The three live signals a policy may react to.

    All values are cumulative-to-now ratios, so repeated runs with one
    seed produce identical snapshots at identical simulated times.
    """

    #: aggregate NIC QP-context-cache miss rate (0..1) — the Fig 10/11
    #: collapse signal.
    qp_cache_miss_rate: float = 0.0
    #: share of total worker-thread time spent stalled for flow-control
    #: credit (0..1) — the §5.1.1 starvation signal.
    credit_stall_share: float = 0.0
    #: peak switch-trunk utilization (0..1); 0 on single-switch fabrics.
    trunk_utilization: float = 0.0

    @classmethod
    def from_cluster(cls, cluster: Any) -> "TelemetrySnapshot":
        """Harvest the cumulative counters of a live cluster."""
        from repro.telemetry.core import nic_cache_stats
        miss_rate = nic_cache_stats(cluster)["miss_rate"]
        sim = cluster.sim
        telemetry = cluster.telemetry
        stall_share = 0.0
        budget = sim.now * cluster.threads_per_node * cluster.num_nodes
        if budget > 0:
            waited = sum(getattr(ep, "credit_wait_ns", 0)
                         for ep in telemetry.endpoints)
            stall_share = min(1.0, waited / budget)
        trunk = 0.0
        topology = getattr(cluster.fabric, "topology", None)
        if topology is not None and sim.now > 0:
            trunk = max(
                (min(1.0, port.pipe.busy_ns / sim.now)
                 for port in topology.ports()),
                default=0.0)
        return cls(qp_cache_miss_rate=miss_rate,
                   credit_stall_share=stall_share,
                   trunk_utilization=trunk)


@dataclass(frozen=True)
class StageContext:
    """Everything a policy may consult when planning one stage."""

    num_nodes: int
    threads: int
    #: expected transfer message size (the workload's EndpointConfig).
    message_size: int = 64 * 1024
    #: per-node shuffle volume estimate (0: unknown).
    bytes_per_node: int = 0
    #: "repartition" or "broadcast" (Fig 3 traffic patterns).
    pattern: str = "repartition"
    #: network parameters the rule table keys on.
    mtu: int = 4096
    qp_cache_entries: int = 1024
    network: str = ""
    #: switch wiring (matches :class:`repro.fabric.config.TopologySpec`).
    topology_kind: str = "single-switch"
    oversubscription: int = 1
    nodes_per_leaf: int = 4
    #: tenant quota caps (None: unlimited) — the clamping inputs that
    #: used to live in ``service/scheduler.py``.
    max_qps: Optional[int] = None
    max_registered_bytes: Optional[int] = None
    #: caller's endpoint-count override (None: the design's natural k).
    num_endpoints: Optional[int] = None
    #: caller's base endpoint configuration (None: defaults).
    base_config: Optional[EndpointConfig] = None
    #: whether the runner can execute a two-phase (hierarchical) plan;
    #: only the workload runners can, the service scheduler cannot.
    allow_hierarchical: bool = False
    #: live cluster telemetry at planning time.
    telemetry: Optional[TelemetrySnapshot] = None

    @classmethod
    def from_cluster(cls, cluster: Any, *,
                     message_size: Optional[int] = None,
                     bytes_per_node: int = 0,
                     pattern: str = "repartition",
                     config: Optional[EndpointConfig] = None,
                     num_endpoints: Optional[int] = None,
                     max_qps: Optional[int] = None,
                     max_registered_bytes: Optional[int] = None,
                     allow_hierarchical: bool = False,
                     telemetry: Optional[TelemetrySnapshot] = None,
                     ) -> "StageContext":
        """Build a context from a live :class:`~repro.cluster.Cluster`."""
        net = cluster.config.network
        spec = cluster.config.topology
        if message_size is None:
            message_size = (config or EndpointConfig()).message_size
        return cls(
            num_nodes=cluster.num_nodes,
            threads=cluster.threads_per_node,
            message_size=message_size,
            bytes_per_node=bytes_per_node,
            pattern=pattern,
            mtu=net.mtu,
            qp_cache_entries=net.qp_cache_entries,
            network=net.name,
            topology_kind=spec.kind,
            oversubscription=spec.oversubscription,
            nodes_per_leaf=spec.nodes_per_leaf,
            max_qps=max_qps,
            max_registered_bytes=max_registered_bytes,
            num_endpoints=num_endpoints,
            base_config=config,
            allow_hierarchical=allow_hierarchical,
            telemetry=telemetry,
        )

    @property
    def num_leaves(self) -> int:
        if self.topology_kind != "leaf-spine":
            return 1
        return -(-self.num_nodes // self.nodes_per_leaf)

    @property
    def capped(self) -> bool:
        return self.max_qps is not None or \
            self.max_registered_bytes is not None


# ---------------------------------------------------------------------------
# plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StagePlan:
    """A policy's decision for one stage.

    ``design`` names a registered :class:`~repro.core.designs.Design`
    (the endpoint kind + endpoint-multiplicity pair); the optional
    fields override the workload's base :class:`EndpointConfig` only
    where set, so an all-``None`` plan runs exactly like the legacy
    design-string path.
    """

    design: str
    #: endpoint count (None: the design's natural count).
    num_endpoints: Optional[int] = None
    #: credit/window parameter overrides (None: keep the caller's).
    credit_frequency: Optional[int] = None
    buffers_per_connection: Optional[int] = None
    message_size: Optional[int] = None
    #: two-phase leaf-spine decomposition: when set, the stage runs as
    #: an intra-leaf exchange (this plan's design) plus coordinated
    #: inter-leaf streams described by this nested flat plan.
    inter: Optional["StagePlan"] = None
    #: concurrently active inter-leaf senders per source leaf (matches
    #: the trunk rate: ~nodes_per_leaf / oversubscription).
    inter_concurrency: int = 1
    #: False: even a single-endpoint stage exceeds the tenant's caps.
    runnable: bool = True
    #: True: ``num_endpoints`` was clamped below the natural count to
    #: fit the tenant's quota (the svc-tenants isolation lever).
    clamped: bool = False
    #: human-readable why (trace events, job metadata, reports).
    reason: str = ""

    def __post_init__(self):
        resolve_design(self.design)
        if self.inter is not None and self.inter.inter is not None:
            raise ValueError("inter-leaf plans cannot nest further")

    @property
    def hierarchical(self) -> bool:
        return self.inter is not None

    @property
    def endpoint_kind(self) -> str:
        """The transport kind this plan resolves to (registry lookup)."""
        return resolve_design(self.design).endpoint_kind

    def resolve(self) -> Design:
        return resolve_design(self.design)

    def apply(self, base: Optional[EndpointConfig] = None) -> EndpointConfig:
        """Overlay this plan's parameter overrides on ``base``.

        Returns ``base`` unchanged (identity) when the plan overrides
        nothing — the bit-compatibility guarantee of StaticPolicy.
        """
        config = base if base is not None else EndpointConfig()
        changes: Dict[str, Any] = {}
        if self.credit_frequency is not None:
            changes["credit_frequency"] = self.credit_frequency
        if self.buffers_per_connection is not None:
            changes["buffers_per_connection"] = self.buffers_per_connection
        if self.message_size is not None:
            changes["message_size"] = self.message_size
        if not changes:
            return config
        return dataclasses.replace(config, **changes)

    def describe(self) -> str:
        if self.hierarchical:
            assert self.inter is not None
            return (f"{self.design}+{self.inter.design}/hier"
                    f"(x{self.inter_concurrency})")
        return self.design


# ---------------------------------------------------------------------------
# footprint estimation (moved here from service/quota.py so admission,
# clamping, and planning share one formula)
# ---------------------------------------------------------------------------


def plan_footprint(design: Any, nodes: int, threads: int,
                   num_endpoints: Optional[int] = None,
                   config: Optional[EndpointConfig] = None
                   ) -> Tuple[int, int]:
    """Generous cluster-wide ``(qps, registered_bytes)`` estimate.

    Mirrors the stage's config derivation (UD MTU cap and window
    factor, per-endpoint thread split), then applies a 2x safety margin
    so admission — which compares this estimate against a tenant's
    remaining headroom — over-rejects rather than admitting a job the
    hard verbs-layer cap would kill halfway through setup.  The
    conformance test asserts estimate >= actual for every design.
    """
    d = resolve_design(design)
    k = num_endpoints or d.num_endpoints(threads)
    base = config or EndpointConfig()
    threads_per_ep = -(-threads // k)
    message_size = base.message_size
    buffers = base.buffers_per_connection
    if d.uses_ud:
        buffers *= base.ud_window_factor
    # message_size is capped at the MTU for UD, but keeping the uncapped
    # value only makes the estimate more generous.
    per_ep_qps = 1 if d.uses_ud else nodes
    qps = 2 * nodes * k * per_ep_qps
    window = buffers * threads_per_ep * message_size
    # send pool (window x groups) + recv pool (window x sources) per
    # node, plus aux pools/boards absorbed by the margin.
    registered = 2 * nodes * k * nodes * window
    return 2 * qps, 2 * registered


def _clamp_plan(plan: StagePlan, ctx: StageContext) -> StagePlan:
    """Clamp a flat plan's endpoint count to fit the tenant's caps.

    The isolation lever of the svc-tenants ablation, moved here from
    ``ShuffleService._effective_endpoints``: under a quota the count is
    walked down toward single-endpoint until the estimated footprint of
    one job fits the cap *alone* (an MQ tenant degrades toward SQ
    instead of monopolizing the NIC context cache).  Marks the plan
    ``runnable=False`` when even a single-endpoint job cannot fit.
    """
    if not ctx.capped or plan.hierarchical:
        return plan
    design = resolve_design(plan.design)
    natural = plan.num_endpoints or design.num_endpoints(ctx.threads)
    config = plan.apply(ctx.base_config)
    for candidate in range(natural, 0, -1):
        qps, registered = plan_footprint(
            design, ctx.num_nodes, ctx.threads,
            num_endpoints=candidate, config=config)
        if ctx.max_qps is not None and qps > ctx.max_qps:
            continue
        if ctx.max_registered_bytes is not None and \
                registered > ctx.max_registered_bytes:
            continue
        if candidate == natural and plan.num_endpoints is None:
            return plan
        return dataclasses.replace(
            plan, num_endpoints=candidate,
            clamped=candidate < natural,
            reason=(f"{plan.reason}; clamped to k={candidate} under "
                    f"tenant caps" if candidate < natural else plan.reason))
    return dataclasses.replace(
        plan, num_endpoints=1, runnable=False,
        reason=f"{plan.reason}; unrunnable: single-endpoint footprint "
               f"exceeds tenant caps")


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


class ShufflePolicy:
    """Base class: map a :class:`StageContext` to a :class:`StagePlan`.

    ``plan`` must be deterministic in its inputs (context plus any state
    accumulated through :meth:`observe`) — repeated runs with one seed
    must produce identical plans, which the policy-determinism tests
    assert.
    """

    name = "policy"

    def plan(self, ctx: StageContext) -> StagePlan:
        raise NotImplementedError

    def observe(self, observed: TelemetrySnapshot) -> None:
        """Feed measured telemetry back (between service jobs)."""

    def describe(self) -> str:
        return self.name


class StaticPolicy(ShufflePolicy):
    """The legacy fixed-design path, as a policy object.

    Plans are bit-identical to passing the design string directly: no
    parameter overrides, the same quota clamp the scheduler used to
    apply inline.
    """

    name = "static"

    def __init__(self, design: Any, num_endpoints: Optional[int] = None):
        self.design = resolve_design(design)
        self.num_endpoints = num_endpoints

    def plan(self, ctx: StageContext) -> StagePlan:
        plan = StagePlan(
            design=self.design.name,
            num_endpoints=self.num_endpoints or ctx.num_endpoints,
            reason=f"static: fixed design {self.design.name}")
        return _clamp_plan(plan, ctx)

    def describe(self) -> str:
        return f"static:{self.design.name}"


class AdaptivePolicy(ShufflePolicy):
    """Rule-table design selection from the fig8–fig11 measurement grid.

    The predictive rules (applied in order; EXPERIMENTS.md records the
    measurements they are fitted to):

    1. *Datagram-sized messages* → ``MESQ/SR``.  At or below the MTU,
       RC pays a round trip per message with nothing to amortize it
       (fig9: the RC designs lose 25–40% of their 64 KiB throughput at
       4 KiB), while UD is built for exactly this message size.
    2. *Starved message windows* → ``MESQ/SR``.  When the per
       thread-destination flow (``bytes_per_node / (threads * nodes)``)
       cannot fill even one configured message, an RC design's deep
       message buffers drain as serialized partial flushes at EOS; UD
       clamps to the MTU and never starves.
    3. *QP-cache pressure* → ``MESQ/SR``.  An MQ design activates about
       ``2·n·t`` Queue Pair contexts per NIC (send + receive operator);
       once that working set reaches a quarter of the context cache,
       eviction churn sets in well before the cache nominally fills
       (aux QPs, both stages resident) and MQ throughput collapses —
       fig10's FDR n=16 cliff (MEMQ/SR 2.9 vs MESQ/SR 5.2 GiB/s) and
       fig11's EDR n=16 dip.  UD keeps one context per endpoint and is
       immune.
    4. otherwise → ``SEMQ/SR``: the cache-resident RC regime, where
       hardware flow control and big messages win (fig8/fig10 at EDR
       n≤8: 10.5–11.0 GiB/s, ahead of or tied with every alternative)
       at moderate resource cost (Table 1).

    Two observed-telemetry overrides re-plan between service jobs:
    a measured QP-cache miss rate above ``miss_threshold`` forces the
    UD design even where the rules predicted a cache fit (neighbours'
    QPs share the cache; the tenant cannot see them at plan time), and
    a credit-stall share above ``stall_threshold`` deepens the buffer
    window (fig8's starvation mechanism).

    On an oversubscribed leaf-spine fabric (and a runner that supports
    two-phase plans) it delegates to :class:`HierarchicalPolicy`.
    """

    name = "adaptive"

    #: fraction of the QP context cache an MQ working set may use
    #: before the rules predict thrash.
    cache_pressure = 0.25
    #: observed miss rate that forces the UD design on the next plan.
    miss_threshold = 0.15
    #: observed credit-stall share that deepens the window.
    stall_threshold = 0.20
    deep_buffers = 16

    def __init__(self,
                 miss_threshold: Optional[float] = None,
                 stall_threshold: Optional[float] = None,
                 hierarchical: Optional["HierarchicalPolicy"] = None):
        if miss_threshold is not None:
            self.miss_threshold = miss_threshold
        if stall_threshold is not None:
            self.stall_threshold = stall_threshold
        self._hierarchical = hierarchical or HierarchicalPolicy()
        self._observed: Optional[TelemetrySnapshot] = None

    # -- the rule table ----------------------------------------------------

    def _rule_pick(self, ctx: StageContext) -> Tuple[str, str]:
        if ctx.message_size <= ctx.mtu:
            return "MESQ/SR", (
                f"rule: {ctx.message_size} B messages fit a UD datagram "
                f"(MTU {ctx.mtu}); RC round trips have nothing to amortize")
        if ctx.bytes_per_node:
            per_flow = ctx.bytes_per_node // (ctx.threads * ctx.num_nodes)
            if ctx.message_size > per_flow:
                return "MESQ/SR", (
                    f"rule: configured {ctx.message_size} B messages never "
                    f"fill (~{per_flow} B per thread-destination flow); an "
                    f"RC window this deep drains as serialized partial "
                    f"flushes while UD clamps to the MTU")
        working_set = 2 * ctx.num_nodes * ctx.threads
        budget = ctx.qp_cache_entries * self.cache_pressure
        if working_set >= budget:
            return "MESQ/SR", (
                f"rule: MQ working set ~{working_set} QPs >= "
                f"{self.cache_pressure:.0%} of the {ctx.qp_cache_entries}-"
                f"entry QP context cache; UD is immune to the thrash")
        return "SEMQ/SR", (
            f"rule: cache-resident RC regime ({working_set} QPs < "
            f"{budget:.0f}); hardware flow control at moderate cost")

    def plan(self, ctx: StageContext) -> StagePlan:
        if ctx.allow_hierarchical and ctx.topology_kind == "leaf-spine" \
                and ctx.oversubscription > 1 and ctx.num_leaves > 1:
            return self._hierarchical.plan(ctx)
        design, reason = self._rule_pick(ctx)
        buffers: Optional[int] = None
        observed = self._observed
        if observed is not None:
            if observed.qp_cache_miss_rate >= self.miss_threshold:
                design = "MESQ/SR"
                reason = (f"observed: QP-cache miss rate "
                          f"{observed.qp_cache_miss_rate:.2f} >= "
                          f"{self.miss_threshold} (shared cache under "
                          f"pressure); switching to UD")
            elif observed.credit_stall_share >= self.stall_threshold:
                buffers = self.deep_buffers
                reason = (f"{reason}; observed credit-stall share "
                          f"{observed.credit_stall_share:.2f} >= "
                          f"{self.stall_threshold}: deepening window to "
                          f"{buffers} buffers")
        plan = StagePlan(design=design, num_endpoints=ctx.num_endpoints,
                         buffers_per_connection=buffers, reason=reason)
        return _clamp_plan(plan, ctx)

    def observe(self, observed: TelemetrySnapshot) -> None:
        self._observed = observed


class HierarchicalPolicy(ShufflePolicy):
    """Two-phase leaf-spine shuffle: intra-leaf exchange + coordinated
    inter-leaf streams.

    The abl-oversub ablation shows MESQ/SR losing ~40% of its
    repartition throughput at 4:1 trunk oversubscription with the
    trunks only ~70% utilized — the collapse is not pure bandwidth
    starvation but *interference*: m uncoordinated senders per leaf,
    each spraying shallow UD windows across every remote node, leave
    the constrained trunk idle between bursts.  The two-phase plan
    splits the repartition by destination locality:

    * **intra-leaf** traffic (never crosses a trunk) runs the UD design
      at full parallelism;
    * **inter-leaf** traffic runs a deep-window RC design at 64 KiB+
      messages (the Fig 9 sweet spot), with roughly
      ``nodes_per_leaf / oversubscription`` senders per source leaf
      active at a time — matching the senders' aggregate link rate to
      the trunk rate so each active stream can fill the trunk instead
      of queueing against its leaf-mates.  A floor of two concurrent
      streams per leaf keeps the trunk fed through any single stream's
      per-destination stalls (measured: one stream leaves ~8% of the
      trunk idle).

    On a non-leaf-spine fabric (or a runner that cannot execute
    two-phase plans) it degrades to a flat plan of the intra design.
    """

    name = "hierarchical"

    def __init__(self, intra: str = "MESQ/SR", inter: str = "SEMQ/SR",
                 inter_buffers: int = 16):
        self.intra = resolve_design(intra)
        self.inter = resolve_design(inter)
        self.inter_buffers = inter_buffers

    def plan(self, ctx: StageContext) -> StagePlan:
        if not ctx.allow_hierarchical or ctx.topology_kind != "leaf-spine" \
                or ctx.num_leaves < 2 or ctx.pattern != "repartition":
            plan = StagePlan(
                design=self.intra.name, num_endpoints=ctx.num_endpoints,
                reason="hierarchical: flat fallback (no leaf-spine "
                       "locality to exploit here)")
            return _clamp_plan(plan, ctx)
        concurrency = min(
            ctx.nodes_per_leaf,
            max(2, ctx.nodes_per_leaf // ctx.oversubscription))
        inter = StagePlan(
            design=self.inter.name,
            buffers_per_connection=self.inter_buffers,
            message_size=max(ctx.message_size, 64 * 1024),
            reason=f"inter-leaf: deep-window {self.inter.name}")
        plan = StagePlan(
            design=self.intra.name,
            num_endpoints=ctx.num_endpoints,
            inter=inter,
            inter_concurrency=concurrency,
            reason=(f"hierarchical: intra-leaf {self.intra.name} + "
                    f"{concurrency} concurrent inter-leaf "
                    f"{self.inter.name} stream(s) per leaf on the "
                    f"{ctx.oversubscription}:1 fabric"))
        return _clamp_plan(plan, ctx)

    def describe(self) -> str:
        return f"hierarchical:{self.intra.name}+{self.inter.name}"


# ---------------------------------------------------------------------------
# registry / CLI parsing
# ---------------------------------------------------------------------------

SHUFFLE_POLICIES = {
    "adaptive": AdaptivePolicy,
    "hierarchical": HierarchicalPolicy,
}


def parse_policy(spec: Any) -> ShufflePolicy:
    """Turn a ``--policy`` argument into a policy instance.

    Accepts a policy object (returned unchanged), a registered policy
    name (``adaptive``, ``hierarchical``), ``static:<DESIGN>``, or a
    bare design name (shorthand for the static policy).
    """
    if isinstance(spec, ShufflePolicy):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"cannot parse policy from {spec!r}")
    factory = SHUFFLE_POLICIES.get(spec)
    if factory is not None:
        return factory()
    name = spec[len("static:"):] if spec.startswith("static:") else spec
    if name in DESIGNS:
        return StaticPolicy(name)
    known: List[str] = sorted(SHUFFLE_POLICIES) + ["static:<DESIGN>"]
    raise ValueError(
        f"unknown policy {spec!r}; expected one of {', '.join(known)} "
        f"or a design name ({', '.join(sorted(DESIGNS))})")
