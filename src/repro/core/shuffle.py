"""The SHUFFLE operator (§4.3.1, Algorithm 1).

A vectorized pull-based operator: each worker thread drains the child
operator, hashes every tuple to a transmission group, packs tuples into
RDMA-registered transmission buffers, and hands full buffers to the
endpoint.  Following the paper's measurement (§4.3.1, [18]), tuples are
always *copied* into registered buffers — no zero-copy — because tuples
are small; the copy cost is charged through the CPU model.

Two partitioning modes are provided:

* :func:`hash_partitioner` — real hash partitioning on a key column
  (used by the TPC-H queries and correctness tests);
* :func:`round_robin_partitioner` — assigns each child batch to the next
  group in turn.  Statistically equivalent to hashing the paper's
  uniformly-random R.a key, and what the synthetic throughput benchmarks
  use so host-side numpy work stays off the critical path.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.core.endpoint import DataState, SendEndpoint
from repro.core.groups import TransmissionGroups
from repro.engine.operator import Operator, OpState

__all__ = [
    "ShuffleOperator",
    "hash_partitioner",
    "round_robin_partitioner",
    "striped_partitioner",
]

#: Knuth multiplicative hashing constant, as used by in-memory engines.
_HASH_MULTIPLIER = 2654435761


def hash_partitioner(key_of: Callable[[np.ndarray], np.ndarray],
                     num_groups: int):
    """Partition by multiplicative hash of ``key_of(batch)`` (Alg 1 l.8).

    ``key_of`` extracts an integer key array from a batch (e.g.
    ``lambda b: b["orderkey"]``).
    """

    def partition(batch: np.ndarray) -> np.ndarray:
        keys = key_of(batch).astype(np.uint64, copy=False)
        return ((keys * np.uint64(_HASH_MULTIPLIER)) % np.uint64(1 << 32)
                % np.uint64(num_groups)).astype(np.int64)

    return partition


class round_robin_partitioner:
    """Whole-batch assignment cycling through groups.

    Coarse: an entire child batch lands on one destination, which is far
    burstier than per-tuple hashing.  Prefer :class:`striped_partitioner`
    for uniform workloads; this class remains for skew experiments.
    """

    def __init__(self, num_groups: int):
        self.num_groups = num_groups
        self._counter = 0

    def __call__(self, batch: np.ndarray) -> int:
        group = self._counter % self.num_groups
        self._counter += 1
        return group


class striped_partitioner:
    """Even split of every batch across all groups (uniform traffic).

    Per-tuple hashing of a uniformly random key sends each destination an
    equal share of every batch, with transmission buffers for all
    destinations filling in lockstep.  Striping reproduces that traffic
    pattern exactly — equal slices per group, interleaved buffer fills —
    without per-row numpy hashing on the host's critical path.  The
    SHUFFLE operator recognizes this class and splits batches by slicing.
    """

    def __init__(self, num_groups: int):
        self.num_groups = num_groups
        self._offset = 0

    def split(self, batch: np.ndarray):
        """Yields ``(group, slice)`` pairs covering the batch evenly.

        The starting group rotates between calls so remainders do not pile
        onto group 0.
        """
        n = self.num_groups
        bounds = np.linspace(0, len(batch), n + 1).astype(np.int64)
        start = self._offset
        self._offset = (self._offset + 1) % n
        for i in range(n):
            g = (start + i) % n
            lo, hi = bounds[i], bounds[i + 1]
            if hi > lo:
                yield g, batch[lo:hi]


class _GroupAccumulator:
    """Per-(thread, group) staging area for tuples awaiting transmission."""

    __slots__ = ("chunks", "rows")

    def __init__(self):
        self.chunks: List[np.ndarray] = []
        self.rows = 0

    def append(self, arr: np.ndarray) -> None:
        if len(arr):
            self.chunks.append(arr)
            self.rows += len(arr)

    def take(self, rows: int) -> np.ndarray:
        """Remove and return exactly ``rows`` tuples (caller checks rows)."""
        taken: List[np.ndarray] = []
        need = rows
        while need > 0:
            head = self.chunks[0]
            if len(head) <= need:
                taken.append(head)
                need -= len(head)
                self.chunks.pop(0)
            else:
                taken.append(head[:need])
                self.chunks[0] = head[need:]
                need = 0
        self.rows -= rows
        return np.concatenate(taken) if len(taken) > 1 else taken[0]


class ShuffleOperator(Operator):
    """Algorithm 1: hash, pack, transmit.

    One ``next(tid)`` call drains the child completely (the operator is a
    pipeline breaker toward the network) and returns Depleted.  The
    endpoint array holds one endpoint in the single-endpoint (SE)
    configuration or one per thread in the multi-endpoint (ME) one;
    thread ``tid`` uses ``endpoints[tid % len(endpoints)]`` (Alg 1 l.1-4).
    """

    def __init__(self, node, child: Operator,
                 endpoints: Sequence[SendEndpoint],
                 groups: TransmissionGroups,
                 partition_fn,
                 num_threads: int):
        super().__init__(node, child)
        if not endpoints:
            raise ValueError("shuffle needs at least one endpoint")
        self.endpoints = list(endpoints)
        self.groups = groups
        self.partition_fn = partition_fn
        self.num_threads = num_threads
        self._acc = [
            [_GroupAccumulator() for _ in range(groups.num_groups)]
            for _ in range(num_threads)
        ]
        for tid in range(num_threads):
            self.endpoints[tid % len(self.endpoints)].attach_thread()
        self.tuples_out = 0

    def _endpoint(self, tid: int) -> SendEndpoint:
        return self.endpoints[tid % len(self.endpoints)]

    def _capacity_rows(self, batch: np.ndarray) -> int:
        target = self._endpoint(0)
        itemsize = batch.dtype.itemsize
        if itemsize > target.config.message_size:
            raise ValueError(
                f"tuple of {itemsize} B exceeds the {target.config.message_size} B "
                "transmission buffer"
            )
        return max(1, target.config.message_size // itemsize)

    def next(self, tid: int):
        target = self._endpoint(tid)
        net = self.node.config
        acc = self._acc[tid]
        capacity_rows = None
        while True:
            state, batch = yield from self.child.next(tid)
            if batch is not None and len(batch):
                if capacity_rows is None:
                    capacity_rows = self._capacity_rows(batch)
                # Hash + copy into registered buffers (Alg 1 l.8-10),
                # charged per batch through the CPU cost model.
                yield self.per_tuple_cost(
                    len(batch), batch.nbytes,
                    ns_per_tuple=net.hash_ns_per_tuple,
                    ns_per_byte=net.copy_ns_per_byte,
                )
                self._scatter(acc, batch)
                self.tuples_out += len(batch)
                # Transmit every full buffer (Alg 1 l.11-13), interleaving
                # destinations the way per-tuple hashing fills buffers in
                # lockstep — one full buffer per group per pass.
                busy = True
                while busy:
                    busy = False
                    for g, bucket in enumerate(acc):
                        if bucket.rows >= capacity_rows:
                            chunk = bucket.take(capacity_rows)
                            yield from self._transmit(target, chunk, g)
                            busy = busy or bucket.rows >= capacity_rows
            if state == OpState.DEPLETED:
                break
        # Flush partial buffers, then propagate end-of-stream; the
        # endpoint emits the Depleted markers once its last attached
        # thread finishes (Alg 1 l.14-17).
        for g, bucket in enumerate(acc):
            if bucket.rows:
                chunk = bucket.take(bucket.rows)
                yield from self._transmit(target, chunk, g)
        yield from target.finish()
        return (OpState.DEPLETED, None)

    def _scatter(self, acc, batch: np.ndarray) -> None:
        if isinstance(self.partition_fn, striped_partitioner):
            for g, part in self.partition_fn.split(batch):
                acc[g].append(part)
            return
        assignment = self.partition_fn(batch)
        if np.isscalar(assignment) or isinstance(assignment, (int, np.integer)):
            acc[int(assignment)].append(batch)
            return
        order = np.argsort(assignment, kind="stable")
        sorted_batch = batch[order]
        sorted_groups = assignment[order]
        boundaries = np.searchsorted(
            sorted_groups, np.arange(self.groups.num_groups + 1))
        for g in range(self.groups.num_groups):
            lo, hi = boundaries[g], boundaries[g + 1]
            if hi > lo:
                acc[g].append(sorted_batch[lo:hi])

    def _transmit(self, target: SendEndpoint, chunk: np.ndarray, g: int):
        buf = yield from target.get_free()
        buf.fill(chunk, chunk.nbytes)
        yield from target.send(buf, self.groups[g], DataState.MORE_DATA)
